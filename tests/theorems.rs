//! Cross-crate verification of the paper's theorems at larger scales
//! than the per-crate unit tests.

use star_mesh_embedding::core::congestion::{static_congestion, verify_lemma5_all};
use star_mesh_embedding::core::dilation::{audit_dilation, expected_mesh_edges};
use star_mesh_embedding::core::embedding::star_mesh_embedding;
use star_mesh_embedding::prelude::*;

#[test]
fn theorem4_dilation3_up_to_n8() {
    // Exhaustive over all mesh edges of D_8 (40 320 nodes, ~250k edges).
    for n in [7usize, 8] {
        let report = audit_dilation(n);
        assert_eq!(report.edges, expected_mesh_edges(n));
        assert_eq!(report.dilation(), 3, "n={n}");
        assert!(report.is_one_or_three());
    }
}

#[test]
fn lemma5_no_blocking_up_to_n7() {
    for n in [6usize, 7] {
        let reports = verify_lemma5_all(n).expect("conflict-free");
        assert_eq!(reports.len(), 2 * (n - 1));
        for r in reports {
            assert!(r.unit_routes <= 3);
        }
    }
}

#[test]
fn expansion_one_dilation_three_via_generic_analyzer() {
    for n in 3..=6usize {
        let metrics = star_mesh_embedding(n).analyze().expect("valid");
        assert!((metrics.expansion - 1.0).abs() < 1e-12);
        assert_eq!(metrics.dilation, 3);
    }
}

#[test]
fn static_congestion_stays_bounded() {
    // The paper never reports congestion; we record it as an extension
    // and pin its small-n values as a regression guard.
    let c4 = static_congestion(4);
    let c5 = static_congestion(5);
    let c6 = static_congestion(6);
    assert!(c4.congestion <= c5.congestion);
    assert!(c5.congestion <= c6.congestion + 2);
    for c in [c4, c5, c6] {
        assert!(c.congestion >= 1);
        assert!(c.edges_used <= c.edges_total);
    }
}

#[test]
fn theorem6_executable_on_every_dimension() {
    // One mesh unit route = at most 3 star unit routes, measured on
    // the simulator for every dimension and direction of D_6.
    let n = 6;
    let mut m: EmbeddedMeshMachine<u32> = EmbeddedMeshMachine::new(n);
    m.load("B", (0..720u32).collect());
    let mut physical_before = 0;
    for dim in 1..n {
        for sign in [Sign::Plus, Sign::Minus] {
            m.route("B", dim, sign);
            let cost = m.stats().physical_routes - physical_before;
            physical_before = m.stats().physical_routes;
            let expect = if dim == n - 1 { 1 } else { 3 };
            assert_eq!(cost, expect, "dim={dim} {sign:?}");
        }
    }
}

#[test]
fn simulation_identity_random_programs() {
    // 100-route random programs agree bit-for-bit between machines.
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    let n = 5;
    let dn = DnMesh::new(n);
    let size = dn.node_count() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(777);
    let data: Vec<u64> = (0..size).map(|_| rng.gen()).collect();

    let mut native: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
    let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
    native.load("B", data.clone());
    star.load("B", data);
    for _ in 0..100 {
        let dim = rng.gen_range(1..n);
        let sign = if rng.gen_bool(0.5) {
            Sign::Plus
        } else {
            Sign::Minus
        };
        match rng.gen_range(0..3) {
            0 => {
                native.route("B", dim, sign);
                star.route("B", dim, sign);
            }
            1 => {
                let parity = rng.gen_range(0..2);
                let mask = move |p: &MeshPoint| p.d(dim) % 2 == parity;
                native.route_where("B", dim, sign, &mask);
                star.route_where("B", dim, sign, &mask);
            }
            _ => {
                native.update("B", &mut |p, v| *v ^= u64::from(p.d(1)));
                star.update("B", &mut |p, v| *v ^= u64::from(p.d(1)));
            }
        }
        assert_eq!(native.read("B"), star.read("B"));
    }
    assert!(star.stats().slowdown().unwrap() <= 3.0);
}

#[test]
fn star_properties_via_graph_substrate() {
    // Diameter formula vs BFS at n=7 (5040 nodes).
    let g = star_mesh_embedding::graph::builders::star_graph(7);
    assert_eq!(sg_graph::metrics::diameter(&g), Some(9)); // floor(3*6/2)
    assert_eq!(g.regular_degree(), Some(6));
    // Distance profiles identical (necessary condition of symmetry).
    assert!(sg_graph::transitivity::distance_profiles_identical(
        &star_mesh_embedding::graph::builders::star_graph(5)
    ));
}
