//! The Appendix machinery stacked to full depth: virtual d-dimensional
//! meshes over D_n over the star graph, exercised with every algorithm
//! in the suite.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use star_mesh_embedding::algo::grouped::{GroupedGeometry, GroupedMachine};
use star_mesh_embedding::algo::oddeven::odd_even_sort;
use star_mesh_embedding::algo::reduce::all_reduce;
use star_mesh_embedding::algo::scan::scan;
use star_mesh_embedding::algo::util::lines_sorted;
use star_mesh_embedding::prelude::*;

fn keys(count: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..100_000)).collect()
}

#[test]
fn three_dimensional_grouped_view_routes_correctly() {
    // d = 3 view of D_6: extents [18, 10, 4].
    let geom = GroupedGeometry::appendix(6, 3);
    let vshape = geom.virtual_shape().clone();
    assert_eq!(vshape.extents(), &[18, 10, 4]);
    let data = keys(vshape.size(), 1);

    // Reference on a genuine 3-D machine.
    let mut flat: MeshMachine<u64> = MeshMachine::new(vshape.clone());
    flat.load("A", data.clone());
    let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
    let mut grouped = GroupedMachine::new(&mut inner, geom);
    grouped.load("A", data);

    for (dim, sign) in [
        (1, Sign::Plus),
        (2, Sign::Minus),
        (3, Sign::Plus),
        (2, Sign::Plus),
    ] {
        flat.route("A", dim, sign);
        grouped.route("A", dim, sign);
        assert_eq!(flat.read("A"), grouped.read("A"), "dim={dim} {sign:?}");
    }
}

#[test]
fn scan_on_grouped_star_stack() {
    // Prefix sums along the long virtual dimension of D_5 (15 x 8),
    // executed on S_5 at the bottom of the stack.
    let geom = GroupedGeometry::appendix(5, 2);
    let vshape = geom.virtual_shape().clone();
    let data = keys(vshape.size(), 2);

    let mut flat: MeshMachine<u64> = MeshMachine::new(vshape.clone());
    flat.load("A", data.clone());
    scan(&mut flat, "A", 1, |a, b| a + b);

    let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(5);
    let mut grouped = GroupedMachine::new(&mut star, geom);
    grouped.load("A", data);
    scan(&mut grouped, "A", 1, |a, b| a + b);

    assert_eq!(flat.read("A"), grouped.read("A"));
}

#[test]
fn all_reduce_on_grouped_star_stack() {
    let geom = GroupedGeometry::appendix(4, 2);
    let vshape = geom.virtual_shape().clone();
    let data = keys(vshape.size(), 3);
    let expect: u64 = data.iter().sum();

    let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(4);
    let mut grouped = GroupedMachine::new(&mut star, geom);
    grouped.load("A", data);
    all_reduce(&mut grouped, "A", |a, b| a + b);
    assert!(grouped.read("A").iter().all(|&v| v == expect));
}

#[test]
fn odd_even_on_virtual_rows_of_the_star() {
    let geom = GroupedGeometry::appendix(5, 2);
    let vshape = geom.virtual_shape().clone();
    let data = keys(vshape.size(), 4);

    let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(5);
    let mut grouped = GroupedMachine::new(&mut star, geom);
    grouped.load("K", data);
    odd_even_sort(&mut grouped, "K", 1, &|_| true);
    assert!(lines_sorted(&vshape, &grouped.read("K"), 1, &|_| true));
}

#[test]
fn route_cost_layering_is_multiplicative() {
    // virtual route -> (classes) inner routes -> (<=3x) star routes.
    let geom = GroupedGeometry::appendix(5, 2);
    let group1_size = 2; // dims {4, 2} for n=5, d=2, group 1

    let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
    let mut g1 = GroupedMachine::new(&mut inner, geom.clone());
    g1.load("A", keys(g1.shape().size(), 5));
    g1.route("A", 1, Sign::Plus);
    let inner_routes = g1.stats().physical_routes;
    assert!(inner_routes >= 1 && inner_routes <= 2 * group1_size as u64);

    let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(5);
    let mut g2 = GroupedMachine::new(&mut star, geom);
    g2.load("A", keys(g2.shape().size(), 5));
    g2.route("A", 1, Sign::Plus);
    let star_routes = g2.stats().physical_routes;
    assert!(star_routes <= 3 * inner_routes);
    assert!(star_routes >= inner_routes);
}

#[test]
fn degenerate_groupings() {
    // d = n-1: every group is a single dimension; the grouped view must
    // behave exactly like the raw D_n machine.
    let n = 4;
    let geom = GroupedGeometry::appendix(n, n - 1);
    let data = keys(24, 6);
    let vshape = geom.virtual_shape().clone();

    let mut plain: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
    plain.load("A", data.clone());
    // Load the grouped machine with the SAME physical placement: its
    // load() takes virtual order, so permute inner-ordered data first.
    let vdata: Vec<u64> = (0..vshape.size())
        .map(|vidx| {
            let ip = geom.inner_point(&vshape.point_at(vidx));
            data[geom.inner_shape().index_of(&ip) as usize]
        })
        .collect();
    let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
    let mut grouped = GroupedMachine::new(&mut inner, geom.clone());
    grouped.load("A", vdata);

    // Virtual dim k is inner dim n-k (groups are singletons here), so
    // corresponding routes must move the same physical data.
    for (vdim, idim) in (1..n).map(|k| (k, n - k)) {
        plain.route("A", idim, Sign::Plus);
        grouped.route("A", vdim, Sign::Plus);
        let v = grouped.read("A");
        let inner_after = plain.read("A");
        for vidx in 0..vshape.size() {
            let ip = geom.inner_point(&vshape.point_at(vidx));
            let iidx = geom.inner_shape().index_of(&ip);
            assert_eq!(
                v[vidx as usize], inner_after[iidx as usize],
                "vdim={vdim} idim={idim}"
            );
        }
    }

    // A single-dimension snake is the identity linearization.
    for k in 1..n {
        let group_len = geom.virtual_shape().extent(k);
        assert!(group_len >= 2);
    }
}
