//! Theorem 6 (via Theorem 4 / Lemma 5), machine-checked for all
//! `n ≤ 7`: the CONVERT embedding of `D_n` into `S_n` has
//! **expansion 1** and **dilation ≤ 3**, and one SIMD-A mesh unit
//! route costs at most 3 SIMD-B star unit routes.

use star_mesh_embedding::core::congestion::{verify_lemma5_all, MAX_STEPS};
use star_mesh_embedding::core::dilation::{audit_dilation, expected_mesh_edges};
use star_mesh_embedding::core::embedding::star_mesh_embedding as build_embedding;

const N_MAX: usize = 7;

/// §3.1 metrics of the explicit embedding object: expansion exactly 1
/// (|S_n| = |D_n| = n!) and dilation 3 (1 for the degenerate n = 2),
/// validated through the generic `Embedding::analyze` checker, which
/// also re-verifies that every edge path is a real, simple host path.
#[test]
fn expansion_one_dilation_three_exhaustive() {
    for n in 2..=N_MAX {
        let emb = build_embedding(n);
        let metrics = emb.analyze().expect("embedding is well-formed");
        assert!(
            (metrics.expansion - 1.0).abs() < 1e-12,
            "n={n}: expansion {} != 1",
            metrics.expansion
        );
        let expect_dilation = if n == 2 { 1 } else { 3 };
        assert_eq!(metrics.dilation, expect_dilation, "n={n}");
        assert!(metrics.congestion >= 1, "n={n}");
    }
}

/// The distance-formula audit agrees: over every mesh edge the star
/// distance of the images is 1 or 3, never 0, 2, or more — and the
/// edge count matches the closed form, so no edge was skipped.
#[test]
fn dilation_audit_matches_closed_forms() {
    for n in 2..=N_MAX {
        let report = audit_dilation(n);
        assert!(report.dilation() <= 3, "n={n}");
        assert!(report.is_one_or_three(), "n={n}: {:?}", report.histogram);
        assert_eq!(report.edges, expected_mesh_edges(n), "n={n}");
    }
}

/// Theorem 6 in executable form: for every dimension and direction,
/// all messages of a full mesh unit route arrive within 3 star unit
/// routes with no two messages ever occupying one node (Lemma 5's
/// non-blocking property). Dimension `n−1` needs exactly 1 route, all
/// others exactly 3 — the bound is met with equality.
#[test]
fn theorem6_unit_route_cost_exhaustive() {
    for n in 2..=N_MAX {
        for report in verify_lemma5_all(n).expect("Lemma 5 holds") {
            assert!(report.unit_routes <= MAX_STEPS, "n={n} k={}", report.k);
            let expect = if report.k == n - 1 { 1 } else { 3 };
            assert_eq!(
                report.unit_routes, expect,
                "n={n} k={} plus={}",
                report.k, report.plus
            );
        }
    }
}
