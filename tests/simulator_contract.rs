//! The SIMD machine contracts of §2, exercised adversarially: the
//! simulator must *reject* physically impossible communication, not
//! silently absorb it — that discipline is what makes the Lemma-5
//! runs meaningful certificates.

use star_mesh_embedding::prelude::*;
use star_mesh_embedding::simd::star_machine::StarMachine;

#[test]
fn simd_b_rejects_double_delivery() {
    // Two PEs targeting one receiver must fail, leave the register
    // untouched, and not count a unit route.
    let probe: StarMachine<i32> = StarMachine::new(4);
    let target = 5usize;
    let a = probe.neighbor_rank(target, 1) as u64;
    let b = probe.neighbor_rank(target, 3) as u64;

    let mut m: StarMachine<i32> = StarMachine::new(4);
    m.load("A", (0..24).collect());
    let before = m.read("A");
    let err = m
        .route_select("A", &|pe, _| {
            if pe == a {
                Some(1)
            } else if pe == b {
                Some(3)
            } else {
                None
            }
        })
        .unwrap_err();
    assert_eq!(err.receiver, target as u64);
    assert_eq!(m.read("A"), before);
    assert_eq!(m.stats().physical_routes, 0);
}

#[test]
fn simd_a_star_route_is_involution_for_all_generators() {
    let mut m: StarMachine<u64> = StarMachine::new(5);
    let data: Vec<u64> = (0..120).map(|x| x * x).collect();
    m.load("A", data.clone());
    for j in 1..5 {
        m.route_generator("A", j);
        assert_ne!(m.read("A"), data, "g_{j} moved data");
        m.route_generator("A", j);
        assert_eq!(m.read("A"), data, "g_{j} is an involution");
    }
    assert_eq!(m.stats().physical_routes, 8);
}

#[test]
fn mesh_machine_boundary_semantics_every_dim() {
    // §2: "provided they exist" — boundary PEs must keep their value.
    let dn = DnMesh::new(4);
    let mut m: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
    let data: Vec<u64> = (100..124).collect();
    m.load("B", data.clone());
    for dim in 1..4 {
        let shape = dn.shape().clone();
        let before = m.read("B");
        m.route("B", dim, Sign::Plus);
        let after = m.read("B");
        for idx in 0..shape.size() {
            let p = shape.point_at(idx);
            if p.d(dim) == 0 {
                assert_eq!(
                    after[idx as usize], before[idx as usize],
                    "low-boundary PE {p} must keep its value"
                );
            }
        }
    }
}

#[test]
fn embedded_machine_scratch_register_is_isolated() {
    // A route must not disturb OTHER registers on the star machine.
    let n = 4;
    let mut m: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
    m.load("A", (0..24).collect());
    m.load("B", (100..124).collect());
    let a_before = m.read("A");
    m.route("B", 1, Sign::Plus);
    assert_eq!(m.read("A"), a_before, "routing B must not touch A");
}

#[test]
fn update_masks_match_paper_notation() {
    // A(i) := A(i) + 1, (f(i) = y): masked increment on both machines.
    let n = 4;
    let dn = DnMesh::new(n);
    let mut native: MeshMachine<i64> = MeshMachine::new(dn.shape().clone());
    let mut star: EmbeddedMeshMachine<i64> = EmbeddedMeshMachine::new(n);
    native.load("A", vec![0; 24]);
    star.load("A", vec![0; 24]);
    let mask = |p: &MeshPoint| p.d(3) == 2; // f(i) = y
    native.update("A", &mut |p, v| {
        if mask(p) {
            *v += 1;
        }
    });
    star.update("A", &mut |p, v| {
        if mask(p) {
            *v += 1;
        }
    });
    assert_eq!(native.read("A"), star.read("A"));
    let marked: i64 = star.read("A").iter().sum();
    assert_eq!(marked, 6); // 24/4 nodes have d_3 = 2
}

#[test]
fn route_stats_are_additive_across_programs() {
    let n = 4;
    let mut m: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
    m.load("B", (0..24).collect());
    m.route("B", 1, Sign::Plus); // 3
    m.route("B", 3, Sign::Minus); // 1
    m.route("B", 2, Sign::Plus); // 3
    assert_eq!(m.stats().logical_mesh_routes, 3);
    assert_eq!(m.stats().physical_routes, 7);
}
