//! Lemma 3, checked against brute force for all `n ≤ 7`: the
//! closed-form symbol-swap rules `π_{k+}` / `π_{k−}` produce exactly
//! the star images of the mesh neighbors that `D_n`'s shape arithmetic
//! produces — including agreeing on *which* neighbors exist at the
//! mesh boundary.

use star_mesh_embedding::core::lemma3::all_mesh_neighbors;
use star_mesh_embedding::prelude::*;

const N_MAX: usize = 7;

/// For every node and dimension: `mesh_neighbor_plus/minus` on the
/// star side equals convert-of-neighbor on the mesh side, and the
/// boundary cases (`d_k = k` / `d_k = 0`) are exactly the `None`s.
#[test]
fn lemma3_agrees_with_brute_force_adjacency_exhaustive() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        let shape = dn.shape().clone();
        for d in dn.points() {
            let pi = convert_d_s(&d);
            for k in 1..n {
                let brute_plus = shape.neighbor(&d, k, Sign::Plus).map(|q| convert_d_s(&q));
                assert_eq!(
                    mesh_neighbor_plus(&pi, k),
                    brute_plus,
                    "n={n} d={d} k={k} (+)"
                );
                let brute_minus = shape.neighbor(&d, k, Sign::Minus).map(|q| convert_d_s(&q));
                assert_eq!(
                    mesh_neighbor_minus(&pi, k),
                    brute_minus,
                    "n={n} d={d} k={k} (−)"
                );
            }
        }
    }
}

/// The aggregated helper returns one entry per existing mesh edge at
/// the node, dimension-major — mirroring `MeshShape::degree`.
#[test]
fn all_mesh_neighbors_covers_the_degree() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        let shape = dn.shape().clone();
        for d in dn.points() {
            let pi = convert_d_s(&d);
            let star_side = all_mesh_neighbors(&pi);
            assert_eq!(star_side.len(), shape.degree(&d), "n={n} d={d}");
            for (k, plus, q) in star_side {
                let sign = if plus { Sign::Plus } else { Sign::Minus };
                let mesh_neighbor = shape
                    .neighbor(&d, k, sign)
                    .expect("lemma 3 produced a neighbor the mesh lacks");
                assert_eq!(q, convert_d_s(&mesh_neighbor), "n={n} d={d} k={k}");
            }
        }
    }
}

/// Lemma 2's consequence, pinned at the integration level: a Lemma-3
/// neighbor differs from `π` in exactly one symbol transposition, and
/// that transposition never involves symbols at equal slots — so its
/// star distance is 1 (front swap) or exactly 3.
#[test]
fn lemma3_neighbors_are_symbol_transpositions() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        for d in dn.points() {
            let pi = convert_d_s(&d);
            for (_k, _plus, q) in all_mesh_neighbors(&pi) {
                assert_eq!(pi.hamming(&q), 2, "n={n}: {pi} vs {q}");
                let dist = star_mesh_embedding::star::distance::distance(&pi, &q);
                assert!(dist == 1 || dist == 3, "n={n}: distance {dist}");
            }
        }
    }
}
