//! Lemma 5 under load: the paper's lockstep certificate, replayed on
//! the contention-accounting simulator.
//!
//! For every `n ≤ 6`, dimension `k`, and direction, the
//! mesh-dimension-sweep workload under embedding-path routing must
//! complete in exactly 3 rounds (1 for dimension `n−1`) with **zero
//! queueing** — cross-checked packet-for-packet against
//! `verify_lemma5`'s static certificate. Greedy shortest-path routing
//! carries the same traffic in fewer flits but loses the guarantee,
//! which is the whole point of the paper's schedule.

use star_mesh_embedding::core::congestion::verify_lemma5;
use star_mesh_embedding::net::{EmbeddingRouting, GreedyRouting, Network, Workload};

#[test]
fn dimension_sweep_is_contention_free_under_embedding_routing() {
    for n in 2..=6usize {
        let net = Network::new(n);
        for k in 1..n {
            for plus in [true, false] {
                let report = verify_lemma5(n, k, plus).expect("paper certificate holds");
                let w = Workload::dimension_sweep(n, k, plus);
                let stats = net.run(&w, &EmbeddingRouting);

                // Same messages as the static sweep, all delivered.
                assert_eq!(stats.injected, report.messages, "n={n} k={k} {plus}");
                assert_eq!(stats.delivered, report.messages, "n={n} k={k} {plus}");

                // Theorem 6's bound met with equality: 3 star unit
                // routes per mesh unit route (1 on dimension n−1) —
                // and the simulator's wall clock agrees with the
                // lockstep schedule's step count exactly.
                let expect = if k == n - 1 { 1 } else { 3 };
                assert_eq!(stats.makespan as usize, expect, "n={n} k={k} {plus}");
                assert_eq!(stats.makespan as usize, report.unit_routes);

                // Zero queueing: Lemma 5's non-blocking property.
                assert_eq!(stats.total_wait_rounds, 0, "n={n} k={k} {plus}");
                assert!(stats.is_contention_free(), "n={n} k={k} {plus}");
                assert!(stats.peak_node_occupancy <= 1, "n={n} k={k} {plus}");

                // Every delivered latency equals the dilation bound.
                assert_eq!(stats.max_latency as usize, expect);
                assert_eq!(
                    stats.sum_latency,
                    report.messages * expect as u64,
                    "all paths have equal length per (k, ±)"
                );
            }
        }
    }
}

#[test]
fn greedy_routing_delivers_the_sweep_but_without_the_certificate() {
    // Greedy shortest paths deliver the same traffic (often in fewer
    // flits) but are not schedule-aware; Lemma 5 makes no promise for
    // them. This documents that the zero-queueing result above is a
    // property of the *embedding paths*, not of the workload.
    let n = 5;
    let net = Network::new(n);
    for k in 1..n {
        let w = Workload::dimension_sweep(n, k, true);
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, stats.injected, "k={k}");
        // Shortest-path flit count never exceeds the dilation-3 count.
        let embed = net.run(&w, &EmbeddingRouting);
        assert!(stats.forwarded_flits <= embed.forwarded_flits, "k={k}");
    }
}

#[test]
fn sweep_with_link_latency_scales_linearly() {
    // With L-round links the lockstep schedule stretches to exactly
    // 3·L rounds — still zero queueing.
    let n = 5;
    let k = 2;
    for latency in [2u32, 4] {
        let net = Network::new(n).with_config(star_mesh_embedding::net::NetConfig {
            link_latency: latency,
            ..Default::default()
        });
        let w = Workload::dimension_sweep(n, k, true);
        let stats = net.run(&w, &EmbeddingRouting);
        assert_eq!(stats.makespan, 3 * latency);
        assert_eq!(stats.total_wait_rounds, 0);
    }
}
