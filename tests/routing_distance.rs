//! Star-graph routing and the Akers–Krishnamurthy distance formula
//! versus breadth-first-search ground truth: exhaustive all-pairs for
//! `n ≤ 6`, sampled for `n = 7`.

use star_mesh_embedding::graph::bfs::bfs;
use star_mesh_embedding::perm::factorial::factorial;
use star_mesh_embedding::prelude::*;
use star_mesh_embedding::star::distance::{distance, length_to_identity};
use star_mesh_embedding::star::routing::{route_generators, shortest_path};

/// All-pairs: the cycle-structure distance formula equals BFS distance
/// on the materialized `S_n`, for every ordered pair, `n ≤ 6`.
#[test]
fn distance_formula_matches_bfs_all_pairs() {
    for n in 2..=6usize {
        let star = StarGraph::new(n);
        let csr = star.to_csr();
        let count = factorial(n);
        for src in 0..count {
            let tree = bfs(&csr, src as u32);
            let a = star.node_at(src);
            for dst in 0..count {
                let b = star.node_at(dst);
                assert_eq!(
                    distance(&a, &b),
                    tree.dist[dst as usize],
                    "n={n}: d({a}, {b})"
                );
            }
        }
    }
}

/// `length_to_identity` is the single-argument specialization; check
/// it against BFS from the identity node's rank.
#[test]
fn length_to_identity_matches_bfs() {
    for n in 2..=6usize {
        let star = StarGraph::new(n);
        let csr = star.to_csr();
        let id_rank = star.rank_of(&star.identity());
        let tree = bfs(&csr, id_rank as u32);
        for r in 0..factorial(n) {
            let p = star.node_at(r);
            assert_eq!(
                length_to_identity(&p),
                tree.dist[r as usize],
                "n={n}: |{p}|"
            );
        }
    }
}

/// The constructive router: its path really walks star edges, starts
/// and ends correctly, and its length equals the exact distance — so
/// the greedy front-symbol sorting is step-for-step optimal.
#[test]
fn shortest_path_is_valid_and_optimal() {
    for n in 2..=5usize {
        let star = StarGraph::new(n);
        let count = factorial(n);
        for src in 0..count {
            let a = star.node_at(src);
            for dst in 0..count {
                let b = star.node_at(dst);
                let path = shortest_path(&a, &b);
                assert_eq!(*path.first().unwrap(), a);
                assert_eq!(*path.last().unwrap(), b);
                assert_eq!(path.len() as u32 - 1, distance(&a, &b), "n={n}: {a} → {b}");
                for w in path.windows(2) {
                    assert!(star.are_adjacent(&w[0], &w[1]), "n={n}: non-edge in path");
                }
                assert_eq!(route_generators(&a, &b).len() as u32, distance(&a, &b));
            }
        }
    }
}

/// `n = 7` (5040 nodes): BFS ground truth from a handful of sources
/// against the formula for every destination, plus router validity on
/// a strided sample of pairs.
#[test]
fn n7_sampled_crosscheck() {
    let n = 7usize;
    let star = StarGraph::new(n);
    let csr = star.to_csr();
    let count = factorial(n);
    for src in [0, 1, 720, 2519, count - 1] {
        let tree = bfs(&csr, src as u32);
        let a = star.node_at(src);
        for dst in 0..count {
            let b = star.node_at(dst);
            assert_eq!(distance(&a, &b), tree.dist[dst as usize], "d({a}, {b})");
        }
    }
    let a = star.node_at(17);
    for dst in (0..count).step_by(101) {
        let b = star.node_at(dst);
        let path = shortest_path(&a, &b);
        assert_eq!(path.len() as u32 - 1, distance(&a, &b));
        for w in path.windows(2) {
            assert!(star.are_adjacent(&w[0], &w[1]));
        }
    }
}

/// Paper §2 property 2: the diameter of `S_n` is `⌊3(n−1)/2⌋` —
/// realized by BFS, matched by the closed form.
#[test]
fn diameter_closed_form() {
    for n in 2..=6usize {
        let star = StarGraph::new(n);
        let csr = star.to_csr();
        let measured = star_mesh_embedding::graph::metrics::diameter(&csr).unwrap();
        assert_eq!(measured, (3 * (n as u32 - 1)) / 2, "n={n}");
        assert_eq!(measured, star.diameter(), "n={n}");
    }
}
