//! Every worked example printed in the paper, verified end to end.
//!
//! This is the repository's "did we build the right thing" test: each
//! assertion is a literal number or string from the paper's text.

use star_mesh_embedding::core::convert::{convert_d_s, convert_s_d, home_node};
use star_mesh_embedding::core::fig4::figure4_embedding;
use star_mesh_embedding::core::lemma3::{mesh_neighbor_minus, mesh_neighbor_plus};
use star_mesh_embedding::core::paths::dilation3_path;
use star_mesh_embedding::prelude::*;
use star_mesh_embedding::star::distance::{distance, length_to_identity};

#[test]
fn section2_headline_numbers() {
    // "with degree-n, (n+1)! nodes could be connected using a star
    // graph as compared to only 2^n nodes for a hypercube"
    for degree in 2..=6usize {
        let star = StarGraph::new(degree + 1);
        assert_eq!(star.degree(), degree);
        assert_eq!(star.node_count(), sg_perm::factorial::factorial(degree + 1));
        assert!(star.node_count() >= 1u64 << degree);
    }
    // "The diameter k_n of the star graph S_n is floor(3(n-1)/2)"
    assert_eq!(StarGraph::new(4).diameter(), 4);
    assert_eq!(StarGraph::new(5).diameter(), 6);
    assert_eq!(StarGraph::new(9).diameter(), 12);
}

#[test]
fn section2_adjacency_definition() {
    // "Each PE (a_{n-1} … a_0) … is connected to nodes
    //  (a_i a_{n-2} … a_{i+1} a_{n-1} a_{i-1} … a_0), 0 <= i <= n-2"
    let s4 = StarGraph::new(4);
    let pi = Perm::from_slice(&[0, 1, 2, 3]).unwrap();
    let nbrs: Vec<Vec<u8>> = s4.neighbors(&pi).map(|q| q.as_slice().to_vec()).collect();
    assert_eq!(
        nbrs,
        vec![vec![1, 0, 2, 3], vec![2, 1, 0, 3], vec![3, 1, 2, 0]]
    );
}

#[test]
fn figure2_s4_structure() {
    // Figure 2 draws S_4: 24 nodes of degree 3 arranged as four
    // hexagons (sub-stars S_3, i.e. 6-cycles).
    let g = star_mesh_embedding::graph::builders::star_graph(4);
    assert_eq!(g.node_count(), 24);
    assert_eq!(g.regular_degree(), Some(3));
    // The four last-slot sub-stars are 6-cycles.
    let star = StarGraph::new(4);
    let groups = star_mesh_embedding::star::substar::substar_partition(&star);
    assert_eq!(groups.len(), 4);
    for group in groups {
        let ranks: Vec<u32> = group.iter().map(|p| star.rank_of(p) as u32).collect();
        let (sub, _) = g.induced_subgraph(&ranks);
        assert_eq!(sub.node_count(), 6);
        assert_eq!(sub.regular_degree(), Some(2)); // a 6-cycle
        assert!(sg_graph::bfs::is_connected(&sub));
    }
}

#[test]
fn figure3_mesh_234() {
    let shape = MeshShape::from_display(&[2, 3, 4]).unwrap();
    assert_eq!(shape.size(), 24);
    assert_eq!(shape.edges().count(), 46);
    // "(d_m, …, d_1) is connected to (d_m, …, d_j ± 1, …, d_1)
    //  provided they exist."
    let p = MeshPoint::new(&[0, 0, 0]).unwrap();
    assert_eq!(shape.degree(&p), 3);
}

#[test]
fn figure4_worked_example() {
    // "the expansion is 1 while the dilation and congestion are both 2"
    let m = figure4_embedding().analyze().unwrap();
    assert!((m.expansion - 1.0).abs() < 1e-12);
    assert_eq!(m.dilation, 2);
    assert_eq!(m.congestion, 2);
}

#[test]
fn lemma1_degree_argument() {
    // "A node in D_n (namely (1,1,…,1)) can have a degree (2n-3)"
    for n in 3..=8usize {
        let dn = DnMesh::new(n);
        let ones = MeshPoint::from_ascending(&vec![1; n - 1]).unwrap();
        assert_eq!(dn.shape().degree(&ones), 2 * n - 3);
        assert!(2 * n - 3 > n - 1, "no dilation-1 embedding for n={n}");
    }
}

#[test]
fn section32_convert_d_s_walkthrough() {
    // "(2 3)(2 3 0 1), (1 2)(1 3 0 2), (0 1)(0 3 1 2):
    //  thus node (3,0,1) is mapped to node (0 3 1 2)"
    let d = MeshPoint::new(&[3, 0, 1]).unwrap();
    assert_eq!(convert_d_s(&d).to_string(), "(0 3 1 2)");
    // "Assume that node (0,0,0 …,0) gets mapped to (n-1 n-2 … 2 1 0)"
    assert_eq!(
        convert_d_s(&MeshPoint::new(&[0, 0, 0]).unwrap()),
        home_node(4)
    );
}

#[test]
fn section32_convert_s_d_walkthrough() {
    // "Thus node (0 2 1 3) is mapped to node (3,1,1) on the mesh."
    let pi = Perm::from_slice(&[0, 2, 1, 3]).unwrap();
    assert_eq!(convert_s_d(&pi).to_string(), "(3,1,1)");
}

#[test]
fn definition1_symbol_exchange() {
    // "Let π = (3 1 4 2 0), then π_(2,3) = (2 1 4 3 0)"
    let pi = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
    assert_eq!(pi.with_symbols_swapped(2, 3).as_slice(), &[2, 1, 4, 3, 0]);
}

#[test]
fn lemma2_distances() {
    // "The shortest distance between π and π_(i,j) is either 1 or 3."
    let pi = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
    for i in 0..5u8 {
        for j in 0..5u8 {
            if i == j {
                continue;
            }
            let d = distance(&pi, &pi.with_symbols_swapped(i, j));
            assert!(d == 1 || d == 3, "π_({i},{j}) at distance {d}");
            // distance 1 exactly when the front symbol (3) is involved
            let front_involved = i == 3 || j == 3;
            assert_eq!(d == 1, front_involved);
        }
    }
}

#[test]
fn lemma3_worked_example() {
    // "consider π = (2 3 4 0 1) (corresponding to node (2,1,0,1)), then
    //  π_{3+} = (2 1 4 0 3) and π_{3-} = (2 4 3 0 1)"
    let pi = Perm::from_slice(&[2, 3, 4, 0, 1]).unwrap();
    assert_eq!(convert_s_d(&pi).to_string(), "(2,1,0,1)");
    assert_eq!(
        mesh_neighbor_plus(&pi, 3).unwrap().as_slice(),
        &[2, 1, 4, 0, 3]
    );
    assert_eq!(
        mesh_neighbor_minus(&pi, 3).unwrap().as_slice(),
        &[2, 4, 3, 0, 1]
    );
}

#[test]
fn lemma3_edge_to_path_example() {
    // "the edge to path mapping is ((2,1,0,1),(2,2,0,1)) -> (2 3 4 0 1)
    //  (3 2 4 0 1) (1 2 4 0 3) (2 1 4 0 3), ((2,1,0,1),(2,0,0,1)) ->
    //  (2 3 4 0 1) (3 2 4 0 1) (4 2 3 0 1) (2 4 3 0 1)"
    let pi = Perm::from_slice(&[2, 3, 4, 0, 1]).unwrap();
    let plus: Vec<String> = dilation3_path(&pi, 3, true)
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        plus,
        ["(2 3 4 0 1)", "(3 2 4 0 1)", "(1 2 4 0 3)", "(2 1 4 0 3)"]
    );
    let minus: Vec<String> = dilation3_path(&pi, 3, false)
        .unwrap()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert_eq!(
        minus,
        ["(2 3 4 0 1)", "(3 2 4 0 1)", "(4 2 3 0 1)", "(2 4 3 0 1)"]
    );
}

#[test]
fn broadcast_budget_property3() {
    // "Broadcasting can be performed … in at most 3(n log n − …) unit
    //  routes"
    use star_mesh_embedding::star::broadcast::{flood_schedule, paper_bound, verify_schedule};
    for n in 3..=7usize {
        let star = StarGraph::new(n);
        let sched = flood_schedule(&star, 0);
        let routes = verify_schedule(&star, &sched).unwrap();
        assert!((routes as f64) <= paper_bound(n), "n={n}");
    }
}

#[test]
fn distance_formula_spotchecks() {
    // Diameter attained: for n=4 some node is at distance 4.
    let far = Perm::from_slice(&[2, 3, 0, 1]).unwrap();
    assert_eq!(length_to_identity(&far), 4);
    assert_eq!(length_to_identity(&Perm::identity(6)), 0);
}
