//! Exhaustive verification (all `n ≤ 7`) that `CONVERT-D-S` and
//! `CONVERT-S-D` are mutually inverse **bijections** between the mesh
//! `D_n` and the star graph `S_n` — the expansion-1 half of the
//! paper's Theorem 6, checked node by node.

use star_mesh_embedding::core::convert::{
    convert_d_s_via_exchanges, convert_s_d_via_removal, home_node,
};
use star_mesh_embedding::perm::factorial::factorial;
use star_mesh_embedding::perm::lehmer::{rank, unrank};
use star_mesh_embedding::prelude::*;

const N_MAX: usize = 7;

/// `d ↦ π ↦ d` is the identity on every mesh node, and the images are
/// pairwise distinct — `convert_d_s` is injective into `S_n`.
#[test]
fn d_to_s_roundtrip_and_injectivity_exhaustive() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        let mut seen = vec![false; factorial(n) as usize];
        for d in dn.points() {
            let pi = convert_d_s(&d);
            assert_eq!(pi.len(), n, "n={n}: image lives on S_{n}");
            assert_eq!(
                convert_s_d(&pi),
                d,
                "n={n}: CONVERT-S-D undoes CONVERT-D-S at {d}"
            );
            let r = rank(&pi) as usize;
            assert!(!seen[r], "n={n}: image {pi} hit twice");
            seen[r] = true;
        }
        // |D_n| = n! = |S_n| and the map is injective, so it is onto —
        // but check the marks anyway rather than trusting arithmetic.
        assert!(
            seen.iter().all(|&s| s),
            "n={n}: some star node is not an image"
        );
    }
}

/// `π ↦ d ↦ π` is the identity on every star node — the inverse
/// direction, swept over all of `S_n`.
#[test]
fn s_to_d_roundtrip_exhaustive() {
    for n in 2..=N_MAX {
        for r in 0..factorial(n) {
            let pi = unrank(r, n).unwrap();
            let d = convert_s_d(&pi);
            assert_eq!(
                convert_d_s(&d),
                pi,
                "n={n}: CONVERT-D-S undoes CONVERT-S-D at {pi}"
            );
        }
    }
}

/// Every coordinate produced by `CONVERT-S-D` respects the mesh shape
/// `2 × 3 × ⋯ × n` (i.e. the inverse lands inside `D_n`).
#[test]
fn s_to_d_lands_inside_the_mesh() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        for r in 0..factorial(n) {
            let pi = unrank(r, n).unwrap();
            let d = convert_s_d(&pi);
            assert!(dn.shape().contains(&d), "n={n}: {pi} ↦ {d} escapes D_{n}");
        }
    }
}

/// The Figure-5 bubbling formulation and the Table-1 symbol-exchange
/// formulation compute the same map; likewise the two `CONVERT-S-D`
/// decoders.
#[test]
fn alternative_formulations_agree_exhaustive() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        for d in dn.points() {
            assert_eq!(
                convert_d_s(&d),
                convert_d_s_via_exchanges(&d),
                "n={n}: Figure 5 vs Table 1 disagree at {d}"
            );
        }
        for r in 0..factorial(n) {
            let pi = unrank(r, n).unwrap();
            assert_eq!(
                convert_s_d(&pi),
                convert_s_d_via_removal(&pi),
                "n={n}: Figure 6 vs removal decoding disagree at {pi}"
            );
        }
    }
}

/// The mesh origin maps to the paper's home node `(n−1 … 1 0)` and the
/// all-max corner maps to its reverse reading, pinning the orientation
/// conventions.
#[test]
fn anchor_points() {
    for n in 2..=N_MAX {
        let dn = DnMesh::new(n);
        let origin = dn.point_at(0);
        assert!(origin.ascending().iter().all(|&c| c == 0));
        assert_eq!(convert_d_s(&origin), home_node(n));

        let corner_coords: Vec<u32> = (1..n as u32).rev().collect();
        let corner = MeshPoint::new(&corner_coords).unwrap();
        let img = convert_d_s(&corner);
        assert_eq!(convert_s_d(&img), corner);
    }
}

/// The paper's §3.2 worked examples, kept at the integration level so
/// a regression in any crate's conventions trips it.
#[test]
fn paper_section_3_2_worked_examples() {
    let d = MeshPoint::new(&[3, 0, 1]).unwrap();
    assert_eq!(convert_d_s(&d).to_string(), "(0 3 1 2)");
    let pi = Perm::from_slice(&[0, 2, 1, 3]).unwrap();
    assert_eq!(convert_s_d(&pi).to_string(), "(3,1,1)");
}
