//! # star-mesh-embedding
//!
//! Umbrella crate re-exporting the full workspace API for the
//! reproduction of Ranka, Wang & Yeh, *Embedding Meshes on the Star
//! Graph* (SC'90): an expansion-1, dilation-3 embedding of the
//! `2 × 3 × ⋯ × n` mesh `D_n` into the star graph `S_n`, plus the
//! route-level SIMD machinery showing that one mesh unit route costs
//! exactly three star unit routes (Theorem 6).
//!
//! ## Quick start
//!
//! ```
//! use star_mesh_embedding::prelude::*;
//!
//! // Map mesh node (3,0,1) of D_4 onto S_4 — the paper's §3.2 example.
//! let d = MeshPoint::new(&[3, 0, 1]).unwrap();
//! let pi = convert_d_s(&d);
//! assert_eq!(pi.to_string(), "(0 3 1 2)");
//! assert_eq!(convert_s_d(&pi), d);
//! ```
//!
//! See the crate-level docs of each member crate for the details:
//! [`sg_perm`], [`sg_graph`], [`sg_star`], [`sg_mesh`], [`sg_core`],
//! [`sg_simd`], [`sg_algo`], [`sg_net`], [`sg_sched`], [`sg_coll`],
//! [`sg_obs`].

#![forbid(unsafe_code)]

pub use sg_algo as algo;
pub use sg_coll as coll;
pub use sg_core as core;
pub use sg_graph as graph;
pub use sg_mesh as mesh;
pub use sg_net as net;
pub use sg_obs as obs;
pub use sg_perm as perm;
pub use sg_sched as sched;
pub use sg_simd as simd;
pub use sg_star as star;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use sg_core::convert::{convert_d_s, convert_s_d};
    pub use sg_core::embedding::{Embedding, EmbeddingMetrics};
    pub use sg_core::lemma3::{mesh_neighbor_minus, mesh_neighbor_plus};
    pub use sg_core::paths::dilation3_path;
    pub use sg_mesh::coords::MeshPoint;
    pub use sg_mesh::dn::DnMesh;
    pub use sg_mesh::shape::MeshShape;
    pub use sg_mesh::shape::Sign;
    pub use sg_net::{
        AdaptiveRouting, EmbeddingRouting, Engine, FaultPlan, FaultPolicy, FlowControl,
        GreedyRouting, NetConfig, Network, RoutingPolicy, TrafficStats, Workload,
    };
    pub use sg_perm::{Perm, PermIter};
    pub use sg_sched::{AllocPolicy, JobSpec, StreamConfig, TenantRouting, TrafficProfile};
    pub use sg_simd::embedded::EmbeddedMeshMachine;
    pub use sg_simd::machine::{MeshSimd, RouteStats};
    pub use sg_simd::mesh_machine::MeshMachine;
    pub use sg_simd::star_machine::StarMachine;
    pub use sg_star::graph::StarGraph;
}
