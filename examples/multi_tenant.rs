//! Multi-tenant scheduling on one shared `S_7` interconnect.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```
//!
//! Mesh-shaped jobs (each asking for a `D_k`, i.e. an order-`k`
//! sub-star) are scheduled onto `S_7` (5 040 PEs) and all resident
//! tenants run their traffic **concurrently through one network**
//! with per-job routing and per-job statistics. Four experiments,
//! all asserted:
//!
//! 1. **Isolation** — a seeded stream of confined tenants across all
//!    three allocation policies: concurrent placements are pairwise
//!    disjoint, every tenant conserves its packets, and each tenant's
//!    attributed `TrafficStats` are **byte-equal** to the same job
//!    run alone on an empty machine. Embedding routing is confined by
//!    the paper's Theorem 6 machinery; greedy/adaptive are confined
//!    because sub-stars are geodesically closed under minimal
//!    routing.
//! 2. **Fragmentation** — an adversarial arrive/release sequence
//!    where first-fit splits the last whole `S_6` for a small job
//!    (hole-blind leftmost placement) and a later `S_6` request
//!    queues 340 rounds; best-fit and buddy reuse the existing hole
//!    and place it instantly.
//! 3. **Interference** — machine-coordinate dimension-order tenants
//!    (`TenantRouting::GlobalEmbedding`) trespass through their
//!    neighbors' sub-stars: every tenant's shared-run stats depart
//!    the isolated baseline, including the innocent embedding
//!    bystanders — interference the scheduler quantifies per job.
//! 4. **Drain-aware release + EASY backfill** — a tenant
//!    under-declares its walltime: `ReleaseMode::Declared` hands its
//!    still-draining sub-star to a successor (the quiescence audit
//!    counts the leaked flits and the successor departs its isolated
//!    baseline), `ReleaseMode::Drained` restores exact
//!    byte-isolation, and `SchedPolicy::EasyBackfill` claws back the
//!    whole first-fit queueing delay a small job pays behind a
//!    blocked full-machine head.

use star_mesh_embedding::net::Network;
use star_mesh_embedding::obs::{NullProbe, SchedProbe};
use star_mesh_embedding::sched::job::{JobSpec, TenantRouting, TrafficProfile};
use star_mesh_embedding::sched::scheduler::{schedule, schedule_with};
use star_mesh_embedding::sched::stream::{generate, StreamConfig};
use star_mesh_embedding::sched::{AllocPolicy, ReleaseMode, SchedConfig, SchedPolicy};

fn job(
    id: u32,
    order: usize,
    arrival: u32,
    duration: u32,
    traffic: TrafficProfile,
    routing: TenantRouting,
) -> JobSpec {
    JobSpec {
        id,
        order,
        arrival,
        duration,
        traffic,
        routing,
        escape: false,
    }
}

fn main() {
    let n = 7;
    let net = Network::new(n);
    println!(
        "=== Multi-tenant scheduling on S_{n} ({} PEs) ===\n",
        net.node_count()
    );
    isolation_theorem(&net);
    fragmentation_stress();
    interference(&net);
    drain_and_backfill(&net);
}

/// Experiment 1: a seeded stream of confined tenants (embedding +
/// greedy + adaptive mix) across all three policies — the isolation
/// theorem as an executable assertion.
fn isolation_theorem(net: &Network) {
    let n = net.n();
    let cfg = StreamConfig {
        duration: (90, 150),
        greedy_pct: 25,
        adaptive_pct: 15,
        ..StreamConfig::isolated(n, 12, 0xC0FFEE)
    };
    let jobs = generate(&cfg);
    println!(
        "--- 1. Isolation: {} confined tenants, 3 policies ---\n",
        jobs.len()
    );
    println!(
        "{:>10} {:>5} {:>9} {:>9} {:>10} {:>9}",
        "policy", "jobs", "packets", "horizon", "wait total", "isolated?"
    );
    for policy in AllocPolicy::ALL {
        let mut alloc = policy.build(n);
        let s = schedule(&jobs, alloc.as_mut());
        assert!(
            s.concurrent_placements_disjoint(),
            "concurrent placements must be pairwise disjoint"
        );
        let run = s.tenant_run();
        let report = run.run(net);
        // Per-job packet conservation from attributed stats.
        for j in &report.jobs {
            assert_eq!(
                j.stats.delivered + j.stats.dropped() + j.stats.stranded,
                j.stats.injected,
                "job {} conservation",
                j.id
            );
        }
        // The theorem: byte-equal against isolated baselines.
        let isolated = run.isolated_stats(net);
        let perturbed = report.perturbed_jobs(&isolated);
        assert!(
            perturbed.is_empty(),
            "{}: confined tenants perturbed: {perturbed:?}",
            policy.name()
        );
        println!(
            "{:>10} {:>5} {:>9} {:>9} {:>10} {:>9}",
            policy.name(),
            s.placements().len(),
            report.total.injected,
            s.horizon(),
            report.total.total_wait_rounds,
            "yes"
        );
    }
    println!("\nEvery tenant's per-job TrafficStats byte-equal its isolated run —");
    println!("embedding routing by Theorem 6, greedy/adaptive by sub-star convexity.\n");
}

/// Experiment 2: the allocation policies diverge under an adversarial
/// arrive/release pattern — hole-blind first fit fragments the last
/// whole `S_6` and a later big job pays for it in queueing delay.
fn fragmentation_stress() {
    let n = 7;
    println!("--- 2. Fragmentation stress: policy x queueing delay ---\n");
    let sweep = TrafficProfile::DimensionSweep { dim: 1, plus: true };
    let e = TenantRouting::Embedding;
    // Seven S_6 tenants fill the machine; the short-lived one (id 0)
    // releases [0]; a small job then arrives, and first-fit splits
    // the freed S_6 for it although an S_3 hole exists further right;
    // the S_6 job arriving next must wait for a release under
    // first-fit, and starts instantly under best-fit/buddy.
    let mut jobs = vec![job(0, 6, 0, 50, sweep, e)];
    for id in 1..=5 {
        jobs.push(job(id, 6, 0, 400, sweep, e));
    }
    jobs.push(job(6, 3, 0, 400, sweep, e)); // splits the 7th S_6
    jobs.push(job(7, 3, 55, 400, sweep, e)); // the hole-or-split probe
    jobs.push(job(8, 6, 60, 40, sweep, e)); // pays first-fit's bill
    println!(
        "{:>10} {:>16} {:>15} {:>9}",
        "policy", "probe placed in", "S_6 job delay", "horizon"
    );
    let mut delays = Vec::new();
    for policy in AllocPolicy::ALL {
        let mut alloc = policy.build(n);
        let s = schedule(&jobs, alloc.as_mut());
        let probe = &s.placements()[7];
        let big = &s.placements()[8];
        delays.push(big.queueing_delay());
        println!(
            "{:>10} {:>16} {:>15} {:>9}",
            policy.name(),
            format!("{}", probe.substar),
            big.queueing_delay(),
            s.horizon()
        );
    }
    assert!(
        delays[0] > 0 && delays[1] == 0 && delays[2] == 0,
        "first-fit must fragment; best-fit and buddy must reuse the hole"
    );
    println!("\nSame stream, same machine: placement policy alone decides whether");
    println!("the big job waits {} rounds or zero.\n", delays[0]);
}

/// Experiment 3: machine-coordinate dimension-order tenants trespass;
/// the scheduler's per-job attribution prices the damage.
fn interference(net: &Network) {
    println!("--- 3. Interference: oblivious dimension-order tenants ---\n");
    let jobs = vec![
        job(
            0,
            6,
            0,
            400,
            TrafficProfile::Transpose,
            TenantRouting::Embedding,
        ),
        job(
            1,
            6,
            0,
            400,
            TrafficProfile::Transpose,
            TenantRouting::GlobalEmbedding,
        ),
        job(
            2,
            6,
            0,
            400,
            TrafficProfile::UniformPairs {
                pairs: 360,
                seed: 5,
            },
            TenantRouting::Embedding,
        ),
        job(
            3,
            6,
            0,
            400,
            TrafficProfile::Bernoulli {
                rounds: 2,
                rate_pct: 60,
                seed: 9,
            },
            TenantRouting::GlobalEmbedding,
        ),
    ];
    let mut alloc = AllocPolicy::FirstFit.build(net.n());
    let s = schedule(&jobs, alloc.as_mut());
    let run = s.tenant_run();
    let report = run.run(net);
    let isolated = run.isolated_stats(net);
    println!(
        "{:>4} {:>11} {:>9} {:>11} {:>13} {:>10}",
        "job", "routing", "packets", "wait(iso)", "wait(shared)", "perturbed"
    );
    for (j, iso) in report.jobs.iter().zip(&isolated) {
        println!(
            "{:>4} {:>11} {:>9} {:>11} {:>13} {:>10}",
            j.id,
            j.routing.name(),
            j.stats.injected,
            iso.total_wait_rounds,
            j.stats.total_wait_rounds,
            if j.stats == *iso { "no" } else { "YES" }
        );
    }
    // The trespassers must perturb the innocent embedding tenants.
    let perturbed = report.perturbed_jobs(&isolated);
    for innocent in [0u32, 2] {
        assert!(
            perturbed.contains(&innocent),
            "embedding tenant {innocent} must be perturbed by its oblivious neighbors"
        );
    }
    let total_extra: i64 = report
        .interference_wait(&isolated)
        .iter()
        .map(|&(_, d)| d)
        .sum();
    println!(
        "\nAll {} tenants perturbed; net extra queue-wait vs isolation: {total_extra} flit-rounds.",
        perturbed.len()
    );
    println!("Contrast experiment 1: sharing is free exactly as long as every");
    println!("tenant routes inside its own slice.");
}

/// Experiment 4: drain-aware release and EASY backfill. A liar
/// declares 1 round but injects a deep backlog; declared release
/// hands its sub-star over dirty, drained release holds it until the
/// network quiesces; EASY backfill then recovers the queueing delay
/// FCFS charges a small job stuck behind a blocked full-machine head.
fn drain_and_backfill(net: &Network) {
    let n = net.n();
    println!("\n--- 4. Drain-aware release + EASY backfill ---\n");
    let e = TenantRouting::Embedding;
    let t = TrafficProfile::Transpose;
    // The liar (id 0) declares 1 round on one S_6 slice of S_7 and
    // injects a 720-packet backlog; six bystanders pin the other six
    // slices; the successor (id 1) inherits the liar's slice the
    // moment it is released.
    let mut jobs = vec![JobSpec {
        traffic: TrafficProfile::UniformPairs {
            pairs: 720,
            seed: 7,
        },
        ..job(0, n - 1, 0, 1, t, e)
    }];
    for id in 2..=(n as u32) {
        jobs.push(job(id, n - 1, 0, 60, t, e));
    }
    jobs.push(job(1, n - 1, 0, 60, t, e));
    println!(
        "{:>9} {:>12} {:>15} {:>13} {:>20}",
        "release", "liar holds", "successor start", "leaked flits", "successor isolated?"
    );
    for release in [ReleaseMode::Declared, ReleaseMode::Drained] {
        let cfg = SchedConfig {
            release,
            net: Some(net),
            ..SchedConfig::default()
        };
        let mut alloc = AllocPolicy::FirstFit.build(n);
        let s = schedule_with(&jobs, alloc.as_mut(), &cfg, &mut NullProbe);
        let liar = &s.placements()[0];
        let successor = s
            .placements()
            .iter()
            .find(|p| p.job.id == 1)
            .expect("successor placed");
        assert_eq!(
            successor.substar, liar.substar,
            "successor must inherit the liar's slice"
        );
        let run = s.tenant_run();
        let report = run.run(net);
        let leaked = run.quiescence_violations(&report);
        let perturbed = report.perturbed_jobs(&run.isolated_stats(net));
        match release {
            ReleaseMode::Declared => {
                assert_eq!(liar.finish, 1, "declared release trusts the lie");
                assert!(!leaked.is_empty(), "the handoff must leak in-flight flits");
                assert!(
                    perturbed.contains(&1),
                    "the successor must depart its isolated baseline"
                );
            }
            ReleaseMode::Drained => {
                assert!(liar.finish > 1, "drained release outwaits the backlog");
                assert!(leaked.is_empty());
                assert!(perturbed.is_empty(), "byte-isolation is restored");
            }
        }
        println!(
            "{:>9} {:>12} {:>15} {:>13} {:>20}",
            release.name(),
            liar.finish,
            successor.start,
            leaked.len(),
            if perturbed.contains(&1) { "NO" } else { "yes" }
        );
    }

    // EASY: the same liar, a full-machine head that must wait for the
    // drain, and a small candidate. FCFS makes the candidate queue
    // behind the head; EASY backfills it into a free slice at arrival
    // — recovering the entire FCFS queueing delay — while the probe
    // records how optimistic the head's declared-walltime reservation
    // was versus its drained start.
    let jobs = vec![
        JobSpec {
            traffic: TrafficProfile::UniformPairs {
                pairs: 720,
                seed: 7,
            },
            ..job(0, n - 1, 0, 1, t, e)
        },
        job(1, n, 0, 30, t, e),
        job(2, n - 1, 0, 1, t, e),
    ];
    let run_policy = |policy| {
        let cfg = SchedConfig {
            policy,
            ..SchedConfig::drained(net)
        };
        let mut probe = SchedProbe::new();
        let mut alloc = AllocPolicy::FirstFit.build(n);
        let s = schedule_with(&jobs, alloc.as_mut(), &cfg, &mut probe);
        let _ = s.tenant_run().run_quiesce_checked(net); // handoffs stay clean
        let candidate_delay = s
            .placements()
            .iter()
            .find(|p| p.job.id == 2)
            .expect("candidate placed")
            .queueing_delay();
        (candidate_delay, s.backfills(), probe.max_optimism_gap())
    };
    let (fcfs_delay, _, _) = run_policy(SchedPolicy::Fcfs);
    let (easy_delay, backfills, gap) = run_policy(SchedPolicy::EasyBackfill);
    assert!(fcfs_delay > 0, "FCFS must charge the candidate real delay");
    assert_eq!(backfills, 1, "EASY must backfill the candidate");
    assert!(
        fcfs_delay - easy_delay >= fcfs_delay,
        "EASY must recover at least the measured FCFS queueing delay"
    );
    println!("\nEASY vs FCFS behind a blocked full-machine head (drained release):");
    println!(
        "  candidate delay: {fcfs_delay} rounds under FCFS, {easy_delay} under EASY \
         ({} recovered, {backfills} backfill)",
        fcfs_delay - easy_delay
    );
    println!("  head reservation optimism (declared promise vs drained start): {gap} rounds");
    println!("\nDeclared release trusts walltime lies and breaks the isolation");
    println!("theorem; drained release restores it; EASY makes the wait cheap.");
}
