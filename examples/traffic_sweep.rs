//! Traffic on the star interconnect: the paper's lockstep certificate
//! vs. real contention.
//!
//! ```sh
//! cargo run --release --example traffic_sweep
//! ```
//!
//! Four experiments on the `sg-net` simulator:
//!
//! 1. **Lemma 5 under load** — the mesh-dimension-sweep workload under
//!    embedding-path routing finishes in exactly 3 rounds (1 on
//!    dimension `n−1`) with zero queueing, for every dimension and
//!    direction. Theorem 6, now measured instead of proven.
//! 2. **Saturation** — uniform random traffic has no such certificate:
//!    as offered load rises toward full injection, queues grow and
//!    latency departs the distance bound.
//! 3. **Adversarial patterns** — transpose and hot-spot traffic.
//! 4. **Faults** — the paper's `n−2` dead-node budget under drop vs.
//!    reroute semantics.
//! 5. **Engines and flow control** — FastEngine ≡ ReferenceEngine on
//!    identical traffic (asserted), adaptive routing vs the oblivious
//!    policies on skewed traffic, and credit-based flow control
//!    trading tail drops for source stalls (zero loss, asserted).
//! 6. **Observability** — an `sg-obs` probe riding a saturated run:
//!    the hottest links and the round of peak queue depth, recovered
//!    from the event stream without perturbing the statistics
//!    (asserted byte-identical to the unprobed run).

use star_mesh_embedding::net::{
    saturation_sweep, AdaptiveRouting, EmbeddingRouting, Engine, FaultPlan, FaultPolicy,
    FlowControl, GreedyRouting, NetConfig, Network, Workload,
};
use star_mesh_embedding::obs::NetProbe;

fn main() {
    lemma5_under_load();
    saturation();
    adversarial();
    faults();
    engines_and_flow_control();
    observability();
}

fn lemma5_under_load() {
    println!("=== 1. Lemma 5 under load: dimension sweep, embedding-path routing ===\n");
    println!(
        "{:>3} {:>3} {:>4} {:>9} {:>7} {:>6} {:>7} {:>9}",
        "n", "k", "dir", "messages", "rounds", "waits", "peak q", "conflict?"
    );
    for n in 4..=6usize {
        let net = Network::new(n);
        for k in 1..n {
            for plus in [true, false] {
                let w = Workload::dimension_sweep(n, k, plus);
                let stats = net.run(&w, &EmbeddingRouting);
                assert!(
                    stats.is_contention_free(),
                    "Lemma 5 must hold on the simulator"
                );
                let expect = if k == n - 1 { 1 } else { 3 };
                assert_eq!(stats.makespan as usize, expect, "Theorem 6 bound");
                assert_eq!(stats.delivered, stats.injected);
                println!(
                    "{:>3} {:>3} {:>4} {:>9} {:>7} {:>6} {:>7} {:>9}",
                    n,
                    k,
                    if plus { "+" } else { "-" },
                    stats.injected,
                    stats.makespan,
                    stats.total_wait_rounds,
                    stats.peak_edge_occupancy,
                    "none"
                );
            }
        }
    }
    println!("\nEvery sweep: 3 star unit routes per mesh unit route (1 on dim n-1),");
    println!("zero queueing — the paper's non-blocking schedule, reproduced with");
    println!("contention accounting switched on.\n");
}

fn saturation() {
    let n = 5;
    let rounds = 30;
    println!("=== 2. Saturation: uniform random traffic on S_{n}, {rounds} rounds ===\n");
    let net = Network::new(n);
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>11} {:>11} {:>8}",
        "rate%", "offered", "delivered", "avg lat", "thrpt/round", "wait rounds", "peak q"
    );
    let points = saturation_sweep(&net, &[10, 25, 50, 75, 100], rounds, 0xBEEF, &GreedyRouting);
    for p in &points {
        println!(
            "{:>6} {:>9} {:>9} {:>9.2} {:>11.1} {:>11} {:>8}",
            p.rate_pct,
            p.injected,
            p.delivered,
            p.avg_latency,
            p.throughput,
            p.total_wait_rounds,
            p.peak_edge_occupancy
        );
    }
    let full = points.last().expect("sweep has points");
    assert!(
        full.total_wait_rounds > 0 && full.peak_edge_occupancy > 1,
        "full injection must queue measurably"
    );
    println!("\nAt full injection (rate 100%) queues are unavoidable — contrast the");
    println!("zero-wait rows of experiment 1.\n");
}

fn adversarial() {
    let n = 5;
    println!("=== 3. Adversarial patterns on S_{n} ===\n");
    let net = Network::new(n);
    println!(
        "{:>14} {:>10} {:>9} {:>9} {:>9} {:>11} {:>8}",
        "workload", "policy", "packets", "rounds", "avg lat", "wait rounds", "peak q"
    );
    let transpose = Workload::transpose(n);
    let hotspot = Workload::hot_spot(n, 0, 30, 0x5EED);
    for w in [&transpose, &hotspot] {
        for (name, stats) in [
            ("greedy", net.run(w, &GreedyRouting)),
            ("embedding", net.run(w, &EmbeddingRouting)),
        ] {
            println!(
                "{:>14} {:>10} {:>9} {:>9} {:>9.2} {:>11} {:>8}",
                w.name(),
                name,
                stats.injected,
                stats.makespan,
                stats.avg_latency(),
                stats.total_wait_rounds,
                stats.peak_edge_occupancy
            );
        }
    }
    println!();
}

fn faults() {
    let n = 5;
    let dead = n - 2;
    println!("=== 4. Faults: {dead} dead PEs (the n-2 budget) on S_{n} ===\n");
    let w = Workload::random_permutation(n, 0xFADE);
    println!(
        "{:>9} {:>9} {:>9} {:>8} {:>13} {:>9}",
        "policy", "packets", "delivered", "dropped", "unreachable", "avg lat"
    );
    for policy in [FaultPolicy::Drop, FaultPolicy::Reroute] {
        let plan = FaultPlan::random_nodes(n, dead, 0xD00D).with_policy(policy);
        let net = Network::new(n).with_faults(plan.clone());
        let stats = net.run(&w, &GreedyRouting);
        println!(
            "{:>9} {:>9} {:>9} {:>8} {:>13} {:>9.2}",
            match policy {
                FaultPolicy::Drop => "drop",
                FaultPolicy::Reroute => "reroute",
            },
            stats.injected,
            stats.delivered,
            stats.dropped_fault,
            stats.dropped_unreachable,
            stats.avg_latency()
        );
        if policy == FaultPolicy::Reroute {
            // Packets from/to dead PEs are lost either way; every
            // live-to-live packet must survive rerouting.
            let live_pairs = stats
                .packets
                .iter()
                .filter(|r| !plan.is_node_dead(r.src) && !plan.is_node_dead(r.dst))
                .count() as u64;
            assert_eq!(
                stats.delivered, live_pairs,
                "n-2 faults never disconnect live PEs"
            );
        }
    }
    println!("\nReroute recovers every packet between live PEs: S_n is (n-1)-connected,");
    println!("so n-2 faults cannot cut it (the paper's fault-tolerance bound).\n");
}

fn engines_and_flow_control() {
    let n = 5;
    println!("=== 5. Engines, adaptive routing, credit-based flow control (S_{n}) ===\n");

    // FastEngine vs ReferenceEngine: byte-identical statistics on
    // contended traffic — the differential guarantee, demonstrated.
    let net = Network::new(n);
    let uniform = Workload::bernoulli_uniform(n, 20, 100, 0xBEEF);
    let fast = net.run_with(&uniform, &GreedyRouting, Engine::Fast);
    let reference = net.run_with(&uniform, &GreedyRouting, Engine::Reference);
    assert_eq!(fast, reference, "engines must agree bit for bit");
    println!(
        "engines agree on {} packets: makespan {}, wait rounds {}, peak queue {}\n",
        fast.injected, fast.makespan, fast.total_wait_rounds, fast.peak_edge_occupancy
    );

    // Adaptive routing spreads skewed traffic over the shortest-path
    // DAG instead of piling onto one fixed route per pair.
    println!(
        "{:>14} {:>10} {:>9} {:>9} {:>11} {:>8}",
        "workload", "policy", "packets", "rounds", "wait rounds", "peak q"
    );
    let hotspot = Workload::hot_spot(n, 0, 40, 0x5EED);
    for w in [&uniform, &hotspot] {
        for (name, stats) in [
            ("greedy", net.run(w, &GreedyRouting)),
            ("adaptive", net.run(w, &AdaptiveRouting)),
        ] {
            assert_eq!(stats.delivered, stats.injected);
            println!(
                "{:>14} {:>10} {:>9} {:>9} {:>11} {:>8}",
                w.name(),
                name,
                stats.injected,
                stats.makespan,
                stats.total_wait_rounds,
                stats.peak_edge_occupancy
            );
        }
    }

    // Credit-based flow control on a bounded buffer: where tail drop
    // loses packets, credits stall them at the source instead. (80%
    // injection over 2-slot queues: overloaded, but above the tiny
    // pool sizes where blocking flow control can deadlock.)
    let overload = Workload::bernoulli_uniform(n, 20, 80, 0xBEEF);
    println!();
    println!(
        "{:>14} {:>9} {:>9} {:>8} {:>13} {:>11}",
        "flow control", "packets", "delivered", "dropped", "inject stall", "wait rounds"
    );
    for (name, flow) in [
        ("tail-drop", FlowControl::TailDrop),
        ("credit", FlowControl::CreditBased),
    ] {
        let bounded = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(2),
            flow_control: flow,
            ..NetConfig::default()
        });
        let stats = bounded.run(&overload, &GreedyRouting);
        if flow == FlowControl::CreditBased {
            assert_eq!(stats.dropped(), 0, "credits never drop");
            assert_eq!(stats.delivered, stats.injected);
            assert!(stats.injection_stall_rounds > 0, "overload must stall");
        } else {
            assert!(stats.dropped_overflow > 0, "overload must tail-drop");
        }
        println!(
            "{:>14} {:>9} {:>9} {:>8} {:>13} {:>11}",
            name,
            stats.injected,
            stats.delivered,
            stats.dropped(),
            stats.injection_stall_rounds,
            stats.total_wait_rounds
        );
    }
    println!("\nSame traffic, same buffers: tail drop sheds load, credits queue it at");
    println!("the source — nothing lost, latency paid in stall rounds instead.");

    // The deadlock demo: shrink the pool to 1 slot per queue and push
    // full injection — the credit run wedges at its fixed point and
    // strands survivors; the escape channel diverts the starved heads
    // onto the per-PE escape bank and drains everything.
    let crush = Workload::bernoulli_uniform(4, 20, 100, 0xBEEF);
    println!();
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>11}",
        "tiny pool", "packets", "delivered", "stranded", "diversions"
    );
    for (name, flow) in [
        ("credit", FlowControl::CreditBased),
        ("escape", FlowControl::EscapeChannel),
    ] {
        let tiny = Network::new(4).with_config(NetConfig {
            queue_capacity: Some(1),
            flow_control: flow,
            ..NetConfig::default()
        });
        let stats = tiny.run(&crush, &GreedyRouting);
        if flow == FlowControl::EscapeChannel {
            assert_eq!(stats.stranded, 0, "escape mode never deadlocks");
            assert_eq!(stats.delivered, stats.injected);
            assert!(stats.escape_diversions > 0, "the channel did the work");
        } else {
            assert!(stats.stranded > 0, "tiny pools must wedge credits");
        }
        println!(
            "{:>14} {:>9} {:>9} {:>9} {:>11}",
            name, stats.injected, stats.delivered, stats.stranded, stats.escape_diversions
        );
    }
    println!("\nOne reserved escape slot per residual-hop class, drained shortest-");
    println!("first along the embedding's dimension-order routes: the adaptive");
    println!("partition keeps credit semantics, and deadlock becomes impossible.");
}

fn observability() {
    let n = 7;
    let rounds = 10;
    println!("\n=== 6. Observability: a probe on saturated uniform S_{n} traffic ===\n");

    // Full injection on all 5040 PEs for 10 rounds, once bare and once
    // with a NetProbe attached: the probe recovers where the heat is
    // (per-link flit counts, per-PE queue depths over time) from the
    // typed event stream alone — and changes nothing.
    let net = Network::new(n);
    let w = Workload::bernoulli_uniform(n, rounds, 100, 0x0B5);
    let bare = net.run(&w, &GreedyRouting);
    let mut probe = NetProbe::new(net.node_count(), net.n() - 1);
    let probed = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut probe);
    assert_eq!(probed, bare, "a probe must never perturb the run");

    println!("{:>6} {:>9} {:>5} {:>7}", "rank", "PE", "gen", "flits");
    for (rank, link) in probe.top_links(5).iter().enumerate() {
        println!(
            "{:>6} {:>9} {:>5} {:>7}",
            rank + 1,
            link.pe,
            link.gen,
            link.count
        );
    }

    let (peak_depth, peak_round) = probe.peak_queue_depth();
    assert!(
        peak_round > 0,
        "saturated traffic cannot peak before queues build"
    );
    println!(
        "\npeak queue depth {} flits, first reached in round {} (of {})",
        peak_depth, peak_round, bare.makespan
    );
    println!(
        "probe recount: {} flits forwarded on {} observed rounds — identical",
        probe.registry().counter_value("flits_forwarded").unwrap(),
        probe.rounds()
    );
    println!("statistics with and without the probe (asserted byte-equal).");
}
