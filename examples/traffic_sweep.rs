//! Traffic on the star interconnect: the paper's lockstep certificate
//! vs. real contention.
//!
//! ```sh
//! cargo run --release --example traffic_sweep
//! ```
//!
//! Four experiments on the `sg-net` simulator:
//!
//! 1. **Lemma 5 under load** — the mesh-dimension-sweep workload under
//!    embedding-path routing finishes in exactly 3 rounds (1 on
//!    dimension `n−1`) with zero queueing, for every dimension and
//!    direction. Theorem 6, now measured instead of proven.
//! 2. **Saturation** — uniform random traffic has no such certificate:
//!    as offered load rises toward full injection, queues grow and
//!    latency departs the distance bound.
//! 3. **Adversarial patterns** — transpose and hot-spot traffic.
//! 4. **Faults** — the paper's `n−2` dead-node budget under drop vs.
//!    reroute semantics.

use star_mesh_embedding::net::{
    saturation_sweep, EmbeddingRouting, FaultPlan, FaultPolicy, GreedyRouting, Network, Workload,
};

fn main() {
    lemma5_under_load();
    saturation();
    adversarial();
    faults();
}

fn lemma5_under_load() {
    println!("=== 1. Lemma 5 under load: dimension sweep, embedding-path routing ===\n");
    println!(
        "{:>3} {:>3} {:>4} {:>9} {:>7} {:>6} {:>7} {:>9}",
        "n", "k", "dir", "messages", "rounds", "waits", "peak q", "conflict?"
    );
    for n in 4..=6usize {
        let net = Network::new(n);
        for k in 1..n {
            for plus in [true, false] {
                let w = Workload::dimension_sweep(n, k, plus);
                let stats = net.run(&w, &EmbeddingRouting);
                assert!(
                    stats.is_contention_free(),
                    "Lemma 5 must hold on the simulator"
                );
                let expect = if k == n - 1 { 1 } else { 3 };
                assert_eq!(stats.makespan as usize, expect, "Theorem 6 bound");
                assert_eq!(stats.delivered, stats.injected);
                println!(
                    "{:>3} {:>3} {:>4} {:>9} {:>7} {:>6} {:>7} {:>9}",
                    n,
                    k,
                    if plus { "+" } else { "-" },
                    stats.injected,
                    stats.makespan,
                    stats.total_wait_rounds,
                    stats.peak_edge_occupancy,
                    "none"
                );
            }
        }
    }
    println!("\nEvery sweep: 3 star unit routes per mesh unit route (1 on dim n-1),");
    println!("zero queueing — the paper's non-blocking schedule, reproduced with");
    println!("contention accounting switched on.\n");
}

fn saturation() {
    let n = 5;
    let rounds = 30;
    println!("=== 2. Saturation: uniform random traffic on S_{n}, {rounds} rounds ===\n");
    let net = Network::new(n);
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>11} {:>11} {:>8}",
        "rate%", "offered", "delivered", "avg lat", "thrpt/round", "wait rounds", "peak q"
    );
    let points = saturation_sweep(&net, &[10, 25, 50, 75, 100], rounds, 0xBEEF, &GreedyRouting);
    for p in &points {
        println!(
            "{:>6} {:>9} {:>9} {:>9.2} {:>11.1} {:>11} {:>8}",
            p.rate_pct,
            p.injected,
            p.delivered,
            p.avg_latency,
            p.throughput,
            p.total_wait_rounds,
            p.peak_edge_occupancy
        );
    }
    let full = points.last().expect("sweep has points");
    assert!(
        full.total_wait_rounds > 0 && full.peak_edge_occupancy > 1,
        "full injection must queue measurably"
    );
    println!("\nAt full injection (rate 100%) queues are unavoidable — contrast the");
    println!("zero-wait rows of experiment 1.\n");
}

fn adversarial() {
    let n = 5;
    println!("=== 3. Adversarial patterns on S_{n} ===\n");
    let net = Network::new(n);
    println!(
        "{:>14} {:>10} {:>9} {:>9} {:>9} {:>11} {:>8}",
        "workload", "policy", "packets", "rounds", "avg lat", "wait rounds", "peak q"
    );
    let transpose = Workload::transpose(n);
    let hotspot = Workload::hot_spot(n, 0, 30, 0x5EED);
    for w in [&transpose, &hotspot] {
        for (name, stats) in [
            ("greedy", net.run(w, &GreedyRouting)),
            ("embedding", net.run(w, &EmbeddingRouting)),
        ] {
            println!(
                "{:>14} {:>10} {:>9} {:>9} {:>9.2} {:>11} {:>8}",
                w.name(),
                name,
                stats.injected,
                stats.makespan,
                stats.avg_latency(),
                stats.total_wait_rounds,
                stats.peak_edge_occupancy
            );
        }
    }
    println!();
}

fn faults() {
    let n = 5;
    let dead = n - 2;
    println!("=== 4. Faults: {dead} dead PEs (the n-2 budget) on S_{n} ===\n");
    let w = Workload::random_permutation(n, 0xFADE);
    println!(
        "{:>9} {:>9} {:>9} {:>8} {:>13} {:>9}",
        "policy", "packets", "delivered", "dropped", "unreachable", "avg lat"
    );
    for policy in [FaultPolicy::Drop, FaultPolicy::Reroute] {
        let plan = FaultPlan::random_nodes(n, dead, 0xD00D).with_policy(policy);
        let net = Network::new(n).with_faults(plan.clone());
        let stats = net.run(&w, &GreedyRouting);
        println!(
            "{:>9} {:>9} {:>9} {:>8} {:>13} {:>9.2}",
            match policy {
                FaultPolicy::Drop => "drop",
                FaultPolicy::Reroute => "reroute",
            },
            stats.injected,
            stats.delivered,
            stats.dropped_fault,
            stats.dropped_unreachable,
            stats.avg_latency()
        );
        if policy == FaultPolicy::Reroute {
            // Packets from/to dead PEs are lost either way; every
            // live-to-live packet must survive rerouting.
            let live_pairs = stats
                .packets
                .iter()
                .filter(|r| !plan.is_node_dead(r.src) && !plan.is_node_dead(r.dst))
                .count() as u64;
            assert_eq!(
                stats.delivered, live_pairs,
                "n-2 faults never disconnect live PEs"
            );
        }
    }
    println!("\nReroute recovers every packet between live PEs: S_n is (n-1)-connected,");
    println!("so n-2 faults cannot cut it (the paper's fault-tolerance bound).");
}
