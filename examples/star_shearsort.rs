//! Sorting n! keys on the star graph (§5 + Appendix, end to end).
//!
//! ```sh
//! cargo run --release --example star_shearsort
//! ```
//!
//! The conclusion of the paper discusses sorting on the star graph via
//! mesh simulation. This example runs the full stack:
//!
//!   shearsort  →  2-D grouped (Appendix snake) view  →  D_n mesh
//!   routes  →  dilation-3 paths  →  SIMD-B star unit routes,
//!
//! and prints the route bill at every layer.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use star_mesh_embedding::algo::grouped::{GroupedGeometry, GroupedMachine};
use star_mesh_embedding::algo::shearsort::shearsort;
use star_mesh_embedding::algo::util::{is_sorted_snake, snake_order_2d};
use star_mesh_embedding::prelude::*;

fn main() {
    println!("=== Shearsort N = n! keys on S_n via the 2-D Appendix view ===\n");
    println!(
        "{:>3} {:>7} {:>10} {:>14} {:>14} {:>12}",
        "n", "N=n!", "2-D shape", "virtual routes", "star routes", "sorted?"
    );
    for n in 4..=6usize {
        let geom = GroupedGeometry::appendix(n, 2);
        let vshape = geom.virtual_shape().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let keys: Vec<u64> = (0..vshape.size())
            .map(|_| rng.gen_range(0..1_000_000))
            .collect();

        let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        let mut grouped = GroupedMachine::new(&mut star, geom);
        grouped.load("K", keys.clone());
        let virtual_routes = shearsort(&mut grouped, "K");
        let out = grouped.read("K");
        let sorted = is_sorted_snake(&vshape, &out);
        let star_routes = grouped.stats().physical_routes;
        println!(
            "{:>3} {:>7} {:>10} {:>14} {:>14} {:>12}",
            n,
            vshape.size(),
            format!("{}x{}", vshape.extent(1), vshape.extent(2)),
            virtual_routes,
            star_routes,
            sorted
        );
        assert!(sorted);

        // Spot-check the snake output against a plain sort.
        let mut expect = keys;
        expect.sort_unstable();
        let got: Vec<u64> = snake_order_2d(&vshape)
            .iter()
            .map(|&i| out[i as usize])
            .collect();
        assert_eq!(got, expect, "n={n}");
    }
    println!(
        "\nEach virtual unit route expands into a few masked D_n routes \
         (the Appendix's O(1) constant), and each of those into at most \
         3 star unit routes (Theorem 6)."
    );
}
