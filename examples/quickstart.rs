//! Quickstart: the paper's embedding in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Maps the mesh `D_4 = 2×3×4` onto the star graph `S_4` (Figure 7),
//! walks the §3.2 worked examples, and audits dilation/expansion with
//! the generic embedding analyzer.

use star_mesh_embedding::core::convert::{convert_d_s, convert_s_d, mapping_table};
use star_mesh_embedding::core::dilation::audit_dilation;
use star_mesh_embedding::core::embedding::star_mesh_embedding;
use star_mesh_embedding::prelude::*;

fn main() {
    let n = 4;
    println!("=== Embedding D_{n} = 2x3x4 into S_{n} (n! = 24 nodes) ===\n");

    // --- The paper's §3.2 worked example -------------------------------
    let d = MeshPoint::new(&[3, 0, 1]).expect("valid point");
    let pi = convert_d_s(&d);
    println!("CONVERT-D-S {d}  ->  {pi}     (paper: (0 3 1 2))");
    let back = convert_s_d(&pi);
    println!("CONVERT-S-D {pi}  ->  {back}\n");
    assert_eq!(back, d);

    // --- Figure 7: the full mapping table ------------------------------
    println!("Figure 7 — V(D_4) <-> V(S_4):");
    let table = mapping_table(n);
    for row in table.chunks(2) {
        let line: Vec<String> = row.iter().map(|(m, s)| format!("{m} {s}")).collect();
        println!("  {}", line.join("    "));
    }

    // --- Theorem 4: dilation audit --------------------------------------
    let report = audit_dilation(n);
    println!(
        "\nTheorem 4 audit: {} mesh edges, distance histogram {:?} -> dilation {}",
        report.edges,
        report.histogram,
        report.dilation()
    );
    assert_eq!(report.dilation(), 3);

    // --- §3.1 metrics through the generic analyzer ----------------------
    let metrics = star_mesh_embedding(n).analyze().expect("valid embedding");
    println!(
        "Embedding metrics: expansion {}, dilation {}, congestion {}",
        metrics.expansion, metrics.dilation, metrics.congestion
    );

    // --- Theorem 6: one mesh unit route = 3 star unit routes ------------
    let mut machine: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
    machine.load("B", (0..24u64).collect());
    for dim in 1..n {
        machine.route("B", dim, Sign::Plus);
    }
    let stats = machine.stats();
    println!(
        "\nTheorem 6: {} logical mesh routes executed in {} star unit routes \
         (slowdown {:.2}, bound 3.0)",
        stats.logical_mesh_routes,
        stats.physical_routes,
        stats.slowdown().expect("routes executed")
    );
}
