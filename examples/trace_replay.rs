//! Trace replay and divergence diffing — debugging from a log file.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```
//!
//! 1. Records a saturated `S_5` run into the versioned `sg-trace`
//!    JSONL format (header + packet preamble + event stream).
//! 2. Replays the serialized text alone — no `Network`, no
//!    `Workload` — and shows the reconstructed statistics are
//!    **byte-identical** to what the live run returned.
//! 3. Re-renders the observability dashboard purely from the log.
//! 4. Mutates a single event and lets the structural differ localize
//!    the divergence to its exact round and in-round index — the
//!    workflow the differential harness uses when engines disagree.

use star_mesh_embedding::net::trace::{record, replay_jsonl};
use star_mesh_embedding::net::{Engine, GreedyRouting, Network, Workload};
use star_mesh_embedding::obs::{diff_events, Event, NetProbe, Probe, Trace};
use star_mesh_embedding::perm::factorial::factorial;

fn main() {
    // 1. Record: one saturated uniform run on S_5, event log attached.
    let n = 5;
    let net = Network::new(n);
    let w = Workload::bernoulli_uniform(n, 10, 60, 0x7ACE);
    let (live, trace) = record(&net, &w, &GreedyRouting, Engine::Fast, 0x7ACE);
    let text = trace.to_jsonl();
    println!("=== Recorded S_{n} run ===\n");
    println!(
        "{} packets, {} events, {} JSONL bytes; header:",
        trace.header.packets,
        trace.header.events,
        text.len()
    );
    println!("  {}\n", text.lines().next().unwrap());

    // 2. Replay from the text alone: byte-identical statistics.
    let replayed = replay_jsonl(&text).expect("clean log replays");
    assert_eq!(replayed.total, live, "replay reconstructs the live stats");
    println!("=== Replayed from the log alone ===\n");
    println!(
        "delivered {} / injected {}, makespan {}, wait rounds {}, peak node occupancy {}",
        replayed.total.delivered,
        replayed.total.injected,
        replayed.total.makespan,
        replayed.total.total_wait_rounds,
        replayed.total.peak_node_occupancy,
    );
    println!("replayed TrafficStats == live TrafficStats: byte-identical\n");

    // 3. The dashboard, re-rendered from the parsed stream.
    let parsed = Trace::parse(&text).expect("round-trips");
    let mut probe = NetProbe::new(factorial(n) as usize, n - 1);
    for ev in &parsed.events {
        probe.event(ev);
    }
    println!("=== Dashboard re-rendered from the log ===\n");
    print!("{}", probe.render(3));

    // 4. Inject a divergence and localize it.
    let a = parsed.events.clone();
    let mut b = a.clone();
    let victim = a.len() / 2;
    b[victim] = Event::Delivered {
        round: a[victim].round(),
        pid: 4242,
        pe: 0,
        hops: 9,
    };
    let d = diff_events(&a, &b, 2).expect("mutated stream diverges");
    println!("\n=== Structural diff after mutating event {victim} ===\n");
    print!("{}", d.render());
}
