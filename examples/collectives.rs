//! Collective communication on `S_7`, and an allreduce tenant.
//!
//! ```sh
//! cargo run --release --example collectives
//! ```
//!
//! Two experiments, all numbers asserted:
//!
//! 1. **Tree vs naive broadcast on `S_7`** (5 040 PEs). The
//!    lowest-generator-first spanning tree broadcasts in exactly
//!    `2·ecc − 1 = 17` rounds — `ecc = ⌊3·6/2⌋ = 9` contention-free
//!    one-hop phases plus 8 barrier rounds, within factor 2 of the
//!    distance lower bound. The naive root blast pushes 5 039
//!    packets through the root's 6 links and pays ≥ 840 rounds —
//!    a measured gap of two orders of magnitude.
//! 2. **Allreduce as a scheduled tenant.** An order-4 allreduce
//!    (reduce-scatter + allgather over the sub-star lattice,
//!    `4·3 = 12` barrier phases) is compiled onto the sub-star an
//!    `S_6` scheduler granted and runs concurrently with two noisy
//!    neighbors via `Schedule::tenant_run_with`: byte-isolation
//!    holds, the handoff is clean, and the payload fold on the
//!    lifted ranks equals the reference column sums.

use star_mesh_embedding::coll::{
    allreduce_case, allreduce_lattice, broadcast_naive, broadcast_tree, distance_lower_bound,
    execute, naive_root_lower_bound, seeded_matrix,
};
use star_mesh_embedding::net::{GreedyRouting, Network};
use star_mesh_embedding::sched::scheduler::schedule;
use star_mesh_embedding::sched::{AllocPolicy, JobSpec, TenantRouting, TrafficProfile};

fn broadcast_s7() {
    println!("── broadcast on S_7: dimension tree vs naive root blast ──");
    let m = 7;
    let net = Network::new(m);
    let root = 0;
    let lb = distance_lower_bound(m);
    assert_eq!(lb, 9);

    let tree = broadcast_tree(m, root);
    let chained = tree.compile(&net, &GreedyRouting);
    let stats = net.run(&chained.workload, &GreedyRouting);
    assert_eq!(stats.delivered, 5039);
    assert_eq!(stats.makespan, 2 * lb - 1, "tree broadcast: 2·ecc − 1");
    assert_eq!(
        stats.total_wait_rounds, 0,
        "every tree phase contention-free"
    );
    println!(
        "  tree : {:2} phases, {:4} packets, makespan {:3} rounds (= 2·{lb} − 1), waits {}",
        tree.phase_count(),
        stats.injected,
        stats.makespan,
        stats.total_wait_rounds
    );

    let naive = broadcast_naive(m, root);
    let chained = naive.compile(&net, &GreedyRouting);
    let nstats = net.run(&chained.workload, &GreedyRouting);
    assert_eq!(nstats.delivered, 5039);
    assert!(nstats.makespan >= naive_root_lower_bound(m));
    assert_eq!(naive_root_lower_bound(m), 840);
    println!(
        "  naive: {:2} phase , {:4} packets, makespan {:3} rounds (≥ (7!−1)/6 = 840), waits {}",
        naive.phase_count(),
        nstats.injected,
        nstats.makespan,
        nstats.total_wait_rounds
    );

    let ratio = f64::from(nstats.makespan) / f64::from(stats.makespan);
    assert!(ratio > 40.0, "the gap at n = 7 exceeds 40×");
    println!("  gap  : {ratio:.1}× — the tree wins by orders of magnitude\n");
}

fn allreduce_tenant() {
    println!("── allreduce as an S_6 tenant, next to noisy neighbors ──");
    let n = 6;
    let net = Network::new(n);
    let coll = allreduce_lattice(4);

    let mk = |id, order, traffic| JobSpec {
        id,
        order,
        arrival: 0,
        duration: 600,
        traffic,
        routing: TenantRouting::Greedy,
        escape: false,
    };
    let jobs = vec![
        // Job 0's profile is a placeholder — tenant_run_with swaps in
        // the compiled collective below.
        mk(0, 4, TrafficProfile::Transpose),
        mk(1, 4, TrafficProfile::UniformPairs { pairs: 30, seed: 7 }),
        mk(2, 5, TrafficProfile::UniformPairs { pairs: 40, seed: 8 }),
    ];
    let s = schedule(&jobs, AllocPolicy::BestFit.build(n).as_mut());
    assert_eq!(s.placements().len(), 3);
    let sub = s.placements()[0].substar.clone();

    let run = s.tenant_run_with(|i, p| {
        (i == 0).then(|| coll.compile_on(&net, &p.substar, &GreedyRouting).workload)
    });
    let report = run.run_quiesce_checked(&net);
    assert_eq!(report.total.delivered, report.total.injected);
    let isolated = run.isolated_stats(&net);
    assert!(
        report.perturbed_jobs(&isolated).is_empty(),
        "confined collective tenancy is byte-isolated"
    );
    println!(
        "  allreduce tenant on sub-star {sub}: {} phases, {} packets, makespan {} rounds",
        coll.phase_count(),
        report.jobs[0].stats.delivered,
        report.jobs[0].stats.makespan
    );
    println!("  byte-isolation: all 3 tenants equal their isolated runs");

    // The payload fold on the lifted ranks: every PE of the sub-star
    // ends with the same reduced vector the reference fold predicts.
    let case = allreduce_case(4, &seeded_matrix(4, 0xa11)).lifted(&sub);
    let got = execute(&coll.lifted(&sub), &case.init).expect("payload executes");
    assert_eq!(got, case.expected);
    println!("  payload: all 24 PEs hold the reference column sums\n");
}

fn main() {
    broadcast_s7();
    allreduce_tenant();
    println!("all collective assertions hold");
}
