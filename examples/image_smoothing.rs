//! Image smoothing on the star graph — the §1 motivation, measured.
//!
//! ```sh
//! cargo run --example image_smoothing
//! ```
//!
//! The paper motivates mesh embeddings with image-processing
//! workloads: stencils need mesh-proximate data. We run a Jacobi
//! smoothing kernel over `D_n` twice — natively and on `S_n` through
//! the embedding — and compare results (bitwise equal) and unit-route
//! costs (star pays at most 3×).

use star_mesh_embedding::algo::stencil::{smooth, Fixed};
use star_mesh_embedding::prelude::*;

fn checkerboard(size: usize) -> Vec<Fixed> {
    (0..size)
        .map(|i| if i % 2 == 0 { 1000 } else { 0 })
        .collect()
}

fn main() {
    println!("=== Jacobi smoothing: native mesh vs star graph ===\n");
    println!(
        "{:>3} {:>8} {:>12} {:>12} {:>12} {:>9}",
        "n", "PEs", "mesh routes", "star routes", "slowdown", "equal?"
    );
    for n in 3..=7usize {
        let dn = DnMesh::new(n);
        let size = dn.node_count() as usize;
        let image = checkerboard(size);
        let iters = 3;

        let mut native: MeshMachine<Fixed> = MeshMachine::new(dn.shape().clone());
        native.load("I", image.clone());
        smooth(&mut native, "I", iters);

        let mut star: EmbeddedMeshMachine<Fixed> = EmbeddedMeshMachine::new(n);
        star.load("I", image);
        smooth(&mut star, "I", iters);

        let equal = native.read("I") == star.read("I");
        println!(
            "{:>3} {:>8} {:>12} {:>12} {:>12.3} {:>9}",
            n,
            size,
            native.stats().physical_routes,
            star.stats().physical_routes,
            star.stats().physical_routes as f64 / native.stats().physical_routes as f64,
            equal
        );
        assert!(equal, "the embedded machine must be bit-exact");
    }
    println!(
        "\nEvery iteration costs 2 routes per dimension; dimension n-1's \
         routes cost 1 star route (its mesh edges are star edges), the \
         rest cost 3 — hence the sub-3 slowdowns."
    );
}
