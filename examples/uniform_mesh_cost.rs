//! The §4 story: why *uniform* meshes simulate poorly, and what the
//! Appendix does about it.
//!
//! ```sh
//! cargo run --release --example uniform_mesh_cost
//! ```
//!
//! Prints (1) the Theorem-8 per-step slowdown of simulating the
//! uniform `(n−1)`-dimensional mesh on `D_n`, (2) a *measured*
//! congestion for small cases via the Atallah block mapping, and
//! (3) the Appendix's optimal-dimension sweep.

use star_mesh_embedding::mesh::atallah::BlockMap;
use star_mesh_embedding::mesh::factorization::{
    factorize, optimal_dimension_sweep, paper_predicted_optimal_dimension,
    predicted_optimal_dimension,
};
use star_mesh_embedding::mesh::uniform::{thm8_slowdown, thm9_slowdown_log2, UniformMesh};
use star_mesh_embedding::prelude::*;

fn main() {
    println!("=== Theorem 8/9: per-step slowdown, uniform mesh on D_n ===\n");
    println!(
        "{:>3} {:>10} {:>16} {:>16}",
        "n", "N=n!", "thm8 slowdown", "log2(thm9)"
    );
    for n in 4..=12usize {
        let full = MeshShape::new(&(2..=n).collect::<Vec<_>>()).unwrap();
        println!(
            "{:>3} {:>10} {:>16.1} {:>16.2}",
            n,
            full.size(),
            thm8_slowdown(&full),
            thm9_slowdown_log2(n)
        );
    }

    println!("\n=== Measured congestion: uniform U on rectangular R (Atallah map) ===\n");
    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>10} {:>12}",
        "n", "d", "R shape", "U side", "max load", "congestion"
    );
    for (n, d) in [(5usize, 2usize), (6, 2), (6, 3), (7, 2)] {
        let ext = factorize(n, d);
        let r = MeshShape::new(&ext.iter().map(|&x| x as usize).collect::<Vec<_>>()).unwrap();
        let u = UniformMesh::nearest(r.size(), d);
        let map = BlockMap::new(u, r.clone());
        let (_, max_load) = map.load_stats();
        println!(
            "{:>3} {:>3} {:>12} {:>12} {:>10} {:>12}",
            n,
            d,
            format!("{ext:?}"),
            u.side,
            max_load,
            map.worst_route_congestion()
        );
    }

    println!("\n=== Appendix: optimal simulation dimension sweep ===\n");
    for n in [8usize, 10, 12] {
        let (sweep, best) = optimal_dimension_sweep(n);
        let curve: Vec<String> = sweep.iter().map(|(d, c)| format!("d{d}:{c:.1}")).collect();
        println!("n={n}: log2-cost {}", curve.join(" "));
        println!(
            "      best d = {best}; sqrt(2 log2 N) = {:.2}; paper's half-sqrt = {:.2}\n",
            predicted_optimal_dimension(n),
            paper_predicted_optimal_dimension(n)
        );
    }
}
