//! Broadcast strategies and fault tolerance on `S_n` (§2 properties).
//!
//! ```sh
//! cargo run --release --example broadcast_faults
//! ```
//!
//! 1. Compares two broadcasts: the mesh dimension-sweep executed
//!    through the embedding vs native star-graph flooding, against the
//!    paper's `3 n lg n` budget and the `⌈log₂ n!⌉` lower bound.
//! 2. Demonstrates "maximally fault tolerant": `S_n` survives any
//!    `n−2` node faults; removing all `n−1` neighbors of a node
//!    disconnects it.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use star_mesh_embedding::algo::broadcast::broadcast;
use star_mesh_embedding::graph::connectivity::{survives_faults, vertex_connectivity};
use star_mesh_embedding::prelude::*;
use star_mesh_embedding::star::broadcast::{
    flood_schedule, lower_bound, paper_bound, verify_schedule,
};

fn main() {
    println!("=== Broadcast: embedded mesh sweep vs native star flooding ===\n");
    println!(
        "{:>3} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "n", "N=n!", "mesh->star", "star flood", "lower bnd", "3n lg n"
    );
    for n in 3..=7usize {
        // (a) Mesh dimension sweep through the embedding.
        let dn = DnMesh::new(n);
        let mut m: EmbeddedMeshMachine<Option<u64>> = EmbeddedMeshMachine::new(n);
        let mut init: Vec<Option<u64>> = vec![None; dn.node_count() as usize];
        init[0] = Some(7);
        m.load("B", init);
        broadcast(&mut m, "B", &dn.point_at(0));
        assert!(m.read("B").iter().all(|v| v.is_some()));
        let embedded_routes = m.stats().physical_routes;

        // (b) Native star flooding.
        let star = StarGraph::new(n);
        let sched = flood_schedule(&star, 0);
        let flood_routes = verify_schedule(&star, &sched).expect("valid schedule");

        println!(
            "{:>3} {:>8} {:>12} {:>12} {:>10} {:>12.1}",
            n,
            star.node_count(),
            embedded_routes,
            flood_routes,
            lower_bound(n),
            paper_bound(n)
        );
        assert!((flood_routes as f64) <= paper_bound(n));
    }

    println!("\n=== Maximal fault tolerance (kappa(S_n) = n-1) ===\n");
    for n in 3..=5usize {
        let g = star_mesh_embedding::graph::builders::star_graph(n);
        let kappa = vertex_connectivity(&g);
        println!("S_{n}: vertex connectivity = {kappa} (degree {})", n - 1);
        assert_eq!(kappa, (n - 1) as u32);
    }

    // Random (n-2)-fault injection on S_6 (kappa = 5 ⇒ any 4 faults OK).
    let g6 = star_mesh_embedding::graph::builders::star_graph(6);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let sets: Vec<Vec<u32>> = (0..500)
        .map(|_| {
            let mut s = Vec::new();
            while s.len() < 4 {
                let v = rng.gen_range(0..720u32);
                if !s.contains(&v) {
                    s.push(v);
                }
            }
            s
        })
        .collect();
    println!(
        "\nS_6 under 500 random 4-fault injections: all survive = {}",
        survives_faults(&g6, &sets)
    );

    // Tightness: kill one node's entire neighborhood.
    let victim = 100u32;
    let faults: Vec<u32> = g6.neighbors(victim).to_vec();
    println!(
        "S_6 with all {} neighbors of node {victim} removed: survives = {}",
        faults.len(),
        survives_faults(&g6, &[faults])
    );
}
