//! Machine checks of the §2 star-graph property list.
//!
//! 1. *"Each node is symmetrical to every other node"* — `S_n` is a
//!    Cayley graph, so every left translation `π ↦ σ∘π` is an
//!    automorphism carrying the identity to `σ`;
//!    [`left_translation_map`] builds it and tests verify it against
//!    the generic `sg-graph` automorphism checker.
//! 2. *Diameter* `k_n = ⌊3(n−1)/2⌋` — [`diameter_formula`], verified
//!    against BFS.
//! 3. *Broadcast* — see [`crate::broadcast`].
//! 4. *Maximal fault tolerance* — connectivity `κ(S_n) = n−1`;
//!    checked exactly via `sg-graph::connectivity` for small `n` and
//!    by randomized fault injection beyond.

use crate::StarGraph;
use sg_graph::csr::NodeId;
use sg_perm::Perm;

/// Diameter formula `⌊3(n−1)/2⌋` (§2 property 2).
#[must_use]
pub fn diameter_formula(n: usize) -> u32 {
    (3 * (n as u32 - 1)) / 2
}

/// The left-translation automorphism `π ↦ σ∘π` as an explicit vertex
/// map on Lehmer ranks. Carries the identity node to `σ`; since `σ`
/// is arbitrary this witnesses vertex transitivity.
///
/// # Panics
/// Panics if `sigma.len() != star.n()` or `S_n` is too large to
/// materialize the map (`n > 10`).
#[must_use]
pub fn left_translation_map(star: &StarGraph, sigma: &Perm) -> Vec<NodeId> {
    assert_eq!(sigma.len(), star.n(), "sigma belongs to a different S_n");
    assert!(star.n() <= 10, "map materializes n! entries");
    (0..star.node_count())
        .map(|r| {
            let p = star.node_at(r);
            star.rank_of(&sigma.compose(&p)) as NodeId
        })
        .collect()
}

/// Degree (= fault tolerance bound) of `S_n`: `n − 1`. "Maximally
/// fault tolerant" means vertex connectivity equals this degree.
#[must_use]
pub fn max_fault_tolerance(n: usize) -> u32 {
    (n as u32).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use sg_graph::connectivity::{survives_faults, vertex_connectivity};
    use sg_graph::transitivity::is_automorphism;
    use sg_perm::factorial::factorial;
    use sg_perm::lehmer::unrank;

    #[test]
    fn diameter_formula_matches_bfs() {
        for n in 2..=7usize {
            let g = sg_graph::builders::star_graph(n);
            assert_eq!(
                sg_graph::metrics::diameter(&g),
                Some(diameter_formula(n)),
                "S_{n}"
            );
        }
    }

    #[test]
    fn left_translations_are_automorphisms() {
        for n in 3..=5usize {
            let star = StarGraph::new(n);
            let g = star.to_csr();
            for seed in [1u64, 5, 11] {
                let sigma = unrank(seed % factorial(n), n).unwrap();
                let map = left_translation_map(&star, &sigma);
                assert!(is_automorphism(&g, &map), "n={n} sigma={sigma}");
                // The identity node (rank 0) maps to sigma.
                assert_eq!(u64::from(map[0]), star.rank_of(&sigma));
            }
        }
    }

    #[test]
    fn every_node_reachable_by_translation() {
        // Vertex transitivity, constructively: for EVERY target node σ
        // there is an automorphism 0 ↦ σ.
        let n = 4;
        let star = StarGraph::new(n);
        let g = star.to_csr();
        for r in 0..star.node_count() {
            let sigma = star.node_at(r);
            let map = left_translation_map(&star, &sigma);
            assert!(is_automorphism(&g, &map));
            assert_eq!(u64::from(map[0]), r);
        }
    }

    #[test]
    fn connectivity_is_maximal_small() {
        for n in 2..=5usize {
            let g = sg_graph::builders::star_graph(n);
            assert_eq!(vertex_connectivity(&g), max_fault_tolerance(n), "S_{n}");
        }
    }

    #[test]
    fn random_fault_injection_s6() {
        // S_6: κ = 5, so any 4 faults leave it connected. Exact flow on
        // 720 nodes is feasible but slow; randomized injection gives
        // broad coverage fast.
        let g = sg_graph::builders::star_graph(6);
        let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
        let sets: Vec<Vec<NodeId>> = (0..200)
            .map(|_| {
                let mut s = Vec::new();
                while s.len() < 4 {
                    let v = rng.gen_range(0..720u32);
                    if !s.contains(&v) {
                        s.push(v);
                    }
                }
                s
            })
            .collect();
        assert!(survives_faults(&g, &sets));
    }

    #[test]
    fn adversarial_fault_set_disconnects_at_degree() {
        // Removing ALL n-1 neighbors of a node isolates it: κ <= n-1,
        // so "maximal" is tight.
        let star = StarGraph::new(4);
        let g = star.to_csr();
        let victim: NodeId = 7;
        let faults: Vec<NodeId> = g.neighbors(victim).to_vec();
        assert!(!survives_faults(&g, &[faults]));
    }
}
