//! Exact star-graph distances via the Akers–Krishnamurthy formula.
//!
//! Sorting a permutation with moves "swap the front symbol into any
//! slot" is a classic problem (`[AKER89]`): writing `m` for the number
//! of misplaced symbols and `c` for the number of nontrivial cycles,
//! the minimum number of moves is
//!
//! * `m + c`       if the front slot holds its own symbol,
//! * `m + c − 2`   otherwise.
//!
//! Intuition: a front-not-home move can always place one symbol
//! (consuming it from its cycle), while entering a new cycle costs one
//! unplaced move; the `−2` credits the cycle the front slot already
//! sits on. Lemma 2 of the paper ("distance between `π` and `π_(i,j)`
//! is 1 or 3") is the special case of a single 2-cycle.
//!
//! Tests validate the formula exhaustively against BFS for `n ≤ 7`.

use sg_perm::cycles::cycle_structure;
use sg_perm::Perm;

/// Minimum number of star-graph moves sorting `p` to the identity.
#[must_use]
pub fn length_to_identity(p: &Perm) -> u32 {
    let cs = cycle_structure(p);
    let m = cs.moved() as u32;
    let c = cs.nontrivial_cycles() as u32;
    if m == 0 {
        return 0;
    }
    if p.symbol_at(0) as usize == 0 {
        // front slot already home: every cycle must be entered and exited
        m + c
    } else {
        // front slot sits on a nontrivial cycle: that cycle is free to
        // enter, and its last placement also retires the front slot
        m + c - 2
    }
}

/// Exact hop distance between two nodes of the same `S_n`.
///
/// Star-graph edges are *right* multiplications by the generators, so
/// left translation is an automorphism and
/// `d(π, σ) = ℓ(σ⁻¹ ∘ π)` with `ℓ` = [`length_to_identity`].
///
/// # Panics
/// Panics if the permutations have different lengths.
#[must_use]
pub fn distance(a: &Perm, b: &Perm) -> u32 {
    length_to_identity(&a.relative_to(b))
}

/// Generators whose application moves `p` one hop closer to `target`,
/// ascending. Empty iff `p == target`: in a Cayley graph every
/// non-target node has at least one improving generator (greedy
/// routing terminates), and taking the **lowest** one everywhere
/// orients a spanning tree toward `target` along the star's dimension
/// structure — the tree `sg-coll` builds its broadcast and reduce
/// collectives on.
///
/// # Panics
/// Panics if the permutations have different lengths.
#[must_use]
pub fn improving_generators(p: &Perm, target: &Perm) -> Vec<u8> {
    assert_eq!(p.len(), target.len(), "nodes of different star orders");
    let d = distance(p, target);
    (1..p.len())
        .filter(|&j| distance(&p.with_slots_swapped(0, j), target) < d)
        .map(|j| j as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sg_graph::bfs::bfs;
    use sg_graph::builders::star_graph;
    use sg_perm::factorial::factorial;
    use sg_perm::lehmer::{rank, unrank};

    #[test]
    fn identity_distance_zero() {
        for n in 1..=8 {
            assert_eq!(length_to_identity(&Perm::identity(n)), 0);
        }
    }

    #[test]
    fn single_generator_distance_one() {
        for n in 2..=8usize {
            for j in 1..n {
                let p = Perm::identity(n).with_slots_swapped(0, j);
                assert_eq!(length_to_identity(&p), 1);
            }
        }
    }

    #[test]
    fn lemma2_non_front_transposition_distance_three() {
        // Lemma 2: π_(i,j) with neither symbol at the front is at
        // distance exactly 3 from π.
        for n in 3..=8usize {
            for i in 1..n {
                for j in i + 1..n {
                    let p = Perm::identity(n).with_slots_swapped(i, j);
                    assert_eq!(length_to_identity(&p), 3, "n={n} swap ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn formula_matches_bfs_exhaustively() {
        for n in 2..=7usize {
            let g = star_graph(n);
            let id_rank = rank(&Perm::identity(n)) as u32;
            let tree = bfs(&g, id_rank);
            for r in 0..factorial(n) {
                let p = unrank(r, n).unwrap();
                assert_eq!(
                    length_to_identity(&p),
                    tree.dist[r as usize],
                    "n={n} perm {p}"
                );
            }
        }
    }

    #[test]
    fn pairwise_distance_matches_bfs_spot() {
        let n = 5;
        let g = star_graph(n);
        for a_rank in [0u64, 7, 33, 100] {
            let tree = bfs(&g, a_rank as u32);
            let a = unrank(a_rank, n).unwrap();
            for b_rank in 0..factorial(n) {
                let b = unrank(b_rank, n).unwrap();
                assert_eq!(distance(&b, &a), tree.dist[b_rank as usize]);
                assert_eq!(distance(&a, &b), tree.dist[b_rank as usize]);
            }
        }
    }

    #[test]
    fn max_distance_is_the_diameter() {
        // §2 property 2: max_π ℓ(π) = floor(3(n-1)/2).
        for n in 2..=8usize {
            let max = (0..factorial(n))
                .map(|r| length_to_identity(&unrank(r, n).unwrap()))
                .max()
                .unwrap();
            assert_eq!(max, (3 * (n as u32 - 1)) / 2, "n={n}");
        }
    }

    #[test]
    fn cayley_lower_bound_holds() {
        // Star distance >= minimum transpositions (Cayley distance).
        for r in 0..factorial(6) {
            let p = unrank(r, 6).unwrap();
            assert!(length_to_identity(&p) as usize >= sg_perm::cycles::cayley_distance(&p));
        }
    }

    #[test]
    fn improving_generators_exact() {
        // Non-empty off-target, each listed generator reduces the
        // distance by exactly 1, each omitted one does not, ascending.
        for n in 2..=5usize {
            for t_rank in [0u64, 3] {
                let t = unrank(t_rank % factorial(n), n).unwrap();
                for r in 0..factorial(n) {
                    let p = unrank(r, n).unwrap();
                    let d = distance(&p, &t);
                    let gens = improving_generators(&p, &t);
                    assert_eq!(gens.is_empty(), d == 0);
                    assert!(gens.windows(2).all(|w| w[0] < w[1]));
                    for j in 1..n {
                        let dn = distance(&p.with_slots_swapped(0, j), &t);
                        if gens.contains(&(j as u8)) {
                            assert_eq!(dn, d - 1);
                        } else {
                            assert!(dn >= d);
                        }
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_symmetry(n in 2usize..=10, sa in any::<u64>(), sb in any::<u64>()) {
            let a = unrank(sa % factorial(n), n).unwrap();
            let b = unrank(sb % factorial(n), n).unwrap();
            prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        }

        #[test]
        fn prop_triangle_inequality(n in 2usize..=8, sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>()) {
            let a = unrank(sa % factorial(n), n).unwrap();
            let b = unrank(sb % factorial(n), n).unwrap();
            let c = unrank(sc % factorial(n), n).unwrap();
            prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
        }

        #[test]
        fn prop_neighbors_at_distance_one(n in 2usize..=10, s in any::<u64>()) {
            let p = unrank(s % factorial(n), n).unwrap();
            for j in 1..n {
                let q = p.with_slots_swapped(0, j);
                prop_assert_eq!(distance(&p, &q), 1);
            }
        }

        #[test]
        fn prop_left_translation_invariance(n in 2usize..=8, sa in any::<u64>(), sb in any::<u64>(), st in any::<u64>()) {
            let a = unrank(sa % factorial(n), n).unwrap();
            let b = unrank(sb % factorial(n), n).unwrap();
            let t = unrank(st % factorial(n), n).unwrap();
            prop_assert_eq!(
                distance(&t.compose(&a), &t.compose(&b)),
                distance(&a, &b)
            );
        }
    }
}
