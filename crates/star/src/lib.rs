//! # sg-star — the star graph `S_n`
//!
//! The interconnection network of Akers, Harel & Krishnamurthy
//! (`[AKER87]`) that the paper embeds meshes into. `S_n` has `n!` nodes,
//! one per permutation of the symbols `0..n`; node `π` is adjacent to
//! the `n−1` permutations obtained by swapping π's **front** symbol
//! (display slot 0, the paper's position `n−1`) with any other slot.
//!
//! This crate supplies everything §2 of the paper asserts about the
//! topology:
//!
//! * [`graph::StarGraph`] — generators, neighbor enumeration, rank
//!   addressing, CSR materialization;
//! * [`distance`] — the *exact* node-to-node distance via the
//!   Akers–Krishnamurthy cycle-structure formula (`m + c` or
//!   `m + c − 2`), validated against BFS in tests;
//! * [`routing`] — constructive shortest paths (greedy front-symbol
//!   sorting), matching the formula step-for-step;
//! * [`substar`] — the hierarchical decomposition of `S_n` into `n`
//!   copies of `S_{n−1}` (the engine behind broadcast and many star
//!   algorithms);
//! * [`broadcast`] — one-to-all broadcast schedules in the SIMD-B
//!   model, checked against the paper's `3(n lg n − …)` budget
//!   (§2 property 3);
//! * [`properties`] — diameter formula `⌊3(n−1)/2⌋`, vertex symmetry
//!   via explicit Cayley automorphisms, maximal fault tolerance
//!   (§2 properties 1, 2 and 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod distance;
pub mod graph;
pub mod properties;
pub mod routing;
pub mod substar;

pub use graph::StarGraph;
pub use substar::SubStar;
