//! Constructive shortest-path routing on `S_n`.
//!
//! The greedy "sort the front symbol home" algorithm:
//!
//! 1. if the front symbol `x ≠ 0`… is misplaced, swap it into its home
//!    slot (generator `g_x`) — this places one symbol per move;
//! 2. if the front symbol is home but the node is not the identity,
//!    swap in any symbol lying on a nontrivial cycle (we pick the
//!    smallest-indexed misplaced slot for determinism).
//!
//! The resulting move count matches the Akers–Krishnamurthy formula of
//! [`crate::distance`] exactly, so these are true shortest paths
//! (verified against BFS in tests).

use crate::distance::length_to_identity;
use sg_perm::Perm;

/// Generator sequence (each `g_j`, `1 ≤ j < n`) sorting `p` to the
/// identity in the minimum number of moves.
#[must_use]
pub fn sorting_generators(p: &Perm) -> Vec<usize> {
    let mut cur = *p;
    let n = cur.len();
    let mut moves = Vec::with_capacity(length_to_identity(p) as usize);
    loop {
        let front = cur.symbol_at(0) as usize;
        if front != 0 {
            // Send the front symbol home.
            moves.push(front);
            cur.swap_slots(0, front);
        } else {
            // Front is home; fetch the smallest misplaced symbol's slot.
            match (1..n).find(|&i| cur.symbol_at(i) as usize != i) {
                Some(i) => {
                    moves.push(i);
                    cur.swap_slots(0, i);
                }
                None => break, // identity reached
            }
        }
    }
    moves
}

/// Generator sequence carrying `a` to `b` along a shortest path.
///
/// With `g = b⁻¹∘a` it holds that `a · τ_{g_1} ⋯ τ_{g_k} = b` where
/// the `τ`s are the slot-0 transpositions returned for `g`.
///
/// # Panics
/// Panics if the permutations have different lengths.
#[must_use]
pub fn route_generators(a: &Perm, b: &Perm) -> Vec<usize> {
    sorting_generators(&a.relative_to(b))
}

/// Full node sequence of a shortest path `a → b` (inclusive).
#[must_use]
pub fn shortest_path(a: &Perm, b: &Perm) -> Vec<Perm> {
    let mut path = Vec::new();
    let mut cur = *a;
    path.push(cur);
    for j in route_generators(a, b) {
        cur.swap_slots(0, j);
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::StarGraph;
    use proptest::prelude::*;
    use sg_perm::factorial::factorial;
    use sg_perm::lehmer::unrank;

    #[test]
    fn sorting_reaches_identity_with_optimal_length() {
        for n in 2..=7usize {
            for r in 0..factorial(n) {
                let p = unrank(r, n).unwrap();
                let moves = sorting_generators(&p);
                assert_eq!(moves.len() as u32, length_to_identity(&p), "perm {p}");
                let mut cur = p;
                for &j in &moves {
                    cur.swap_slots(0, j);
                }
                assert!(cur.is_identity(), "perm {p} not sorted");
            }
        }
    }

    #[test]
    fn paths_are_valid_walks() {
        let s = StarGraph::new(5);
        let a = unrank(37, 5).unwrap();
        let b = unrank(101, 5).unwrap();
        let path = shortest_path(&a, &b);
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        assert_eq!(path.len() as u32, distance(&a, &b) + 1);
        for w in path.windows(2) {
            assert!(s.are_adjacent(&w[0], &w[1]));
        }
    }

    #[test]
    fn route_between_equal_nodes_is_empty() {
        let a = unrank(50, 5).unwrap();
        assert!(route_generators(&a, &a).is_empty());
        assert_eq!(shortest_path(&a, &a), vec![a]);
    }

    #[test]
    fn paper_worst_case_shape() {
        // A diameter-attaining node for n = 4 takes floor(3*3/2) = 4 moves.
        // (2 3 0 1) in slot form: two 2-cycles, front misplaced:
        // m=4, c=2 => 4 + 2 - 2 = 4.
        let p = Perm::from_slice(&[2, 3, 0, 1]).unwrap();
        assert_eq!(sorting_generators(&p).len(), 4);
    }

    proptest! {
        #[test]
        fn prop_route_reaches_target(n in 2usize..=9, sa in any::<u64>(), sb in any::<u64>()) {
            let a = unrank(sa % factorial(n), n).unwrap();
            let b = unrank(sb % factorial(n), n).unwrap();
            let mut cur = a;
            for j in route_generators(&a, &b) {
                prop_assert!(j >= 1 && j < n);
                cur.swap_slots(0, j);
            }
            prop_assert_eq!(cur, b);
        }

        #[test]
        fn prop_route_length_is_distance(n in 2usize..=9, sa in any::<u64>(), sb in any::<u64>()) {
            let a = unrank(sa % factorial(n), n).unwrap();
            let b = unrank(sb % factorial(n), n).unwrap();
            prop_assert_eq!(route_generators(&a, &b).len() as u32, distance(&a, &b));
        }

        #[test]
        fn prop_path_within_diameter(n in 2usize..=10, sa in any::<u64>(), sb in any::<u64>()) {
            let a = unrank(sa % factorial(n), n).unwrap();
            let b = unrank(sb % factorial(n), n).unwrap();
            prop_assert!(route_generators(&a, &b).len() as u32 <= (3 * (n as u32 - 1)) / 2);
        }
    }
}
