//! The [`StarGraph`] handle: generators, neighbors, rank addressing.

use sg_perm::factorial::factorial;
use sg_perm::lehmer::{rank, unrank};
use sg_perm::{Perm, MAX_N};

/// The star graph `S_n`, paper §2 item 3.
///
/// Nodes are permutations (`sg_perm::Perm`) of `0..n` displayed as
/// `(a_{n-1} … a_0)`; our slot `0` is the leftmost printed symbol
/// `a_{n-1}` — the symbol every generator swaps. Generator `g_j`
/// (`1 ≤ j ≤ n−1`) exchanges slots `0` and `j`; it corresponds to the
/// paper's `π^{(i)}` with `i = n−1−j`.
///
/// ```
/// use sg_star::StarGraph;
/// use sg_perm::Perm;
/// let s4 = StarGraph::new(4);
/// let pi = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
/// let nbrs: Vec<String> = s4.neighbors(&pi).map(|q| q.to_string()).collect();
/// assert_eq!(nbrs, ["(2 3 1 0)", "(1 2 3 0)", "(0 2 1 3)"]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarGraph {
    n: usize,
}

impl StarGraph {
    /// Creates `S_n`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ n ≤ 20` (`n!` must fit in `u64`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((1..=MAX_N).contains(&n), "S_n requires 1 <= n <= {MAX_N}");
        StarGraph { n }
    }

    /// Symbol count `n` (the paper's star graph *degree* is `n−1`).
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `n!`, the number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> u64 {
        factorial(self.n)
    }

    /// Degree of every node: `n − 1`.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.n - 1
    }

    /// Diameter `k_n = ⌊3(n−1)/2⌋` (§2 property 2; exact for `n ≠ 1`).
    #[inline]
    #[must_use]
    pub fn diameter(&self) -> u32 {
        (3 * (self.n as u32 - 1)) / 2
    }

    /// The slot-order identity node (slot `i` holds symbol `i`,
    /// displayed `(0 1 … n−1)`). This is the base point of the
    /// distance/routing formulas. Note it is *not* the image of the
    /// mesh origin under the embedding — that is
    /// `sg_core::convert::home_node`, the paper's `(n−1 n−2 ⋯ 1 0)`.
    #[inline]
    #[must_use]
    pub fn identity(&self) -> Perm {
        Perm::identity(self.n)
    }

    /// Generator indices `1..n` (generator `g_j` swaps slots 0 and `j`).
    #[inline]
    pub fn generators(&self) -> impl Iterator<Item = usize> {
        1..self.n
    }

    /// Applies generator `g_j`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ j < n` or if `p` has the wrong length.
    #[inline]
    #[must_use]
    pub fn apply_generator(&self, p: &Perm, j: usize) -> Perm {
        assert_eq!(p.len(), self.n, "node belongs to a different S_n");
        assert!(
            j >= 1 && j < self.n,
            "generator g_{j} undefined for S_{}",
            self.n
        );
        p.with_slots_swapped(0, j)
    }

    /// All `n−1` neighbors of `p`, in generator order.
    pub fn neighbors<'a>(&'a self, p: &'a Perm) -> impl Iterator<Item = Perm> + 'a {
        assert_eq!(p.len(), self.n, "node belongs to a different S_n");
        self.generators().map(move |j| p.with_slots_swapped(0, j))
    }

    /// `true` iff `a` and `b` are adjacent (differ exactly in slot 0
    /// and one other slot).
    #[must_use]
    pub fn are_adjacent(&self, a: &Perm, b: &Perm) -> bool {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        if a == b || a.symbol_at(0) == b.symbol_at(0) {
            return false;
        }
        let mut diff = 0usize;
        for i in 1..self.n {
            if a.symbol_at(i) != b.symbol_at(i) {
                diff += 1;
            }
        }
        diff == 1 && {
            // the two differing slots must swap the same pair
            let j = (1..self.n)
                .find(|&i| a.symbol_at(i) != b.symbol_at(i))
                .expect("diff == 1");
            a.symbol_at(0) == b.symbol_at(j) && b.symbol_at(0) == a.symbol_at(j)
        }
    }

    /// Lehmer rank of a node (dense id in `0..n!`).
    #[inline]
    #[must_use]
    pub fn rank_of(&self, p: &Perm) -> u64 {
        assert_eq!(p.len(), self.n);
        rank(p)
    }

    /// Node with the given Lehmer rank.
    ///
    /// # Panics
    /// Panics if `r >= n!`.
    #[inline]
    #[must_use]
    pub fn node_at(&self, r: u64) -> Perm {
        unrank(r, self.n).expect("rank out of range")
    }

    /// Neighbor ranks of the node with rank `r`, in generator order.
    #[must_use]
    pub fn neighbor_ranks(&self, r: u64) -> Vec<u64> {
        let p = self.node_at(r);
        self.generators()
            .map(|j| rank(&p.with_slots_swapped(0, j)))
            .collect()
    }

    /// Materializes the CSR adjacency structure (only feasible for
    /// small `n`; see `sg_graph::builders::star_graph`).
    #[must_use]
    pub fn to_csr(&self) -> sg_graph::CsrGraph {
        sg_graph::builders::star_graph(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers() {
        let s = StarGraph::new(4);
        assert_eq!(s.node_count(), 24);
        assert_eq!(s.degree(), 3);
        assert_eq!(s.diameter(), 4);
        assert_eq!(StarGraph::new(10).diameter(), 13); // floor(27/2)
    }

    #[test]
    fn generators_are_involutions() {
        let s = StarGraph::new(5);
        let p = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
        for j in s.generators() {
            let q = s.apply_generator(&p, j);
            assert_ne!(q, p);
            assert_eq!(s.apply_generator(&q, j), p);
            assert!(s.are_adjacent(&p, &q));
            assert!(s.are_adjacent(&q, &p));
        }
    }

    #[test]
    fn paper_adjacency_example() {
        // §2 item 3: π = (a_{n-1} … a_0) is adjacent to the nodes
        // obtained by swapping a_{n-1} with each a_i. For (3 2 1 0):
        let s = StarGraph::new(4);
        let p = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
        let nbrs: Vec<Perm> = s.neighbors(&p).collect();
        assert_eq!(nbrs.len(), 3);
        assert_eq!(nbrs[0].as_slice(), &[2, 3, 1, 0]);
        assert_eq!(nbrs[1].as_slice(), &[1, 2, 3, 0]);
        assert_eq!(nbrs[2].as_slice(), &[0, 2, 1, 3]);
    }

    #[test]
    fn non_adjacent_cases() {
        let s = StarGraph::new(4);
        let p = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
        assert!(!s.are_adjacent(&p, &p));
        // Swap of two non-front slots: not adjacent.
        let q = p.with_slots_swapped(1, 2);
        assert!(!s.are_adjacent(&p, &q));
        // Distance-2 node: not adjacent.
        let r = p.with_slots_swapped(0, 1).with_slots_swapped(0, 2);
        assert!(!s.are_adjacent(&p, &r));
    }

    #[test]
    fn rank_addressing_roundtrip() {
        let s = StarGraph::new(5);
        for r in [0u64, 1, 17, 119] {
            assert_eq!(s.rank_of(&s.node_at(r)), r);
        }
    }

    #[test]
    fn neighbor_ranks_match_csr() {
        let s = StarGraph::new(4);
        let g = s.to_csr();
        for r in 0..24u64 {
            let mut ours = s.neighbor_ranks(r);
            ours.sort_unstable();
            let theirs: Vec<u64> = g
                .neighbors(r as u32)
                .iter()
                .map(|&x| u64::from(x))
                .collect();
            assert_eq!(ours, theirs);
        }
    }

    #[test]
    #[should_panic(expected = "generator g_0 undefined")]
    fn generator_zero_rejected() {
        let s = StarGraph::new(3);
        let _ = s.apply_generator(&s.identity(), 0);
    }
}
