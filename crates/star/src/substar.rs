//! Hierarchical decomposition of `S_n` into sub-stars.
//!
//! Fixing the symbol in the *last* slot (display slot `n−1`, the
//! paper's position 0) partitions `S_n` into `n` node-disjoint copies
//! of `S_{n−1}`: no generator touches the last slot except `g_{n−1}`,
//! so the subgraph induced on each part is an `S_{n−1}` over the
//! remaining symbols. This is the structural fact behind the star
//! graph's recursive algorithms (broadcast, sorting) and its fault
//! tolerance.

use crate::StarGraph;
use sg_perm::Perm;

/// Label of the sub-star containing `p` when decomposing by slot
/// `slot` (usually `n−1`): the symbol held in that slot.
#[must_use]
pub fn substar_label(p: &Perm, slot: usize) -> u8 {
    p.symbol_at(slot)
}

/// Partitions all nodes of `S_n` into the `n` sub-stars obtained by
/// fixing the last slot. Returns `groups[s]` = nodes whose last slot
/// holds symbol `s`, each sorted by Lehmer rank.
///
/// Materializes all `n!` nodes — small `n` only.
#[must_use]
pub fn substar_partition(star: &StarGraph) -> Vec<Vec<Perm>> {
    let n = star.n();
    let mut groups: Vec<Vec<Perm>> = vec![Vec::new(); n];
    for r in 0..star.node_count() {
        let p = star.node_at(r);
        groups[p.symbol_at(n - 1) as usize].push(p);
    }
    groups
}

/// The *canonical relabelling* of a node within its last-slot
/// sub-star: deleting the last slot and compressing the remaining
/// symbols to `0..n-1` order-preservingly yields a node of `S_{n−1}`.
///
/// # Panics
/// Panics on `n = 1`.
#[must_use]
pub fn project_to_substar(p: &Perm) -> Perm {
    let n = p.len();
    assert!(n >= 2, "S_1 has no sub-stars");
    let fixed = p.symbol_at(n - 1);
    let mut out = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        let s = p.symbol_at(i);
        out.push(if s > fixed { s - 1 } else { s });
    }
    Perm::from_slice(&out).expect("projection is a valid permutation")
}

/// Inverse of [`project_to_substar`]: embeds a node `q` of `S_{n−1}`
/// into the sub-star of `S_n` whose last slot holds `fixed`.
///
/// # Panics
/// Panics if `fixed > q.len()` (must be a symbol of `0..n`).
#[must_use]
pub fn lift_from_substar(q: &Perm, fixed: u8) -> Perm {
    let m = q.len();
    assert!(
        (fixed as usize) <= m,
        "fixed symbol {fixed} out of range for S_{}",
        m + 1
    );
    let mut out = Vec::with_capacity(m + 1);
    for i in 0..m {
        let s = q.symbol_at(i);
        out.push(if s >= fixed { s + 1 } else { s });
    }
    out.push(fixed);
    Perm::from_slice(&out).expect("lift is a valid permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::factorial::factorial;

    #[test]
    fn partition_sizes() {
        let star = StarGraph::new(5);
        let groups = substar_partition(&star);
        assert_eq!(groups.len(), 5);
        for g in &groups {
            assert_eq!(g.len() as u64, factorial(4));
        }
    }

    #[test]
    fn substars_are_closed_under_small_generators() {
        // Generators g_1..g_{n-2} never leave a sub-star; g_{n-1} always does.
        let star = StarGraph::new(5);
        for r in 0..star.node_count() {
            let p = star.node_at(r);
            let label = substar_label(&p, 4);
            for j in 1..4 {
                assert_eq!(substar_label(&star.apply_generator(&p, j), 4), label);
            }
            assert_ne!(substar_label(&star.apply_generator(&p, 4), 4), label);
        }
    }

    #[test]
    fn projection_roundtrip() {
        let star = StarGraph::new(6);
        for r in (0..star.node_count()).step_by(7) {
            let p = star.node_at(r);
            let fixed = p.symbol_at(5);
            let q = project_to_substar(&p);
            assert_eq!(q.len(), 5);
            assert_eq!(lift_from_substar(&q, fixed), p);
        }
    }

    #[test]
    fn projection_preserves_adjacency() {
        // Within a sub-star, adjacency in S_n matches adjacency of the
        // projections in S_{n-1}.
        let s5 = StarGraph::new(5);
        let s4 = StarGraph::new(4);
        let groups = substar_partition(&s5);
        for group in &groups {
            for p in group.iter().take(12) {
                for j in 1..4 {
                    let q = s5.apply_generator(p, j);
                    assert!(s4.are_adjacent(&project_to_substar(p), &project_to_substar(&q)));
                }
            }
        }
    }

    #[test]
    fn lift_respects_label() {
        let q = Perm::from_slice(&[2, 0, 1]).unwrap();
        for fixed in 0..=3u8 {
            let p = lift_from_substar(&q, fixed);
            assert_eq!(p.len(), 4);
            assert_eq!(p.symbol_at(3), fixed);
            assert_eq!(project_to_substar(&p), q);
        }
    }
}
