//! Hierarchical decomposition of `S_n` into sub-stars.
//!
//! Fixing the symbol in the *last* slot (display slot `n−1`, the
//! paper's position 0) partitions `S_n` into `n` node-disjoint copies
//! of `S_{n−1}`: no generator touches the last slot except `g_{n−1}`,
//! so the subgraph induced on each part is an `S_{n−1}` over the
//! remaining symbols. This is the structural fact behind the star
//! graph's recursive algorithms (broadcast, sorting) and its fault
//! tolerance.

use crate::StarGraph;
use sg_perm::factorial::factorial;
use sg_perm::lehmer::{rank, unrank};
use sg_perm::Perm;

/// Label of the sub-star containing `p` when decomposing by slot
/// `slot` (usually `n−1`): the symbol held in that slot.
#[must_use]
pub fn substar_label(p: &Perm, slot: usize) -> u8 {
    p.symbol_at(slot)
}

/// Partitions all nodes of `S_n` into the `n` sub-stars obtained by
/// fixing the last slot. Returns `groups[s]` = nodes whose last slot
/// holds symbol `s`, each sorted by Lehmer rank.
///
/// Materializes all `n!` nodes — small `n` only.
#[must_use]
pub fn substar_partition(star: &StarGraph) -> Vec<Vec<Perm>> {
    let n = star.n();
    let mut groups: Vec<Vec<Perm>> = vec![Vec::new(); n];
    for r in 0..star.node_count() {
        let p = star.node_at(r);
        groups[p.symbol_at(n - 1) as usize].push(p);
    }
    groups
}

/// The *canonical relabelling* of a node within its last-slot
/// sub-star: deleting the last slot and compressing the remaining
/// symbols to `0..n-1` order-preservingly yields a node of `S_{n−1}`.
///
/// # Panics
/// Panics on `n = 1`.
#[must_use]
pub fn project_to_substar(p: &Perm) -> Perm {
    let n = p.len();
    assert!(n >= 2, "S_1 has no sub-stars");
    let fixed = p.symbol_at(n - 1);
    let mut out = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        let s = p.symbol_at(i);
        out.push(if s > fixed { s - 1 } else { s });
    }
    Perm::from_slice(&out).expect("projection is a valid permutation")
}

/// Inverse of [`project_to_substar`]: embeds a node `q` of `S_{n−1}`
/// into the sub-star of `S_n` whose last slot holds `fixed`.
///
/// # Panics
/// Panics if `fixed > q.len()` (must be a symbol of `0..n`).
#[must_use]
pub fn lift_from_substar(q: &Perm, fixed: u8) -> Perm {
    let m = q.len();
    assert!(
        (fixed as usize) <= m,
        "fixed symbol {fixed} out of range for S_{}",
        m + 1
    );
    let mut out = Vec::with_capacity(m + 1);
    for i in 0..m {
        let s = q.symbol_at(i);
        out.push(if s >= fixed { s + 1 } else { s });
    }
    out.push(fixed);
    Perm::from_slice(&out).expect("lift is a valid permutation")
}

/// A sub-star of `S_n` identified by its fixed slot suffix: the
/// induced copy of `S_m` on all nodes holding `fixed[i]` in slot
/// `n−1−i` (outermost slot first). `fixed` empty means all of `S_n`;
/// each additional fixed symbol descends one level of the recursive
/// decomposition, so the sub-stars of `S_n` form a tree with
/// branching factor equal to the current order — the processor
/// allocation lattice `sg-sched` carves tenants from.
///
/// Only generators `g_1 … g_{m−1}` act on the first `m` slots, so a
/// route using them never leaves the sub-star, and
/// [`SubStar::project`]/[`SubStar::lift`] are graph isomorphisms onto
/// `S_m` that commute with those generators — the structural fact
/// behind tenant isolation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubStar {
    n: usize,
    /// `fixed[i]` = symbol pinned in slot `n−1−i`.
    fixed: Vec<u8>,
}

impl SubStar {
    /// The whole of `S_n` (nothing fixed).
    ///
    /// # Panics
    /// Panics for `n < 2`.
    #[must_use]
    pub fn whole(n: usize) -> Self {
        assert!(n >= 2, "S_n needs n >= 2");
        SubStar {
            n,
            fixed: Vec::new(),
        }
    }

    /// Builds a sub-star from an explicit fixed suffix (`fixed[i]` in
    /// slot `n−1−i`).
    ///
    /// # Panics
    /// Panics if a symbol repeats, is out of range, or the suffix
    /// leaves order `< 1`.
    #[must_use]
    pub fn new(n: usize, fixed: Vec<u8>) -> Self {
        assert!(n >= 2, "S_n needs n >= 2");
        assert!(
            fixed.len() < n,
            "fixing {} slots of S_{n} leaves no star",
            fixed.len()
        );
        let mut seen = vec![false; n];
        for &s in &fixed {
            assert!((s as usize) < n, "symbol {s} out of range for S_{n}");
            assert!(!seen[s as usize], "symbol {s} fixed twice");
            seen[s as usize] = true;
        }
        SubStar { n, fixed }
    }

    /// Host star order `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Order `m` of the sub-star (`n −` fixed slots).
    #[must_use]
    pub fn order(&self) -> usize {
        self.n - self.fixed.len()
    }

    /// Nodes in the sub-star (`order()!`).
    #[must_use]
    pub fn size(&self) -> u64 {
        factorial(self.order())
    }

    /// The fixed suffix, outermost slot first.
    #[must_use]
    pub fn fixed_suffix(&self) -> &[u8] {
        &self.fixed
    }

    /// Symbols still free inside the sub-star, ascending. The local
    /// symbol `v` of the projected `S_m` corresponds to global symbol
    /// `free_symbols()[v]`.
    #[must_use]
    pub fn free_symbols(&self) -> Vec<u8> {
        let mut pinned = vec![false; self.n];
        for &s in &self.fixed {
            pinned[s as usize] = true;
        }
        (0..self.n as u8).filter(|&s| !pinned[s as usize]).collect()
    }

    /// Descends one level: fixes slot `order()−1` to `symbol`.
    ///
    /// # Panics
    /// Panics if `symbol` is already fixed or the result would drop
    /// below order 1.
    #[must_use]
    pub fn child(&self, symbol: u8) -> Self {
        assert!(self.order() >= 2, "an S_1 sub-star has no children");
        let mut fixed = self.fixed.clone();
        fixed.push(symbol);
        SubStar::new(self.n, fixed)
    }

    /// All `order()` children (one per free symbol, ascending) — the
    /// canonical split of the allocation tree.
    #[must_use]
    pub fn children(&self) -> Vec<Self> {
        self.free_symbols()
            .into_iter()
            .map(|s| self.child(s))
            .collect()
    }

    /// `true` iff `p` is a node of this sub-star.
    ///
    /// # Panics
    /// Panics if `p` is not a permutation of `0..n`.
    #[must_use]
    pub fn contains(&self, p: &Perm) -> bool {
        assert_eq!(p.len(), self.n, "node of the wrong star order");
        self.fixed
            .iter()
            .enumerate()
            .all(|(i, &s)| p.symbol_at(self.n - 1 - i) == s)
    }

    /// [`SubStar::contains`] by Lehmer rank.
    #[must_use]
    pub fn contains_rank(&self, r: u64) -> bool {
        self.contains(&unrank(r, self.n).expect("rank in range"))
    }

    /// Embeds a node `q` of the local `S_m` into the host `S_n`:
    /// local symbols are renamed order-preservingly onto
    /// [`SubStar::free_symbols`] and the fixed suffix is appended.
    /// Inverse of [`SubStar::project`]; commutes with generators
    /// `g_1 … g_{m−1}`.
    ///
    /// # Panics
    /// Panics unless `q.len() == order()`.
    #[must_use]
    pub fn lift(&self, q: &Perm) -> Perm {
        let m = self.order();
        assert_eq!(q.len(), m, "local node of the wrong order");
        let free = self.free_symbols();
        let mut out = Vec::with_capacity(self.n);
        for i in 0..m {
            out.push(free[q.symbol_at(i) as usize]);
        }
        for i in (0..self.fixed.len()).rev() {
            out.push(self.fixed[i]);
        }
        Perm::from_slice(&out).expect("lift is a valid permutation")
    }

    /// Projects a node of this sub-star to the local `S_m` by
    /// deleting the fixed suffix and compressing the free symbols to
    /// `0..m` order-preservingly. Inverse of [`SubStar::lift`].
    ///
    /// # Panics
    /// Panics unless [`SubStar::contains`]`(p)`.
    #[must_use]
    pub fn project(&self, p: &Perm) -> Perm {
        assert!(self.contains(p), "node {p} outside sub-star");
        let m = self.order();
        let free = self.free_symbols();
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let s = p.symbol_at(i);
            let v = free.binary_search(&s).expect("free symbol by containment");
            out.push(v as u8);
        }
        Perm::from_slice(&out).expect("projection is a valid permutation")
    }

    /// [`SubStar::lift`] on Lehmer ranks: local rank in `S_m` → global
    /// rank in `S_n`.
    #[must_use]
    pub fn lift_rank(&self, r: u64) -> u64 {
        rank(&self.lift(&unrank(r, self.order()).expect("rank in range")))
    }

    /// [`SubStar::project`] on Lehmer ranks.
    #[must_use]
    pub fn project_rank(&self, r: u64) -> u64 {
        rank(&self.project(&unrank(r, self.n).expect("rank in range")))
    }

    /// All global node ranks of the sub-star, in local-rank order.
    #[must_use]
    pub fn node_ranks(&self) -> Vec<u64> {
        (0..self.size()).map(|r| self.lift_rank(r)).collect()
    }

    /// `true` iff this sub-star is `other` or contains it (i.e. our
    /// fixed suffix is a prefix of theirs).
    #[must_use]
    pub fn contains_substar(&self, other: &Self) -> bool {
        self.n == other.n
            && other.fixed.len() >= self.fixed.len()
            && other.fixed[..self.fixed.len()] == self.fixed[..]
    }

    /// `true` iff the two sub-stars share no node. Two fixed-suffix
    /// sub-stars either nest or are disjoint: they overlap exactly
    /// when they agree on the slots both fix.
    ///
    /// # Panics
    /// Panics if the host orders differ.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        assert_eq!(self.n, other.n, "sub-stars of different hosts");
        let k = self.fixed.len().min(other.fixed.len());
        self.fixed[..k] != other.fixed[..k]
    }
}

impl std::fmt::Display for SubStar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S_{}[", self.order())?;
        for (i, s) in self.fixed.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

/// Enumerates every order-`m` sub-star of `S_n` (`n!/m!` of them), in
/// allocation-tree DFS order (children by ascending fixed symbol).
///
/// # Panics
/// Panics unless `1 ≤ m ≤ n` and `n ≥ 2`.
#[must_use]
pub fn substars_of_order(n: usize, m: usize) -> Vec<SubStar> {
    assert!(m >= 1 && m <= n, "order out of range");
    let mut out = Vec::new();
    let mut stack = vec![SubStar::whole(n)];
    while let Some(sub) = stack.pop() {
        if sub.order() == m {
            out.push(sub);
        } else {
            // Reverse so the ascending-symbol child pops first.
            let mut kids = sub.children();
            kids.reverse();
            stack.extend(kids);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sizes() {
        let star = StarGraph::new(5);
        let groups = substar_partition(&star);
        assert_eq!(groups.len(), 5);
        for g in &groups {
            assert_eq!(g.len() as u64, factorial(4));
        }
    }

    #[test]
    fn substars_are_closed_under_small_generators() {
        // Generators g_1..g_{n-2} never leave a sub-star; g_{n-1} always does.
        let star = StarGraph::new(5);
        for r in 0..star.node_count() {
            let p = star.node_at(r);
            let label = substar_label(&p, 4);
            for j in 1..4 {
                assert_eq!(substar_label(&star.apply_generator(&p, j), 4), label);
            }
            assert_ne!(substar_label(&star.apply_generator(&p, 4), 4), label);
        }
    }

    #[test]
    fn projection_roundtrip() {
        let star = StarGraph::new(6);
        for r in (0..star.node_count()).step_by(7) {
            let p = star.node_at(r);
            let fixed = p.symbol_at(5);
            let q = project_to_substar(&p);
            assert_eq!(q.len(), 5);
            assert_eq!(lift_from_substar(&q, fixed), p);
        }
    }

    #[test]
    fn projection_preserves_adjacency() {
        // Within a sub-star, adjacency in S_n matches adjacency of the
        // projections in S_{n-1}.
        let s5 = StarGraph::new(5);
        let s4 = StarGraph::new(4);
        let groups = substar_partition(&s5);
        for group in &groups {
            for p in group.iter().take(12) {
                for j in 1..4 {
                    let q = s5.apply_generator(p, j);
                    assert!(s4.are_adjacent(&project_to_substar(p), &project_to_substar(&q)));
                }
            }
        }
    }

    #[test]
    fn lift_respects_label() {
        let q = Perm::from_slice(&[2, 0, 1]).unwrap();
        for fixed in 0..=3u8 {
            let p = lift_from_substar(&q, fixed);
            assert_eq!(p.len(), 4);
            assert_eq!(p.symbol_at(3), fixed);
            assert_eq!(project_to_substar(&p), q);
        }
    }

    #[test]
    fn substar_single_level_matches_legacy_helpers() {
        // A one-deep SubStar is exactly the project/lift pair above.
        let n = 5;
        for fixed in 0..n as u8 {
            let sub = SubStar::whole(n).child(fixed);
            for r in (0..factorial(n)).step_by(13) {
                let p = unrank(r, n).unwrap();
                if p.symbol_at(n - 1) != fixed {
                    assert!(!sub.contains(&p));
                    continue;
                }
                assert!(sub.contains(&p));
                let q = project_to_substar(&p);
                assert_eq!(sub.project(&p), q);
                assert_eq!(sub.lift(&q), p);
            }
        }
    }

    #[test]
    fn substar_rank_roundtrip_and_sizes() {
        let n = 5;
        for m in 1..=n {
            let subs = substars_of_order(n, m);
            assert_eq!(subs.len() as u64, factorial(n) / factorial(m));
            for sub in subs.iter().take(8) {
                assert_eq!(sub.order(), m);
                assert_eq!(sub.size(), factorial(m));
                for r in 0..sub.size() {
                    let g = sub.lift_rank(r);
                    assert!(sub.contains_rank(g));
                    assert_eq!(sub.project_rank(g), r);
                }
            }
        }
    }

    #[test]
    fn substar_partition_covers_host_exactly() {
        // Order-m sub-stars partition the n! nodes.
        let n = 5;
        for m in [2usize, 3] {
            let mut seen = vec![false; factorial(n) as usize];
            for sub in substars_of_order(n, m) {
                for g in sub.node_ranks() {
                    assert!(!seen[g as usize], "rank {g} covered twice");
                    seen[g as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "partition must cover S_{n}");
        }
    }

    #[test]
    fn substar_disjointness_is_suffix_disagreement() {
        let n = 5;
        let subs = substars_of_order(n, 3);
        for a in &subs {
            for b in &subs {
                let disjoint = a.is_disjoint(b);
                assert_eq!(
                    disjoint,
                    a != b,
                    "equal-order sub-stars nest only trivially"
                );
                // Semantics check on the node sets themselves.
                let bn: std::collections::HashSet<u64> = b.node_ranks().into_iter().collect();
                let overlap = a.node_ranks().iter().any(|g| bn.contains(g));
                assert_eq!(overlap, !disjoint);
            }
        }
        // Nesting: a child is contained, never disjoint.
        let parent = SubStar::whole(n).child(2);
        for kid in parent.children() {
            assert!(parent.contains_substar(&kid));
            assert!(!parent.is_disjoint(&kid));
            assert!(!kid.contains_substar(&parent));
        }
    }

    #[test]
    fn lift_commutes_with_small_generators() {
        // The isolation fact: for g < order, lift(q g) = lift(q) g —
        // sub-star-internal routes stay internal.
        let n = 6;
        let sub = SubStar::new(n, vec![4, 1]);
        let m = sub.order();
        for r in 0..factorial(m) {
            let q = unrank(r, m).unwrap();
            let p = sub.lift(&q);
            for g in 1..m {
                assert_eq!(
                    sub.lift(&q.with_slots_swapped(0, g)),
                    p.with_slots_swapped(0, g),
                    "generator {g} must commute with the lift"
                );
            }
            // The first non-local generator leaves the sub-star.
            assert!(!sub.contains(&p.with_slots_swapped(0, m)));
        }
    }
}
