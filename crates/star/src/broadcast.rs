//! One-to-all broadcast on `S_n` in the SIMD-B model.
//!
//! §2 property 3: "Broadcasting can be performed on the star graph in
//! at most `3(n log n − …)` unit routes" (`[AKER87]`). We generate an
//! explicit *schedule*: a list of rounds, each round a set of
//! `(src, dst)` sends such that
//!
//! * every sender is already informed,
//! * every send crosses a real edge,
//! * each PE sends at most once and receives at most once per round
//!   (the SIMD-B contract),
//!
//! and after the last round every PE is informed. The generator is
//! greedy flooding (each informed node adopts one uninformed neighbor
//! per round — a maximal matching), which meets the paper's budget
//! with room to spare; [`verify_schedule`] checks all the invariants,
//! and the benches compare measured rounds against both the paper
//! bound and the `⌈log₂ n!⌉` lower bound.

use crate::StarGraph;

/// One broadcast schedule: `rounds[t]` lists the `(src, dst)` node
/// ranks transmitting in unit route `t`.
#[derive(Debug, Clone)]
pub struct BroadcastSchedule {
    /// Sends per round.
    pub rounds: Vec<Vec<(u64, u64)>>,
    /// Source node rank.
    pub source: u64,
}

impl BroadcastSchedule {
    /// Number of unit routes used.
    #[must_use]
    pub fn unit_routes(&self) -> usize {
        self.rounds.len()
    }
}

/// Paper's §2 budget for broadcast unit routes: `3(n lg n − n)`,
/// rounded up, never below the trivial diameter bound. (The paper
/// prints the second term smudged — `3(n log n − ~)`; `[AKER87]`'s
/// scheme is `Θ(n log n)`, and we treat `3 n lg n` as the headline
/// envelope. Our measured schedules must come in under it.)
#[must_use]
pub fn paper_bound(n: usize) -> f64 {
    let nf = n as f64;
    3.0 * nf * nf.log2()
}

/// Information-theoretic lower bound: each route at most doubles the
/// informed set, so at least `⌈log₂ n!⌉` routes are needed.
#[must_use]
pub fn lower_bound(n: usize) -> u32 {
    let bits = (sg_perm::factorial::factorial(n) as f64).log2();
    bits.ceil() as u32
}

/// Greedy flooding broadcast from `source` (a node rank).
///
/// Each round constructs a maximal informed→uninformed matching:
/// informed nodes are scanned in rank order and each adopts its first
/// still-unclaimed uninformed neighbor.
///
/// # Panics
/// Panics if `source >= n!` or if `S_n` is too large to materialize
/// per-node state (`n > 10`).
#[must_use]
pub fn flood_schedule(star: &StarGraph, source: u64) -> BroadcastSchedule {
    let n = star.n();
    assert!(
        n <= 10,
        "flooding materializes n! node states; n = {n} too large"
    );
    let total = star.node_count();
    assert!(source < total, "source out of range");
    let total = total as usize;

    let mut informed = vec![false; total];
    informed[source as usize] = true;
    let mut informed_list: Vec<u64> = vec![source];
    let mut rounds = Vec::new();
    let mut informed_count = 1usize;

    while informed_count < total {
        let mut claimed = vec![false; total];
        let mut sends = Vec::new();
        for &u in &informed_list {
            for v in star.neighbor_ranks(u) {
                let vi = v as usize;
                if !informed[vi] && !claimed[vi] {
                    claimed[vi] = true;
                    sends.push((u, v));
                    break; // one send per PE per unit route
                }
            }
        }
        assert!(!sends.is_empty(), "flooding stalled on a connected graph");
        for &(_, v) in &sends {
            informed[v as usize] = true;
            informed_list.push(v);
        }
        informed_count += sends.len();
        rounds.push(sends);
    }
    BroadcastSchedule { rounds, source }
}

/// Checks every SIMD-B invariant of a schedule and that it informs
/// all `n!` nodes. Returns the number of unit routes on success.
///
/// # Errors
/// Returns a human-readable description of the first violation.
pub fn verify_schedule(star: &StarGraph, schedule: &BroadcastSchedule) -> Result<usize, String> {
    let total = star.node_count() as usize;
    let mut informed = vec![false; total];
    informed[schedule.source as usize] = true;
    for (t, round) in schedule.rounds.iter().enumerate() {
        let mut sent = vec![false; total];
        let mut recv = vec![false; total];
        for &(u, v) in round {
            if !informed[u as usize] {
                return Err(format!("round {t}: sender {u} not informed"));
            }
            if !star.neighbor_ranks(u).contains(&v) {
                return Err(format!("round {t}: ({u},{v}) is not an edge"));
            }
            if sent[u as usize] {
                return Err(format!("round {t}: {u} sends twice"));
            }
            if recv[v as usize] {
                return Err(format!("round {t}: {v} receives twice"));
            }
            sent[u as usize] = true;
            recv[v as usize] = true;
        }
        for &(_, v) in round {
            informed[v as usize] = true;
        }
    }
    if let Some(v) = informed.iter().position(|&b| !b) {
        return Err(format!("node {v} never informed"));
    }
    Ok(schedule.rounds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_valid_and_complete() {
        for n in 2..=7usize {
            let star = StarGraph::new(n);
            let sched = flood_schedule(&star, 0);
            let routes = verify_schedule(&star, &sched).expect("valid schedule");
            assert!(routes >= lower_bound(n) as usize, "n={n}");
        }
    }

    #[test]
    fn meets_paper_bound() {
        // §2 property 3: at most ~3 n lg n unit routes.
        for n in 3..=8usize {
            let star = StarGraph::new(n);
            let sched = flood_schedule(&star, 0);
            assert!(
                (sched.unit_routes() as f64) <= paper_bound(n),
                "n={n}: {} routes > bound {}",
                sched.unit_routes(),
                paper_bound(n)
            );
        }
    }

    #[test]
    fn source_choice_is_immaterial_by_symmetry() {
        // Vertex transitivity: rounds from any source match rounds from 0.
        let star = StarGraph::new(5);
        let base = flood_schedule(&star, 0).unit_routes();
        for src in [1u64, 17, 59, 119] {
            let s = flood_schedule(&star, src);
            verify_schedule(&star, &s).unwrap();
            // Greedy ordering may differ by a round; allow slack of 1.
            assert!((s.unit_routes() as i64 - base as i64).abs() <= 1);
        }
    }

    #[test]
    fn verifier_catches_violations() {
        let star = StarGraph::new(3);
        let mut sched = flood_schedule(&star, 0);
        // Corrupt: make an uninformed node send in round 0.
        sched.rounds[0] = vec![(5, star.neighbor_ranks(5)[0])];
        assert!(verify_schedule(&star, &sched).is_err());

        let mut sched2 = flood_schedule(&star, 0);
        // Corrupt: non-edge send.
        sched2.rounds[0] = vec![(0, 0)];
        assert!(verify_schedule(&star, &sched2).is_err());
    }

    #[test]
    fn trivial_s1_and_s2() {
        let s2 = StarGraph::new(2);
        let sched = flood_schedule(&s2, 0);
        assert_eq!(sched.unit_routes(), 1);
        verify_schedule(&s2, &sched).unwrap();
    }

    #[test]
    fn bounds_are_sane() {
        assert_eq!(lower_bound(3), 3); // log2(6) = 2.58 -> 3
        assert!(paper_bound(4) > 0.0);
        assert!(paper_bound(9) > lower_bound(9) as f64);
    }
}
