//! Structural tests of the sub-star hierarchy at sizes beyond the
//! unit tests, plus routing/distance interplay.

use sg_perm::factorial::factorial;
use sg_perm::lehmer::unrank;
use sg_star::distance::{distance, length_to_identity};
use sg_star::routing::{route_generators, shortest_path};
use sg_star::substar::{lift_from_substar, project_to_substar, substar_label, substar_partition};
use sg_star::StarGraph;

#[test]
fn s6_decomposes_into_six_s5() {
    let star = StarGraph::new(6);
    let groups = substar_partition(&star);
    assert_eq!(groups.len(), 6);
    for (label, group) in groups.iter().enumerate() {
        assert_eq!(group.len() as u64, factorial(5));
        for p in group.iter().step_by(13) {
            assert_eq!(substar_label(p, 5) as usize, label);
            // Projection lands in S_5 and lifts back.
            let q = project_to_substar(p);
            assert_eq!(q.len(), 5);
            assert_eq!(lift_from_substar(&q, label as u8), *p);
        }
    }
}

#[test]
fn recursive_decomposition_depth() {
    // Project twice: S_7 -> S_6 -> S_5, checking adjacency survives.
    let s7 = StarGraph::new(7);
    let s6 = StarGraph::new(6);
    let s5 = StarGraph::new(5);
    for seed in [3u64, 1000, 4999] {
        let p = s7.node_at(seed % s7.node_count());
        for j in 1..5 {
            let q = s7.apply_generator(&p, j);
            // Same S_6 sub-star (slot 6 untouched) and same S_5 sub-sub-star.
            let (p1, q1) = (project_to_substar(&p), project_to_substar(&q));
            assert!(s6.are_adjacent(&p1, &q1));
            let (p2, q2) = (project_to_substar(&p1), project_to_substar(&q1));
            assert!(s5.are_adjacent(&p2, &q2));
        }
    }
}

#[test]
fn distance_within_substar_never_shortcut_outside() {
    // For nodes in the same sub-star, the S_n distance equals the
    // S_{n-1} distance of their projections: leaving the sub-star
    // never helps (a known property; verified here for n = 6).
    let n = 6;
    for seeds in [(1u64, 2u64), (55, 700), (13, 77), (100, 101)] {
        let a = unrank(seeds.0 % factorial(n - 1), n - 1).unwrap();
        let b = unrank(seeds.1 % factorial(n - 1), n - 1).unwrap();
        for label in 0..n as u8 {
            let la = lift_from_substar(&a, label);
            let lb = lift_from_substar(&b, label);
            assert_eq!(distance(&la, &lb), distance(&a, &b), "label {label}");
        }
    }
}

#[test]
fn routes_respect_diameter_at_large_n() {
    // Random pairs in S_12 (479M nodes — formula and router are O(n),
    // no materialization needed).
    let n = 12;
    for seed in 0..200u64 {
        let a = unrank((seed * 2_654_435_761) % factorial(n), n).unwrap();
        let b = unrank((seed * 40_503 + 7) % factorial(n), n).unwrap();
        let gens = route_generators(&a, &b);
        assert!(gens.len() as u32 <= (3 * (n as u32 - 1)) / 2);
        assert_eq!(gens.len() as u32, distance(&a, &b));
        let mut cur = a;
        for j in gens {
            cur.swap_slots(0, j);
        }
        assert_eq!(cur, b);
    }
}

#[test]
fn path_nodes_are_distinct() {
    // Shortest paths are simple.
    let n = 9;
    for seed in 0..50u64 {
        let a = unrank((seed * 7 + 1) % factorial(n), n).unwrap();
        let b = unrank((seed * 7919 + 3) % factorial(n), n).unwrap();
        let path = shortest_path(&a, &b);
        let set: std::collections::HashSet<_> = path.iter().collect();
        assert_eq!(set.len(), path.len(), "path revisits a node");
    }
}

#[test]
fn distance_distribution_matches_bfs_histogram() {
    // Aggregate check at n = 7: count nodes at each distance from the
    // identity via the formula, compare against BFS.
    let n = 7;
    let g = sg_graph::builders::star_graph(n);
    let id_rank = sg_perm::lehmer::rank(&sg_perm::Perm::identity(n)) as u32;
    let tree = sg_graph::bfs::bfs(&g, id_rank);
    let mut bfs_hist = vec![0u64; 16];
    for &d in &tree.dist {
        bfs_hist[d as usize] += 1;
    }
    let mut formula_hist = vec![0u64; 16];
    for r in 0..factorial(n) {
        let p = unrank(r, n).unwrap();
        formula_hist[length_to_identity(&p) as usize] += 1;
    }
    assert_eq!(bfs_hist, formula_hist);
    // Diameter bucket is the last nonempty one: floor(3*6/2) = 9.
    assert!(formula_hist[9] > 0);
    assert!(formula_hist[10..].iter().all(|&c| c == 0));
}
