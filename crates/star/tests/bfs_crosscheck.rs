//! Cross-checks the Akers–Krishnamurthy cycle-structure distance
//! formula (`sg_star::distance`) against `sg_graph` BFS on the
//! materialized `S_n` for `n ≤ 6` — complementing
//! `sg-graph`'s `petgraph_crosscheck`, which validates the BFS side
//! against an independent Dijkstra.

use sg_graph::bfs::{bfs, is_connected};
use sg_graph::builders;
use sg_star::distance::{distance, length_to_identity};
use sg_star::StarGraph;

/// Formula vs BFS, all ordered pairs, on the `StarGraph::to_csr`
/// materialization.
#[test]
fn formula_matches_bfs_on_own_csr() {
    for n in 2..=6usize {
        let star = StarGraph::new(n);
        let csr = star.to_csr();
        assert!(is_connected(&csr), "S_{n} is connected");
        let count = star.node_count();
        for src in 0..count {
            let tree = bfs(&csr, src as u32);
            let a = star.node_at(src);
            for dst in 0..count {
                let b = star.node_at(dst);
                assert_eq!(distance(&a, &b), tree.dist[dst as usize], "n={n} {a}→{b}");
            }
        }
    }
}

/// Same check against the *independent* builder in `sg_graph`
/// (constructed from generator arithmetic there, not via
/// `StarGraph::to_csr`), guarding against a shared bug in the
/// materialization path.
#[test]
fn formula_matches_bfs_on_independent_builder() {
    for n in 2..=5usize {
        let star = StarGraph::new(n);
        let csr = builders::star_graph(n);
        assert_eq!(csr.node_count() as u64, star.node_count(), "n={n}");
        for src in 0..star.node_count() {
            let tree = bfs(&csr, src as u32);
            let a = star.node_at(src);
            for dst in 0..star.node_count() {
                let b = star.node_at(dst);
                assert_eq!(distance(&a, &b), tree.dist[dst as usize], "n={n} {a}→{b}");
            }
        }
    }
}

/// `length_to_identity(p) == distance(p, e)` and both equal BFS from
/// the identity's rank.
#[test]
fn identity_specialization_agrees() {
    for n in 2..=6usize {
        let star = StarGraph::new(n);
        let csr = star.to_csr();
        let e = star.identity();
        let tree = bfs(&csr, star.rank_of(&e) as u32);
        for r in 0..star.node_count() {
            let p = star.node_at(r);
            assert_eq!(length_to_identity(&p), distance(&p, &e), "n={n} {p}");
            assert_eq!(length_to_identity(&p), tree.dist[r as usize], "n={n} {p}");
        }
    }
}

/// Distance is a metric realized by the graph: symmetric, zero iff
/// equal, and 1 exactly on star edges. (Triangle inequality follows
/// from BFS agreement above.)
#[test]
fn metric_sanity_on_edges() {
    for n in 2..=5usize {
        let star = StarGraph::new(n);
        for r in 0..star.node_count() {
            let a = star.node_at(r);
            assert_eq!(distance(&a, &a), 0);
            for b in star.neighbors(&a) {
                assert_eq!(distance(&a, &b), 1, "n={n}: edge {a}–{b}");
                assert_eq!(distance(&b, &a), 1, "n={n}: symmetric");
            }
        }
    }
}
