//! Applying permutations to data buffers.
//!
//! The SIMD simulator moves register contents between PEs; a star
//! generator route is a *global* permutation of the register file, so
//! efficient in-place/out-of-place slice permutation is on the hot
//! path of every simulated unit route.

use crate::Perm;

/// Gathers `src` through the permutation: `dst[i] = src[p[i]]`.
///
/// # Panics
/// Panics if slice lengths differ from `p.len()`.
pub fn gather<T: Copy>(p: &Perm, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), p.len(), "gather: src length mismatch");
    assert_eq!(dst.len(), p.len(), "gather: dst length mismatch");
    for (d, &s) in dst.iter_mut().zip(p.as_slice()) {
        *d = src[s as usize];
    }
}

/// Scatters `src` through the permutation: `dst[p[i]] = src[i]`.
///
/// # Panics
/// Panics if slice lengths differ from `p.len()`.
pub fn scatter<T: Copy>(p: &Perm, src: &[T], dst: &mut [T]) {
    assert_eq!(src.len(), p.len(), "scatter: src length mismatch");
    assert_eq!(dst.len(), p.len(), "scatter: dst length mismatch");
    for (&s, &v) in p.as_slice().iter().zip(src) {
        dst[s as usize] = v;
    }
}

/// Permutes `data` in place so that the element at index `i` moves to
/// index `p[i]` (in-place scatter), using cycle-following with O(n)
/// time and O(n) scratch bits.
///
/// # Panics
/// Panics if `data.len() != p.len()`.
pub fn permute_in_place<T>(p: &Perm, data: &mut [T]) {
    let n = p.len();
    assert_eq!(data.len(), n, "permute_in_place: length mismatch");
    let mut done = [false; crate::MAX_N];
    for start in 0..n {
        if done[start] || p.symbol_at(start) as usize == start {
            done[start] = true;
            continue;
        }
        // Rotate the cycle by repeatedly swapping against the leader
        // slot: after the walk, data[p[i]] holds the original data[i]
        // for every i on the cycle.
        done[start] = true;
        let mut cur = p.symbol_at(start) as usize;
        while cur != start {
            data.swap(start, cur);
            done[cur] = true;
            cur = p.symbol_at(cur) as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorial::factorial;
    use crate::lehmer::unrank;

    #[test]
    fn gather_then_inverse_gather_is_identity() {
        let p = Perm::from_slice(&[2, 0, 3, 1]).unwrap();
        let src = [10, 20, 30, 40];
        let mut mid = [0; 4];
        let mut back = [0; 4];
        gather(&p, &src, &mut mid);
        gather(&p.inverse(), &mid, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn scatter_is_inverse_of_gather() {
        let p = Perm::from_slice(&[2, 0, 3, 1]).unwrap();
        let src = [10, 20, 30, 40];
        let mut g = [0; 4];
        let mut s = [0; 4];
        gather(&p, &src, &mut g);
        scatter(&p, &g, &mut s);
        assert_eq!(s, src);
    }

    #[test]
    fn gather_semantics() {
        let p = Perm::from_slice(&[1, 2, 0]).unwrap();
        let src = ['a', 'b', 'c'];
        let mut dst = ['?'; 3];
        gather(&p, &src, &mut dst);
        assert_eq!(dst, ['b', 'c', 'a']);
    }

    #[test]
    fn scatter_semantics() {
        let p = Perm::from_slice(&[1, 2, 0]).unwrap();
        let src = ['a', 'b', 'c'];
        let mut dst = ['?'; 3];
        scatter(&p, &src, &mut dst);
        assert_eq!(dst, ['c', 'a', 'b']);
    }

    #[test]
    fn in_place_matches_scatter_exhaustive() {
        for n in 1..=5usize {
            for r in 0..factorial(n) {
                let p = unrank(r, n).unwrap();
                let src: Vec<u32> = (0..n as u32).map(|x| 100 + x).collect();
                let mut expected = vec![0u32; n];
                scatter(&p, &src, &mut expected);
                let mut data = src.clone();
                permute_in_place(&p, &mut data);
                assert_eq!(data, expected, "perm {p}");
            }
        }
    }
}
