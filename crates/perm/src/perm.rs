//! The [`Perm`] value type.

use core::fmt;

/// Maximum supported permutation length.
///
/// `20! = 2 432 902 008 176 640 000 < 2^64`, while `21!` overflows
/// `u64`; since graph-level code addresses star-graph nodes by their
/// Lehmer rank in a `u64`, `n = 20` is the natural ceiling. A star
/// graph that large has 2.4 × 10¹⁸ nodes — far beyond anything that
/// can be materialized — so the cap is not a practical restriction.
pub const MAX_N: usize = 20;

/// Errors produced when constructing a [`Perm`] from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// The requested length is 0 or exceeds [`MAX_N`].
    BadLength(usize),
    /// An entry is out of range `0..n`.
    SymbolOutOfRange {
        /// Offending symbol value.
        symbol: u8,
        /// Permutation length.
        n: usize,
    },
    /// A symbol appears more than once.
    DuplicateSymbol(u8),
    /// A rank passed to `unrank` is `>= n!`.
    RankOutOfRange {
        /// Offending rank.
        rank: u64,
        /// Permutation length.
        n: usize,
    },
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::BadLength(n) => {
                write!(f, "permutation length {n} not in 1..={MAX_N}")
            }
            PermError::SymbolOutOfRange { symbol, n } => {
                write!(f, "symbol {symbol} out of range for length-{n} permutation")
            }
            PermError::DuplicateSymbol(s) => write!(f, "symbol {s} appears more than once"),
            PermError::RankOutOfRange { rank, n } => {
                write!(f, "rank {rank} >= {n}! for length-{n} permutation")
            }
        }
    }
}

impl std::error::Error for PermError {}

/// A permutation of the symbols `0..n`, stored inline (no heap).
///
/// `slots[i]` holds the symbol currently in slot `i`. Only the first
/// `len` entries are meaningful; the tail is zero so that derived
/// `Eq`/`Ord`/`Hash` are consistent.
///
/// ```
/// use sg_perm::Perm;
/// let p = Perm::from_slice(&[2, 0, 1]).unwrap();
/// assert_eq!(p.symbol_at(0), 2);
/// assert_eq!(p.slot_of(2), 0);
/// assert_eq!(p.inverse().as_slice(), &[1, 2, 0]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Perm {
    len: u8,
    slots: [u8; MAX_N],
}

impl Perm {
    /// The identity permutation `(0 1 … n-1)` in slot order.
    ///
    /// # Panics
    /// Panics if `n` is 0 or exceeds [`MAX_N`]; use [`Perm::try_identity`]
    /// for a fallible variant.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self::try_identity(n).expect("identity: n out of range")
    }

    /// Fallible [`Perm::identity`].
    pub fn try_identity(n: usize) -> crate::Result<Self> {
        if n == 0 || n > MAX_N {
            return Err(PermError::BadLength(n));
        }
        let mut slots = [0u8; MAX_N];
        for (i, s) in slots.iter_mut().enumerate().take(n) {
            *s = i as u8;
        }
        Ok(Perm {
            len: n as u8,
            slots,
        })
    }

    /// Builds a permutation from an explicit slot assignment,
    /// validating length, range and distinctness.
    pub fn from_slice(v: &[u8]) -> crate::Result<Self> {
        let n = v.len();
        if n == 0 || n > MAX_N {
            return Err(PermError::BadLength(n));
        }
        let mut seen = [false; MAX_N];
        let mut slots = [0u8; MAX_N];
        for (i, &s) in v.iter().enumerate() {
            if (s as usize) >= n {
                return Err(PermError::SymbolOutOfRange { symbol: s, n });
            }
            if seen[s as usize] {
                return Err(PermError::DuplicateSymbol(s));
            }
            seen[s as usize] = true;
            slots[i] = s;
        }
        Ok(Perm {
            len: n as u8,
            slots,
        })
    }

    /// Length `n` of the permutation.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: zero-length permutations are unconstructible.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The meaningful prefix of the slot array.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.slots[..self.len as usize]
    }

    /// Symbol stored in slot `i`.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    #[inline]
    #[must_use]
    pub fn symbol_at(&self, i: usize) -> u8 {
        assert!(i < self.len(), "slot {i} out of range (n = {})", self.len());
        self.slots[i]
    }

    /// Slot currently holding `symbol` (linear scan; `n ≤ 20`).
    ///
    /// # Panics
    /// Panics if `symbol >= n`.
    #[inline]
    #[must_use]
    pub fn slot_of(&self, symbol: u8) -> usize {
        assert!(
            (symbol as usize) < self.len(),
            "symbol {symbol} out of range (n = {})",
            self.len()
        );
        // n <= 20: a linear scan beats maintaining an inverse table.
        self.as_slice()
            .iter()
            .position(|&s| s == symbol)
            .expect("valid Perm contains every symbol")
    }

    /// Swaps the contents of two slots in place.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn swap_slots(&mut self, i: usize, j: usize) {
        assert!(i < self.len() && j < self.len(), "slot out of range");
        self.slots.swap(i, j);
    }

    /// Returns a copy with slots `i` and `j` swapped.
    #[inline]
    #[must_use]
    pub fn with_slots_swapped(&self, i: usize, j: usize) -> Self {
        let mut p = *self;
        p.swap_slots(i, j);
        p
    }

    /// Swaps two *symbols* (wherever they live) in place — the paper's
    /// `(a b)` exchange and its `π_(i,j)` notation (Definition 1).
    ///
    /// # Panics
    /// Panics if either symbol is out of range.
    #[inline]
    pub fn swap_symbols(&mut self, a: u8, b: u8) {
        let ia = self.slot_of(a);
        let ib = self.slot_of(b);
        self.slots.swap(ia, ib);
    }

    /// Returns a copy with symbols `a` and `b` exchanged
    /// (the paper's `π_(a,b)`).
    #[inline]
    #[must_use]
    pub fn with_symbols_swapped(&self, a: u8, b: u8) -> Self {
        let mut p = *self;
        p.swap_symbols(a, b);
        p
    }

    /// `true` iff every slot holds its own index.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.as_slice()
            .iter()
            .enumerate()
            .all(|(i, &s)| i == s as usize)
    }

    /// The inverse permutation: `inv[p[i]] = i`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut slots = [0u8; MAX_N];
        for (i, &s) in self.as_slice().iter().enumerate() {
            slots[s as usize] = i as u8;
        }
        Perm {
            len: self.len,
            slots,
        }
    }

    /// Composition `self ∘ other`: the permutation mapping
    /// `i ↦ self[other[i]]`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(
            self.len, other.len,
            "composing permutations of unequal length"
        );
        let mut slots = [0u8; MAX_N];
        for (i, &s) in other.as_slice().iter().enumerate() {
            slots[i] = self.slots[s as usize];
        }
        Perm {
            len: self.len,
            slots,
        }
    }

    /// Number of slots whose symbol differs from the identity.
    #[must_use]
    pub fn misplaced(&self) -> usize {
        self.as_slice()
            .iter()
            .enumerate()
            .filter(|&(i, &s)| i != s as usize)
            .count()
    }

    /// Hamming distance to another permutation of the same length
    /// (number of slots where they differ).
    ///
    /// # Panics
    /// Panics if lengths differ.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(
            self.len, other.len,
            "comparing permutations of unequal length"
        );
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The "relative" permutation `other⁻¹ ∘ self`, i.e. the
    /// rearrangement that carries `other` to `self`. Useful because
    /// star-graph distance is left-invariant: `d(π, σ) = d(σ⁻¹∘π, e)`
    /// *does not hold* for the star metric (which is generated by
    /// right multiplications); see `sg-star::distance` for the correct
    /// reduction. This helper is still the right tool for
    /// vertex-transitivity arguments.
    #[must_use]
    pub fn relative_to(&self, other: &Self) -> Self {
        other.inverse().compose(self)
    }
}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perm{:?}", self.as_slice())
    }
}

/// Displays in the paper's style: `(a_{n-1} … a_0)` = slot order,
/// space-separated, e.g. `(3 2 1 0)`.
impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        for n in 1..=MAX_N {
            let id = Perm::identity(n);
            assert_eq!(id.len(), n);
            assert!(id.is_identity());
            assert_eq!(id.inverse(), id);
            assert_eq!(id.misplaced(), 0);
        }
    }

    #[test]
    fn identity_rejects_bad_lengths() {
        assert_eq!(Perm::try_identity(0), Err(PermError::BadLength(0)));
        assert_eq!(
            Perm::try_identity(MAX_N + 1),
            Err(PermError::BadLength(MAX_N + 1))
        );
    }

    #[test]
    fn from_slice_validates() {
        assert!(Perm::from_slice(&[0, 1, 2]).is_ok());
        assert_eq!(
            Perm::from_slice(&[0, 3, 1]),
            Err(PermError::SymbolOutOfRange { symbol: 3, n: 3 })
        );
        assert_eq!(
            Perm::from_slice(&[0, 1, 1]),
            Err(PermError::DuplicateSymbol(1))
        );
        assert_eq!(Perm::from_slice(&[]), Err(PermError::BadLength(0)));
    }

    #[test]
    fn inverse_is_involutive_on_samples() {
        let p = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
        assert_eq!(p.inverse().inverse(), p);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn slot_and_symbol_agree() {
        let p = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
        for i in 0..p.len() {
            assert_eq!(p.slot_of(p.symbol_at(i)), i);
        }
    }

    #[test]
    fn swap_symbols_matches_paper_example() {
        // Definition 1 example: π = (3 1 4 2 0), π_(2,3) = (2 1 4 3 0).
        let p = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
        let q = p.with_symbols_swapped(2, 3);
        assert_eq!(q.as_slice(), &[2, 1, 4, 3, 0]);
    }

    #[test]
    fn swap_slots_and_symbols_are_involutions() {
        let p = Perm::from_slice(&[1, 3, 0, 2]).unwrap();
        assert_eq!(p.with_slots_swapped(1, 2).with_slots_swapped(1, 2), p);
        assert_eq!(p.with_symbols_swapped(0, 3).with_symbols_swapped(0, 3), p);
    }

    #[test]
    fn hamming_and_misplaced() {
        let id = Perm::identity(4);
        let p = Perm::from_slice(&[1, 0, 2, 3]).unwrap();
        assert_eq!(p.misplaced(), 2);
        assert_eq!(p.hamming(&id), 2);
        assert_eq!(p.hamming(&p), 0);
    }

    #[test]
    fn compose_associates() {
        let a = Perm::from_slice(&[1, 2, 0]).unwrap();
        let b = Perm::from_slice(&[2, 0, 1]).unwrap();
        let c = Perm::from_slice(&[0, 2, 1]).unwrap();
        assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn display_matches_paper_style() {
        let p = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
        assert_eq!(p.to_string(), "(3 2 1 0)");
    }

    #[test]
    fn relative_to_identity_is_self() {
        let p = Perm::from_slice(&[2, 0, 3, 1]).unwrap();
        assert_eq!(p.relative_to(&Perm::identity(4)), p);
        assert!(p.relative_to(&p).is_identity());
    }
}
