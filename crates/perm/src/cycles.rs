//! Cycle structure of permutations.
//!
//! The exact star-graph distance formula (Akers–Krishnamurthy, used by
//! the paper's §2 property list and Lemma 2) is a function of the
//! cycle structure of a node's permutation: `m + c` or `m + c − 2`
//! where `m` counts misplaced symbols and `c` counts nontrivial
//! cycles. This module computes those quantities.

use crate::Perm;

/// Cycle decomposition of a permutation, in canonical form: each cycle
/// starts with its smallest element and cycles are sorted by that
/// leader. Fixed points (1-cycles) are *excluded*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStructure {
    /// Nontrivial cycles (length ≥ 2), canonical order. Each cycle
    /// lists *slots*: `cycle[k+1] = p[cycle[k]]` … i.e. it follows the
    /// mapping `slot i ↦ symbol p[i]` interpreted as `i ↦ p(i)`.
    pub cycles: Vec<Vec<u8>>,
    /// Number of fixed points (slots holding their own index).
    pub fixed_points: usize,
}

impl CycleStructure {
    /// Total number of elements on nontrivial cycles (the paper's /
    /// Akers–Krishnamurthy `m`: misplaced symbols).
    #[must_use]
    pub fn moved(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum()
    }

    /// Number of nontrivial cycles (`c` in the distance formula).
    #[must_use]
    pub fn nontrivial_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// `true` iff `slot` lies on some nontrivial cycle.
    #[must_use]
    pub fn is_moved(&self, slot: u8) -> bool {
        self.cycles.iter().any(|c| c.contains(&slot))
    }
}

/// Computes the canonical cycle decomposition of `p` (viewing `p` as
/// the function `i ↦ p[i]` on `0..n`).
#[must_use]
pub fn cycle_structure(p: &Perm) -> CycleStructure {
    let n = p.len();
    let s = p.as_slice();
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    let mut fixed_points = 0usize;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        if s[start] as usize == start {
            seen[start] = true;
            fixed_points += 1;
            continue;
        }
        let mut cyc = vec![start as u8];
        seen[start] = true;
        let mut cur = s[start] as usize;
        while cur != start {
            seen[cur] = true;
            cyc.push(cur as u8);
            cur = s[cur] as usize;
        }
        cycles.push(cyc);
    }
    CycleStructure {
        cycles,
        fixed_points,
    }
}

/// Parity of the permutation: `true` iff `p` is even (an even number
/// of transpositions). A cycle of length `ℓ` contributes `ℓ − 1`
/// transpositions.
#[must_use]
pub fn is_even(p: &Perm) -> bool {
    let cs = cycle_structure(p);
    let transpositions: usize = cs.cycles.iter().map(|c| c.len() - 1).sum();
    transpositions.is_multiple_of(2)
}

/// Sign of the permutation: `+1` for even, `−1` for odd.
#[must_use]
pub fn sign(p: &Perm) -> i8 {
    if is_even(p) {
        1
    } else {
        -1
    }
}

/// Minimum number of (arbitrary) transpositions expressing `p`:
/// `n − (#cycles including fixed points)`. This is the Cayley distance
/// — a lower bound for the star-graph distance, useful as a sanity
/// check in tests.
#[must_use]
pub fn cayley_distance(p: &Perm) -> usize {
    let cs = cycle_structure(p);
    let total_cycles = cs.cycles.len() + cs.fixed_points;
    p.len() - total_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorial::factorial;
    use crate::lehmer::unrank;

    #[test]
    fn identity_has_no_nontrivial_cycles() {
        let cs = cycle_structure(&Perm::identity(5));
        assert!(cs.cycles.is_empty());
        assert_eq!(cs.fixed_points, 5);
        assert_eq!(cs.moved(), 0);
        assert!(is_even(&Perm::identity(5)));
    }

    #[test]
    fn single_transposition() {
        let p = Perm::from_slice(&[0, 2, 1, 3]).unwrap();
        let cs = cycle_structure(&p);
        assert_eq!(cs.cycles, vec![vec![1, 2]]);
        assert_eq!(cs.fixed_points, 2);
        assert_eq!(cs.moved(), 2);
        assert!(!is_even(&p));
        assert_eq!(sign(&p), -1);
        assert_eq!(cayley_distance(&p), 1);
    }

    #[test]
    fn three_cycle() {
        // 0 -> 1 -> 2 -> 0
        let p = Perm::from_slice(&[1, 2, 0]).unwrap();
        let cs = cycle_structure(&p);
        assert_eq!(cs.cycles, vec![vec![0, 1, 2]]);
        assert!(is_even(&p));
        assert_eq!(cayley_distance(&p), 2);
    }

    #[test]
    fn canonical_ordering() {
        // Two 2-cycles: (0 3)(1 2); leaders 0 and 1 in order.
        let p = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
        let cs = cycle_structure(&p);
        assert_eq!(cs.cycles, vec![vec![0, 3], vec![1, 2]]);
        assert!(is_even(&p));
        assert_eq!(cayley_distance(&p), 2);
    }

    #[test]
    fn moved_equals_misplaced_everywhere_small() {
        for n in 1..=6 {
            for r in 0..factorial(n) {
                let p = unrank(r, n).unwrap();
                let cs = cycle_structure(&p);
                assert_eq!(cs.moved(), p.misplaced());
                assert_eq!(cs.moved() + cs.fixed_points, n);
            }
        }
    }

    #[test]
    fn sign_is_multiplicative_on_samples() {
        let a = Perm::from_slice(&[1, 0, 2, 3, 4]).unwrap();
        let b = Perm::from_slice(&[0, 1, 3, 2, 4]).unwrap();
        assert_eq!(sign(&a.compose(&b)), sign(&a) * sign(&b));
        let c = Perm::from_slice(&[4, 3, 2, 1, 0]).unwrap();
        assert_eq!(sign(&a.compose(&c)), sign(&a) * sign(&c));
    }

    #[test]
    fn parity_counts_split_evenly() {
        // Exactly half of S_n is even for n >= 2.
        for n in 2..=6 {
            let even = (0..factorial(n))
                .filter(|&r| is_even(&unrank(r, n).unwrap()))
                .count() as u64;
            assert_eq!(even, factorial(n) / 2);
        }
    }
}
