//! Iteration over all permutations of a given length.

use crate::factorial::factorial;
use crate::lehmer::next_perm;
use crate::Perm;

/// Lexicographic iterator over all of `S_n`.
///
/// ```
/// use sg_perm::PermIter;
/// assert_eq!(PermIter::new(3).count(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct PermIter {
    next: Option<Perm>,
    remaining: u64,
}

impl PermIter {
    /// Iterator over all `n!` permutations of `0..n` in lexicographic
    /// order, starting from the identity.
    ///
    /// # Panics
    /// Panics if `n` is 0 or exceeds [`crate::MAX_N`].
    #[must_use]
    pub fn new(n: usize) -> Self {
        PermIter {
            next: Some(Perm::identity(n)),
            remaining: factorial(n),
        }
    }
}

impl Iterator for PermIter {
    type Item = Perm;

    fn next(&mut self) -> Option<Perm> {
        let cur = self.next?;
        self.remaining -= 1;
        let mut succ = cur;
        self.next = next_perm(&mut succ).then_some(succ);
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = usize::try_from(self.remaining).ok();
        (r.unwrap_or(usize::MAX), r)
    }
}

impl ExactSizeIterator for PermIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lehmer::rank;
    use std::collections::HashSet;

    #[test]
    fn yields_exactly_n_factorial_distinct_perms() {
        for n in 1..=6 {
            let all: Vec<Perm> = PermIter::new(n).collect();
            assert_eq!(all.len() as u64, factorial(n));
            let set: HashSet<Perm> = all.iter().copied().collect();
            assert_eq!(set.len(), all.len());
        }
    }

    #[test]
    fn yields_in_rank_order() {
        for (i, p) in PermIter::new(5).enumerate() {
            assert_eq!(rank(&p), i as u64);
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = PermIter::new(4);
        assert_eq!(it.len(), 24);
        it.next();
        assert_eq!(it.len(), 23);
        assert_eq!(it.by_ref().count(), 23);
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn n_equals_one() {
        let all: Vec<Perm> = PermIter::new(1).collect();
        assert_eq!(all, vec![Perm::identity(1)]);
    }
}
