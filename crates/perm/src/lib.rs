//! # sg-perm — permutation engine
//!
//! Substrate crate for the star-graph mesh-embedding reproduction of
//! Ranka, Wang & Yeh, *Embedding Meshes on the Star Graph* (SC'90).
//!
//! Nodes of the star graph `S_n` are permutations of the symbols
//! `0..n`, and the paper's embedding (`CONVERT-D-S` / `CONVERT-S-D`)
//! is a bijection between mixed-radix mesh coordinates and permutations.
//! This crate provides the permutation machinery everything else builds
//! on:
//!
//! * [`Perm`] — a fixed-capacity, heap-free permutation value
//!   (supports `n ≤ 20`, the largest `n` for which `n!` fits in `u64`),
//! * ranking and unranking via Lehmer codes ([`lehmer`]),
//! * the factorial number system ([`factorial`]),
//! * cycle-structure queries used by the star-graph distance formula
//!   ([`cycles`]),
//! * lexicographic iteration over all of `S_n` ([`iter`]),
//! * applying permutations to data slices ([`apply`]).
//!
//! ## Conventions
//!
//! A [`Perm`] is an array `p` where `p[i]` is the **symbol stored in
//! slot `i`**. Slots are abstract positions; which slot is the star
//! graph's "front" is decided by the `sg-star` crate (slot `0`). The
//! paper writes nodes as `(a_{n-1} … a_1 a_0)` with positions numbered
//! from the *right*; throughout this workspace, display slot `i`
//! (left-to-right) therefore corresponds to the paper's position
//! `n-1-i`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod cycles;
pub mod factorial;
pub mod iter;
pub mod lehmer;
mod perm;

pub use iter::PermIter;
pub use perm::{Perm, PermError, MAX_N};

/// Result alias for fallible permutation constructors.
pub type Result<T> = std::result::Result<T, PermError>;
