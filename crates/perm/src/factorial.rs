//! The factorial number system (factoradic) and factorial helpers.
//!
//! The star graph `S_n` has `n!` nodes and the mesh `D_n` of shape
//! `2 × 3 × ⋯ × n` has `2·3⋯n = n!` nodes — the paper's expansion-1
//! embedding is possible exactly because both sides count `n!`.
//! Mixed-radix mesh coordinates `(d_{n-1}, …, d_1)` with `d_i ∈ 0..=i`
//! are *precisely* factoradic digits, so this module is the numeric
//! backbone of both node indexing schemes.

use crate::{PermError, MAX_N};

/// `FACTORIALS[k] = k!` for `k ≤ 20` (the largest factorial fitting in `u64`).
pub const FACTORIALS: [u64; MAX_N + 1] = {
    let mut t = [1u64; MAX_N + 1];
    let mut k = 1;
    while k <= MAX_N {
        t[k] = t[k - 1] * k as u64;
        k += 1;
    }
    t
};

/// `k!` as a `u64`.
///
/// # Panics
/// Panics if `k > 20` (would overflow `u64`).
#[inline]
#[must_use]
pub fn factorial(k: usize) -> u64 {
    assert!(k <= MAX_N, "{k}! overflows u64");
    FACTORIALS[k]
}

/// Checked `k!`: `None` if it would overflow `u64`.
#[inline]
#[must_use]
pub fn checked_factorial(k: usize) -> Option<u64> {
    (k <= MAX_N).then(|| FACTORIALS[k])
}

/// Falling factorial `n · (n-1) ⋯ (n-k+1)` (`k` terms), checked.
#[must_use]
pub fn falling_factorial(n: u64, k: u64) -> Option<u64> {
    let mut acc: u64 = 1;
    let mut i = 0;
    while i < k {
        let term = n.checked_sub(i)?;
        acc = acc.checked_mul(term)?;
        i += 1;
    }
    Some(acc)
}

/// Converts `value < n!` to factoradic digits `digits[i] ∈ 0..=i`
/// for `i = 0..n` (digit `i` has radix `i+1`; digit 0 is always 0).
///
/// This is exactly the paper's mesh coordinate tuple: mesh node
/// `(d_{n-1}, …, d_1)` of `D_n` corresponds to digits
/// `d_i = digits[i]`.
///
/// # Errors
/// [`PermError::RankOutOfRange`] if `value >= n!`;
/// [`PermError::BadLength`] if `n` is 0 or exceeds [`MAX_N`].
pub fn to_factoradic(value: u64, n: usize) -> crate::Result<Vec<u8>> {
    if n == 0 || n > MAX_N {
        return Err(PermError::BadLength(n));
    }
    if value >= FACTORIALS[n] {
        return Err(PermError::RankOutOfRange { rank: value, n });
    }
    let mut digits = vec![0u8; n];
    let mut rest = value;
    // Peel digits from the most significant end: digit i has weight i!.
    for i in (1..n).rev() {
        let w = FACTORIALS[i];
        digits[i] = (rest / w) as u8;
        rest %= w;
    }
    debug_assert_eq!(rest, 0);
    Ok(digits)
}

/// Inverse of [`to_factoradic`]: `Σ digits[i] · i!`.
///
/// # Errors
/// [`PermError::BadLength`] for unsupported lengths, and
/// [`PermError::SymbolOutOfRange`] if some `digits[i] > i`.
pub fn from_factoradic(digits: &[u8]) -> crate::Result<u64> {
    let n = digits.len();
    if n == 0 || n > MAX_N {
        return Err(PermError::BadLength(n));
    }
    let mut acc = 0u64;
    for (i, &d) in digits.iter().enumerate() {
        if d as usize > i {
            return Err(PermError::SymbolOutOfRange { symbol: d, n });
        }
        acc += u64::from(d) * FACTORIALS[i];
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_iterative_product() {
        let mut acc = 1u64;
        for k in 1..=MAX_N {
            acc *= k as u64;
            assert_eq!(factorial(k), acc);
        }
        assert_eq!(factorial(0), 1);
    }

    #[test]
    fn twenty_is_the_last_u64_factorial() {
        assert_eq!(checked_factorial(20), Some(2_432_902_008_176_640_000));
        assert_eq!(checked_factorial(21), None);
        // 21! would overflow: 20! * 21 > u64::MAX.
        assert!(factorial(20).checked_mul(21).is_none());
    }

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling_factorial(5, 0), Some(1));
        assert_eq!(falling_factorial(5, 2), Some(20));
        assert_eq!(falling_factorial(5, 5), Some(120));
        assert_eq!(falling_factorial(5, 6), Some(0)); // hits the 5-5 = 0 term
        assert_eq!(falling_factorial(5, 7), None); // 5 - 6 underflows
        assert_eq!(falling_factorial(u64::MAX, 2), None); // overflow
    }

    #[test]
    fn factoradic_roundtrip_exhaustive_small() {
        for n in 1..=6usize {
            for v in 0..factorial(n) {
                let d = to_factoradic(v, n).unwrap();
                assert_eq!(d.len(), n);
                assert_eq!(d[0], 0, "digit 0 has radix 1");
                for (i, &di) in d.iter().enumerate() {
                    assert!(di as usize <= i);
                }
                assert_eq!(from_factoradic(&d).unwrap(), v);
            }
        }
    }

    #[test]
    fn factoradic_rejects_out_of_range() {
        assert!(matches!(
            to_factoradic(6, 3),
            Err(PermError::RankOutOfRange { rank: 6, n: 3 })
        ));
        assert!(to_factoradic(0, 0).is_err());
        assert!(from_factoradic(&[0, 2]).is_err()); // digit 1 must be <= 1
    }

    #[test]
    fn factoradic_is_monotone_in_value() {
        // Lexicographic order of reversed digit strings == numeric order.
        let n = 5;
        let mut prev: Option<Vec<u8>> = None;
        for v in 0..factorial(n) {
            let mut d = to_factoradic(v, n).unwrap();
            d.reverse(); // most-significant first
            if let Some(p) = prev {
                assert!(p < d);
            }
            prev = Some(d);
        }
    }
}
