//! Lehmer-code ranking and unranking of permutations.
//!
//! Graph-scale code (exhaustive dilation sweeps, the SIMD simulator's
//! register files) addresses star-graph nodes by a dense integer id in
//! `0..n!`. We use the classical lexicographic Lehmer rank so that ids
//! are stable, ordered, and independent of any hash state.

use crate::factorial::FACTORIALS;
use crate::{Perm, PermError, MAX_N};

/// Lehmer code of a permutation: `code[i]` counts symbols *after*
/// slot `i` that are smaller than `slots[i]`. `code[n-1]` is always 0.
#[must_use]
pub fn lehmer_code(p: &Perm) -> Vec<u8> {
    let s = p.as_slice();
    let n = s.len();
    let mut code = vec![0u8; n];
    // O(n^2) is optimal in practice for n <= 20 (beats a BIT/Fenwick
    // tree at this size by a wide margin).
    for i in 0..n {
        let mut c = 0u8;
        for j in i + 1..n {
            if s[j] < s[i] {
                c += 1;
            }
        }
        code[i] = c;
    }
    code
}

/// Reconstructs a permutation from its Lehmer code.
///
/// # Errors
/// [`PermError::BadLength`] for unsupported lengths;
/// [`PermError::SymbolOutOfRange`] if `code[i] >= n - i`.
pub fn from_lehmer_code(code: &[u8]) -> crate::Result<Perm> {
    let n = code.len();
    if n == 0 || n > MAX_N {
        return Err(PermError::BadLength(n));
    }
    let mut avail: Vec<u8> = (0..n as u8).collect();
    let mut out = [0u8; MAX_N];
    for (i, &c) in code.iter().enumerate() {
        let c = c as usize;
        if c >= avail.len() {
            return Err(PermError::SymbolOutOfRange { symbol: c as u8, n });
        }
        out[i] = avail.remove(c);
    }
    Perm::from_slice(&out[..n])
}

/// Lexicographic rank of `p` among all permutations of its length:
/// `rank = Σ code[i] · (n-1-i)!`.
#[must_use]
pub fn rank(p: &Perm) -> u64 {
    let n = p.len();
    let code = lehmer_code(p);
    let mut r = 0u64;
    for (i, &c) in code.iter().enumerate() {
        r += u64::from(c) * FACTORIALS[n - 1 - i];
    }
    r
}

/// Inverse of [`rank`]: the `rank`-th permutation of length `n` in
/// lexicographic order.
///
/// # Errors
/// [`PermError::RankOutOfRange`] if `rank >= n!`;
/// [`PermError::BadLength`] for unsupported `n`.
pub fn unrank(rank: u64, n: usize) -> crate::Result<Perm> {
    if n == 0 || n > MAX_N {
        return Err(PermError::BadLength(n));
    }
    if rank >= FACTORIALS[n] {
        return Err(PermError::RankOutOfRange { rank, n });
    }
    let mut avail: Vec<u8> = (0..n as u8).collect();
    let mut out = [0u8; MAX_N];
    let mut rest = rank;
    for i in 0..n {
        let w = FACTORIALS[n - 1 - i];
        let idx = (rest / w) as usize;
        rest %= w;
        out[i] = avail.remove(idx);
    }
    debug_assert_eq!(rest, 0);
    Perm::from_slice(&out[..n])
}

/// Advances `p` to its lexicographic successor in place, returning
/// `false` (and resetting to the identity) when `p` was the last
/// permutation. This is the classical "next permutation" step and
/// lets callers sweep `S_n` without `n!` unrank calls.
pub fn next_perm(p: &mut Perm) -> bool {
    let n = p.len();
    let s = p.as_slice();
    // Find the longest non-increasing suffix.
    let mut i = n - 1;
    while i > 0 && s[i - 1] >= s[i] {
        i -= 1;
    }
    if i == 0 {
        *p = Perm::identity(n);
        return false;
    }
    // Pivot is s[i-1]; find rightmost element greater than it.
    let pivot = s[i - 1];
    let mut j = n - 1;
    while p.as_slice()[j] <= pivot {
        j -= 1;
    }
    p.swap_slots(i - 1, j);
    // Reverse the suffix.
    let (mut lo, mut hi) = (i, n - 1);
    while lo < hi {
        p.swap_slots(lo, hi);
        lo += 1;
        hi -= 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorial::factorial;
    use proptest::prelude::*;

    #[test]
    fn rank_unrank_roundtrip_exhaustive() {
        for n in 1..=6usize {
            for r in 0..factorial(n) {
                let p = unrank(r, n).unwrap();
                assert_eq!(rank(&p), r);
            }
        }
    }

    #[test]
    fn rank_is_lexicographic() {
        let n = 5;
        let mut prev = unrank(0, n).unwrap();
        for r in 1..factorial(n) {
            let p = unrank(r, n).unwrap();
            assert!(prev.as_slice() < p.as_slice());
            prev = p;
        }
    }

    #[test]
    fn identity_has_rank_zero_and_reverse_is_last() {
        for n in 1..=8usize {
            assert_eq!(rank(&Perm::identity(n)), 0);
            let rev: Vec<u8> = (0..n as u8).rev().collect();
            let p = Perm::from_slice(&rev).unwrap();
            assert_eq!(rank(&p), factorial(n) - 1);
        }
    }

    #[test]
    fn lehmer_code_roundtrip() {
        let p = Perm::from_slice(&[3, 1, 4, 2, 0]).unwrap();
        let code = lehmer_code(&p);
        assert_eq!(from_lehmer_code(&code).unwrap(), p);
        // Hand-checked: 3 has 3 smaller after it; 1 has 1; 4 has 2; 2 has 1; 0 has 0.
        assert_eq!(code, vec![3, 1, 2, 1, 0]);
    }

    #[test]
    fn next_perm_enumerates_everything_in_order() {
        let n = 6;
        let mut p = Perm::identity(n);
        let mut count = 1u64;
        while next_perm(&mut p) {
            assert_eq!(rank(&p), count);
            count += 1;
        }
        assert_eq!(count, factorial(n));
        assert!(p.is_identity(), "wraps back to identity");
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        assert!(unrank(719, 6).is_ok());
        assert!(unrank(720, 6).is_err()); // 6! = 720 is the first invalid rank
        assert!(unrank(factorial(6), 6).is_err());
        assert!(unrank(0, 0).is_err());
        assert!(unrank(0, MAX_N + 1).is_err());
    }

    #[test]
    fn from_lehmer_rejects_bad_codes() {
        assert!(from_lehmer_code(&[3, 0, 0]).is_err()); // code[0] must be < 3
        assert!(from_lehmer_code(&[]).is_err());
    }

    proptest! {
        #[test]
        fn prop_rank_unrank_roundtrip(n in 1usize..=12, seed in any::<u64>()) {
            let r = seed % factorial(n);
            let p = unrank(r, n).unwrap();
            prop_assert_eq!(rank(&p), r);
        }

        #[test]
        fn prop_lehmer_roundtrip(n in 1usize..=12, seed in any::<u64>()) {
            let p = unrank(seed % factorial(n), n).unwrap();
            let code = lehmer_code(&p);
            prop_assert_eq!(from_lehmer_code(&code).unwrap(), p);
        }

        #[test]
        fn prop_next_perm_matches_unrank(n in 2usize..=9, seed in any::<u64>()) {
            let r = seed % (factorial(n) - 1);
            let mut p = unrank(r, n).unwrap();
            prop_assert!(next_perm(&mut p));
            prop_assert_eq!(rank(&p), r + 1);
        }
    }
}
