//! Property tests for the permutation kernel: Lehmer-code and
//! cycle-decomposition round-trips, and the apply/compose algebra the
//! SIMD register-file machinery leans on.

use proptest::prelude::*;
use sg_perm::apply::{gather, permute_in_place, scatter};
use sg_perm::cycles::{cycle_structure, is_even, sign};
use sg_perm::factorial::factorial;
use sg_perm::lehmer::{from_lehmer_code, lehmer_code, rank, unrank};
use sg_perm::Perm;

/// Deterministic "random" permutation of length `n` from seed bits.
fn arb_perm(n: usize, seed: u64) -> Perm {
    unrank(seed % factorial(n), n).unwrap()
}

/// Rebuilds a permutation from its cycle decomposition: fixed slots
/// map to themselves, and along each cycle `p[cycle[k]] = cycle[k+1]`
/// (wrapping) — the inverse of `cycle_structure`'s reading.
fn perm_from_cycles(n: usize, cycles: &[Vec<u8>]) -> Perm {
    let mut slots: Vec<u8> = (0..n as u8).collect();
    for cycle in cycles {
        for k in 0..cycle.len() {
            slots[cycle[k] as usize] = cycle[(k + 1) % cycle.len()];
        }
    }
    Perm::from_slice(&slots).unwrap()
}

proptest! {
    /// lehmer → perm → lehmer is the identity on codes.
    #[test]
    fn lehmer_perm_lehmer_roundtrip(n in 1usize..=16, seed in any::<u64>()) {
        let p = arb_perm(n, seed);
        let code = lehmer_code(&p);
        let q = from_lehmer_code(&code).unwrap();
        prop_assert_eq!(q, p);
        prop_assert_eq!(lehmer_code(&q), code);
    }

    /// perm → rank → perm is the identity, and ranks are in range.
    #[test]
    fn rank_unrank_roundtrip(n in 1usize..=16, seed in any::<u64>()) {
        let p = arb_perm(n, seed);
        let r = rank(&p);
        prop_assert!(r < factorial(n));
        prop_assert_eq!(unrank(r, n).unwrap(), p);
    }

    /// cycles → perm → cycles is the identity on canonical structures.
    #[test]
    fn cycles_perm_cycles_roundtrip(n in 1usize..=16, seed in any::<u64>()) {
        let p = arb_perm(n, seed);
        let cs = cycle_structure(&p);
        let rebuilt = perm_from_cycles(n, &cs.cycles);
        prop_assert_eq!(rebuilt, p);
        let cs2 = cycle_structure(&rebuilt);
        prop_assert_eq!(cs2.cycles, cs.cycles);
        prop_assert_eq!(cs2.fixed_points, cs.fixed_points);
        prop_assert_eq!(cs.fixed_points + cs.moved(), n);
    }

    /// apply(inverse(p), apply(p, x)) == x — gathering through `p`
    /// then through `p⁻¹` restores the register file.
    #[test]
    fn apply_inverse_is_identity(n in 1usize..=16, seed in any::<u64>(), salt in any::<u64>()) {
        let p = arb_perm(n, seed);
        let src: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(salt | 1)).collect();
        let mut mid = vec![0u64; n];
        let mut back = vec![0u64; n];
        gather(&p, &src, &mut mid);
        gather(&p.inverse(), &mid, &mut back);
        prop_assert_eq!(back, src);
    }

    /// scatter is gather's inverse *and* equals gathering through the
    /// inverse permutation; in-place permutation matches scatter.
    #[test]
    fn scatter_gather_inverse_laws(n in 1usize..=16, seed in any::<u64>()) {
        let p = arb_perm(n, seed);
        let src: Vec<u64> = (100..100 + n as u64).collect();
        let mut via_scatter = vec![0u64; n];
        scatter(&p, &src, &mut via_scatter);
        let mut via_inv_gather = vec![0u64; n];
        gather(&p.inverse(), &src, &mut via_inv_gather);
        prop_assert_eq!(&via_scatter, &via_inv_gather);
        let mut in_place = src.clone();
        permute_in_place(&p, &mut in_place);
        prop_assert_eq!(in_place, via_scatter);
    }

    /// Composition law: gather(b) after gather(a) == gather(a ∘ b),
    /// matching `compose`'s `i ↦ a[b[i]]` definition.
    #[test]
    fn gather_composition_law(n in 1usize..=16, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = arb_perm(n, s1);
        let b = arb_perm(n, s2);
        let src: Vec<u64> = (0..n as u64).map(|i| 7 * i + 3).collect();
        let mut mid = vec![0u64; n];
        let mut two_step = vec![0u64; n];
        gather(&a, &src, &mut mid);
        gather(&b, &mid, &mut two_step);
        let mut one_step = vec![0u64; n];
        gather(&a.compose(&b), &src, &mut one_step);
        prop_assert_eq!(two_step, one_step);
    }

    /// Group laws: p ∘ p⁻¹ = e, (p⁻¹)⁻¹ = p, and parity is a
    /// homomorphism: sign(a ∘ b) = sign(a) · sign(b).
    #[test]
    fn group_and_parity_laws(n in 1usize..=16, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = arb_perm(n, s1);
        let b = arb_perm(n, s2);
        prop_assert!(a.compose(&a.inverse()).is_identity());
        prop_assert!(a.inverse().compose(&a).is_identity());
        prop_assert_eq!(a.inverse().inverse(), a);
        prop_assert_eq!(sign(&a.compose(&b)), sign(&a) * sign(&b));
        prop_assert_eq!(is_even(&a), sign(&a) == 1);
    }
}

/// Exhaustive seal for small `n`: every permutation of `S_n`, `n ≤ 6`,
/// round-trips through both codecs (no reliance on sampling).
#[test]
fn exhaustive_small_n_roundtrips() {
    for n in 1..=6usize {
        for r in 0..factorial(n) {
            let p = unrank(r, n).unwrap();
            assert_eq!(from_lehmer_code(&lehmer_code(&p)).unwrap(), p);
            let cs = cycle_structure(&p);
            assert_eq!(perm_from_cycles(n, &cs.cycles), p);
        }
    }
}
