//! Offline stand-in for the `criterion` surface this workspace uses.
//!
//! Benches compile and run under `cargo bench` with `harness = false`,
//! printing median wall-clock time per iteration. No statistical
//! analysis, warm-up tuning, or HTML reports — this exists so the
//! bench targets stay compiling, running, and useful for coarse
//! comparisons while offline. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export so `criterion::black_box` call-sites work.
pub use std::hint::black_box;

/// Top-level bench context, passed to every registered bench fn.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 50,
        }
    }

    /// Measures a single standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(50);
        f(&mut b);
        b.report(name);
        self
    }
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&id.into().label);
        self
    }

    /// Benchmarks a function with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.into().label);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handed to the bench closure.
pub struct Bencher {
    samples: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            median_ns: None,
        }
    }

    /// Runs `f` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and a rough calibration of iterations per sample so
        // each sample is long enough for the clock to resolve.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1);
        let iters_per_sample = ((1_000_000 / once).clamp(1, 10_000)) as usize;

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("time is not NaN"));
        self.median_ns = Some(sample_ns[sample_ns.len() / 2]);
    }

    fn report(&self, label: &str) {
        match self.median_ns {
            Some(ns) if ns >= 1_000_000.0 => println!("  {label}: {:.3} ms/iter", ns / 1e6),
            Some(ns) if ns >= 1_000.0 => println!("  {label}: {:.3} µs/iter", ns / 1e3),
            Some(ns) => println!("  {label}: {ns:.1} ns/iter"),
            None => println!("  {label}: (no measurement — b.iter never called)"),
        }
    }
}

/// Registers bench functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).label, "f/7");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
