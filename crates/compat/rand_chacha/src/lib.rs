//! Offline stand-in for `rand_chacha`. Exposes [`ChaCha8Rng`] with the
//! constructor call-sites used in-tree (`seed_from_u64`), but the
//! stream is xoshiro256** seeded through SplitMix64 — **not** the real
//! ChaCha8 stream. Every in-tree use only needs a reproducible seeded
//! stream, not ChaCha compatibility; see `crates/compat/README.md`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seeded generator standing in for ChaCha8.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** (Blackman & Vigna).
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn works_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let v: Vec<u64> = (0..16).map(|_| rng.gen_range(0..1000)).collect();
        assert!(v.iter().all(|&x| x < 1000));
        // Spot-check the stream isn't constant.
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }
}
