//! Offline stand-in for the `proptest` surface this workspace uses.
//!
//! The [`proptest!`] macro expands each property into a plain `#[test]`
//! that runs [`CASES`] deterministic cases: inputs are drawn from a
//! SplitMix64 stream seeded from the test's name, so failures reproduce
//! exactly across runs (like a pinned `proptest` seed). There is **no
//! shrinking** — a failing case panics with its inputs via the regular
//! assert message. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use core::marker::PhantomData;

/// Cases run per property (proptest's default).
pub const CASES: u32 = 256;

/// Deterministic input stream for one property run.
pub struct TestRunner {
    x: u64,
}

impl TestRunner {
    /// Seeds the stream from the property name — stable across runs.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 from there.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { x: h }
    }

    /// Next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of values for one property parameter.
pub trait Strategy {
    /// Type of value produced.
    type Value;
    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((runner.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Wrapping arithmetic so signed ranges crossing zero
                // (lo < 0 <= hi) don't underflow the u128 span.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((runner.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary {
    /// Draws one value from the full domain.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Property-test entry macro. Accepts the standard
/// `proptest! { #[test] fn name(x in strategy, ...) { body } }` form.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::from_name(stringify!($name));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut runner);)+
                    $body
                }
            }
        )+
    };
}

/// Assertion inside a property; panics with the failing inputs'
/// context (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 1usize..=12, x in 0u8..10, s in any::<u64>()) {
            prop_assert!((1..=12).contains(&n));
            prop_assert!(x < 10);
            let _ = s; // whole domain — nothing to bound
        }

        #[test]
        fn multiple_properties_in_one_block(a in 0i64..100, b in 0i64..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }

        #[test]
        fn signed_inclusive_range_crossing_zero(x in -5i32..=5, y in -128i8..=127) {
            prop_assert!((-5..=5).contains(&x));
            let _ = y; // full i8 domain — sampling must not underflow
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut r1 = TestRunner::from_name("same");
        let mut r2 = TestRunner::from_name("same");
        assert_eq!(
            (0..32).map(|_| r1.next_u64()).collect::<Vec<_>>(),
            (0..32).map(|_| r2.next_u64()).collect::<Vec<_>>()
        );
        let mut r3 = TestRunner::from_name("different");
        assert_ne!(r2.next_u64(), r3.next_u64());
    }
}
