//! Offline stand-in for the parts of `rand 0.8` this workspace uses.
//!
//! See `crates/compat/README.md`. Only seeded, reproducible generation
//! is supported — there is no entropy source (`thread_rng` is absent on
//! purpose so nothing silently depends on ambient randomness).

#![forbid(unsafe_code)]

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable "from the uniform/standard distribution" via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < 2^-64 per draw for in-tree spans; fine
                // for a test-only shim.
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Wrapping arithmetic so signed ranges crossing zero
                // (lo < 0 <= hi) don't underflow the u128 span.
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// In-place random reordering and selection on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak mixing step so range draws aren't trivially cyclic.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let t: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&t));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
