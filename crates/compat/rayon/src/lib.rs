//! Offline stand-in for the `rayon` adapters this workspace uses:
//! `(a..b).into_par_iter().map(f).collect::<C>()` and the same with
//! `filter_map`. Work really is fanned out across OS threads
//! (`std::thread::scope`, one chunk per available core), and results
//! are recombined **in input order**, matching rayon's indexed-collect
//! semantics. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Entry point: types convertible into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Item produced.
    type Item: Send;
    /// Converts into the shim parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range!(u8, u16, u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialized work-list awaiting a mapping adapter.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel order-preserving map.
    pub fn map<U, F>(self, f: F) -> ParMapped<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMapped {
            results: run_parallel(self.items, |x| Some(f(x))),
        }
    }

    /// Parallel order-preserving filter-map.
    pub fn filter_map<U, F>(self, f: F) -> ParMapped<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParMapped {
            results: run_parallel(self.items, f),
        }
    }
}

/// Results of a parallel map, ready to collect (already computed; the
/// shim is eager where rayon is lazy, which is observationally
/// equivalent for the in-tree pipelines).
pub struct ParMapped<U> {
    results: Vec<U>,
}

impl<U> ParMapped<U> {
    /// Collects into any `FromIterator` target, preserving input order —
    /// including short-circuiting targets like `Option<Vec<_>>`.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        self.results.into_iter().collect()
    }

    /// Sum of the results.
    pub fn sum<S: core::iter::Sum<U>>(self) -> S {
        self.results.into_iter().sum()
    }

    /// Maximum of the results.
    pub fn max(self) -> Option<U>
    where
        U: Ord,
    {
        self.results.into_iter().max()
    }
}

/// Splits `items` into per-core chunks, maps each chunk on its own
/// scoped thread, and flattens chunk results back in order.
fn run_parallel<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n < 2 {
        return items.into_iter().filter_map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    // Split from the back so each drain is O(chunk).
    while items.len() > chunk {
        chunks.push(items.split_off(items.len() - chunk));
    }
    chunks.push(items);
    chunks.reverse(); // restore input order

    let f = &f;
    let outputs: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().filter_map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_option_short_circuits_on_none() {
        let ok: Option<Vec<u32>> = (0u32..100).into_par_iter().map(Some).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let bad: Option<Vec<u32>> = (0u32..100)
            .into_par_iter()
            .map(|x| if x == 57 { None } else { Some(x) })
            .collect();
        assert!(bad.is_none());
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<usize> = (0usize..1000)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(v, (0usize..1000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn small_and_empty_inputs() {
        let v: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let v: Vec<u32> = (0u32..1).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![1]);
    }
}
