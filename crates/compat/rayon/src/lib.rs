//! Offline stand-in for the `rayon` adapters this workspace uses:
//! `(a..b).into_par_iter().map(f).collect::<C>()`, the same with
//! `filter_map`, the `fold(..).reduce(..)` pair for parallel
//! aggregation, and the [`ParallelSlice::par_chunks`] slice adapter.
//! Work really is fanned out across OS threads
//! (`std::thread::scope`, one chunk per available core), and results
//! are recombined **in input order**, matching rayon's indexed-collect
//! semantics. `fold` produces one partial accumulator per chunk
//! (rayon: one per split) and `reduce` merges the partials in input
//! order, so any associative reduction gives identical results to
//! rayon's. See `crates/compat/README.md`.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Entry point: types convertible into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Item produced.
    type Item: Send;
    /// Converts into the shim parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range!(u8, u16, u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Slices convertible into a parallel iterator over fixed-size
/// chunks — rayon's `par_chunks` adapter. Each item is a `&[T]`
/// sub-slice of at most `chunk_size` elements (the last chunk may be
/// shorter), yielded in slice order, so
/// `data.par_chunks(c).map(f).collect()` equals
/// `data.chunks(c).map(f).collect()` for any pure `f`.
pub trait ParallelSlice<T: Sync> {
    /// Splits into contiguous chunks of at most `chunk_size` items.
    ///
    /// # Panics
    /// Panics if `chunk_size` is 0.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// A materialized work-list awaiting a mapping adapter.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel order-preserving map.
    pub fn map<U, F>(self, f: F) -> ParMapped<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMapped {
            results: run_parallel(self.items, |x| Some(f(x))),
        }
    }

    /// Parallel order-preserving filter-map.
    pub fn filter_map<U, F>(self, f: F) -> ParMapped<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParMapped {
            results: run_parallel(self.items, f),
        }
    }

    /// Parallel fold: each worker folds its chunk into one accumulator
    /// seeded from `identity`, yielding one partial per chunk (rayon
    /// yields one per split). Chain with [`ParMapped::reduce`] — for
    /// an associative `fold_op`/`reduce` pair the combined result is
    /// independent of the chunking.
    pub fn fold<U, ID, F>(self, identity: ID, fold_op: F) -> ParMapped<U>
    where
        U: Send,
        ID: Fn() -> U + Sync,
        F: Fn(U, T) -> U + Sync,
    {
        let partials = run_parallel_chunks(self.items, |chunk| {
            chunk.into_iter().fold(identity(), &fold_op)
        });
        ParMapped { results: partials }
    }
}

/// Results of a parallel map, ready to collect (already computed; the
/// shim is eager where rayon is lazy, which is observationally
/// equivalent for the in-tree pipelines).
pub struct ParMapped<U> {
    results: Vec<U>,
}

impl<U> ParMapped<U> {
    /// Collects into any `FromIterator` target, preserving input order —
    /// including short-circuiting targets like `Option<Vec<_>>`.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        self.results.into_iter().collect()
    }

    /// Sum of the results.
    pub fn sum<S: core::iter::Sum<U>>(self) -> S {
        self.results.into_iter().sum()
    }

    /// Maximum of the results.
    pub fn max(self) -> Option<U>
    where
        U: Ord,
    {
        self.results.into_iter().max()
    }

    /// Reduces the results with `op`, seeded from `identity` and
    /// merging in input order (rayon merges split results pairwise;
    /// both agree whenever `op` is associative with `identity()` as a
    /// neutral element, which rayon requires anyway).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync,
        OP: Fn(U, U) -> U + Sync,
    {
        self.results.into_iter().fold(identity(), op)
    }
}

/// Splits `items` into at most `threads` contiguous chunks,
/// preserving input order.
fn split_chunks<T>(mut items: Vec<T>, threads: usize) -> Vec<Vec<T>> {
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    // Split from the back so each drain is O(chunk).
    while items.len() > chunk {
        chunks.push(items.split_off(items.len() - chunk));
    }
    chunks.push(items);
    chunks.reverse(); // restore input order
    chunks
}

/// Worker count for an input of `n` items.
fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1))
}

/// Splits `items` into per-core chunks, maps each chunk on its own
/// scoped thread, and flattens chunk results back in order.
fn run_parallel<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> Option<U> + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 || n < 2 {
        return items.into_iter().filter_map(f).collect();
    }
    let f = &f;
    run_parallel_chunks_inner(split_chunks(items, threads), move |c| {
        c.into_iter().filter_map(f).collect::<Vec<U>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Splits `items` into per-core chunks and maps each whole chunk to
/// one output on its own scoped thread, returning per-chunk outputs in
/// input order (the engine behind [`ParIter::fold`]).
fn run_parallel_chunks<T, U, G>(items: Vec<T>, g: G) -> Vec<U>
where
    T: Send,
    U: Send,
    G: Fn(Vec<T>) -> U + Sync,
{
    let n = items.len();
    let threads = worker_count(n);
    if threads <= 1 || n < 2 {
        return vec![g(items)];
    }
    run_parallel_chunks_inner(split_chunks(items, threads), &g)
}

fn run_parallel_chunks_inner<T, U, G>(chunks: Vec<Vec<T>>, g: G) -> Vec<U>
where
    T: Send,
    U: Send,
    G: Fn(Vec<T>) -> U + Sync,
{
    let g = &g;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks.into_iter().map(|c| s.spawn(move || g(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_option_short_circuits_on_none() {
        let ok: Option<Vec<u32>> = (0u32..100).into_par_iter().map(Some).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let bad: Option<Vec<u32>> = (0u32..100)
            .into_par_iter()
            .map(|x| if x == 57 { None } else { Some(x) })
            .collect();
        assert!(bad.is_none());
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<usize> = (0usize..1000)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(v, (0usize..1000).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let total: u64 = (0u64..100_000)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, (0u64..100_000).sum::<u64>());
    }

    #[test]
    fn fold_reduce_histogram_merge() {
        // The sg-net use-case in miniature: fold values into per-chunk
        // histograms, reduce by element-wise merge.
        let hist = (0usize..10_000)
            .into_par_iter()
            .fold(
                || vec![0u64; 7],
                |mut h, x| {
                    h[x % 7] += 1;
                    h
                },
            )
            .reduce(
                || vec![0u64; 7],
                |mut a, b| {
                    for (s, v) in a.iter_mut().zip(b) {
                        *s += v;
                    }
                    a
                },
            );
        let mut expect = vec![0u64; 7];
        for x in 0usize..10_000 {
            expect[x % 7] += 1;
        }
        assert_eq!(hist, expect);
    }

    #[test]
    fn map_then_reduce() {
        let m = (1u64..1001)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, u64::max);
        assert_eq!(m, 1_000_000);
    }

    #[test]
    fn fold_reduce_tiny_inputs() {
        let one: u32 = (0u32..1)
            .into_par_iter()
            .fold(|| 0u32, |a, x| a + x + 1)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(one, 1);
        let zero: u32 = (0u32..0)
            .into_par_iter()
            .fold(|| 0u32, |a, _| a + 1)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(zero, 0);
    }

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        let data: Vec<u64> = (0..10_000).collect();
        let sums: Vec<u64> = data.par_chunks(97).map(|c| c.iter().sum::<u64>()).collect();
        let expect: Vec<u64> = data.chunks(97).map(|c| c.iter().sum::<u64>()).collect();
        assert_eq!(sums, expect);
        // Chunk boundaries are preserved: re-concatenation round-trips.
        let cat: Vec<u64> = data
            .par_chunks(1000)
            .map(<[u64]>::to_vec)
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(cat, data);
    }

    #[test]
    fn par_chunks_edge_sizes() {
        let data = [1u32, 2, 3];
        // Oversized chunk: one slice with everything.
        let whole: Vec<Vec<u32>> = data.par_chunks(64).map(<[u32]>::to_vec).collect();
        assert_eq!(whole, vec![vec![1, 2, 3]]);
        // Size 1: one slice per element.
        let singles: Vec<u32> = data.par_chunks(1).map(|c| c[0]).collect();
        assert_eq!(singles, vec![1, 2, 3]);
        // Empty slice: no chunks at all.
        let empty: Vec<Vec<u32>> = [].par_chunks(4).map(<[u32]>::to_vec).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn small_and_empty_inputs() {
        let v: Vec<u32> = (0u32..0).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let v: Vec<u32> = (0u32..1).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, vec![1]);
    }
}
