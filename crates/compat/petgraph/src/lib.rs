//! Offline stand-in for the `petgraph` surface this workspace uses.
//!
//! Deliberately implemented *differently* from `sg-graph` (adjacency
//! lists + binary-heap Dijkstra + union-find components, vs CSR + BFS)
//! so the cross-check tests still compare two independent code paths.
//! See `crates/compat/README.md`.

#![forbid(unsafe_code)]

/// Graph types.
pub mod graph {
    use core::marker::PhantomData;

    /// Dense node handle.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct NodeIndex(usize);

    impl NodeIndex {
        /// Wraps a dense index.
        #[must_use]
        pub fn new(i: usize) -> Self {
            NodeIndex(i)
        }

        /// The dense index back.
        #[must_use]
        pub fn index(self) -> usize {
            self.0
        }
    }

    /// Undirected graph with node weights `N` and edge weights `E`.
    pub struct UnGraph<N, E> {
        pub(crate) weights: Vec<N>,
        pub(crate) adj: Vec<Vec<(usize, usize)>>, // (neighbor, edge id)
        pub(crate) edges: Vec<(usize, usize)>,
        pub(crate) _e: PhantomData<E>,
    }

    impl<N, E> UnGraph<N, E> {
        /// Empty undirected graph.
        #[must_use]
        pub fn new_undirected() -> Self {
            UnGraph {
                weights: Vec::new(),
                adj: Vec::new(),
                edges: Vec::new(),
                _e: PhantomData,
            }
        }

        /// Adds a node, returning its handle.
        pub fn add_node(&mut self, weight: N) -> NodeIndex {
            self.weights.push(weight);
            self.adj.push(Vec::new());
            NodeIndex(self.weights.len() - 1)
        }

        /// Adds an undirected edge `a — b`.
        pub fn add_edge(&mut self, a: NodeIndex, b: NodeIndex, _weight: E) {
            let id = self.edges.len();
            self.edges.push((a.0, b.0));
            self.adj[a.0].push((b.0, id));
            if a.0 != b.0 {
                self.adj[b.0].push((a.0, id));
            }
        }

        /// Number of nodes.
        #[must_use]
        pub fn node_count(&self) -> usize {
            self.weights.len()
        }

        /// Number of edges.
        #[must_use]
        pub fn edge_count(&self) -> usize {
            self.edges.len()
        }
    }
}

/// Graph algorithms.
pub mod algo {
    use crate::graph::{NodeIndex, UnGraph};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};

    /// Single-source shortest paths with non-negative edge costs.
    /// Returns the cost map over *reachable* nodes, like petgraph's.
    pub fn dijkstra<N, E, K, F>(
        graph: &UnGraph<N, E>,
        start: NodeIndex,
        goal: Option<NodeIndex>,
        mut edge_cost: F,
    ) -> HashMap<NodeIndex, K>
    where
        K: Copy + Ord + Default + core::ops::Add<Output = K>,
        F: FnMut(()) -> K,
    {
        let mut dist: HashMap<NodeIndex, K> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
        dist.insert(start, K::default());
        heap.push(Reverse((K::default(), start.index())));
        while let Some(Reverse((d, u))) = heap.pop() {
            let u_idx = NodeIndex::new(u);
            if dist.get(&u_idx).is_some_and(|&best| d > best) {
                continue;
            }
            if goal == Some(u_idx) {
                break;
            }
            for &(v, _eid) in &graph.adj[u] {
                let nd = d + edge_cost(());
                let v_idx = NodeIndex::new(v);
                if dist.get(&v_idx).is_none_or(|&cur| nd < cur) {
                    dist.insert(v_idx, nd);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// Number of connected components (union-find).
    pub fn connected_components<N, E>(graph: &UnGraph<N, E>) -> usize {
        let n = graph.node_count();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut components = n;
        for &(a, b) in &graph.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
                components -= 1;
            }
        }
        components
    }
}

#[cfg(test)]
mod tests {
    use super::algo::{connected_components, dijkstra};
    use super::graph::{NodeIndex, UnGraph};

    fn path_graph(n: usize) -> UnGraph<(), ()> {
        let mut g = UnGraph::new_undirected();
        let nodes: Vec<NodeIndex> = (0..n).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    #[test]
    fn dijkstra_on_a_path() {
        let g = path_graph(5);
        let d = dijkstra(&g, NodeIndex::new(0), None, |_| 1u32);
        for v in 0..5 {
            assert_eq!(d[&NodeIndex::new(v)], v as u32);
        }
    }

    #[test]
    fn unreachable_nodes_are_absent() {
        let mut g = path_graph(3);
        g.add_node(()); // isolated
        let d = dijkstra(&g, NodeIndex::new(0), None, |_| 1u32);
        assert_eq!(d.len(), 3);
        assert!(!d.contains_key(&NodeIndex::new(3)));
    }

    #[test]
    fn component_counting() {
        let mut g = UnGraph::<(), ()>::new_undirected();
        let v: Vec<NodeIndex> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(v[0], v[1], ());
        g.add_edge(v[1], v[2], ());
        g.add_edge(v[3], v[4], ());
        assert_eq!(connected_components(&g), 3);
    }
}
