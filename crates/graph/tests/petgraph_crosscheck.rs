//! Cross-validates our CSR/BFS implementation against petgraph, an
//! independent graph library (dev-dependency only; nothing in the
//! shipped library path depends on it).

use petgraph::algo::dijkstra;
use petgraph::graph::{NodeIndex, UnGraph};
use sg_graph::bfs::bfs;
use sg_graph::{builders, CsrGraph};

fn to_petgraph(g: &CsrGraph) -> UnGraph<(), ()> {
    let mut pg = UnGraph::<(), ()>::new_undirected();
    let nodes: Vec<NodeIndex> = (0..g.node_count()).map(|_| pg.add_node(())).collect();
    for (a, b) in g.edges() {
        pg.add_edge(nodes[a as usize], nodes[b as usize], ());
    }
    pg
}

fn check_distances_match(g: &CsrGraph) {
    let pg = to_petgraph(g);
    for src in 0..g.node_count().min(50) {
        let ours = bfs(g, src as u32);
        let theirs = dijkstra(&pg, NodeIndex::new(src), None, |_| 1u32);
        for v in 0..g.node_count() {
            let pd = theirs.get(&NodeIndex::new(v)).copied();
            match pd {
                Some(d) => assert_eq!(ours.dist[v], d, "src {src} dst {v}"),
                None => assert_eq!(ours.dist[v], sg_graph::bfs::UNREACHABLE),
            }
        }
    }
}

#[test]
fn bfs_matches_petgraph_on_star_graph() {
    check_distances_match(&builders::star_graph(4));
    check_distances_match(&builders::star_graph(5));
}

#[test]
fn bfs_matches_petgraph_on_meshes() {
    check_distances_match(&builders::mesh(&[2, 3, 4]));
    check_distances_match(&builders::mesh(&[5, 5]));
    check_distances_match(&builders::torus(&[4, 3]));
}

#[test]
fn bfs_matches_petgraph_on_hypercube_and_bubblesort() {
    check_distances_match(&builders::hypercube(5));
    check_distances_match(&builders::bubble_sort_graph(4));
}

#[test]
fn connected_components_agree() {
    let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
    let pg = to_petgraph(&g);
    assert_eq!(petgraph::algo::connected_components(&pg), 3);
    assert!(!sg_graph::bfs::is_connected(&g));
}
