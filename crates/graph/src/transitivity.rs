//! Vertex-transitivity checks.
//!
//! §2 property 1: "Each node is symmetrical to every other node" —
//! i.e. the star graph is vertex-transitive. For small graphs we
//! verify this *exactly* by exhibiting, for every vertex `v`, a graph
//! automorphism mapping a base vertex to `v` (backtracking search with
//! BFS-level pruning). For larger graphs the cheap necessary condition
//! (identical per-node distance profiles) is exposed separately.
//! `sg-star` additionally verifies the *algebraic* automorphisms
//! (left translations of the Cayley graph) directly.

use crate::bfs::bfs;
use crate::csr::{CsrGraph, NodeId};

/// Necessary condition for vertex-transitivity: every node sees the
/// same multiset of distances to all other nodes. Cheap (`n` BFS
/// sweeps) but not sufficient in general.
#[must_use]
pub fn distance_profiles_identical(g: &CsrGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let profile = |v: NodeId| {
        let mut d = bfs(g, v).dist;
        d.sort_unstable();
        d
    };
    let base = profile(0);
    (1..n as NodeId).all(|v| profile(v) == base)
}

/// Searches for a graph automorphism `φ` with `φ(u) = v`.
/// Returns the full vertex map on success.
///
/// Backtracking over vertices in BFS order from `u`, pruning by
/// degree, BFS level (`dist(u, x) = dist(v, φ(x))`), and adjacency
/// consistency with all previously assigned vertices. Exponential in
/// the worst case — intended for graphs of ≲ a few hundred nodes
/// (asymmetric inputs fail fast at the first level).
#[must_use]
pub fn find_automorphism(g: &CsrGraph, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    if g.degree(u) != g.degree(v) {
        return None;
    }
    let du = bfs(g, u).dist;
    let dv = bfs(g, v).dist;
    {
        let mut a = du.clone();
        let mut b = dv.clone();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            return None;
        }
    }
    // Assign vertices in BFS order from u: each new vertex has an
    // already-assigned neighbor, which sharply restricts candidates.
    let order = {
        let mut idx: Vec<NodeId> = (0..n as NodeId).collect();
        idx.sort_by_key(|&x| du[x as usize]);
        idx
    };
    let mut image = vec![NodeId::MAX; n]; // φ
    let mut used = vec![false; n];
    image[u as usize] = v;
    used[v as usize] = true;

    fn consistent(g: &CsrGraph, image: &[NodeId], x: NodeId, w: NodeId) -> bool {
        // Adjacency (and non-adjacency) with every assigned vertex must
        // be preserved. Checking x's full row suffices when done for
        // every newly assigned vertex.
        for y in 0..image.len() as NodeId {
            let fy = image[y as usize];
            if fy == NodeId::MAX || y == x {
                continue;
            }
            if g.has_edge(x, y) != g.has_edge(w, fy) {
                return false;
            }
        }
        true
    }

    fn backtrack(
        g: &CsrGraph,
        order: &[NodeId],
        pos: usize,
        du: &[u32],
        dv: &[u32],
        image: &mut Vec<NodeId>,
        used: &mut Vec<bool>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let x = order[pos];
        if image[x as usize] != NodeId::MAX {
            return backtrack(g, order, pos + 1, du, dv, image, used);
        }
        for w in 0..g.node_count() as NodeId {
            if used[w as usize]
                || g.degree(w) != g.degree(x)
                || dv[w as usize] != du[x as usize]
                || !consistent(g, image, x, w)
            {
                continue;
            }
            image[x as usize] = w;
            used[w as usize] = true;
            if backtrack(g, order, pos + 1, du, dv, image, used) {
                return true;
            }
            image[x as usize] = NodeId::MAX;
            used[w as usize] = false;
        }
        false
    }

    backtrack(g, &order, 0, &du, &dv, &mut image, &mut used).then_some(image)
}

/// Exact vertex-transitivity: exhibits an automorphism `0 ↦ v` for
/// every `v`. Exponential worst case; use on small graphs only.
#[must_use]
pub fn is_vertex_transitive(g: &CsrGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    if g.regular_degree().is_none() {
        return false;
    }
    (1..n as NodeId).all(|v| find_automorphism(g, 0, v).is_some())
}

/// Verifies that an explicit vertex map is an automorphism (a
/// bijection preserving adjacency both ways).
#[must_use]
pub fn is_automorphism(g: &CsrGraph, map: &[NodeId]) -> bool {
    let n = g.node_count();
    if map.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &w in map {
        if (w as usize) >= n || seen[w as usize] {
            return false;
        }
        seen[w as usize] = true;
    }
    g.edges()
        .all(|(a, b)| g.has_edge(map[a as usize], map[b as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cycle_is_vertex_transitive() {
        assert!(is_vertex_transitive(&builders::cycle_graph(7)));
    }

    #[test]
    fn path_is_not_vertex_transitive() {
        assert!(!is_vertex_transitive(&builders::path_graph(4)));
        assert!(!distance_profiles_identical(&builders::path_graph(4)));
    }

    #[test]
    fn hypercube_is_vertex_transitive() {
        assert!(is_vertex_transitive(&builders::hypercube(3)));
    }

    #[test]
    fn star_graph_s4_is_vertex_transitive() {
        // §2 property 1 for the Figure-2 graph.
        let g = builders::star_graph(4);
        assert!(distance_profiles_identical(&g));
        assert!(is_vertex_transitive(&g));
    }

    #[test]
    fn mesh_2x3_is_not_vertex_transitive() {
        let g = builders::mesh(&[2, 3]);
        assert!(!is_vertex_transitive(&g));
    }

    #[test]
    fn explicit_automorphism_check() {
        let g = builders::cycle_graph(5);
        // Rotation by 1 is an automorphism; an arbitrary non-bijection
        // or adjacency-breaking map is not.
        let rot: Vec<NodeId> = (0..5).map(|v| (v + 1) % 5).collect();
        assert!(is_automorphism(&g, &rot));
        assert!(!is_automorphism(&g, &[0, 0, 1, 2, 3]));
        let swap02: Vec<NodeId> = vec![2, 1, 0, 3, 4];
        assert!(!is_automorphism(&g, &swap02));
    }

    #[test]
    fn found_automorphisms_are_valid() {
        let g = builders::star_graph(3); // 6-cycle
        for v in 0..6 {
            let m = find_automorphism(&g, 0, v).expect("vertex-transitive");
            assert!(is_automorphism(&g, &m));
            assert_eq!(m[0], v);
        }
    }

    #[test]
    fn automorphism_respects_degree_mismatch() {
        // K_1,3: center has degree 3, leaves 1.
        let g = crate::csr::CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(find_automorphism(&g, 0, 1).is_none());
        assert!(find_automorphism(&g, 1, 2).is_some());
    }
}
