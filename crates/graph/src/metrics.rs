//! Whole-graph distance metrics (diameter, radius, distributions).
//!
//! These back the §2 property checks — notably "the diameter `k_n` of
//! the star graph `S_n` is `⌊3(n−1)/2⌋`" — and the distance-histogram
//! evidence used by the figure regenerators. All-pairs sweeps run one
//! BFS per node, parallelized with rayon per the HPC guides.

use crate::bfs::{bfs, UNREACHABLE};
use crate::csr::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Diameter (max finite eccentricity); `None` if disconnected.
#[must_use]
pub fn diameter(g: &CsrGraph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().max().unwrap_or(0))
}

/// Radius (min eccentricity); `None` if disconnected.
#[must_use]
pub fn radius(g: &CsrGraph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().min().unwrap_or(0))
}

/// Eccentricity of every node; `None` if the graph is disconnected.
#[must_use]
pub fn eccentricities(g: &CsrGraph) -> Option<Vec<u32>> {
    let n = g.node_count();
    if n == 0 {
        return Some(Vec::new());
    }
    (0..n as NodeId)
        .into_par_iter()
        .map(|v| bfs(g, v).eccentricity())
        .collect::<Option<Vec<u32>>>()
}

/// Histogram of pairwise distances: `hist[d]` counts *ordered* pairs
/// `(u, v)`, `u ≠ v`, at distance `d`. `None` if disconnected.
#[must_use]
pub fn distance_histogram(g: &CsrGraph) -> Option<Vec<u64>> {
    let n = g.node_count();
    if n == 0 {
        return Some(Vec::new());
    }
    let per_node: Option<Vec<Vec<u64>>> = (0..n as NodeId)
        .into_par_iter()
        .map(|v| {
            let t = bfs(g, v);
            let mut h: Vec<u64> = Vec::new();
            for &d in &t.dist {
                if d == UNREACHABLE {
                    return None;
                }
                let d = d as usize;
                if h.len() <= d {
                    h.resize(d + 1, 0);
                }
                h[d] += 1;
            }
            Some(h)
        })
        .collect();
    let per_node = per_node?;
    let maxlen = per_node.iter().map(Vec::len).max().unwrap_or(0);
    let mut total = vec![0u64; maxlen];
    for h in per_node {
        for (d, c) in h.into_iter().enumerate() {
            total[d] += c;
        }
    }
    if !total.is_empty() {
        total[0] -= n as u64; // drop the (v, v) self-pairs
        debug_assert_eq!(total[0], 0);
    }
    Some(total)
}

/// Mean pairwise distance over ordered distinct pairs; `None` if
/// disconnected or fewer than two nodes.
#[must_use]
pub fn mean_distance(g: &CsrGraph) -> Option<f64> {
    let hist = distance_histogram(g)?;
    let pairs: u64 = hist.iter().sum();
    if pairs == 0 {
        return None;
    }
    let weighted: u64 = hist.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
    Some(weighted as f64 / pairs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cycle_diameter_radius() {
        let g = builders::cycle_graph(8);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(radius(&g), Some(4));
    }

    #[test]
    fn path_diameter_vs_radius() {
        let g = builders::path_graph(9);
        assert_eq!(diameter(&g), Some(8));
        assert_eq!(radius(&g), Some(4));
    }

    #[test]
    fn star_diameter_formula_small() {
        // Paper §2 property 2: k_n = floor(3(n-1)/2).
        for n in 2..=6usize {
            let g = builders::star_graph(n);
            let expect = (3 * (n - 1) / 2) as u32;
            assert_eq!(diameter(&g), Some(expect), "S_{n}");
        }
    }

    #[test]
    fn histogram_sums_to_ordered_pairs() {
        let g = builders::hypercube(4);
        let h = distance_histogram(&g).unwrap();
        let n = g.node_count() as u64;
        assert_eq!(h.iter().sum::<u64>(), n * (n - 1));
        // Q_4 distance distribution = binomial(4, d) per source.
        assert_eq!(h[1], n * 4);
        assert_eq!(h[2], n * 6);
        assert_eq!(h[3], n * 4);
        assert_eq!(h[4], n);
    }

    #[test]
    fn disconnected_yields_none() {
        let g = crate::csr::CsrGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(distance_histogram(&g), None);
        assert_eq!(mean_distance(&g), None);
    }

    #[test]
    fn mean_distance_of_complete_graph_is_one() {
        let g = builders::complete_graph(6);
        assert!((mean_distance(&g).unwrap() - 1.0).abs() < 1e-12);
    }
}
