//! Compressed-sparse-row (CSR) undirected graph.

use core::fmt;

/// Dense node identifier. Graphs we materialize stay well under
/// `u32::MAX` nodes (`S_8` has 40 320; even `S_{12}` at 4.8 × 10⁸
/// would fit, although nobody should build it).
pub type NodeId = u32;

/// An immutable undirected graph in CSR form.
///
/// Neighbor lists are sorted, enabling `O(log d)` edge queries and
/// deterministic iteration order (important for reproducible figure
/// output).
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    /// Duplicate edges and self-loops are rejected.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`, on self-loops, or on duplicate
    /// edges (after normalization `(min,max)`).
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            assert_ne!(a, b, "self-loop ({a},{a}) not allowed");
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut targets = vec![0 as NodeId; offsets[n]];
        let mut cursor = offsets.clone();
        for &(a, b) in edges {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for i in 0..n {
            let row = &mut targets[offsets[i]..offsets[i + 1]];
            row.sort_unstable();
            if let Some(w) = row.windows(2).find(|w| w[0] == w[1]) {
                panic!("duplicate edge ({i},{})", w[0]);
            }
        }
        CsrGraph { offsets, targets }
    }

    /// Builds a graph from a per-node neighbor generator. The
    /// generator must be *symmetric* (`b ∈ f(a) ⇔ a ∈ f(b)`); this is
    /// checked in debug builds.
    #[must_use]
    pub fn from_neighbor_fn<F, I>(n: usize, mut f: F) -> Self
    where
        F: FnMut(NodeId) -> I,
        I: IntoIterator<Item = NodeId>,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0usize);
        for v in 0..n as NodeId {
            let mut row: Vec<NodeId> = f(v).into_iter().collect();
            row.sort_unstable();
            row.dedup();
            assert!(!row.contains(&v), "self-loop at {v}");
            targets.extend_from_slice(&row);
            offsets.push(targets.len());
        }
        let g = CsrGraph { offsets, targets };
        debug_assert!(g.is_symmetric(), "neighbor function is not symmetric");
        g
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbor slice of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// `true` iff `{a, b}` is an edge (binary search).
    #[inline]
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count() as NodeId).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// `true` iff every directed arc has its reverse.
    #[must_use]
    pub fn is_symmetric(&self) -> bool {
        (0..self.node_count() as NodeId)
            .all(|v| self.neighbors(v).iter().all(|&w| self.has_edge(w, v)))
    }

    /// `true` iff all nodes have the same degree; returns that degree.
    #[must_use]
    pub fn regular_degree(&self) -> Option<usize> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let d = self.degree(0);
        (1..n as NodeId).all(|v| self.degree(v) == d).then_some(d)
    }

    /// Induced subgraph on `keep` (sorted, deduped internally).
    /// Returns the subgraph and the mapping from new ids to old ids.
    #[must_use]
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        let mut keep: Vec<NodeId> = keep.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let mut new_id = vec![NodeId::MAX; self.node_count()];
        for (new, &old) in keep.iter().enumerate() {
            new_id[old as usize] = new as NodeId;
        }
        let g = CsrGraph::from_neighbor_fn(keep.len(), |v| {
            let old = keep[v as usize];
            self.neighbors(old)
                .iter()
                .copied()
                .filter(|&w| new_id[w as usize] != NodeId::MAX)
                .map(|w| new_id[w as usize])
                .collect::<Vec<_>>()
        });
        (g, keep)
    }

    /// Graph with the given nodes removed (fault injection for the
    /// "maximally fault tolerant" experiments). Returns the surviving
    /// subgraph and the new→old id map.
    #[must_use]
    pub fn remove_nodes(&self, faulty: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        let dead: std::collections::HashSet<NodeId> = faulty.iter().copied().collect();
        let keep: Vec<NodeId> = (0..self.node_count() as NodeId)
            .filter(|v| !dead.contains(v))
            .collect();
        self.induced_subgraph(&keep)
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph(n={}, m={})",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = square();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn neighbors_sorted_and_queryable() {
        let g = square();
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(g.is_symmetric());
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = square();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = CsrGraph::from_edges(2, &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        let _ = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn from_neighbor_fn_matches_from_edges() {
        let a = square();
        let b = CsrGraph::from_neighbor_fn(4, |v| vec![(v + 1) % 4, (v + 3) % 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = square();
        let (sub, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 0-1 and 1-2 survive; 3 gone
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn remove_nodes_is_fault_injection() {
        let g = square();
        let (sub, map) = g.remove_nodes(&[1]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 0-3 and 2-3
        assert_eq!(map, vec![0, 2, 3]);
    }

    #[test]
    fn empty_degenerate() {
        let g = CsrGraph::from_edges(1, &[]);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.regular_degree(), Some(0));
    }
}
