//! Text renderings of graphs for the figure regenerators.
//!
//! Figures 2 and 3 of the paper are drawings of `S_4` and the `2×3×4`
//! mesh. We regenerate them as labelled adjacency lists and Graphviz
//! DOT documents (deterministic ordering, so output is diffable).

use crate::csr::{CsrGraph, NodeId};
use std::fmt::Write as _;

/// Renders the graph as a Graphviz DOT document with caller-supplied
/// node labels.
#[must_use]
pub fn to_dot<F>(g: &CsrGraph, name: &str, mut label: F) -> String
where
    F: FnMut(NodeId) -> String,
{
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for v in 0..g.node_count() as NodeId {
        let _ = writeln!(out, "  n{v} [label=\"{}\"];", label(v));
    }
    for (a, b) in g.edges() {
        let _ = writeln!(out, "  n{a} -- n{b};");
    }
    out.push_str("}\n");
    out
}

/// Renders a labelled adjacency list, one node per line:
/// `label: neighbor, neighbor, …`.
#[must_use]
pub fn to_adjacency_list<F>(g: &CsrGraph, mut label: F) -> String
where
    F: FnMut(NodeId) -> String,
{
    let mut out = String::new();
    for v in 0..g.node_count() as NodeId {
        let nbrs: Vec<String> = g.neighbors(v).iter().map(|&w| label(w)).collect();
        let _ = writeln!(out, "{}: {}", label(v), nbrs.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn dot_contains_all_edges_once() {
        let g = builders::cycle_graph(4);
        let dot = to_dot(&g, "c4", |v| format!("v{v}"));
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.contains("graph c4 {"));
        assert!(dot.contains("n0 [label=\"v0\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn adjacency_list_is_deterministic_and_complete() {
        let g = builders::path_graph(3);
        let s = to_adjacency_list(&g, |v| v.to_string());
        assert_eq!(s, "0: 1\n1: 0, 2\n2: 1\n");
    }
}
