//! Breadth-first search: distances, parents, eccentricities.

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Result of a single-source BFS.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// `dist[v]` = hop distance from the source ([`UNREACHABLE`] if none).
    pub dist: Vec<u32>,
    /// `parent[v]` = predecessor on one shortest path (`NodeId::MAX`
    /// for the source and unreachable nodes).
    pub parent: Vec<NodeId>,
    /// The source node.
    pub source: NodeId,
}

impl BfsTree {
    /// Reconstructs one shortest path `source → target`, inclusive.
    /// Returns `None` if `target` is unreachable.
    #[must_use]
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target as usize] == UNREACHABLE {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Largest finite distance (the source's eccentricity), or `None`
    /// if some node is unreachable.
    #[must_use]
    pub fn eccentricity(&self) -> Option<u32> {
        let mut max = 0;
        for &d in &self.dist {
            if d == UNREACHABLE {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }
}

/// Single-source BFS over the whole graph.
#[must_use]
pub fn bfs(g: &CsrGraph, source: NodeId) -> BfsTree {
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = VecDeque::with_capacity(n.min(1024));
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                parent[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source,
    }
}

/// Hop distance between two nodes (early-exit BFS);
/// [`UNREACHABLE`] if disconnected.
#[must_use]
pub fn distance(g: &CsrGraph, a: NodeId, b: NodeId) -> u32 {
    if a == b {
        return 0;
    }
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[a as usize] = 0;
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                if w == b {
                    return dv + 1;
                }
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    UNREACHABLE
}

/// `true` iff the graph is connected (vacuously true for 0 or 1 nodes).
#[must_use]
pub fn is_connected(g: &CsrGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    bfs(g, 0).dist.iter().all(|&d| d != UNREACHABLE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn path_graph_distances() {
        let g = builders::path_graph(5);
        let t = bfs(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.eccentricity(), Some(4));
        assert_eq!(t.path_to(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn cycle_distances() {
        let g = builders::cycle_graph(6);
        let t = bfs(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn pairwise_distance_matches_bfs() {
        let g = builders::hypercube(4);
        let t = bfs(&g, 0);
        for v in 0..g.node_count() as NodeId {
            assert_eq!(distance(&g, 0, v), t.dist[v as usize]);
        }
        // Hypercube distance = popcount of XOR.
        for v in 0..16u32 {
            assert_eq!(distance(&g, 0, v), v.count_ones());
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        assert_eq!(distance(&g, 0, 3), UNREACHABLE);
        assert_eq!(bfs(&g, 0).eccentricity(), None);
    }

    #[test]
    fn self_distance_zero() {
        let g = builders::complete_graph(3);
        assert_eq!(distance(&g, 1, 1), 0);
    }

    #[test]
    fn shortest_paths_are_valid_walks() {
        let g = builders::hypercube(3);
        let t = bfs(&g, 5);
        for v in 0..8 {
            let p = t.path_to(v).unwrap();
            assert_eq!(p.len() as u32, t.dist[v as usize] + 1);
            assert_eq!(*p.first().unwrap(), 5);
            assert_eq!(*p.last().unwrap(), v);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    use crate::csr::CsrGraph;
}
