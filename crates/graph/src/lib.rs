//! # sg-graph — static-graph substrate
//!
//! The embedding definitions of the paper's §3.1 (dilation, expansion,
//! congestion) and the star-graph properties of §2 (diameter, maximal
//! fault tolerance, symmetry) are statements about finite undirected
//! graphs. This crate provides the graph machinery to *check* them:
//!
//! * [`csr::CsrGraph`] — a compact, immutable adjacency structure,
//! * [`bfs`] — single-source shortest paths and eccentricities,
//! * [`metrics`] — diameter / radius / distance distributions
//!   (rayon-parallel all-pairs sweeps),
//! * [`connectivity`] — exact vertex connectivity via unit-capacity
//!   max-flow with node splitting (the "maximally fault tolerant"
//!   claim is `κ(S_n) = n−1`),
//! * [`transitivity`] — vertex-transitivity checks (exact
//!   automorphism search for small graphs, distance-profile
//!   necessary conditions for larger ones),
//! * [`builders`] — constructors for every topology the paper
//!   mentions: star graphs, hypercubes, meshes/tori, plus classical
//!   graphs used in tests,
//! * [`viz`] — DOT / adjacency-list output for the figure
//!   regenerators (Figures 2 and 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod builders;
pub mod connectivity;
pub mod csr;
pub mod metrics;
pub mod transitivity;
pub mod viz;

pub use csr::{CsrGraph, NodeId};
