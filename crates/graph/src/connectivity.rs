//! Exact vertex connectivity and fault-injection checks.
//!
//! §2 property 4: "A star graph is maximally fault tolerant", i.e. its
//! vertex connectivity equals its degree `n−1` (Akers et al.). We
//! verify this *computationally*: `κ(G)` is computed exactly via
//! unit-capacity max-flow on the node-split digraph (Menger), using
//! the classical min-degree-vertex algorithm, and complemented by
//! randomized fault injection for graphs too large for exact flow.

use crate::bfs::is_connected;
use crate::csr::{CsrGraph, NodeId};

/// Arc in the residual flow network.
#[derive(Clone, Copy)]
struct Arc {
    to: u32,
    cap: u32,
    rev: u32,
}

/// Unit-capacity max-flow network over the node-split digraph:
/// vertex `v` becomes `v_in = 2v`, `v_out = 2v + 1` joined by a
/// capacity-1 arc (capacity ∞ for the two terminals), and each
/// undirected edge `{u, v}` becomes `u_out → v_in`, `v_out → u_in`.
struct FlowNet {
    adj: Vec<Vec<Arc>>,
}

const INF: u32 = u32::MAX / 2;

impl FlowNet {
    fn new(g: &CsrGraph, s: NodeId, t: NodeId) -> Self {
        let n = g.node_count();
        let mut net = FlowNet {
            adj: vec![Vec::new(); 2 * n],
        };
        for v in 0..n as u32 {
            let cap = if v == s || v == t { INF } else { 1 };
            net.add_arc(2 * v, 2 * v + 1, cap);
        }
        for (a, b) in g.edges() {
            net.add_arc(2 * a + 1, 2 * b, INF);
            net.add_arc(2 * b + 1, 2 * a, INF);
        }
        net
    }

    fn add_arc(&mut self, from: u32, to: u32, cap: u32) {
        let rev_from = self.adj[to as usize].len() as u32;
        let rev_to = self.adj[from as usize].len() as u32;
        self.adj[from as usize].push(Arc {
            to,
            cap,
            rev: rev_from,
        });
        self.adj[to as usize].push(Arc {
            to: from,
            cap: 0,
            rev: rev_to,
        });
    }

    /// One BFS augmentation of value 1 (unit capacities on the
    /// vertex-split arcs bound every augmenting path to value 1).
    fn augment(&mut self, s: u32, t: u32) -> bool {
        let n = self.adj.len();
        let mut pred: Vec<Option<(u32, u32)>> = vec![None; n]; // (node, arc idx)
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        let mut seen = vec![false; n];
        seen[s as usize] = true;
        'bfs: while let Some(v) = queue.pop_front() {
            for (i, arc) in self.adj[v as usize].iter().enumerate() {
                if arc.cap > 0 && !seen[arc.to as usize] {
                    seen[arc.to as usize] = true;
                    pred[arc.to as usize] = Some((v, i as u32));
                    if arc.to == t {
                        break 'bfs;
                    }
                    queue.push_back(arc.to);
                }
            }
        }
        if !seen[t as usize] {
            return false;
        }
        // Push one unit along the found path.
        let mut cur = t;
        while cur != s {
            let (prev, idx) = pred[cur as usize].expect("path recorded");
            let arc = self.adj[prev as usize][idx as usize];
            self.adj[prev as usize][idx as usize].cap -= 1;
            self.adj[arc.to as usize][arc.rev as usize].cap += 1;
            cur = prev;
        }
        true
    }
}

/// Maximum number of internally vertex-disjoint `s`–`t` paths
/// (Menger), for non-adjacent `s ≠ t`, stopping early once `limit`
/// paths are found.
///
/// # Panics
/// Panics if `s == t`.
#[must_use]
pub fn max_disjoint_paths(g: &CsrGraph, s: NodeId, t: NodeId, limit: u32) -> u32 {
    assert_ne!(s, t, "s and t must differ");
    let mut net = FlowNet::new(g, s, t);
    let (src, dst) = (2 * s + 1, 2 * t);
    let mut flow = 0;
    while flow < limit && net.augment(src, dst) {
        flow += 1;
    }
    flow
}

/// Exact vertex connectivity `κ(G)`.
///
/// * complete graphs: `κ(K_n) = n − 1` by convention;
/// * disconnected graphs: 0;
/// * otherwise the classical algorithm: with `v` a minimum-degree
///   vertex, `κ = min` over (a) `flow(v, t)` for all `t ∉ N[v]` and
///   (b) `flow(x, y)` for non-adjacent pairs of neighbors of `v`.
#[must_use]
pub fn vertex_connectivity(g: &CsrGraph) -> u32 {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    if !is_connected(g) {
        return 0;
    }
    let complete = g.edge_count() == n * (n - 1) / 2;
    if complete {
        return (n - 1) as u32;
    }
    let v = (0..n as NodeId)
        .min_by_key(|&v| g.degree(v))
        .expect("nonempty");
    let mut best = g.degree(v) as u32;
    for t in 0..n as NodeId {
        if t != v && !g.has_edge(v, t) {
            best = best.min(max_disjoint_paths(g, v, t, best));
        }
    }
    let nbrs = g.neighbors(v).to_vec();
    for (i, &x) in nbrs.iter().enumerate() {
        for &y in &nbrs[i + 1..] {
            if !g.has_edge(x, y) {
                best = best.min(max_disjoint_paths(g, x, y, best));
            }
        }
    }
    best
}

/// Fault-injection probe: removes each of the given fault sets and
/// reports whether the survivor graph stayed connected every time.
/// (A `κ = k` graph survives any `k−1` faults; this is the empirical
/// face of "maximally fault tolerant".)
#[must_use]
pub fn survives_faults(g: &CsrGraph, fault_sets: &[Vec<NodeId>]) -> bool {
    fault_sets.iter().all(|faults| {
        let (sub, _) = g.remove_nodes(faults);
        sub.node_count() <= 1 || is_connected(&sub)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn cycle_is_2_connected() {
        assert_eq!(vertex_connectivity(&builders::cycle_graph(7)), 2);
    }

    #[test]
    fn path_is_1_connected() {
        assert_eq!(vertex_connectivity(&builders::path_graph(6)), 1);
    }

    #[test]
    fn complete_graph_convention() {
        assert_eq!(vertex_connectivity(&builders::complete_graph(5)), 4);
    }

    #[test]
    fn disconnected_is_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn hypercube_connectivity_equals_degree() {
        for d in 1..=4 {
            assert_eq!(vertex_connectivity(&builders::hypercube(d)), d as u32);
        }
    }

    #[test]
    fn star_graph_is_maximally_fault_tolerant_small() {
        // §2 property 4: κ(S_n) = n - 1.
        for n in 2..=5usize {
            let g = builders::star_graph(n);
            assert_eq!(vertex_connectivity(&g), (n - 1) as u32, "S_{n}");
        }
    }

    #[test]
    fn mesh_connectivity_is_min_nonunit_dims() {
        // κ of a multidim mesh = number of dimensions with extent > 1
        // (corner vertex has that degree and meshes are κ = δ_corner).
        let g = builders::mesh(&[2, 3, 4]);
        assert_eq!(vertex_connectivity(&g), 3);
        let g2 = builders::mesh(&[5, 5]);
        assert_eq!(vertex_connectivity(&g2), 2);
    }

    #[test]
    fn cut_vertex_detected() {
        // Two triangles sharing vertex 2: κ = 1.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn disjoint_paths_on_cycle() {
        let g = builders::cycle_graph(6);
        assert_eq!(max_disjoint_paths(&g, 0, 3, 10), 2);
        assert_eq!(max_disjoint_paths(&g, 0, 3, 1), 1); // limit respected
    }

    #[test]
    fn fault_injection_on_star4() {
        let g = builders::star_graph(4); // κ = 3
                                         // All single and double faults survive.
        let singles: Vec<Vec<NodeId>> = (0..24).map(|v| vec![v]).collect();
        assert!(survives_faults(&g, &singles));
        let doubles: Vec<Vec<NodeId>> = (0..24)
            .flat_map(|a| (a + 1..24).map(move |b| vec![a, b]))
            .collect();
        assert!(survives_faults(&g, &doubles));
    }

    use crate::csr::CsrGraph;
}
