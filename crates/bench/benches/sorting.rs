//! §5: sorting n! keys — shearsort on the native 2-D mesh, on the
//! grouped D_n, and on the star graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use sg_algo::grouped::{GroupedGeometry, GroupedMachine};
use sg_algo::oddeven::odd_even_sort;
use sg_algo::shearsort::shearsort;
use sg_mesh::dn::DnMesh;
use sg_simd::machine::MeshSimd;
use sg_simd::{EmbeddedMeshMachine, MeshMachine};

fn keys(count: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn bench_shearsort_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("shearsort_stack");
    group.sample_size(10);
    for n in [4usize, 5] {
        let geom = GroupedGeometry::appendix(n, 2);
        let vshape = geom.virtual_shape().clone();
        let data = keys(vshape.size(), 42);

        group.bench_with_input(BenchmarkId::new("native_2d", n), &n, |b, _| {
            b.iter(|| {
                let mut m: MeshMachine<u64> = MeshMachine::new(vshape.clone());
                m.load("K", data.clone());
                shearsort(&mut m, "K")
            });
        });
        group.bench_with_input(BenchmarkId::new("grouped_dn", n), &n, |b, _| {
            b.iter(|| {
                let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
                let mut g = GroupedMachine::new(&mut inner, geom.clone());
                g.load("K", data.clone());
                shearsort(&mut g, "K")
            });
        });
        group.bench_with_input(BenchmarkId::new("star_graph", n), &n, |b, _| {
            b.iter(|| {
                let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
                let mut g = GroupedMachine::new(&mut star, geom.clone());
                g.load("K", data.clone());
                shearsort(&mut g, "K")
            });
        });
    }
    group.finish();
}

fn bench_oddeven_line(c: &mut Criterion) {
    let mut group = c.benchmark_group("odd_even_line");
    group.sample_size(10);
    for n in [5usize, 6] {
        let dn = DnMesh::new(n);
        let data = keys(dn.node_count(), 7);
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, &n| {
            b.iter(|| {
                let mut m: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
                m.load("K", data.clone());
                odd_even_sort(&mut m, "K", n - 1, &|_| true)
            });
        });
        group.bench_with_input(BenchmarkId::new("star", n), &n, |b, &n| {
            b.iter(|| {
                let mut m: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
                m.load("K", data.clone());
                odd_even_sort(&mut m, "K", n - 1, &|_| true)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shearsort_stack, bench_oddeven_line);
criterion_main!(benches);
