//! Figures 5 & 6: the CONVERT algorithms are O(n²) — measure the
//! scaling and the two formulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_core::convert::{convert_d_s, convert_d_s_via_exchanges, convert_s_d};
use sg_mesh::dn::DnMesh;
use std::hint::black_box;

fn bench_convert(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert");
    for n in [6usize, 10, 14, 20] {
        let dn = DnMesh::new(n);
        // A "typical" node: alternating coordinates.
        let idx = dn.node_count() / 3;
        let d = dn.point_at(idx);
        let pi = convert_d_s(&d);

        group.bench_with_input(BenchmarkId::new("d_to_s", n), &d, |b, d| {
            b.iter(|| convert_d_s(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("d_to_s_exchanges", n), &d, |b, d| {
            b.iter(|| convert_d_s_via_exchanges(black_box(d)));
        });
        group.bench_with_input(BenchmarkId::new("s_to_d", n), &pi, |b, pi| {
            b.iter(|| convert_s_d(black_box(pi)));
        });
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    // Whole-table generation (Figure 7 for larger n): n! conversions.
    let mut group = c.benchmark_group("mapping_table");
    group.sample_size(10);
    for n in [6usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dn = DnMesh::new(n);
            b.iter(|| {
                let mut acc = 0u64;
                for d in dn.points() {
                    acc ^= sg_perm::lehmer::rank(&convert_d_s(&d));
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert, bench_full_table);
criterion_main!(benches);
