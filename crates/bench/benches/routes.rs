//! Theorem 6 at machine level: one mesh unit route on the native mesh
//! vs through the star embedding (simulator throughput), plus the
//! audits' own cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_mesh::dn::DnMesh;
use sg_mesh::shape::Sign;
use sg_simd::machine::MeshSimd;
use sg_simd::{EmbeddedMeshMachine, MeshMachine};

fn bench_unit_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_route");
    group.sample_size(20);
    for n in [5usize, 6, 7] {
        let dn = DnMesh::new(n);
        let size = dn.node_count() as usize;
        let data: Vec<u64> = (0..size as u64).collect();
        let dim = n / 2;

        group.bench_with_input(BenchmarkId::new("native_mesh", n), &n, |b, _| {
            let mut m: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
            m.load("B", data.clone());
            b.iter(|| m.route("B", dim, Sign::Plus));
        });
        group.bench_with_input(BenchmarkId::new("star_embedded", n), &n, |b, _| {
            let mut m: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
            m.load("B", data.clone());
            b.iter(|| m.route("B", dim, Sign::Plus));
        });
    }
    group.finish();
}

fn bench_lemma5_audit(c: &mut Criterion) {
    // Cost of the exhaustive Lemma-5 verification itself (rayon sweep).
    let mut group = c.benchmark_group("lemma5_audit");
    group.sample_size(10);
    for n in [6usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sg_core::congestion::verify_lemma5(n, 2, true).unwrap());
        });
    }
    group.finish();
}

fn bench_dilation_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dilation_audit");
    group.sample_size(10);
    for n in [7usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| sg_core::dilation::audit_dilation(n));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_unit_route,
    bench_lemma5_audit,
    bench_dilation_audit
);
criterion_main!(benches);
