//! Ablation: Lemma 3's O(n) closed-form neighbor vs the O(n²)
//! convert-roundtrip it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_core::convert::{convert_d_s, convert_s_d};
use sg_core::lemma3::mesh_neighbor_plus;
use sg_mesh::dn::DnMesh;
use sg_mesh::shape::Sign;
use std::hint::black_box;

fn bench_neighbor(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_neighbor");
    for n in [6usize, 10, 14, 20] {
        let dn = DnMesh::new(n);
        let d = dn.point_at(dn.node_count() / 3);
        let pi = convert_d_s(&d);
        let k = n / 2;

        group.bench_with_input(BenchmarkId::new("lemma3_closed_form", n), &pi, |b, pi| {
            b.iter(|| mesh_neighbor_plus(black_box(pi), k));
        });
        group.bench_with_input(BenchmarkId::new("convert_roundtrip", n), &pi, |b, pi| {
            b.iter(|| {
                let d = convert_s_d(black_box(pi));
                dn.shape()
                    .neighbor(&d, k, Sign::Plus)
                    .map(|q| convert_d_s(&q))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighbor);
criterion_main!(benches);
