//! Node addressing: Lehmer rank/unrank and permutation kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_perm::factorial::factorial;
use sg_perm::lehmer::{next_perm, rank, unrank};
use sg_perm::Perm;
use std::hint::black_box;

fn bench_rank_unrank(c: &mut Criterion) {
    let mut group = c.benchmark_group("lehmer");
    for n in [8usize, 12, 16, 20] {
        let r = factorial(n) / 3;
        let p = unrank(r, n).unwrap();
        group.bench_with_input(BenchmarkId::new("rank", n), &p, |b, p| {
            b.iter(|| rank(black_box(p)));
        });
        group.bench_with_input(BenchmarkId::new("unrank", n), &r, |b, &r| {
            b.iter(|| unrank(black_box(r), n).unwrap());
        });
    }
    group.finish();
}

fn bench_next_perm_sweep(c: &mut Criterion) {
    // Full S_n sweeps: successor iteration vs repeated unrank.
    let mut group = c.benchmark_group("sweep_s7");
    group.sample_size(10);
    let n = 7;
    group.bench_function("next_perm", |b| {
        b.iter(|| {
            let mut p = Perm::identity(n);
            let mut acc = 0u64;
            loop {
                acc ^= u64::from(p.symbol_at(0));
                if !next_perm(&mut p) {
                    break;
                }
            }
            acc
        });
    });
    group.bench_function("unrank_each", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in 0..factorial(n) {
                acc ^= u64::from(unrank(r, n).unwrap().symbol_at(0));
            }
            acc
        });
    });
    group.finish();
}

fn bench_cycle_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_structure");
    for n in [8usize, 14, 20] {
        let p = unrank(factorial(n) / 3, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| sg_perm::cycles::cycle_structure(black_box(p)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rank_unrank,
    bench_next_perm_sweep,
    bench_cycle_structure
);
criterion_main!(benches);
