//! Cost of the `sg-net` interconnect simulator's hot loop: the
//! Lemma-5 dimension sweep (contention-free, 3 rounds) vs uniform
//! random traffic (queued, long tail), plus the engine regression
//! guard — FastEngine vs ReferenceEngine on identical traffic.
//!
//! Set `SG_BENCH_SMOKE=1` to run a minimal configuration (CI smoke
//! mode: smallest sizes, fewest samples). Smoke mode also **asserts**
//! the two tentpole claims of the fast-path engine PR and appends a
//! trajectory entry to `BENCH_traffic.json` at the workspace root:
//!
//! * FastEngine is not slower than ReferenceEngine on contended
//!   uniform traffic;
//! * a full-injection uniform sweep at `n = 8` (40 320 PEs) completes
//!   within the CI smoke budget.
//!
//! Non-smoke (full) runs additionally measure the `n = 9` (362 880
//! PEs) full-injection sweep and append it to the trajectory.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sg_net::{EmbeddingRouting, Engine, FlowControl, GreedyRouting, NetConfig, Network, Workload};
use sg_obs::NullProbe;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("SG_BENCH_SMOKE").is_some()
}

fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_dimension_sweep");
    group.sample_size(if smoke() { 2 } else { 20 });
    let orders: &[usize] = if smoke() { &[5] } else { &[5, 6, 7] };
    for &n in orders {
        let net = Network::new(n);
        let w = Workload::dimension_sweep(n, n / 2, true);
        group.bench_with_input(BenchmarkId::new("embedding", n), &n, |b, _| {
            b.iter(|| net.run(&w, &EmbeddingRouting));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| net.run(&w, &GreedyRouting));
        });
    }
    group.finish();
}

fn bench_uniform_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_uniform_full_injection");
    group.sample_size(if smoke() { 2 } else { 10 });
    let orders: &[usize] = if smoke() { &[4] } else { &[5, 6] };
    for &n in orders {
        let net = Network::new(n);
        let w = Workload::bernoulli_uniform(n, 10, 100, 0xBEEF);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| net.run(&w, &GreedyRouting));
        });
    }
    group.finish();
}

/// The regression guard proper: identical contended traffic on both
/// engines. The differential suite proves the outputs byte-identical;
/// this group shows what the worklist + slab queues + idle skipping
/// buy in wall clock.
fn bench_engine_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_engine_fast_vs_reference");
    group.sample_size(if smoke() { 3 } else { 10 });
    let orders: &[usize] = if smoke() { &[6] } else { &[6, 7] };
    for &n in orders {
        let net = Network::new(n);
        let w = Workload::bernoulli_uniform(n, 5, 100, 0xBEEF);
        group.bench_with_input(BenchmarkId::new("fast", n), &n, |b, _| {
            b.iter(|| net.run_with(&w, &GreedyRouting, Engine::Fast));
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| net.run_with(&w, &GreedyRouting, Engine::Reference));
        });
    }
    group.finish();
}

/// The flow-control axis under contention: unbounded tail-drop
/// baseline vs credit-based stalling vs the escape channel. Escape
/// pays for its bank scans and diversions only when credits starve;
/// this group keeps that overhead visible, and the engine pair shows
/// the fast engine's dual-channel worklist holding its margin.
fn bench_flow_control(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_flow_control");
    group.sample_size(if smoke() { 2 } else { 10 });
    let orders: &[usize] = if smoke() { &[4] } else { &[5, 6] };
    for &n in orders {
        let w = Workload::bernoulli_uniform(n, 10, 100, 0xBEEF);
        let cfg = |fc| NetConfig {
            queue_capacity: Some(2),
            flow_control: fc,
            ..NetConfig::default()
        };
        let credit = Network::new(n).with_config(cfg(FlowControl::CreditBased));
        let escape = Network::new(n).with_config(cfg(FlowControl::EscapeChannel));
        group.bench_with_input(BenchmarkId::new("credit-cap2", n), &n, |b, _| {
            b.iter(|| credit.run(&w, &GreedyRouting));
        });
        group.bench_with_input(BenchmarkId::new("escape-cap2", n), &n, |b, _| {
            b.iter(|| escape.run(&w, &GreedyRouting));
        });
        group.bench_with_input(BenchmarkId::new("escape-cap2-reference", n), &n, |b, _| {
            b.iter(|| escape.run_with(&w, &GreedyRouting, Engine::Reference));
        });
    }
    group.finish();
}

fn bench_network_construction(c: &mut Criterion) {
    // Neighbor-table build (parallel unrank/rank over all n! PEs).
    let mut group = c.benchmark_group("net_build");
    group.sample_size(if smoke() { 2 } else { 10 });
    let orders: &[usize] = if smoke() { &[5] } else { &[6, 7] };
    for &n in orders {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Network::new(n));
        });
    }
    group.finish();
}

/// Best-of-`reps` wall-clock time of two alternating runs, in
/// nanoseconds. Interleaving means a transient slowdown (noisy
/// neighbor, frequency scaling) hits both sides instead of biasing
/// whichever happened to run first.
fn best_of_interleaved<F: FnMut(), G: FnMut()>(reps: usize, mut f: F, mut g: G) -> (u128, u128) {
    let mut best_f = u128::MAX;
    let mut best_g = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best_f = best_f.min(t.elapsed().as_nanos());
        let t = Instant::now();
        g();
        best_g = best_g.min(t.elapsed().as_nanos());
    }
    (best_f, best_g)
}

/// Measures the PR's two guarded claims and appends a trajectory
/// entry to `BENCH_traffic.json` (one JSON object per line, newest
/// last) so successive runs accumulate a history. In smoke mode the
/// claims are hard assertions — this is the CI regression gate.
fn engine_trajectory() {
    // Claim 1: FastEngine ≥ ReferenceEngine. Gate at n = 7 (5 040
    // PEs, 30 240 queues) under 20% injection, where the worklist's
    // advantage is structural (the reference engine scans 30k queues
    // every round regardless of how few are busy) and the measured
    // margin is a stable ≥ 1.3x. At small n with saturated queues the
    // engines converge to parity — per-hop work dominates and both
    // engines share it — which the criterion group above reports but
    // CI does not gate on.
    // The fast side runs through `run_probed` with a `NullProbe`:
    // the smoke gate below therefore also guards sg-obs's
    // zero-overhead-when-disabled claim — if the disabled probe hooks
    // cost anything measurable, the fast engine falls out of its
    // margin and CI fails.
    let n_cmp = 7;
    let net = Network::new(n_cmp);
    let w = Workload::bernoulli_uniform(n_cmp, 10, 20, 0xBEEF);
    let (fast_ns, ref_ns) = best_of_interleaved(
        3,
        || {
            let mut probe = NullProbe;
            let _ = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut probe);
        },
        || {
            let _ = net.run_with(&w, &GreedyRouting, Engine::Reference);
        },
    );
    let speedup = ref_ns as f64 / fast_ns as f64;
    println!("engine comparison (n={n_cmp} uniform 20% injection, best of 3):");
    println!("  fast      {:>12.3} ms", fast_ns as f64 / 1e6);
    println!(
        "  reference {:>12.3} ms   (speedup {speedup:.2}x)",
        ref_ns as f64 / 1e6
    );

    // Where the fast engine's time goes: the sg-obs self-profiler on
    // the same workload, phase by phase.
    let (_, profile) = net.run_profiled(&w, &GreedyRouting);
    print!("{}", profile.render());

    // Claim 2: the n = 8 full-injection uniform sweep (40 320 PEs,
    // ~80k packets over 2 injection rounds) finishes in seconds on
    // the fast engine.
    let n_big = 8;
    let t = Instant::now();
    let big = Network::new(n_big);
    let build_ns = t.elapsed().as_nanos();
    let wbig = Workload::bernoulli_uniform(n_big, 2, 100, 0xBEEF);
    let t = Instant::now();
    let stats = big.run(&wbig, &GreedyRouting);
    let sweep_ns = t.elapsed().as_nanos();
    assert_eq!(
        stats.delivered, stats.injected,
        "uniform traffic is lossless"
    );
    println!(
        "n=8 full-injection sweep: {} packets, {} rounds, build {:.2}s, run {:.2}s",
        stats.injected,
        stats.makespan,
        build_ns as f64 / 1e9,
        sweep_ns as f64 / 1e9
    );

    if smoke() {
        // CI gates. The measured margin is a stable ≥ 1.3x; the 10%
        // allowance below absorbs shared-runner timing noise without
        // letting a real regression (fast falling to parity or
        // worse) slip through.
        assert!(
            fast_ns <= ref_ns + ref_ns / 10,
            "FastEngine regressed: {fast_ns} ns vs reference {ref_ns} ns"
        );
        const SMOKE_BUDGET_NS: u128 = 60_000_000_000; // 60 s, measured ~1 s
        assert!(
            sweep_ns < SMOKE_BUDGET_NS,
            "n=8 sweep took {sweep_ns} ns, over the CI smoke budget"
        );
    }

    // Full (non-smoke) mode only: the n = 9 measurement — 362 880
    // PEs, ~363k packets of one full-injection round. Smoke keeps the
    // n = 8 budget gate; this is the biggest materialized network the
    // simulator supports and exists to track the trajectory.
    let n9 = (!smoke()).then(|| {
        let t = Instant::now();
        let huge = Network::new(9);
        let n9_build_ns = t.elapsed().as_nanos();
        let w9 = Workload::bernoulli_uniform(9, 1, 100, 0xBEEF);
        let t = Instant::now();
        let s9 = huge.run(&w9, &GreedyRouting);
        let n9_sweep_ns = t.elapsed().as_nanos();
        assert_eq!(s9.delivered, s9.injected, "uniform traffic is lossless");
        println!(
            "n=9 full-injection sweep: {} packets, {} rounds, build {:.2}s, run {:.2}s",
            s9.injected,
            s9.makespan,
            n9_build_ns as f64 / 1e9,
            n9_sweep_ns as f64 / 1e9
        );
        (s9.injected, n9_build_ns, n9_sweep_ns)
    });

    // One trajectory line per run, appended at the workspace root.
    let n9_fields = n9
        .map(|(p, b, s)| format!(",\"n9_packets\":{p},\"n9_build_ns\":{b},\"n9_sweep_ns\":{s}"))
        .unwrap_or_default();
    let entry = format!(
        "{{\"bench\":\"traffic\",\"mode\":\"{}\",\"compare_n\":{n_cmp},\
         \"fast_ns\":{fast_ns},\"reference_ns\":{ref_ns},\"speedup\":{speedup:.3},\
         \"n8_packets\":{},\"n8_build_ns\":{build_ns},\"n8_sweep_ns\":{sweep_ns}{n9_fields}}}\n",
        if smoke() { "smoke" } else { "full" },
        stats.injected,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_traffic.json");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut f) => {
            let _ = f.write_all(entry.as_bytes());
            println!("trajectory entry appended to BENCH_traffic.json");
        }
        Err(e) => eprintln!("could not append BENCH_traffic.json: {e}"),
    }
}

criterion_group!(
    benches,
    bench_dimension_sweep,
    bench_uniform_traffic,
    bench_engine_comparison,
    bench_flow_control,
    bench_network_construction
);

fn main() {
    benches();
    engine_trajectory();
}
