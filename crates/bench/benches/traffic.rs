//! Cost of the `sg-net` interconnect simulator's hot loop: the
//! Lemma-5 dimension sweep (contention-free, 3 rounds) vs uniform
//! random traffic (queued, long tail).
//!
//! Set `SG_BENCH_SMOKE=1` to run a minimal configuration (CI smoke
//! mode: smallest sizes, fewest samples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_net::{EmbeddingRouting, GreedyRouting, Network, Workload};

fn smoke() -> bool {
    std::env::var_os("SG_BENCH_SMOKE").is_some()
}

fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_dimension_sweep");
    group.sample_size(if smoke() { 2 } else { 20 });
    let orders: &[usize] = if smoke() { &[5] } else { &[5, 6, 7] };
    for &n in orders {
        let net = Network::new(n);
        let w = Workload::dimension_sweep(n, n / 2, true);
        group.bench_with_input(BenchmarkId::new("embedding", n), &n, |b, _| {
            b.iter(|| net.run(&w, &EmbeddingRouting));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| net.run(&w, &GreedyRouting));
        });
    }
    group.finish();
}

fn bench_uniform_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_uniform_full_injection");
    group.sample_size(if smoke() { 2 } else { 10 });
    let orders: &[usize] = if smoke() { &[4] } else { &[5, 6] };
    for &n in orders {
        let net = Network::new(n);
        let w = Workload::bernoulli_uniform(n, 10, 100, 0xBEEF);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| net.run(&w, &GreedyRouting));
        });
    }
    group.finish();
}

fn bench_network_construction(c: &mut Criterion) {
    // Neighbor-table build (parallel unrank/rank over all n! PEs).
    let mut group = c.benchmark_group("net_build");
    group.sample_size(if smoke() { 2 } else { 10 });
    let orders: &[usize] = if smoke() { &[5] } else { &[6, 7] };
    for &n in orders {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Network::new(n));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dimension_sweep,
    bench_uniform_traffic,
    bench_network_construction
);
criterion_main!(benches);
