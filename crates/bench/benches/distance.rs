//! The exact star distance formula vs BFS ground truth, and the
//! constructive router.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_graph::bfs::distance as bfs_distance;
use sg_graph::builders::star_graph;
use sg_perm::factorial::factorial;
use sg_perm::lehmer::unrank;
use sg_star::distance::distance;
use sg_star::routing::route_generators;
use std::hint::black_box;

fn bench_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("star_distance_formula");
    for n in [8usize, 12, 16, 20] {
        let a = unrank(factorial(n) / 3, n).unwrap();
        let b = unrank(factorial(n) / 5, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bn, (a, b)| {
            bn.iter(|| distance(black_box(a), black_box(b)));
        });
    }
    group.finish();
}

fn bench_formula_vs_bfs(c: &mut Criterion) {
    // n = 6: BFS over 720 nodes vs O(n) formula.
    let n = 6;
    let g = star_graph(n);
    let a_rank = factorial(n) / 3;
    let b_rank = factorial(n) / 5;
    let a = unrank(a_rank, n).unwrap();
    let b = unrank(b_rank, n).unwrap();
    assert_eq!(
        distance(&a, &b),
        bfs_distance(&g, a_rank as u32, b_rank as u32)
    );

    let mut group = c.benchmark_group("distance_s6");
    group.bench_function("formula", |bn| {
        bn.iter(|| distance(black_box(&a), black_box(&b)));
    });
    group.bench_function("bfs", |bn| {
        bn.iter(|| bfs_distance(&g, black_box(a_rank as u32), black_box(b_rank as u32)));
    });
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_path_router");
    for n in [8usize, 14, 20] {
        let a = unrank(factorial(n) / 7, n).unwrap();
        let b = unrank(factorial(n) / 11, n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bn, (a, b)| {
            bn.iter(|| route_generators(black_box(a), black_box(b)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_formula, bench_formula_vs_bfs, bench_router);
criterion_main!(benches);
