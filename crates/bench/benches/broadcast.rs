//! §2 property 3: broadcast — native star flooding vs the embedded
//! mesh dimension sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sg_algo::broadcast::broadcast;
use sg_mesh::dn::DnMesh;
use sg_simd::machine::MeshSimd;
use sg_simd::EmbeddedMeshMachine;
use sg_star::broadcast::flood_schedule;
use sg_star::StarGraph;

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast");
    group.sample_size(10);
    for n in [5usize, 6, 7] {
        group.bench_with_input(BenchmarkId::new("star_flood_schedule", n), &n, |b, &n| {
            let star = StarGraph::new(n);
            b.iter(|| flood_schedule(&star, 0));
        });
        group.bench_with_input(BenchmarkId::new("embedded_mesh_sweep", n), &n, |b, &n| {
            let dn = DnMesh::new(n);
            let size = dn.node_count() as usize;
            b.iter(|| {
                let mut m: EmbeddedMeshMachine<Option<u64>> = EmbeddedMeshMachine::new(n);
                let mut init: Vec<Option<u64>> = vec![None; size];
                init[0] = Some(1);
                m.load("B", init);
                broadcast(&mut m, "B", &dn.point_at(0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
