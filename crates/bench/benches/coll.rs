//! Cost of the `sg-coll` collective schedules: structured algorithms
//! (dimension-tree broadcast, recursive-doubling allgather, lattice
//! allreduce) vs their naive references, compiled and run on the
//! interconnect simulator.
//!
//! Set `SG_BENCH_SMOKE=1` for the minimal CI configuration. Smoke
//! mode also **asserts** the PR's tentpole cost claims and appends a
//! trajectory entry to `BENCH_coll.json` at the workspace root:
//!
//! * tree broadcast on `S_6` finishes in exactly `2·ecc − 1` rounds
//!   with zero waits, and beats the naive root blast by > 10×;
//! * recursive-doubling allgather on `S_5` beats all-pairs on both
//!   makespan and contention.
//!
//! Non-smoke (full) runs additionally measure broadcast on `S_7`
//! (5 040 PEs) and append the measured gap to the trajectory.

use criterion::{criterion_group, BenchmarkId, Criterion};
use sg_coll::{
    allgather_doubling, allgather_naive, allreduce_lattice, broadcast_naive, broadcast_tree,
    distance_lower_bound,
};
use sg_net::{GreedyRouting, Network};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("SG_BENCH_SMOKE").is_some()
}

/// Schedule construction + compilation to a chained workload: the
/// spanning-tree walk and the route planning, without running it.
fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("coll_compile");
    group.sample_size(if smoke() { 2 } else { 20 });
    let orders: &[usize] = if smoke() { &[4] } else { &[4, 5, 6] };
    for &m in orders {
        let net = Network::new(m);
        group.bench_with_input(BenchmarkId::new("broadcast_tree", m), &m, |b, &m| {
            b.iter(|| broadcast_tree(m, 0).compile(&net, &GreedyRouting));
        });
        group.bench_with_input(BenchmarkId::new("allreduce_lattice", m), &m, |b, &m| {
            b.iter(|| allreduce_lattice(m).compile(&net, &GreedyRouting));
        });
    }
    group.finish();
}

/// End-to-end: compile + run, structured vs naive, per collective.
fn bench_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("coll_run");
    group.sample_size(if smoke() { 2 } else { 10 });
    let orders: &[usize] = if smoke() { &[4] } else { &[4, 5] };
    for &m in orders {
        let net = Network::new(m);
        let pairs = [
            ("broadcast_tree", broadcast_tree(m, 0)),
            ("broadcast_naive", broadcast_naive(m, 0)),
            ("allgather_doubling", allgather_doubling(m)),
            ("allgather_naive", allgather_naive(m)),
            ("allreduce_lattice", allreduce_lattice(m)),
        ];
        for (label, s) in pairs {
            let chained = s.compile(&net, &GreedyRouting);
            group.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| net.run(&chained.workload, &GreedyRouting));
            });
        }
    }
    group.finish();
}

/// Measures the PR's guarded cost claims and appends a trajectory
/// entry to `BENCH_coll.json` (one JSON object per line, newest
/// last). In smoke mode the claims are hard assertions — this is the
/// CI regression gate for the collective cost model.
fn coll_trajectory() {
    // Claim 1: tree broadcast on S_6 (720 PEs) is contention-free and
    // round-optimal among one-hop phase schedules — makespan exactly
    // 2·ecc − 1 with zero waits — while the naive root blast
    // serializes on the root's 5 links and loses by > 10×.
    let m = 6;
    let net = Network::new(m);
    let lb = distance_lower_bound(m);
    let tree = broadcast_tree(m, 0).compile(&net, &GreedyRouting);
    let naive = broadcast_naive(m, 0).compile(&net, &GreedyRouting);
    let t = Instant::now();
    let tstats = net.run(&tree.workload, &GreedyRouting);
    let tree_ns = t.elapsed().as_nanos();
    let t = Instant::now();
    let nstats = net.run(&naive.workload, &GreedyRouting);
    let naive_ns = t.elapsed().as_nanos();
    let gap = f64::from(nstats.makespan) / f64::from(tstats.makespan);
    println!("broadcast on S_6 (720 PEs, ecc = {lb}):");
    println!(
        "  tree : makespan {:>4} rounds, waits {:>7}, {:>9.3} ms",
        tstats.makespan,
        tstats.total_wait_rounds,
        tree_ns as f64 / 1e6
    );
    println!(
        "  naive: makespan {:>4} rounds, waits {:>7}, {:>9.3} ms   (gap {gap:.1}x)",
        nstats.makespan,
        nstats.total_wait_rounds,
        naive_ns as f64 / 1e6
    );

    // Claim 2: recursive doubling on S_5 (120 PEs) beats all-pairs
    // allgather on makespan and by orders of magnitude on contention.
    let net5 = Network::new(5);
    let ag = allgather_doubling(5).compile(&net5, &GreedyRouting);
    let agn = allgather_naive(5).compile(&net5, &GreedyRouting);
    let ag_stats = net5.run(&ag.workload, &GreedyRouting);
    let agn_stats = net5.run(&agn.workload, &GreedyRouting);
    println!("allgather on S_5 (120 PEs):");
    println!(
        "  doubling : makespan {:>4} rounds, waits {:>8}",
        ag_stats.makespan, ag_stats.total_wait_rounds
    );
    println!(
        "  all-pairs: makespan {:>4} rounds, waits {:>8}",
        agn_stats.makespan, agn_stats.total_wait_rounds
    );

    if smoke() {
        // CI gates — these are structural properties of deterministic
        // schedules, not timings, so no noise allowance is needed.
        assert_eq!(
            tstats.makespan,
            2 * lb - 1,
            "tree broadcast lost its 2·ecc − 1 makespan"
        );
        assert_eq!(tstats.total_wait_rounds, 0, "tree phases must not contend");
        assert!(
            f64::from(tstats.makespan) * 10.0 < f64::from(nstats.makespan),
            "tree broadcast no longer beats naive by 10x at n = 6"
        );
        assert!(
            ag_stats.makespan < agn_stats.makespan
                && ag_stats.total_wait_rounds * 100 < agn_stats.total_wait_rounds,
            "recursive doubling no longer beats all-pairs allgather"
        );
    }

    // Full (non-smoke) mode only: the S_7 broadcast gap — 5 040 PEs,
    // the largest tree the rounds suite exercises — to track the
    // asymptotic trajectory.
    let s7 = (!smoke()).then(|| {
        let net7 = Network::new(7);
        let tree7 = broadcast_tree(7, 0).compile(&net7, &GreedyRouting);
        let naive7 = broadcast_naive(7, 0).compile(&net7, &GreedyRouting);
        let t = Instant::now();
        let t7 = net7.run(&tree7.workload, &GreedyRouting);
        let tree7_ns = t.elapsed().as_nanos();
        let n7 = net7.run(&naive7.workload, &GreedyRouting);
        assert_eq!(t7.makespan, 2 * distance_lower_bound(7) - 1);
        println!(
            "broadcast on S_7: tree {} rounds vs naive {} rounds (gap {:.1}x, {:.3} ms)",
            t7.makespan,
            n7.makespan,
            f64::from(n7.makespan) / f64::from(t7.makespan),
            tree7_ns as f64 / 1e6
        );
        (t7.makespan, n7.makespan, tree7_ns)
    });

    // One trajectory line per run, appended at the workspace root.
    let s7_fields = s7
        .map(|(t, n, ns)| {
            format!(",\"s7_tree_rounds\":{t},\"s7_naive_rounds\":{n},\"s7_tree_ns\":{ns}")
        })
        .unwrap_or_default();
    let entry = format!(
        "{{\"bench\":\"coll\",\"mode\":\"{}\",\
         \"s6_tree_rounds\":{},\"s6_naive_rounds\":{},\"s6_gap\":{gap:.3},\
         \"s6_tree_ns\":{tree_ns},\"s6_naive_ns\":{naive_ns},\
         \"s5_ag_rounds\":{},\"s5_ag_naive_rounds\":{},\
         \"s5_ag_waits\":{},\"s5_ag_naive_waits\":{}{s7_fields}}}\n",
        if smoke() { "smoke" } else { "full" },
        tstats.makespan,
        nstats.makespan,
        ag_stats.makespan,
        agn_stats.makespan,
        ag_stats.total_wait_rounds,
        agn_stats.total_wait_rounds,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coll.json");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut f) => {
            let _ = f.write_all(entry.as_bytes());
            println!("trajectory entry appended to BENCH_coll.json");
        }
        Err(e) => eprintln!("could not append BENCH_coll.json: {e}"),
    }
}

criterion_group!(benches, bench_compile, bench_run);

fn main() {
    benches();
    coll_trajectory();
}
