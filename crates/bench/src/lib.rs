//! # sg-bench — benchmark and table harness
//!
//! Regenerates every table and figure of the paper (see `DESIGN.md`'s
//! per-experiment index) through the `tables` binary, and measures the
//! algorithmic costs with Criterion benches.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin tables -- all
//! cargo bench -p sg-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::Table;
