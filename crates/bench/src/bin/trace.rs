//! Record, replay, inspect, and diff `sg-trace` JSONL logs.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin trace -- record /tmp/s6.jsonl --n 6 --seed 7
//! cargo run --release -p sg-bench --bin trace -- replay /tmp/s6.jsonl
//! cargo run --release -p sg-bench --bin trace -- stats /tmp/s6.jsonl
//! cargo run --release -p sg-bench --bin trace -- diff /tmp/a.jsonl /tmp/b.jsonl --context 3
//! ```
//!
//! `replay` reconstructs the run's statistics and dashboards from the
//! log alone — byte-identical to what the live run reported. `diff`
//! exits 1 when the two logs diverge (localizing the first diverging
//! round and event) and 0 when they are identical, so it slots into
//! CI scripts directly.

use sg_net::trace::{record, replay};
use sg_net::{Engine, GreedyRouting, Network, TrafficStats, Workload};
use sg_obs::{diff_events, NetProbe, Probe, SchedProbe, Trace};
use sg_perm::factorial::factorial;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         trace record <path> [--n N] [--seed S] [--reference]\n  \
         trace replay <path> [--top K]\n  \
         trace stats <path>\n  \
         trace diff <a> <b> [--context K]"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    std::process::exit(2);
}

fn flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    Trace::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

fn summary(tag: &str, s: &TrafficStats) {
    println!(
        "{tag}: injected {}  delivered {}  dropped {}  stranded {}  makespan {}  \
         wait {}  stalls {}  peak edge/node {}/{}  forwarded {}",
        s.injected,
        s.delivered,
        s.dropped(),
        s.stranded,
        s.makespan,
        s.total_wait_rounds,
        s.injection_stall_rounds,
        s.peak_edge_occupancy,
        s.peak_node_occupancy,
        s.forwarded_flits,
    );
}

fn cmd_record(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let n = flag(args, "--n", 5) as usize;
    let seed = flag(args, "--seed", 7);
    let engine = if args.iter().any(|a| a == "--reference") {
        Engine::Reference
    } else {
        Engine::Fast
    };
    let net = Network::new(n);
    let w = Workload::random_permutation(n, seed);
    let (live, trace) = record(&net, &w, &GreedyRouting, engine, seed);
    let text = trace.to_jsonl();
    // Self-check before writing: the file we emit must replay to the
    // exact statistics the live run produced.
    let back = sg_net::trace::replay_jsonl(&text)
        .unwrap_or_else(|e| die(&format!("self-check replay failed: {e}")));
    assert_eq!(
        back.total, live,
        "self-check: replayed stats diverge from live run"
    );
    std::fs::write(path, &text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    println!(
        "recorded S_{n} permutation run ({}) to {path}: {} packets, {} events, replay self-check ok",
        trace.header.engine, trace.header.packets, trace.header.events
    );
    summary("live", &live);
}

fn cmd_replay(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let top = flag(args, "--top", 5) as usize;
    let trace = load(path);
    let h = &trace.header;
    println!(
        "{path}: schema {} engine {} n {} seed {} jobs {} [{}]",
        h.schema, h.engine, h.n, h.seed, h.jobs, h.fingerprint
    );
    if h.engine == "sched" {
        // A scheduler trace: rebuild the Gantt dashboard from the job
        // event stream and show the embedded phase profile.
        let mut sp = SchedProbe::new();
        for ev in &trace.events {
            sp.event(ev);
        }
        print!("{}", sp.gantt(64));
        if let Some(p) = h.sched_profile {
            println!();
            print!("{}", p.render());
        }
        return;
    }
    let stats = replay(&trace).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    summary("replayed", &stats.total);
    for (j, s) in stats.per_job.iter().enumerate() {
        summary(&format!("  job {j}"), s);
    }
    let n = h.n as usize;
    let mut probe = NetProbe::new(factorial(n) as usize, n.saturating_sub(1));
    for ev in &trace.events {
        probe.event(ev);
    }
    println!();
    print!("{}", probe.render(top));
    if let Some(p) = h.sched_profile {
        println!();
        print!("{}", p.render());
    }
}

fn cmd_stats(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let trace = load(path);
    let h = &trace.header;
    println!(
        "{path}: schema {} engine {} n {} seed {} packets {} events {} jobs {} [{}]",
        h.schema, h.engine, h.n, h.seed, h.packets, h.events, h.jobs, h.fingerprint
    );
    if h.engine == "sched" {
        if let Some(p) = h.sched_profile {
            print!("{}", p.render());
        }
        return;
    }
    let stats = replay(&trace).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    summary("replayed", &stats.total);
    for (j, s) in stats.per_job.iter().enumerate() {
        summary(&format!("  job {j}"), s);
    }
}

fn cmd_diff(args: &[String]) {
    let (pa, pb) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => usage(),
    };
    let context = flag(args, "--context", 3) as usize;
    let a = load(pa);
    let b = load(pb);
    if a.header.fingerprint != b.header.fingerprint {
        println!(
            "note: configs differ — a: [{}]  b: [{}]",
            a.header.fingerprint, b.header.fingerprint
        );
    }
    match diff_events(&a.events, &b.events, context) {
        None => {
            println!("identical: {} event(s)", a.events.len());
        }
        Some(d) => {
            print!("{}", d.render());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest = &args[1.min(args.len())..];
    match args.first().map(String::as_str) {
        Some("record") => cmd_record(rest),
        Some("replay") => cmd_replay(rest),
        Some("stats") => cmd_stats(rest),
        Some("diff") => cmd_diff(rest),
        _ => usage(),
    }
}
