//! Regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p sg-bench --bin tables -- all
//! cargo run --release -p sg-bench --bin tables -- fig7
//! cargo run --release -p sg-bench --bin tables -- dilation --max-n 8
//! ```
//!
//! Subcommands map 1:1 to the experiment ids of DESIGN.md §2.

use sg_bench::Table;
use sg_coll::{
    all_to_all_naive, all_to_all_rotation, allgather_doubling, allgather_naive, allreduce_lattice,
    allreduce_naive, broadcast_naive, broadcast_tree, distance_lower_bound, naive_root_lower_bound,
    reduce_naive, reduce_scatter_halving, reduce_scatter_naive, reduce_tree, CollSchedule,
};
use sg_core::congestion::{static_congestion, verify_lemma5_all};
use sg_core::convert::{convert_d_s, mapping_table, table1_row};
use sg_core::dilation::{audit_dilation, expected_mesh_edges, lemma1_degrees};
use sg_core::embedding::star_mesh_embedding;
use sg_core::fig4::figure4_embedding;
use sg_core::lemma3::mesh_neighbor_plus;
use sg_graph::builders;
use sg_mesh::atallah::BlockMap;
use sg_mesh::dn::DnMesh;
use sg_mesh::factorization::{
    balance_bound, factorize, imbalance, optimal_dimension_sweep,
    paper_predicted_optimal_dimension, predicted_optimal_dimension,
};
use sg_mesh::shape::{MeshShape, Sign};
use sg_mesh::uniform::{
    thm7_slowdown, thm8_slowdown, thm9_approx_log2, thm9_slowdown_log2, UniformMesh,
};
use sg_net::{
    AdaptiveRouting, EmbeddingRouting, Engine, FaultPlan, FaultPolicy, FlowControl, GreedyRouting,
    NetConfig, Network, RoutingPolicy, Workload,
};
use sg_obs::{reset_tick_clock, tick_clock, NetProbe, SchedProbe};
use sg_perm::factorial::factorial;
use sg_sched::job::{JobSpec, TenantRouting, TrafficProfile};
use sg_sched::scheduler::schedule as sched_schedule;
use sg_sched::scheduler::schedule_probed as sched_schedule_probed;
use sg_sched::scheduler::schedule_profiled as sched_schedule_profiled;
use sg_sched::stream::{generate, ArrivalPattern, StreamConfig};
use sg_sched::{schedule_with, AllocPolicy, ReleaseMode, SchedConfig, SchedPolicy};
use sg_simd::machine::MeshSimd;
use sg_simd::{EmbeddedMeshMachine, MeshMachine};
use sg_star::broadcast::{flood_schedule, lower_bound, paper_bound, verify_schedule};
use sg_star::StarGraph;

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "table1" => table1(parse_flag(&args, "--n", 6)),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig7" => fig7(parse_flag(&args, "--n", 4)),
        "lemma1" => lemma1(),
        "lemma3" => lemma3(parse_flag(&args, "--max-n", 7)),
        "dilation" => dilation(parse_flag(&args, "--max-n", 8)),
        "thm6" => thm6(parse_flag(&args, "--max-n", 6)),
        "congestion" => congestion(parse_flag(&args, "--max-n", 6)),
        "traffic" => traffic(parse_flag(&args, "--n", 5)),
        "sched" => sched(parse_flag(&args, "--n", 6)),
        "coll" => coll(parse_flag(&args, "--max-n", 6)),
        "obs" => obs(parse_flag(&args, "--n", 6)),
        "starprops" => starprops(),
        "thm9" => thm9(),
        "appendix" => appendix(),
        "sorting" => sorting(),
        "starvshypercube" => star_vs_hypercube(),
        "all" => {
            table1(6);
            fig2();
            fig3();
            fig4();
            fig7(4);
            lemma1();
            lemma3(7);
            dilation(8);
            thm6(6);
            congestion(6);
            traffic(5);
            sched(6);
            coll(6);
            obs(6);
            starprops();
            thm9();
            appendix();
            sorting();
            star_vs_hypercube();
        }
        _ => {
            eprintln!(
                "usage: tables <table1|fig2|fig3|fig4|fig7|lemma1|lemma3|dilation|thm6|\
                 congestion|traffic|sched|coll|obs|starprops|thm9|appendix|sorting|\
                 starvshypercube|all> [--n N] [--max-n N]"
            );
            std::process::exit(2);
        }
    }
}

fn banner(s: &str) {
    println!("\n================ {s} ================\n");
}

/// E1 — Table 1: the exchange sequence of each mesh dimension.
fn table1(n: usize) {
    banner(&format!("Table 1 — exchange sequences (n = {n})"));
    let mut t = Table::new(&["i", "sequence of exchanges"]);
    for i in 1..n {
        let seq: Vec<String> = table1_row(i)
            .iter()
            .map(|(a, b)| format!("({a} {b})"))
            .collect();
        t.row(&[i.to_string(), seq.join(" ")]);
    }
    print!("{}", t.render());
}

/// E3 — Figure 2: the S_4 topology.
fn fig2() {
    banner("Figure 2 — the star graph S_4");
    let star = StarGraph::new(4);
    let g = star.to_csr();
    println!(
        "nodes = {}, degree = {}, edges = {}, diameter = {} (formula {})\n",
        g.node_count(),
        g.regular_degree().unwrap(),
        g.edge_count(),
        sg_graph::metrics::diameter(&g).unwrap(),
        star.diameter()
    );
    let label = |v: u32| star.node_at(u64::from(v)).to_string();
    print!("{}", sg_graph::viz::to_adjacency_list(&g, label));
}

/// E4 — Figure 3: the 2×3×4 mesh.
fn fig3() {
    banner("Figure 3 — the 2*3*4 mesh");
    let shape = MeshShape::from_display(&[2, 3, 4]).unwrap();
    let g = shape.to_csr();
    println!(
        "nodes = {}, edges = {}, diameter = {}, max degree = {}\n",
        g.node_count(),
        g.edge_count(),
        shape.diameter(),
        shape.max_degree()
    );
    let label = |v: u32| shape.point_at(u64::from(v)).to_string();
    print!("{}", sg_graph::viz::to_adjacency_list(&g, label));
}

/// E5 — Figure 4: the worked embedding example.
fn fig4() {
    banner("Figure 4 — example embedding G into S");
    let e = figure4_embedding();
    let m = e.analyze().expect("valid");
    println!(
        "expansion = {}, dilation = {}, congestion = {}",
        m.expansion, m.dilation, m.congestion
    );
    println!("(paper: expansion 1, dilation 2, congestion 2)");
}

/// E2 — Figure 7: the full V(D_n) ↔ V(S_n) table.
fn fig7(n: usize) {
    banner(&format!("Figure 7 — mapping of V(D_{n}) into V(S_{n})"));
    let table = mapping_table(n);
    let mut t = Table::new(&["D_n", "S_n"]);
    for (m, s) in table {
        t.row(&[m, s]);
    }
    print!("{}", t.render());
}

/// E6 — Lemma 1: the degree obstruction to dilation 1.
fn lemma1() {
    banner("Lemma 1 — no dilation-1 embedding for n > 2");
    let mut t = Table::new(&[
        "n",
        "max mesh degree 2n-3",
        "star degree n-1",
        "dilation-1 possible",
    ]);
    for n in 2..=12usize {
        let (md, sd) = lemma1_degrees(n);
        t.row(&[
            n.to_string(),
            md.to_string(),
            sd.to_string(),
            (md <= sd).to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// E8 — Lemma 3: closed-form neighbors equal convert-roundtrip.
fn lemma3(max_n: usize) {
    banner("Lemma 3 — closed-form mesh neighbors (exhaustive check)");
    let mut t = Table::new(&["n", "nodes", "neighbor pairs checked", "mismatches"]);
    for n in 2..=max_n {
        let dn = DnMesh::new(n);
        let shape = dn.shape().clone();
        let mut checked = 0u64;
        let mut mismatches = 0u64;
        for d in dn.points() {
            let pi = convert_d_s(&d);
            for k in 1..n {
                let expect = shape.neighbor(&d, k, Sign::Plus).map(|q| convert_d_s(&q));
                let got = mesh_neighbor_plus(&pi, k);
                checked += 1;
                if expect != got {
                    mismatches += 1;
                }
            }
        }
        t.rowd(&[n as u64, dn.node_count(), checked, mismatches]);
    }
    print!("{}", t.render());
}

/// E7 — Theorem 4: exhaustive dilation audit.
fn dilation(max_n: usize) {
    banner("Theorem 4 — dilation audit over every mesh edge");
    let mut t = Table::new(&[
        "n",
        "nodes",
        "mesh edges",
        "dist=1",
        "dist=3",
        "dilation",
        "expected edges",
    ]);
    for n in 2..=max_n {
        let r = audit_dilation(n);
        let h1 = r.histogram.get(1).copied().unwrap_or(0);
        let h3 = r.histogram.get(3).copied().unwrap_or(0);
        t.rowd(&[
            n as u64,
            factorial(n),
            r.edges,
            h1,
            h3,
            u64::from(r.dilation()),
            expected_mesh_edges(n),
        ]);
    }
    print!("{}", t.render());
    println!("(paper: dilation 3; distance-1 edges are exactly dimension n-1's)");
}

/// E9 — Lemma 5 / Theorem 6: conflict-free unit-route simulation.
fn thm6(max_n: usize) {
    banner("Lemma 5 / Theorem 6 — mesh unit route on the star graph");
    let mut t = Table::new(&[
        "n",
        "dim k",
        "dir",
        "messages",
        "star unit routes",
        "conflict-free",
    ]);
    for n in 2..=max_n {
        for r in verify_lemma5_all(n).expect("no conflicts") {
            t.row(&[
                n.to_string(),
                r.k.to_string(),
                if r.plus { "+" } else { "-" }.to_string(),
                r.messages.to_string(),
                r.unit_routes.to_string(),
                "yes".to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!("(paper: at most 3 unit routes; dimension n-1 costs 1)");

    println!("\nSimulator cross-check (one + route per dimension):");
    let mut t2 = Table::new(&["n", "logical mesh routes", "star routes", "slowdown"]);
    for n in 3..=max_n {
        let mut m: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        m.load("B", (0..factorial(n)).collect());
        for dim in 1..n {
            m.route("B", dim, Sign::Plus);
        }
        let s = m.stats();
        t2.row(&[
            n.to_string(),
            s.logical_mesh_routes.to_string(),
            s.physical_routes.to_string(),
            format!("{:.3}", s.slowdown().unwrap()),
        ]);
    }
    print!("{}", t2.render());
}

/// Extension — static congestion of the embedding.
fn congestion(max_n: usize) {
    banner("Extension — static congestion of the embedding");
    let mut t = Table::new(&["n", "congestion", "star edges used", "star edges total"]);
    for n in 2..=max_n {
        let c = static_congestion(n);
        t.rowd(&[n as u64, c.congestion, c.edges_used, c.edges_total]);
    }
    print!("{}", t.render());
    let m = star_mesh_embedding(4).analyze().unwrap();
    println!(
        "\ngeneric analyzer (n=4): expansion {}, dilation {}, congestion {}",
        m.expansion, m.dilation, m.congestion
    );
}

/// Extension — contention-accounted traffic on the `sg-net` simulator.
fn traffic(n: usize) {
    banner("Extension — traffic simulation on the S_n interconnect (sg-net)");
    let net = Network::new(n);
    let mut t = Table::new(&[
        "workload",
        "policy",
        "packets",
        "delivered",
        "rounds",
        "avg lat",
        "wait rounds",
        "peak queue",
    ]);
    let mut add = |w: &Workload, policy: &dyn RoutingPolicy, net: &Network| {
        let s = net.run(w, policy);
        t.row(&[
            w.name().to_string(),
            policy.name().to_string(),
            s.injected.to_string(),
            s.delivered.to_string(),
            s.makespan.to_string(),
            format!("{:.2}", s.avg_latency()),
            s.total_wait_rounds.to_string(),
            s.peak_edge_occupancy.to_string(),
        ]);
    };
    let sweep = Workload::dimension_sweep(n, n / 2, true);
    add(&sweep, &EmbeddingRouting, &net);
    add(&sweep, &GreedyRouting, &net);
    let uniform = Workload::bernoulli_uniform(n, 20, 100, 0xBEEF);
    add(&uniform, &GreedyRouting, &net);
    add(&uniform, &AdaptiveRouting, &net);
    add(&Workload::transpose(n), &GreedyRouting, &net);
    let hotspot = Workload::hot_spot(n, 0, 30, 0x5EED);
    add(&hotspot, &GreedyRouting, &net);
    add(&hotspot, &AdaptiveRouting, &net);
    // Same uniform traffic, but a bounded buffer per PE: tail-drop
    // loses packets, credit-based stalls them at the source instead
    // (3 slots per queue — enough pool that blocking flow control
    // stays deadlock-free at full injection here).
    let lossy = Network::new(n).with_config(NetConfig {
        queue_capacity: Some(3),
        ..NetConfig::default()
    });
    add(&uniform, &GreedyRouting, &lossy);
    let credit = Network::new(n).with_config(NetConfig {
        queue_capacity: Some(3),
        flow_control: FlowControl::CreditBased,
        ..NetConfig::default()
    });
    add(&uniform, &GreedyRouting, &credit);
    let faulted = Network::new(n)
        .with_faults(FaultPlan::random_nodes(n, n - 2, 0xD00D).with_policy(FaultPolicy::Reroute));
    add(
        &Workload::random_permutation(n, 0xFADE),
        &GreedyRouting,
        &faulted,
    );
    print!("{}", t.render());
    println!("(dimension sweep under embedding routing: the Lemma-5 schedule, zero waits;");
    println!(" uniform full injection: no certificate, queues grow — the paper's contrast;");
    println!(" adaptive spreads hot-spot load; credit flow control trades drops for delay)");
}

/// Extension — multi-tenant sub-star scheduling (sg-sched).
fn sched(n: usize) {
    banner(&format!(
        "Extension — multi-tenant sub-star scheduling on S_{n} (sg-sched)"
    ));
    let net = Network::new(n);

    // Policy × arrival-pattern grid over one seeded confined stream.
    let mut t = Table::new(&[
        "policy",
        "pattern",
        "jobs",
        "delay avg",
        "frag avg",
        "horizon",
        "wait rounds",
        "delivered",
    ]);
    for pattern in [
        ArrivalPattern::Steady { gap: 4 },
        ArrivalPattern::Bursty { burst: 5, gap: 25 },
        ArrivalPattern::Random { mean_gap: 4 },
    ] {
        for policy in AllocPolicy::ALL {
            let cfg = StreamConfig {
                pattern,
                min_order: 3,
                max_order: n,
                duration: (40, 110),
                greedy_pct: 20,
                adaptive_pct: 10,
                ..StreamConfig::isolated(n, 15, 0x5EED)
            };
            let jobs = generate(&cfg);
            let mut alloc = policy.build(n);
            let s = sched_schedule(&jobs, alloc.as_mut());
            assert!(s.concurrent_placements_disjoint());
            let report = s.tenant_run().run(&net);
            t.row(&[
                policy.name().to_string(),
                pattern.name().to_string(),
                s.placements().len().to_string(),
                format!("{:.2}", s.mean_queueing_delay()),
                format!("{:.3}", s.mean_fragmentation()),
                s.horizon().to_string(),
                report.total.total_wait_rounds.to_string(),
                report.total.delivered.to_string(),
            ]);
        }
    }
    print!("{}", t.render());

    // The fragmentation stress: hole-blind first fit makes a later
    // full-size job queue; hole-aware policies place it instantly.
    let sweep = TrafficProfile::DimensionSweep { dim: 1, plus: true };
    let e = TenantRouting::Embedding;
    let mk = |id, order, arrival, duration| JobSpec {
        id,
        order,
        arrival,
        duration,
        traffic: sweep,
        routing: e,
        escape: false,
    };
    // One short-lived S_{n-1} + (n-2) long fillers + a small job
    // splitting the last S_{n-1}; then a probe and a big request.
    let mut jobs = vec![mk(0, n - 1, 0, 50)];
    for id in 1..=(n as u32 - 2) {
        jobs.push(mk(id, n - 1, 0, 400));
    }
    jobs.push(mk(n as u32 - 1, 3, 0, 400));
    jobs.push(mk(n as u32, 3, 55, 400));
    jobs.push(mk(n as u32 + 1, n - 1, 60, 40));
    let mut t2 = Table::new(&["policy", "big-job delay", "horizon"]);
    for policy in AllocPolicy::ALL {
        let mut alloc = policy.build(n);
        let s = sched_schedule(&jobs, alloc.as_mut());
        let big = s.placements().last().expect("all jobs place");
        t2.row(&[
            policy.name().to_string(),
            big.queueing_delay().to_string(),
            s.horizon().to_string(),
        ]);
    }
    print!("{}", t2.render());
    println!("(embedding tenants isolate byte-for-byte; placement policy alone");
    println!(" decides whether the late full-size job queues — see multi_tenant.rs)");
    println!();

    // Release-mode × scheduling-policy grid over an under-declaring
    // stream: declared release leaks in-flight flits across handoffs
    // (the audit counts them), drained release seals every handoff at
    // the cost of a longer horizon, and EASY backfill claws queueing
    // delay back under either mode. "max gap" is the worst reserved-
    // vs-actual start slip EASY's optimistic reservations suffered.
    let cfg = StreamConfig {
        pattern: ArrivalPattern::Bursty { burst: 4, gap: 12 },
        min_order: 3,
        max_order: n,
        duration: (10, 60),
        underdeclare_pct: 35,
        ..StreamConfig::isolated(n, 14, 0x5EED)
    };
    let jobs = generate(&cfg);
    let mut profiles: Vec<String> = Vec::new();
    let mut t3 = Table::new(&[
        "policy",
        "release",
        "horizon",
        "delay avg",
        "backfills",
        "max gap",
        "leaked flits",
    ]);
    for policy in [SchedPolicy::Fcfs, SchedPolicy::EasyBackfill] {
        for release in [ReleaseMode::Declared, ReleaseMode::Drained] {
            let cfg = SchedConfig {
                release,
                policy,
                net: Some(&net),
                ..SchedConfig::default()
            };
            let mut probe = SchedProbe::new();
            let mut alloc = AllocPolicy::FirstFit.build(n);
            let s = schedule_with(&jobs, alloc.as_mut(), &cfg, &mut probe);
            assert!(s.concurrent_placements_disjoint());
            // The event loop's self-profile, under the deterministic
            // tick clock — and the profiled schedule must be
            // byte-identical to the bare one.
            reset_tick_clock();
            let (profiled, prof) = sched_schedule_profiled(
                &jobs,
                AllocPolicy::FirstFit.build(n).as_mut(),
                &cfg,
                &mut sg_obs::NullProbe,
                tick_clock,
            );
            assert_eq!(profiled, s, "profiling never perturbs the schedule");
            profiles.push(format!(
                "phase profile [{}/{}]: {} rounds, {} ticks — placement {}, drain {}, backfill {}, release {}",
                policy.name(),
                release.name(),
                prof.rounds,
                prof.total_ticks(),
                prof.placement_ticks,
                prof.drain_ticks,
                prof.backfill_ticks,
                prof.release_ticks,
            ));
            let run = s.tenant_run();
            let report = run.run(&net);
            let leaked = run.quiescence_violations(&report).len();
            if release == ReleaseMode::Drained {
                assert_eq!(leaked, 0, "drained handoffs are clean by construction");
            }
            t3.row(&[
                policy.name().to_string(),
                release.name().to_string(),
                s.horizon().to_string(),
                format!("{:.2}", s.mean_queueing_delay()),
                s.backfills().to_string(),
                probe.max_optimism_gap().to_string(),
                leaked.to_string(),
            ]);
        }
    }
    print!("{}", t3.render());
    println!("(declared release trusts walltime lies — \"leaked flits\" counts tenant");
    println!(" packets still in flight when their sub-star was handed to a successor;");
    println!(" drained release co-simulates the drain and never hands over dirty)");
    println!();
    for line in &profiles {
        println!("{line}");
    }
    println!("(scheduler event-loop self-profile under the deterministic tick clock:");
    println!(" drain ticks count co-simulations, backfill ticks count EASY probes)");
}

/// Extension — collective communication on the star interconnect
/// (sg-coll): structured algorithms vs their naive references, per
/// collective and order.
fn coll(max_m: usize) {
    banner("Extension — collectives on the S_n interconnect (sg-coll)");
    let mut t = Table::new(&[
        "collective",
        "m",
        "PEs",
        "lb",
        "phases",
        "rounds",
        "waits",
        "naive rounds",
        "naive waits",
    ]);
    for m in 3..=max_m {
        let net = Network::new(m);
        let run = |s: &CollSchedule| {
            let chained = s.compile(&net, &GreedyRouting);
            let stats = net.run(&chained.workload, &GreedyRouting);
            assert_eq!(stats.delivered, stats.injected, "collectives are lossless");
            (s.phase_count(), stats)
        };
        let lb = distance_lower_bound(m);
        let pes = factorial(m);
        let mut row = |name: &str, s: &CollSchedule, naive: &CollSchedule| {
            let (phases, stats) = run(s);
            let (_, nstats) = run(naive);
            t.row(&[
                name.to_string(),
                m.to_string(),
                pes.to_string(),
                lb.to_string(),
                phases.to_string(),
                stats.makespan.to_string(),
                stats.total_wait_rounds.to_string(),
                nstats.makespan.to_string(),
                nstats.total_wait_rounds.to_string(),
            ]);
            (stats, nstats)
        };

        // The tree collectives keep their exact cost certificate: one
        // contention-free one-hop phase per level, makespan 2·ecc − 1,
        // while the naive root blast serializes on n − 1 root links.
        let (bs, bn) = row("broadcast", &broadcast_tree(m, 0), &broadcast_naive(m, 0));
        assert_eq!(bs.makespan, 2 * lb - 1, "tree broadcast: 2·ecc − 1");
        assert_eq!(bs.total_wait_rounds, 0, "tree phases are contention-free");
        assert!(bn.makespan >= naive_root_lower_bound(m));
        let (rs, _) = row("reduce", &reduce_tree(m, 0), &reduce_naive(m, 0));
        assert_eq!(rs.makespan, 2 * lb - 1, "tree reduce: 2·ecc − 1");
        assert_eq!(rs.total_wait_rounds, 0);
        if m >= 4 {
            assert!(
                bs.makespan < bn.makespan,
                "tree broadcast must beat naive from m = 4 on"
            );
        }
        if m >= 6 {
            assert!(
                bs.makespan * 10 < bn.makespan,
                "the asymptotic gap must exceed 10x by m = 6"
            );
        }

        // The lattice family: all-pairs references explode
        // quadratically, so cap them where the table stays quick.
        row(
            "reduce-scatter",
            &reduce_scatter_halving(m),
            &reduce_scatter_naive(m),
        );
        if m <= 6 {
            let (ag, agn) = row("allgather", &allgather_doubling(m), &allgather_naive(m));
            if m >= 4 {
                assert!(
                    ag.total_wait_rounds * 10 < agn.total_wait_rounds,
                    "recursive doubling must dominate all-pairs contention"
                );
            }
            row("allreduce", &allreduce_lattice(m), &allreduce_naive(m));
        }
        if m <= 5 {
            row("all-to-all", &all_to_all_rotation(m), &all_to_all_naive(m));
        }
    }
    print!("{}", t.render());
    println!("(lb = ⌊3(m−1)/2⌋, the distance lower bound; the dimension tree hits");
    println!(" exactly 2·lb − 1 rounds with zero waits at every order — one");
    println!(" contention-free one-hop phase per level plus the barrier rounds —");
    println!(" while the naive references serialize on root links or flood all pairs)");
}

/// Extension — observability: probe dashboards and the self-profiler
/// (sg-obs).
fn obs(n: usize) {
    banner(&format!("Extension — observability on S_{n} (sg-obs)"));

    // 1. The interconnect dashboard: a NetProbe riding saturated
    // uniform traffic, with the statistics asserted byte-identical to
    // the bare run — the probe is a pure observer.
    let net = Network::new(n);
    let w = Workload::bernoulli_uniform(n, 20, 100, 0xBEEF);
    let bare = net.run(&w, &GreedyRouting);
    let mut probe = NetProbe::new(net.node_count(), net.n() - 1);
    let probed = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut probe);
    assert_eq!(probed, bare, "probes never perturb the run");
    println!(
        "uniform full injection, {} packets over {} rounds:\n",
        bare.injected, bare.makespan
    );
    print!("{}", probe.render(5));

    // 2. The tenant Gantt: the scheduler's probed event stream,
    // assembled into per-job spans and drawn as a timeline.
    let cfg = StreamConfig {
        pattern: ArrivalPattern::Bursty { burst: 4, gap: 30 },
        min_order: 3,
        max_order: n,
        duration: (40, 110),
        ..StreamConfig::isolated(n, 12, 0x5EED)
    };
    let jobs = generate(&cfg);
    let mut alloc = AllocPolicy::BestFit.build(n);
    let mut sp = SchedProbe::new();
    let s = sched_schedule_probed(&jobs, alloc.as_mut(), &mut sp);
    assert_eq!(sp.spans().len(), s.placements().len());
    assert_eq!(sp.horizon(), s.horizon());
    println!();
    print!("{}", sp.gantt(64));

    // 3. The fast engine's self-profile: per-phase time under the same
    // saturated run, via the monotonic clock injected at construction.
    let (stats, profile) = net.run_profiled(&w, &GreedyRouting);
    assert_eq!(stats, bare, "profiling never perturbs the run");
    println!();
    print!("{}", profile.render());
}

/// E10 — §2 star-graph properties.
fn starprops() {
    banner("S_n properties (paper §2)");
    let mut t = Table::new(&[
        "n",
        "nodes",
        "degree",
        "diam formula",
        "diam BFS",
        "kappa",
        "broadcast routes",
        "lower bnd",
        "3 n lg n",
    ]);
    for n in 2..=7usize {
        let star = StarGraph::new(n);
        let g = star.to_csr();
        let diam_bfs = sg_graph::metrics::diameter(&g).unwrap();
        let kappa = if n <= 5 {
            sg_graph::connectivity::vertex_connectivity(&g).to_string()
        } else {
            format!("{} (theory)", n - 1)
        };
        let sched = flood_schedule(&star, 0);
        let routes = verify_schedule(&star, &sched).unwrap();
        t.row(&[
            n.to_string(),
            star.node_count().to_string(),
            star.degree().to_string(),
            star.diameter().to_string(),
            diam_bfs.to_string(),
            kappa,
            routes.to_string(),
            lower_bound(n).to_string(),
            format!("{:.1}", paper_bound(n)),
        ]);
    }
    print!("{}", t.render());
    let vt = sg_graph::transitivity::is_vertex_transitive(&builders::star_graph(4));
    println!("\nvertex-transitive (exact automorphism search, S_4): {vt}");
}

/// E11 — Theorems 7–9: uniform mesh simulation bounds + measurement.
fn thm9() {
    banner("Theorems 7-9 — simulating uniform meshes");
    let mut t = Table::new(&[
        "n",
        "N=n!",
        "thm7 slowdown",
        "thm8 slowdown",
        "log2 thm9",
        "log2 O(2^n)",
    ]);
    for n in 4..=14usize {
        let full = MeshShape::new(&(2..=n).collect::<Vec<_>>()).unwrap();
        t.row(&[
            n.to_string(),
            factorial(n).to_string(),
            format!("{:.2}", thm7_slowdown(&full)),
            format!("{:.1}", thm8_slowdown(&full)),
            format!("{:.2}", thm9_slowdown_log2(n)),
            format!("{:.0}", thm9_approx_log2(n)),
        ]);
    }
    print!("{}", t.render());

    println!("\nMeasured (Atallah block map, U = nearest uniform mesh):");
    let mut t2 = Table::new(&["n", "d", "R extents", "U", "max load", "routes per U step"]);
    for (n, d) in [
        (5usize, 2usize),
        (5, 4),
        (6, 2),
        (6, 3),
        (6, 5),
        (7, 2),
        (7, 3),
    ] {
        let ext = factorize(n, d);
        let r = MeshShape::new(&ext.iter().map(|&x| x as usize).collect::<Vec<_>>()).unwrap();
        let u = UniformMesh::nearest(r.size(), d);
        let map = BlockMap::new(u, r);
        let (_, maxload) = map.load_stats();
        t2.row(&[
            n.to_string(),
            d.to_string(),
            format!("{ext:?}"),
            format!("{}^{}", u.side, d),
            maxload.to_string(),
            map.worst_route_congestion().to_string(),
        ]);
    }
    print!("{}", t2.render());
    println!("(shape claim: full-dimension simulation explodes ~2^n; low-d stays small)");
}

/// E12 — Appendix: factorizations and the optimal dimension.
fn appendix() {
    banner("Appendix — factorizing 2*3*...*n into d extents");
    let mut t = Table::new(&["n", "d", "extents l_1..l_d", "l1/ld", "bound n(1+n mod d)"]);
    for n in [6usize, 8, 10, 12] {
        for d in [1usize, 2, 3, 4] {
            if d >= n {
                continue;
            }
            let ext = factorize(n, d);
            t.row(&[
                n.to_string(),
                d.to_string(),
                format!("{ext:?}"),
                format!("{:.2}", imbalance(&ext)),
                format!("{:.1}", balance_bound(n, d)),
            ]);
        }
    }
    print!("{}", t.render());

    println!("\nOptimal simulation dimension (cost d*2^d*N^(2/d), log2):");
    let mut t2 = Table::new(&["n", "best d", "sqrt(2 log2 N)", "paper 0.5*sqrt(log2 N)"]);
    for n in 6..=14usize {
        let (_, best) = optimal_dimension_sweep(n);
        t2.row(&[
            n.to_string(),
            best.to_string(),
            format!("{:.2}", predicted_optimal_dimension(n)),
            format!("{:.2}", paper_predicted_optimal_dimension(n)),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "(the Θ(sqrt(log N)) claim holds; the paper's 1/2 constant does not \
         minimize its own model — see EXPERIMENTS.md)"
    );
}

/// E13 — §5: sorting on mesh vs star.
fn sorting() {
    banner("Sorting (§5) — shearsort via the 2-D Appendix view");
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use sg_algo::grouped::{GroupedGeometry, GroupedMachine};
    use sg_algo::shearsort::{shearsort, shearsort_route_model};
    use sg_algo::util::is_sorted_snake;

    let mut t = Table::new(&[
        "n",
        "N=n!",
        "2-D shape",
        "model routes",
        "native 2-D routes",
        "grouped D_n routes",
        "star routes",
        "sorted",
    ]);
    for n in 4..=6usize {
        let geom = GroupedGeometry::appendix(n, 2);
        let vshape = geom.virtual_shape().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let keys: Vec<u64> = (0..vshape.size())
            .map(|_| rng.gen_range(0..1_000_000))
            .collect();

        // (a) native 2-D rectangular mesh of the same shape
        let mut flat: MeshMachine<u64> = MeshMachine::new(vshape.clone());
        flat.load("K", keys.clone());
        let model = shearsort_route_model(vshape.extent(1), vshape.extent(2));
        let native_routes = shearsort(&mut flat, "K");

        // (b) grouped view over a native D_n mesh
        let mut inner: MeshMachine<u64> = MeshMachine::new(geom.inner_shape().clone());
        let mut grouped = GroupedMachine::new(&mut inner, geom.clone());
        grouped.load("K", keys.clone());
        shearsort(&mut grouped, "K");
        let dn_routes = grouped.stats().physical_routes;

        // (c) grouped view over the star graph
        let mut star: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        let mut gstar = GroupedMachine::new(&mut star, geom);
        gstar.load("K", keys);
        shearsort(&mut gstar, "K");
        let star_routes = gstar.stats().physical_routes;
        let sorted = is_sorted_snake(&vshape, &gstar.read("K"));

        t.row(&[
            n.to_string(),
            vshape.size().to_string(),
            format!("{}x{}", vshape.extent(1), vshape.extent(2)),
            model.to_string(),
            native_routes.to_string(),
            dn_routes.to_string(),
            star_routes.to_string(),
            sorted.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(columns grow left to right: the Appendix grouping costs a small \
         constant, the star embedding at most 3x more)"
    );
}

/// E14 — intro comparison: star vs hypercube.
fn star_vs_hypercube() {
    banner("Star graph vs hypercube (intro / `[AKER87]`)");
    let mut t = Table::new(&[
        "degree",
        "star nodes (n+1)!",
        "cube nodes 2^n",
        "star diam",
        "cube diam",
    ]);
    for deg in 2..=9usize {
        let star = StarGraph::new(deg + 1);
        t.row(&[
            deg.to_string(),
            star.node_count().to_string(),
            (1u64 << deg).to_string(),
            star.diameter().to_string(),
            deg.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(star connects far more nodes per degree with asymptotically smaller diameter)");
}
