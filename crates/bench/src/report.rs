//! Minimal fixed-width table rendering for the regenerators.

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of `Display` values.
    pub fn rowd<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(ToString::to_string).collect::<Vec<_>>());
    }

    /// Renders with per-column widths, two-space gutters, and a rule
    /// under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>w$}", w = width[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "value"]);
        t.rowd(&[1, 100]);
        t.rowd(&[12, 2]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], " n  value");
        assert_eq!(lines[2], " 1    100");
        assert_eq!(lines[3], "12      2");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".to_string()]);
    }
}
