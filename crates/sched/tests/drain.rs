//! The drain-aware release suite: the pinned dirty-handoff scenario,
//! the cross-layer quiescence assert, the engine-differential row for
//! drained runs, the EASY optimism gap, and the mixed-tenancy escape
//! regression.
//!
//! The headline scenario (asserted on **both** engines): a tenant
//! under-declares its walltime, [`ReleaseMode::Declared`] hands its
//! still-draining sub-star to a successor — byte-isolation breaks and
//! the quiescence audit reports the leaked flits — and
//! [`ReleaseMode::Drained`] restores exact byte-isolation with a
//! clean audit, at the cost of later releases.

use sg_net::{Network, TrafficStats};
use sg_obs::NullProbe;
use sg_sched::alloc::AllocPolicy;
use sg_sched::{
    schedule_with, AdmissionPolicy, JobSpec, ReleaseMode, SchedConfig, SchedPolicy, Schedule,
    StreamConfig, TenantRouting, TrafficProfile,
};

const N: usize = 4;

fn job(id: u32, order: usize, arrival: u32, duration: u32) -> JobSpec {
    JobSpec {
        id,
        order,
        arrival,
        duration,
        traffic: TrafficProfile::Transpose,
        routing: TenantRouting::Embedding,
        escape: false,
    }
}

/// The pinned stream: j0 under-declares (1 round, multi-round
/// transpose drain) in one of the four order-3 slices of S_4, j2–j4
/// are long-lived bystanders filling the other three, and j1 —
/// arriving with the machine full — is placed into j0's region the
/// moment it is released.
fn pinned_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            // The liar: declares 1 round, then drains a 24-packet
            // backlog over many rounds on its 6-PE slice.
            traffic: TrafficProfile::UniformPairs { pairs: 24, seed: 7 },
            ..job(0, 3, 0, 1)
        },
        job(2, 3, 0, 50),
        job(3, 3, 0, 50),
        job(4, 3, 0, 50),
        job(1, 3, 0, 50), // the successor, reuses j0's sub-star
    ]
}

fn run_mode(release: ReleaseMode, net: &Network) -> (Schedule, sg_sched::ScheduleReport) {
    let cfg = SchedConfig {
        release,
        net: Some(net),
        ..SchedConfig::default()
    };
    let mut alloc = AllocPolicy::FirstFit.build(N);
    let s = schedule_with(&pinned_jobs(), alloc.as_mut(), &cfg, &mut NullProbe);
    let report = s.tenant_run().run(net);
    (s, report)
}

#[test]
fn declared_release_hands_over_dirty_and_perturbs_the_successor() {
    let net = Network::new(N);
    let (s, report) = run_mode(ReleaseMode::Declared, &net);
    let run = s.tenant_run();
    // The successor starts on j0's sub-star at the declared (round-1)
    // release, while j0's transpose is still in flight.
    let liar = &s.placements()[0];
    let successor = s
        .placements()
        .iter()
        .find(|p| p.job.id == 1)
        .expect("successor placed");
    assert_eq!(liar.finish, 1, "declared release trusts the 1-round lie");
    assert_eq!(successor.start, 1);
    assert_eq!(
        successor.substar, liar.substar,
        "successor must inherit the liar's sub-star for the handoff to matter"
    );
    // The quiescence audit catches the leak: flits of j0 resolved at
    // or after its release round.
    let violations = run.quiescence_violations(&report);
    assert!(
        !violations.is_empty(),
        "declared release must leak in-flight flits past the handoff"
    );
    assert!(violations.iter().all(|v| v.job == 0), "the liar leaks");
    // And the leak is not cosmetic: the successor's attributed stats
    // depart its isolated baseline — byte-isolation is broken.
    let isolated = run.isolated_stats(&net);
    let perturbed = report.perturbed_jobs(&isolated);
    assert!(
        perturbed.contains(&1),
        "successor must be measurably perturbed, got {perturbed:?}"
    );
}

#[test]
fn drained_release_restores_byte_isolation() {
    let net = Network::new(N);
    let (s, report) = run_mode(ReleaseMode::Drained, &net);
    let run = s.tenant_run();
    let liar = &s.placements()[0];
    assert!(
        liar.finish > 1,
        "drained release must hold past the declared round"
    );
    // Clean handoff: the audit is empty, the assert variant passes,
    // and every tenant is byte-equal to its isolated run.
    assert_eq!(run.quiescence_violations(&report), vec![]);
    let checked = run.run_quiesce_checked(&net);
    assert_eq!(checked, report);
    let isolated = run.isolated_stats(&net);
    assert_eq!(
        report.perturbed_jobs(&isolated),
        Vec::<u32>::new(),
        "drained release restores exact byte-isolation"
    );
}

/// The differential row: the composed drained run produces
/// byte-identical total statistics on the reference and fast engines
/// — and the dirty declared run does too (the engines agree even on
/// the buggy schedule; the bug is in the release policy, not the
/// simulation).
#[test]
fn both_engines_agree_on_the_pinned_scenario() {
    for engine_pair in [ReleaseMode::Declared, ReleaseMode::Drained] {
        let net = Network::new(N);
        let (s, report) = run_mode(engine_pair, &net);
        let run = s.tenant_run();
        let reference: TrafficStats = run.run_reference_total(&net);
        assert_eq!(
            report.total, reference,
            "engines must agree byte-for-byte under {engine_pair:?}"
        );
        // The quiescence verdict is a pure function of the per-packet
        // records, so both engines deliver the identical verdict.
        let fast_violations = run.quiescence_violations(&report);
        let ref_report = sg_sched::ScheduleReport {
            total: reference,
            jobs: report.jobs.clone(),
        };
        assert_eq!(fast_violations, run.quiescence_violations(&ref_report));
        match engine_pair {
            ReleaseMode::Declared => assert!(!fast_violations.is_empty()),
            ReleaseMode::Drained => assert!(fast_violations.is_empty()),
        }
    }
}

#[test]
#[should_panic(expected = "dirty sub-star handoff")]
fn quiesce_checked_run_is_a_hard_error_on_declared_leaks() {
    let net = Network::new(N);
    let (s, _) = run_mode(ReleaseMode::Declared, &net);
    let _ = s.tenant_run().run_quiesce_checked(&net);
}

/// EASY under drained truth: the head's reservation is computed from
/// the liar's declared walltime, the drained release lands later, and
/// the probe measures exactly that optimism gap. The under-declared
/// backfill candidate also jumps the queue (its declaration fits the
/// optimistic window).
#[test]
fn easy_reservations_are_optimistic_by_the_drain_gap() {
    let net = Network::new(N);
    let jobs = vec![
        job(0, 3, 0, 1),  // liar on half the machine
        job(1, 4, 0, 30), // head: needs the whole machine, blocks
        job(2, 3, 0, 1),  // backfill candidate (also under-declared)
    ];
    let cfg = SchedConfig {
        policy: SchedPolicy::EasyBackfill,
        ..SchedConfig::drained(&net)
    };
    let mut probe = sg_obs::SchedProbe::new();
    let mut alloc = AllocPolicy::FirstFit.build(N);
    let s = schedule_with(&jobs, alloc.as_mut(), &cfg, &mut probe);
    assert_eq!(s.backfills(), 1, "j2's declaration fits the reservation");
    let head = probe.spans().iter().find(|sp| sp.job == 1).unwrap();
    assert_eq!(
        head.reserved,
        Some(1),
        "promised the declared round-1 release"
    );
    let gap = head.optimism_gap().expect("head was reserved and placed");
    assert!(
        gap > 0,
        "drained truth must land after the declared promise"
    );
    assert_eq!(probe.max_optimism_gap(), gap);
    let head_placement = s.placements().iter().find(|p| p.job.id == 1).unwrap();
    assert_eq!(head_placement.start, 1 + gap);
    // Even with backfill + optimism, the drained handoff stays clean.
    let run = s.tenant_run();
    let report = run.run_quiesce_checked(&net);
    assert_eq!(run.quiescence_violations(&report), vec![]);
}

/// The mixed-tenancy escape wedge (ROADMAP), pinned: two tenants
/// share an `EscapeChannel` pool at 1-slot queues; the opted-out one
/// wedges at the credit fixed point and strands flits. The
/// scheduler-level all-or-nothing admission policy opts the whole
/// pool in and restores the zero-`Stranded` guarantee.
#[test]
fn uniform_escape_admission_fixes_the_mixed_tenancy_wedge() {
    let net = Network::new(N).with_config(sg_net::NetConfig {
        queue_capacity: Some(1),
        flow_control: sg_net::FlowControl::EscapeChannel,
        ..sg_net::NetConfig::default()
    });
    let saturating = |id, escape| JobSpec {
        id,
        order: 3,
        arrival: 0,
        duration: 400,
        traffic: TrafficProfile::Bernoulli {
            rounds: 40,
            rate_pct: 100,
            seed: 1,
        },
        routing: TenantRouting::Greedy,
        escape,
    };
    let jobs = vec![saturating(0, true), saturating(1, false)];
    let run_admission = |admission| {
        let cfg = SchedConfig {
            admission,
            ..SchedConfig::default()
        };
        let mut alloc = AllocPolicy::FirstFit.build(N);
        let s = schedule_with(&jobs, alloc.as_mut(), &cfg, &mut NullProbe);
        assert_eq!(s.placements().len(), 2, "both halves placed at round 0");
        s.tenant_run().run(&net)
    };
    let mixed = run_admission(AdmissionPolicy::AsRequested);
    assert!(
        mixed.total.stranded > 0,
        "the old behavior: a partially opted-in pool still wedges"
    );
    let uniform = run_admission(AdmissionPolicy::UniformEscape);
    assert_eq!(uniform.total.stranded, 0, "all-or-nothing opt-in drains");
    assert_eq!(uniform.total.delivered, uniform.total.injected);
    assert!(uniform.total.escape_diversions > 0);
}

/// Drained release composes with generated streams: a seeded
/// under-declaring stream schedules clean (no quiescence violations)
/// under Drained while the identical stream leaks under Declared.
#[test]
fn underdeclared_streams_leak_declared_and_seal_drained() {
    let net = Network::new(N);
    let cfg_stream = StreamConfig {
        duration: (2, 6),
        underdeclare_pct: 60,
        max_order: 3,
        ..StreamConfig::isolated(N, 8, 13)
    };
    let jobs = sg_sched::generate(&cfg_stream);
    assert!(jobs.iter().any(|j| j.duration == 1), "stream has liars");
    let run_release = |release| {
        let cfg = SchedConfig {
            release,
            net: Some(&net),
            ..SchedConfig::default()
        };
        let mut alloc = AllocPolicy::BestFit.build(N);
        let s = schedule_with(&jobs, alloc.as_mut(), &cfg, &mut NullProbe);
        let run = s.tenant_run();
        let report = run.run(&net);
        run.quiescence_violations(&report)
    };
    assert!(
        !run_release(ReleaseMode::Declared).is_empty(),
        "under-declared stream must leak under declared release"
    );
    assert_eq!(run_release(ReleaseMode::Drained), vec![]);
}
