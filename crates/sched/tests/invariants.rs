//! Property suite for the allocator and scheduler invariants:
//! pairwise-disjoint placements, exact capacity accounting across
//! release, full coalescing on drain, and seed-replayable schedules.

use proptest::prelude::*;
use sg_net::Network;
use sg_obs::NullProbe;
use sg_perm::factorial::factorial;
use sg_sched::alloc::{AllocPolicy, SubstarAllocator};
use sg_sched::scheduler::{schedule, schedule_with};
use sg_sched::stream::{generate, ArrivalPattern, StreamConfig};
use sg_sched::{ReleaseMode, SchedConfig, SchedPolicy};
use sg_star::substar::SubStar;

fn policy_for(which: u8) -> AllocPolicy {
    AllocPolicy::ALL[which as usize % AllocPolicy::ALL.len()]
}

/// Drives a seeded alloc/release trace and checks every invariant at
/// every step.
fn drive(alloc: &mut dyn SubstarAllocator, n: usize, seed: u64, steps: u32) {
    let mut x = seed | 1;
    let mut next = move || {
        // SplitMix64-ish local stream.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 27)
    };
    let mut live: Vec<SubStar> = Vec::new();
    let mut free = factorial(n);
    for _ in 0..steps {
        let release = !live.is_empty() && next() % 3 == 0;
        if release {
            let idx = (next() % live.len() as u64) as usize;
            let sub = live.swap_remove(idx);
            alloc.release(&sub);
            free += sub.size();
        } else {
            let order = 2 + (next() % (n as u64 - 1)) as usize;
            if let Some(sub) = alloc.allocate(order) {
                prop_assert!(sub.order() == order, "got the requested order");
                free -= sub.size();
                for other in &live {
                    prop_assert!(
                        sub.is_disjoint(other),
                        "allocations must be pairwise disjoint"
                    );
                }
                live.push(sub);
            } else {
                // A refusal is only legitimate if a whole free block
                // of that order genuinely doesn't exist.
                prop_assert!(
                    alloc.largest_free_order() < order,
                    "refused although an order-{order} block was free"
                );
            }
        }
        prop_assert_eq!(alloc.free_pes(), free, "capacity accounting is exact");
        let mut reported = alloc.live_allocations();
        let mut expect = live.clone();
        reported.sort_by_key(|s| s.fixed_suffix().to_vec());
        expect.sort_by_key(|s| s.fixed_suffix().to_vec());
        prop_assert_eq!(reported, expect, "live set matches");
    }
    // Drain: releases return capacity exactly and coalesce whole.
    for sub in live.drain(..) {
        alloc.release(&sub);
    }
    prop_assert_eq!(alloc.free_pes(), factorial(n));
    prop_assert_eq!(
        alloc.largest_free_order(),
        n,
        "drained machine re-coalesces"
    );
}

proptest! {
    /// Random alloc/release traces keep every allocator invariant,
    /// for every policy.
    #[test]
    fn prop_allocator_invariants(which in 0u8..3, n in 3usize..=5, seed in any::<u64>()) {
        let mut alloc = policy_for(which).build(n);
        drive(alloc.as_mut(), n, seed, 60);
    }

    /// Identical seeds replay identical schedules (and identical
    /// composed workloads), for every policy and arrival pattern.
    #[test]
    fn prop_schedules_replay(which in 0u8..3, seed in any::<u64>(), pat in 0u8..3, greedy in 0u32..50) {
        let n = 5;
        let pattern = match pat {
            0 => ArrivalPattern::Steady { gap: 3 },
            1 => ArrivalPattern::Bursty { burst: 3, gap: 9 },
            _ => ArrivalPattern::Random { mean_gap: 4 },
        };
        let cfg = StreamConfig {
            pattern,
            greedy_pct: greedy,
            ..StreamConfig::isolated(n, 12, seed)
        };
        let jobs = generate(&cfg);
        prop_assert_eq!(&jobs, &generate(&cfg), "stream replay");
        let policy = policy_for(which);
        let a = schedule(&jobs, policy.build(n).as_mut());
        let b = schedule(&jobs, policy.build(n).as_mut());
        prop_assert_eq!(&a, &b, "schedule replay");
        prop_assert!(a.concurrent_placements_disjoint());
        let ra = a.tenant_run();
        let rb = b.tenant_run();
        prop_assert_eq!(ra.workload(), rb.workload(), "composed workload replay");
        prop_assert_eq!(ra.owner(), rb.owner());
    }

    /// Drained release never lets a placement overlap a predecessor's
    /// in-flight window: over random under-declaring confined streams
    /// (with and without EASY backfill), every tenant flit resolves
    /// strictly before its region's release round, so no successor
    /// ever inherits residual state. The companion pinned test below
    /// shows `Declared` violating exactly this property.
    #[test]
    fn prop_drained_placements_never_overlap_inflight(
        which in 0u8..3,
        seed in any::<u64>(),
        underdeclare in 20u32..=100,
        backfill in 0u8..2,
    ) {
        let n = 4;
        let net = Network::new(n);
        let cfg_stream = StreamConfig {
            duration: (1, 5),
            max_order: 3,
            underdeclare_pct: underdeclare,
            pattern: ArrivalPattern::Bursty { burst: 3, gap: 2 },
            ..StreamConfig::isolated(n, 6, seed)
        };
        let jobs = generate(&cfg_stream);
        let cfg = SchedConfig {
            policy: if backfill == 1 { SchedPolicy::EasyBackfill } else { SchedPolicy::Fcfs },
            ..SchedConfig::drained(&net)
        };
        let s = schedule_with(&jobs, policy_for(which).build(n).as_mut(), &cfg, &mut NullProbe);
        prop_assert!(s.concurrent_placements_disjoint());
        let run = s.tenant_run();
        let report = run.run(&net);
        let violations = run.quiescence_violations(&report);
        prop_assert!(
            violations.is_empty(),
            "drained handoff must be clean, got {:?}",
            violations
        );
        // Byte-isolation follows for the all-confined stream.
        let isolated = run.isolated_stats(&net);
        prop_assert_eq!(report.perturbed_jobs(&isolated), vec![]);
    }

    /// Every admitted job is placed exactly once, FCFS order is kept,
    /// and queueing delay is never negative (start ≥ arrival).
    #[test]
    fn prop_schedule_shape(which in 0u8..3, seed in any::<u64>()) {
        let n = 5;
        let cfg = StreamConfig {
            pattern: ArrivalPattern::Bursty { burst: 4, gap: 2 },
            ..StreamConfig::isolated(n, 15, seed)
        };
        let jobs = generate(&cfg);
        let s = schedule(&jobs, policy_for(which).build(n).as_mut());
        prop_assert_eq!(s.placements().len(), jobs.len(), "FCFS admits everyone eventually");
        let mut seen = vec![false; jobs.len()];
        for p in s.placements() {
            prop_assert!(!seen[p.job.id as usize], "placed once");
            seen[p.job.id as usize] = true;
            prop_assert!(p.start >= p.job.arrival);
            prop_assert!(p.finish > p.start);
        }
        // FCFS: same-arrival jobs start in id order.
        for w in s.placements().windows(2) {
            if w[0].job.arrival == w[1].job.arrival {
                prop_assert!(w[0].start <= w[1].start, "FCFS within a burst");
            }
        }
    }
}

/// The counterexample the drained property rules out: a seeded
/// under-declaring stream scheduled with `Declared` release leaks
/// in-flight flits past a handoff (caught by the same audit the
/// property runs). Pinned here so the property test's teeth are
/// visible — flip the release mode in the property and this stream
/// fails it.
#[test]
fn declared_release_fails_the_overlap_property() {
    let n = 4;
    let net = Network::new(n);
    let cfg_stream = StreamConfig {
        duration: (1, 5),
        max_order: 3,
        underdeclare_pct: 60,
        pattern: ArrivalPattern::Bursty { burst: 3, gap: 2 },
        ..StreamConfig::isolated(n, 6, 13)
    };
    let jobs = generate(&cfg_stream);
    let cfg = SchedConfig {
        release: ReleaseMode::Declared,
        net: Some(&net),
        ..SchedConfig::default()
    };
    let s = schedule_with(
        &jobs,
        AllocPolicy::FirstFit.build(n).as_mut(),
        &cfg,
        &mut NullProbe,
    );
    let run = s.tenant_run();
    let report = run.run(&net);
    assert!(
        !run.quiescence_violations(&report).is_empty(),
        "the declared-release counterexample must leak"
    );
}

/// `tenant_run_with`: a per-job traffic override (global PEs,
/// job-local rounds) slots into the composed run exactly like
/// declared traffic — the overridden part is carried verbatim, a
/// `None` override reproduces `tenant_run()` byte-for-byte, and a
/// confined override keeps the byte-isolation property.
#[test]
fn tenant_run_with_override_is_isolated() {
    use sg_net::{Injection, Workload};
    use sg_sched::{JobSpec, TenantRouting, TrafficProfile};

    let n = 5;
    let net = Network::new(n);
    let jobs: Vec<JobSpec> = (0..3)
        .map(|id| JobSpec {
            id,
            order: 3,
            arrival: 0,
            duration: 120,
            traffic: TrafficProfile::UniformPairs {
                pairs: 12,
                seed: id as u64,
            },
            routing: TenantRouting::Greedy,
            escape: false,
        })
        .collect();
    let s = schedule(&jobs, AllocPolicy::BestFit.build(n).as_mut());
    assert_eq!(s.placements().len(), 3);

    // Job 0's custom traffic: a ring over its own sub-star's nodes,
    // something no TrafficProfile variant can express.
    let ring = {
        let nodes = s.placements()[0].substar.node_ranks();
        let injections = (0..nodes.len())
            .map(|i| Injection {
                round: i as u32,
                src: nodes[i],
                dst: nodes[(i + 1) % nodes.len()],
            })
            .collect();
        Workload::from_injections("ring", n, injections)
    };

    let run = s.tenant_run_with(|i, _| (i == 0).then(|| ring.clone()));
    assert_eq!(run.part(0), &ring, "override carried verbatim");

    // A no-op override reproduces the plain path byte-for-byte.
    let plain = s.tenant_run();
    let noop = s.tenant_run_with(|_, _| None);
    assert_eq!(noop.workload(), plain.workload());
    assert_eq!(noop.owner(), plain.owner());
    assert_eq!(run.part(1), plain.part(1), "non-overridden jobs unchanged");

    // Confined override ⇒ byte-isolation still holds for every job.
    let report = run.run_quiesce_checked(&net);
    let isolated = run.isolated_stats(&net);
    assert!(
        report.perturbed_jobs(&isolated).is_empty(),
        "a confined override must not perturb (or be perturbed by) neighbors"
    );
}
