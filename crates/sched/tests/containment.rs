//! Exhaustive containment audit (the isolation theorem, hop by hop).
//!
//! For every sub-star of every order `2 ≤ k < n` and every host
//! `n ≤ 5`: lift embedding-routed tenant traffic onto the sub-star,
//! drive it through the shared network (alone and next to a noisy
//! disjoint neighbor), and check **every recorded link traversal**
//! stays inside the tenant's sub-star — `Network::run_traced` ground
//! truth, not a structural argument.

use sg_net::{HopRecord, Network, RoutingPolicy, Workload};
use sg_sched::job::{JobSpec, TenantRouting, TrafficProfile};
use sg_sched::scheduler::schedule;
use sg_sched::AllocPolicy;
use sg_star::substar::{substars_of_order, SubStar};

/// Every hop of every owned packet begins and ends inside `sub`.
fn assert_contained(sub: &SubStar, traces: &[Vec<HopRecord>], owner: &[u32], job: u32) {
    for (trace, &o) in traces.iter().zip(owner) {
        if o != job {
            continue;
        }
        for hop in trace {
            assert!(
                sub.contains_rank(hop.from) && sub.contains_rank(hop.to),
                "hop {} -> {} (g{}) left sub-star {sub}",
                hop.from,
                hop.to,
                hop.gen
            );
        }
    }
}

/// The tenant's lifted traffic: every profile the job module ships,
/// concatenated (sweeps on every dimension, transpose, a uniform
/// burst).
fn tenant_traffic(order: usize) -> Vec<TrafficProfile> {
    let mut profiles = vec![TrafficProfile::Transpose];
    for dim in 1..order {
        profiles.push(TrafficProfile::DimensionSweep { dim, plus: true });
        profiles.push(TrafficProfile::DimensionSweep { dim, plus: false });
    }
    profiles.push(TrafficProfile::UniformPairs {
        pairs: 20,
        seed: 0xA11CE,
    });
    profiles
}

#[test]
fn embedding_traffic_never_leaves_its_substar_exhaustive() {
    for n in 3..=5usize {
        let net = Network::new(n);
        for k in 2..n {
            for sub in substars_of_order(n, k) {
                for (p, profile) in tenant_traffic(k).into_iter().enumerate() {
                    let job = JobSpec {
                        id: 0,
                        order: k,
                        arrival: 0,
                        duration: 400,
                        traffic: profile,
                        routing: TenantRouting::Embedding,
                        escape: false,
                    };
                    // Schedule just this job through first-fit — but
                    // pin the placement to `sub` by scheduling on a
                    // fresh allocator and relabeling: the audit wants
                    // *every* sub-star, so build the run by hand.
                    let run = pinned_run(n, &[(job, sub.clone())]);
                    let (stats, _, traces) = net.run_traced_partitioned(&run.0, &run.2, &run.1);
                    assert_eq!(
                        stats.delivered, stats.injected,
                        "n={n} k={k} {sub} profile {p}: embedding traffic is lossless"
                    );
                    assert_contained(&sub, &traces, &run.1, 0);
                }
            }
        }
    }
}

#[test]
fn minimal_routing_is_confined_by_convexity() {
    // The emergent theorem the suite pins down: sub-stars are
    // geodesically closed, so even the tenancy-oblivious *minimal*
    // routers (greedy, adaptive) never leave a tenant's sub-star.
    for n in 4..=5usize {
        let net = Network::new(n);
        for k in 2..n {
            for (s, sub) in substars_of_order(n, k).into_iter().enumerate() {
                for routing in [TenantRouting::Greedy, TenantRouting::Adaptive] {
                    let job = JobSpec {
                        id: 0,
                        order: k,
                        arrival: 0,
                        duration: 400,
                        traffic: TrafficProfile::UniformPairs {
                            pairs: 25,
                            seed: s as u64,
                        },
                        routing,
                        escape: false,
                    };
                    let run = pinned_run(n, &[(job, sub.clone())]);
                    let (_, _, traces) = net.run_traced_partitioned(&run.0, &run.2, &run.1);
                    assert_contained(&sub, &traces, &run.1, 0);
                }
            }
        }
    }
}

#[test]
fn containment_holds_next_to_a_trespassing_neighbor() {
    // An embedding tenant shares the machine with a
    // machine-coordinate dimension-order tenant on a disjoint
    // sibling; the embedding side must still never leave home while
    // the oblivious side demonstrably does trespass somewhere.
    let mut trespassed = false;
    for n in 4..=5usize {
        let net = Network::new(n);
        for k in 2..n {
            let subs = substars_of_order(n, k);
            for pair in subs.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if !a.is_disjoint(b) {
                    continue;
                }
                let quiet = JobSpec {
                    id: 0,
                    order: k,
                    arrival: 0,
                    duration: 400,
                    traffic: TrafficProfile::Transpose,
                    routing: TenantRouting::Embedding,
                    escape: false,
                };
                let noisy = JobSpec {
                    id: 1,
                    order: k,
                    arrival: 0,
                    duration: 400,
                    traffic: TrafficProfile::Bernoulli {
                        rounds: 2,
                        rate_pct: 100,
                        seed: 0xBAD,
                    },
                    routing: TenantRouting::GlobalEmbedding,
                    escape: false,
                };
                let run = pinned_run(n, &[(quiet, a.clone()), (noisy, b.clone())]);
                let (_, _, traces) = net.run_traced_partitioned(&run.0, &run.2, &run.1);
                assert_contained(a, &traces, &run.1, 0);
                trespassed |= traces.iter().zip(&run.1).any(|(trace, &o)| {
                    o == 1
                        && trace
                            .iter()
                            .any(|h| !b.contains_rank(h.from) || !b.contains_rank(h.to))
                });
            }
        }
    }
    assert!(
        trespassed,
        "machine-coordinate dimension-order routing must leave its sub-star somewhere"
    );
}

#[test]
fn scheduler_built_runs_are_contained_too() {
    // Same audit through the real scheduler path (allocator-chosen
    // placements instead of pinned ones).
    let n = 5;
    let net = Network::new(n);
    let jobs: Vec<JobSpec> = (0..4)
        .map(|id| JobSpec {
            id,
            order: 3,
            arrival: 0,
            duration: 300,
            traffic: TrafficProfile::UniformPairs {
                pairs: 15,
                seed: id as u64,
            },
            routing: TenantRouting::Embedding,
            escape: false,
        })
        .collect();
    for policy in AllocPolicy::ALL {
        let mut alloc = policy.build(n);
        let s = schedule(&jobs, alloc.as_mut());
        let run = s.tenant_run();
        let (_, _, traces) =
            net.run_traced_partitioned(run.workload(), &run.policies(), run.owner());
        for (i, p) in s.placements().iter().enumerate() {
            assert_contained(&p.substar, &traces, run.owner(), i as u32);
        }
    }
}

/// Builds (workload, owner, policies) with placements pinned to the
/// given sub-stars, bypassing the allocator. Policy boxes are leaked
/// (test-lifetime only, bounded count).
fn pinned_run(
    n: usize,
    tenants: &[(JobSpec, SubStar)],
) -> (Workload, Vec<u32>, Vec<&'static dyn RoutingPolicy>) {
    use sg_net::Injection;
    let mut parts = Vec::new();
    let mut policies: Vec<&'static dyn RoutingPolicy> = Vec::new();
    for (job, sub) in tenants {
        let local = job.traffic.local_workload(job.order);
        let map = sub.node_ranks();
        let injections = local
            .injections()
            .iter()
            .map(|i| Injection {
                round: i.round,
                src: map[i.src as usize],
                dst: map[i.dst as usize],
            })
            .collect();
        parts.push(Workload::from_injections("tenant", n, injections));
        policies.push(Box::leak(sg_sched::policy::tenant_policy(job.routing, sub)));
    }
    let with_offsets: Vec<(&Workload, u32)> = parts.iter().map(|w| (w, 0)).collect();
    let (merged, owner) = Workload::compose("pinned", n, &with_offsets);
    (merged, owner, policies)
}
