//! Sub-star allocation — the processor-allocation lattice.
//!
//! The recursive decomposition of `S_n` into `n` copies of `S_{n−1}`
//! (and so on down) is a tree: each order-`m` node splits into `m`
//! order-`(m−1)` children, one per symbol pinned into slot `m−1`.
//! Allocating an order-`k` sub-star means claiming one tree node such
//! that no ancestor or descendant is claimed — which makes tenant
//! placements **pairwise node-disjoint by construction**. Three
//! pluggable policies ([`FirstFit`], [`BestFit`], [`BuddySplit`])
//! differ only in *which* feasible node they claim, i.e. in how they
//! fragment the machine.
//!
//! [`AllocTree`] materializes only the visited part of the lattice
//! and re-coalesces fully-free siblings on release, so a drained
//! machine always reports a whole free `S_n` again.

use sg_perm::factorial::factorial;
use sg_star::substar::SubStar;

/// Smallest sub-star worth allocating (`S_1` is a single PE with no
/// links; the mesh `D_1` is a point).
pub const MIN_ORDER: usize = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Free,
    Allocated,
    Split,
}

#[derive(Debug, Clone)]
struct Node {
    sub: SubStar,
    parent: Option<u32>,
    /// Child node ids by ascending fixed symbol; empty unless Split.
    children: Vec<u32>,
    state: NodeState,
}

/// The materialized allocation tree shared by every policy.
#[derive(Debug, Clone)]
pub struct AllocTree {
    n: usize,
    nodes: Vec<Node>,
    allocated_pes: u64,
}

impl AllocTree {
    fn new(n: usize) -> Self {
        AllocTree {
            n,
            nodes: vec![Node {
                sub: SubStar::whole(n),
                parent: None,
                children: Vec::new(),
                state: NodeState::Free,
            }],
            allocated_pes: 0,
        }
    }

    fn order(&self, id: u32) -> usize {
        self.nodes[id as usize].sub.order()
    }

    /// Splits a free node into its children (ascending fixed symbol).
    fn split(&mut self, id: u32) {
        let node = &self.nodes[id as usize];
        debug_assert_eq!(node.state, NodeState::Free, "only free nodes split");
        debug_assert!(
            node.sub.order() > MIN_ORDER,
            "won't split below S_{MIN_ORDER}"
        );
        let kids = node.sub.children();
        let mut ids = Vec::with_capacity(kids.len());
        for sub in kids {
            ids.push(self.nodes.len() as u32);
            self.nodes.push(Node {
                sub,
                parent: Some(id),
                children: Vec::new(),
                state: NodeState::Free,
            });
        }
        let node = &mut self.nodes[id as usize];
        node.children = ids;
        node.state = NodeState::Split;
    }

    fn mark_allocated(&mut self, id: u32) -> SubStar {
        let node = &mut self.nodes[id as usize];
        debug_assert_eq!(node.state, NodeState::Free, "allocating a non-free node");
        node.state = NodeState::Allocated;
        self.allocated_pes += node.sub.size();
        node.sub.clone()
    }

    /// Splits `id` down to `order`, following the first child at
    /// every level, and allocates the bottom node.
    fn allocate_descending(&mut self, mut id: u32, order: usize) -> SubStar {
        while self.order(id) > order {
            self.split(id);
            id = self.nodes[id as usize].children[0];
        }
        self.mark_allocated(id)
    }

    /// Walks the fixed-symbol path from the root to the node holding
    /// exactly `sub`.
    fn find(&self, sub: &SubStar) -> Option<u32> {
        let mut id = 0u32;
        for &symbol in sub.fixed_suffix() {
            let node = &self.nodes[id as usize];
            id = *node
                .children
                .iter()
                .find(|&&c| self.nodes[c as usize].sub.fixed_suffix().last() == Some(&symbol))?;
        }
        (self.nodes[id as usize].sub == *sub).then_some(id)
    }

    /// Frees an allocated node and coalesces upward while every
    /// sibling is free. Returns the id left Free at the top of the
    /// merge chain plus every node id that ceased to exist (merged
    /// children — relevant to free-list policies).
    fn release(&mut self, id: u32) -> (u32, Vec<u32>) {
        {
            let node = &mut self.nodes[id as usize];
            debug_assert_eq!(
                node.state,
                NodeState::Allocated,
                "releasing a non-allocation"
            );
            node.state = NodeState::Free;
            self.allocated_pes -= node.sub.size();
        }
        let mut top = id;
        let mut dead = Vec::new();
        while let Some(parent) = self.nodes[top as usize].parent {
            let all_free = self.nodes[parent as usize]
                .children
                .iter()
                .all(|&c| self.nodes[c as usize].state == NodeState::Free);
            if !all_free {
                break;
            }
            let kids = std::mem::take(&mut self.nodes[parent as usize].children);
            dead.extend(kids);
            self.nodes[parent as usize].state = NodeState::Free;
            top = parent;
        }
        (top, dead)
    }

    /// PEs not currently allocated (free or unreachable fragments of
    /// split nodes — split nodes themselves hold nothing).
    fn free_pes(&self) -> u64 {
        factorial(self.n) - self.allocated_pes
    }

    /// Ids of all live nodes in DFS (canonical) order, with their
    /// state.
    fn dfs(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            out.push(id);
            let node = &self.nodes[id as usize];
            stack.extend(node.children.iter().rev());
        }
        out
    }

    fn largest_free_order(&self) -> usize {
        self.dfs()
            .into_iter()
            .filter(|&id| self.nodes[id as usize].state == NodeState::Free)
            .map(|id| self.order(id))
            .max()
            .unwrap_or(0)
    }

    fn live_allocations(&self) -> Vec<SubStar> {
        self.dfs()
            .into_iter()
            .filter(|&id| self.nodes[id as usize].state == NodeState::Allocated)
            .map(|id| self.nodes[id as usize].sub.clone())
            .collect()
    }
}

/// A pluggable placement policy over the sub-star lattice. All
/// implementations guarantee disjointness and exact capacity
/// accounting; they differ in fragmentation behavior.
pub trait SubstarAllocator {
    /// Policy label for tables and reports.
    fn name(&self) -> &'static str;

    /// Host star order.
    fn n(&self) -> usize;

    /// Claims a free order-`order` sub-star, or `None` if the current
    /// allocation state cannot fit one.
    ///
    /// # Panics
    /// Panics if `order` is below [`MIN_ORDER`] or above `n`.
    fn allocate(&mut self, order: usize) -> Option<SubStar>;

    /// Returns a previously allocated sub-star to the pool,
    /// re-coalescing fully free blocks.
    ///
    /// # Panics
    /// Panics if `sub` is not a live allocation of this allocator.
    fn release(&mut self, sub: &SubStar);

    /// PEs not held by any allocation.
    fn free_pes(&self) -> u64;

    /// Order of the largest sub-star an `allocate` could currently
    /// claim (0 when the machine is completely full).
    fn largest_free_order(&self) -> usize;

    /// Every live allocation, in canonical tree order.
    fn live_allocations(&self) -> Vec<SubStar>;

    /// An independent copy of the allocator in its current state —
    /// the shadow the EASY backfill reservation probes ("when could
    /// the blocked head start if running jobs released on schedule?")
    /// without touching the live tree. A failed `allocate` never
    /// mutates any shipped policy, so probing the clone is free of
    /// side effects on the real machine state.
    fn box_clone(&self) -> Box<dyn SubstarAllocator>;
}

fn check_order(n: usize, order: usize) {
    assert!(
        (MIN_ORDER..=n).contains(&order),
        "allocation order {order} outside {MIN_ORDER}..={n}"
    );
}

/// First fit: claims the **canonically first** (leftmost in tree DFS
/// order) feasible order-`k` sub-star, splitting free ancestors along
/// the way — spatially greedy, oblivious to block sizes.
#[derive(Debug, Clone)]
pub struct FirstFit {
    tree: AllocTree,
}

impl FirstFit {
    /// A first-fit allocator over an empty `S_n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FirstFit {
            tree: AllocTree::new(n),
        }
    }

    fn try_at(&mut self, id: u32, order: usize) -> Option<SubStar> {
        match self.tree.nodes[id as usize].state {
            NodeState::Allocated => None,
            NodeState::Free => {
                (self.tree.order(id) >= order).then(|| self.tree.allocate_descending(id, order))
            }
            NodeState::Split => {
                if self.tree.order(id) <= order {
                    return None; // children are strictly smaller
                }
                let kids = self.tree.nodes[id as usize].children.clone();
                kids.into_iter().find_map(|c| self.try_at(c, order))
            }
        }
    }
}

impl SubstarAllocator for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn n(&self) -> usize {
        self.tree.n
    }

    fn allocate(&mut self, order: usize) -> Option<SubStar> {
        check_order(self.tree.n, order);
        self.try_at(0, order)
    }

    fn release(&mut self, sub: &SubStar) {
        let id = self.tree.find(sub).expect("release of unknown sub-star");
        self.tree.release(id);
    }

    fn free_pes(&self) -> u64 {
        self.tree.free_pes()
    }

    fn largest_free_order(&self) -> usize {
        self.tree.largest_free_order()
    }

    fn live_allocations(&self) -> Vec<SubStar> {
        self.tree.live_allocations()
    }

    fn box_clone(&self) -> Box<dyn SubstarAllocator> {
        Box::new(self.clone())
    }
}

/// Best fit by fragmentation score: claims inside the **smallest**
/// free block that still fits, preferring blocks whose siblings are
/// already busy (packing nearly-full parents tight), ties broken
/// canonically. Large free blocks are split only when nothing
/// smaller fits.
#[derive(Debug, Clone)]
pub struct BestFit {
    tree: AllocTree,
}

impl BestFit {
    /// A best-fit allocator over an empty `S_n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        BestFit {
            tree: AllocTree::new(n),
        }
    }
}

impl SubstarAllocator for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn n(&self) -> usize {
        self.tree.n
    }

    fn allocate(&mut self, order: usize) -> Option<SubStar> {
        check_order(self.tree.n, order);
        // Scan the live tree for free nodes that fit; score =
        // (block order, free siblings, DFS position), minimized.
        let mut best: Option<(usize, usize, usize, u32)> = None;
        for (pos, id) in self.tree.dfs().into_iter().enumerate() {
            let node = &self.tree.nodes[id as usize];
            if node.state != NodeState::Free || node.sub.order() < order {
                continue;
            }
            let free_siblings = match node.parent {
                None => 0,
                Some(p) => self.tree.nodes[p as usize]
                    .children
                    .iter()
                    .filter(|&&c| c != id && self.tree.nodes[c as usize].state == NodeState::Free)
                    .count(),
            };
            let score = (node.sub.order(), free_siblings, pos, id);
            if best.is_none_or(|b| score < b) {
                best = Some(score);
            }
        }
        best.map(|(_, _, _, id)| self.tree.allocate_descending(id, order))
    }

    fn release(&mut self, sub: &SubStar) {
        let id = self.tree.find(sub).expect("release of unknown sub-star");
        self.tree.release(id);
    }

    fn free_pes(&self) -> u64 {
        self.tree.free_pes()
    }

    fn largest_free_order(&self) -> usize {
        self.tree.largest_free_order()
    }

    fn live_allocations(&self) -> Vec<SubStar> {
        self.tree.live_allocations()
    }

    fn box_clone(&self) -> Box<dyn SubstarAllocator> {
        Box::new(self.clone())
    }
}

/// Buddy-style splitter: per-order LIFO free lists. An exact-order
/// block is reused if one exists (most recently split or freed
/// first — temporal locality); otherwise the smallest larger block is
/// popped and split level by level, siblings going onto the free
/// lists. Releases coalesce merged siblings back off the lists, so a
/// drained machine is one whole free `S_n` again.
#[derive(Debug, Clone)]
pub struct BuddySplit {
    tree: AllocTree,
    /// `free[m]` = free node ids of order `m`, LIFO.
    free: Vec<Vec<u32>>,
}

impl BuddySplit {
    /// A buddy allocator over an empty `S_n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut free = vec![Vec::new(); n + 1];
        free[n].push(0);
        BuddySplit {
            tree: AllocTree::new(n),
            free,
        }
    }
}

impl SubstarAllocator for BuddySplit {
    fn name(&self) -> &'static str {
        "buddy"
    }

    fn n(&self) -> usize {
        self.tree.n
    }

    fn allocate(&mut self, order: usize) -> Option<SubStar> {
        check_order(self.tree.n, order);
        let source = (order..=self.tree.n).find(|&m| !self.free[m].is_empty())?;
        let mut id = self.free[source].pop().expect("non-empty list");
        while self.tree.order(id) > order {
            self.tree.split(id);
            let kids = self.tree.nodes[id as usize].children.clone();
            // Push the non-taken siblings in reverse so the
            // ascending-symbol sibling pops first later.
            for &c in kids[1..].iter().rev() {
                self.free[self.tree.order(c)].push(c);
            }
            id = kids[0];
        }
        Some(self.tree.mark_allocated(id))
    }

    fn release(&mut self, sub: &SubStar) {
        let id = self.tree.find(sub).expect("release of unknown sub-star");
        let (top, dead) = self.tree.release(id);
        if !dead.is_empty() {
            for list in &mut self.free {
                list.retain(|c| !dead.contains(c));
            }
        }
        self.free[self.tree.order(top)].push(top);
    }

    fn free_pes(&self) -> u64 {
        self.tree.free_pes()
    }

    fn largest_free_order(&self) -> usize {
        self.tree.largest_free_order()
    }

    fn live_allocations(&self) -> Vec<SubStar> {
        self.tree.live_allocations()
    }

    fn box_clone(&self) -> Box<dyn SubstarAllocator> {
        Box::new(self.clone())
    }
}

/// Policy selector for streams, tables and CLI surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// [`FirstFit`].
    FirstFit,
    /// [`BestFit`].
    BestFit,
    /// [`BuddySplit`].
    Buddy,
}

impl AllocPolicy {
    /// All shipped policies.
    pub const ALL: [AllocPolicy; 3] = [
        AllocPolicy::FirstFit,
        AllocPolicy::BestFit,
        AllocPolicy::Buddy,
    ];

    /// Table label (matches the allocator's `name`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AllocPolicy::FirstFit => "first-fit",
            AllocPolicy::BestFit => "best-fit",
            AllocPolicy::Buddy => "buddy",
        }
    }

    /// Builds the allocator over an empty `S_n`.
    #[must_use]
    pub fn build(self, n: usize) -> Box<dyn SubstarAllocator> {
        match self {
            AllocPolicy::FirstFit => Box::new(FirstFit::new(n)),
            AllocPolicy::BestFit => Box::new(BestFit::new(n)),
            AllocPolicy::Buddy => Box::new(BuddySplit::new(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_check(alloc: &mut dyn SubstarAllocator) {
        // Fill with order-2 tenants to exhaustion, then free all.
        let n = alloc.n();
        let mut live = Vec::new();
        while let Some(sub) = alloc.allocate(2) {
            live.push(sub);
        }
        assert_eq!(
            live.len() as u64,
            factorial(n) / 2,
            "perfect packing at order 2"
        );
        assert_eq!(alloc.free_pes(), 0);
        assert_eq!(alloc.largest_free_order(), 0);
        for a in &live {
            for b in &live {
                if a != b {
                    assert!(a.is_disjoint(b), "{a} overlaps {b}");
                }
            }
        }
        for sub in live {
            alloc.release(&sub);
        }
        assert_eq!(alloc.free_pes(), factorial(n));
        assert_eq!(
            alloc.largest_free_order(),
            n,
            "full coalescing back to S_{n}"
        );
        assert!(alloc.live_allocations().is_empty());
    }

    #[test]
    fn all_policies_pack_and_drain() {
        for policy in AllocPolicy::ALL {
            let mut alloc = policy.build(4);
            drain_check(alloc.as_mut());
        }
    }

    #[test]
    fn first_fit_takes_leftmost() {
        let mut ff = FirstFit::new(4);
        let a = ff.allocate(3).unwrap();
        let b = ff.allocate(3).unwrap();
        assert_eq!(a.fixed_suffix(), &[0]);
        assert_eq!(b.fixed_suffix(), &[1]);
    }

    #[test]
    fn best_fit_prefers_tight_blocks() {
        // Carve an order-2 hole inside substar [0], then free an
        // order-3 block elsewhere: a new order-2 request must land in
        // the partly-used [0] rather than split the pristine [1].
        let mut bf = BestFit::new(4);
        let small = bf.allocate(2).unwrap(); // inside [0]
        assert_eq!(small.fixed_suffix(), &[0, 1]);
        let next = bf.allocate(2).unwrap();
        assert_eq!(
            next.fixed_suffix(),
            &[0, 2],
            "best fit packs the already-split parent first"
        );
        // First-fit would do the same here; the difference shows when
        // an exact block exists further right.
        let mut bf = BestFit::new(4);
        let s3 = bf.allocate(3).unwrap(); // [0]
        let s2 = bf.allocate(2).unwrap(); // inside [1]
        bf.release(&s3); // [0] free again (order 3), [1] split with a free order-2 hole...
        let hole = bf.allocate(2).unwrap();
        assert_eq!(
            hole.fixed_suffix()[0],
            s2.fixed_suffix()[0],
            "best fit reuses the order-2 hole instead of splitting the free order-3 block"
        );
    }

    #[test]
    fn buddy_reuses_most_recent_split() {
        let mut bd = BuddySplit::new(5);
        let a = bd.allocate(3).unwrap();
        // The split left order-4 and order-3 siblings on the lists;
        // an exact order-3 request reuses the freshest sibling.
        let b = bd.allocate(3).unwrap();
        assert!(a.is_disjoint(&b));
        assert_eq!(
            a.fixed_suffix()[0],
            b.fixed_suffix()[0],
            "buddy stays inside the block it just split"
        );
        bd.release(&b);
        let c = bd.allocate(3).unwrap();
        assert_eq!(b, c, "LIFO: the block just freed is reused first");
        bd.release(&a);
        bd.release(&c);
        assert_eq!(bd.largest_free_order(), 5);
    }

    #[test]
    fn box_clone_is_independent() {
        for policy in AllocPolicy::ALL {
            let mut alloc = policy.build(4);
            let held = alloc.allocate(3).unwrap();
            let mut ghost = alloc.box_clone();
            // Probing the ghost (release + allocate) leaves the real
            // allocator untouched.
            ghost.release(&held);
            assert!(ghost.allocate(4).is_some(), "{}", policy.name());
            assert!(alloc.allocate(4).is_none(), "{}", policy.name());
            assert_eq!(alloc.live_allocations(), vec![held]);
        }
    }

    #[test]
    fn allocation_fails_only_when_nothing_fits() {
        let mut ff = FirstFit::new(4);
        let whole = ff.allocate(4).unwrap();
        assert_eq!(whole.order(), 4);
        assert!(ff.allocate(2).is_none(), "machine is fully claimed");
        ff.release(&whole);
        assert!(ff.allocate(2).is_some());
    }
}
