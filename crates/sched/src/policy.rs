//! Per-tenant routing policies, plus the scheduler-wide policy axes
//! ([`ReleaseMode`], [`SchedPolicy`], [`AdmissionPolicy`] —
//! bundled in [`SchedConfig`]).
//!
//! [`sg_net::Network::run_partitioned`] routes every packet under its
//! own job's policy, so each tenant gets exactly one
//! [`RoutingPolicy`] object. Embedding tenants use
//! [`SubstarEmbedding`]: dimension-order routing of the job's `D_k`
//! computed in **local** sub-star coordinates — and because
//! [`SubStar::project`] commutes with generators `g_1 … g_{k−1}`, the
//! locally computed generator sequence is valid verbatim on the host
//! and provably never leaves the sub-star. Greedy and adaptive
//! tenants route globally yet stay confined too (minimal routes
//! cannot leave a geodesically closed sub-star — measured by the
//! containment suite); the discipline that really trespasses is
//! [`TenantRouting::GlobalEmbedding`], dimension-order routing in
//! machine coordinates — the measurable-interference side of the
//! contrast.
//!
//! One caveat rides on top of the policy axis: a tenant opted into
//! the escape channel ([`crate::job::JobSpec::escape`]) whose packet
//! actually diverts abandons its tenant policy mid-flight for the
//! machine-coordinate dimension-order escape route — which, like
//! `GlobalEmbedding`, may traverse foreign sub-stars. Deadlock
//! freedom is bought at the price of confinement for exactly the
//! packets that would otherwise have wedged; tenants that need the
//! byte-isolation guarantee should stay opted out.

use crate::job::TenantRouting;
use sg_net::{AdaptiveRouting, EmbeddingRouting, GreedyRouting, Network, RoutingPolicy};
use sg_perm::Perm;
use sg_star::substar::SubStar;

/// When a job's sub-star is returned to the allocator.
///
/// The original event loop released at the *declared* walltime — the
/// batch-scheduler convention, and a correctness bug on a real
/// interconnect: a tenant whose traffic out-lives its declaration
/// leaves flits in the region's queues, credit pools, and escape
/// banks, and the successor placed there inherits them — a silent
/// violation of the byte-isolation theorem. `Drained` fixes the
/// semantics by co-simulating each job's traffic on its sub-star at
/// placement time and holding the region until the last flit has
/// resolved; [`Network::assert_region_quiescent`] turns any residual
/// dirty handoff into a hard error in both engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReleaseMode {
    /// Release at `start + duration` (min 1 round), trusting the
    /// declaration — fast, classic, and unsound when traffic
    /// out-lives the declared walltime.
    #[default]
    Declared,
    /// Release at `start + max(duration, drain + 1)` where `drain` is
    /// the makespan of the job's traffic co-simulated alone on its
    /// sub-star (requires [`SchedConfig::net`]). Exact for confined
    /// tenants (embedding / greedy / adaptive) when the whole stream
    /// is confined — the byte-isolation theorem makes the isolated
    /// co-simulation the truth; for trespassing
    /// ([`TenantRouting::GlobalEmbedding`]) mixes it is an estimate,
    /// backstopped by
    /// [`crate::scheduler::TenantRun::run_quiesce_checked`].
    Drained,
}

impl ReleaseMode {
    /// Table/report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReleaseMode::Declared => "declared",
            ReleaseMode::Drained => "drained",
        }
    }
}

/// How the pending queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict first-come-first-served: a blocked head blocks everyone
    /// behind it — the classic batch discipline, and the one drained
    /// release makes strictly slower (releases only move later).
    #[default]
    Fcfs,
    /// EASY backfill: when the head blocks, it receives a start-time
    /// *reservation* computed from the running jobs' **declared**
    /// walltimes, and any queued job whose declared walltime ends by
    /// that reservation may start immediately on currently free
    /// PEs — it cannot (by declaration) delay the head. Under
    /// [`ReleaseMode::Drained`] the truth is drain times, so an
    /// under-declared backfill *can* still push the head past its
    /// promise; that optimism gap is measured per job by
    /// `sg_obs::JobSpan::optimism_gap`.
    EasyBackfill,
}

impl SchedPolicy {
    /// Table/report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "fcfs",
            SchedPolicy::EasyBackfill => "easy",
        }
    }
}

/// Pool-level admission adjustments applied to job specs before
/// scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Run every job exactly as specified.
    #[default]
    AsRequested,
    /// All-or-nothing escape opt-in per pool: if **any** job in the
    /// stream opts into the escape channel, every job is admitted
    /// opted-in. A *mixed* tenancy on an
    /// [`sg_net::FlowControl::EscapeChannel`] host can still wedge —
    /// opted-out packets keep pure credit semantics and deadlock
    /// through the shared pool, stranding flits the escape channel
    /// would have drained; uniform opt-in restores the
    /// zero-`Stranded` guarantee for the whole pool.
    UniformEscape,
}

impl AdmissionPolicy {
    /// Table/report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AdmissionPolicy::AsRequested => "as-requested",
            AdmissionPolicy::UniformEscape => "uniform-escape",
        }
    }
}

/// The scheduler's policy bundle, consumed by
/// [`crate::scheduler::schedule_with`].
///
/// The default (`Declared` + `Fcfs` + `AsRequested`, no network) is
/// byte-identical to the original [`crate::scheduler::schedule`]
/// event loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedConfig<'n> {
    /// When sub-stars are returned to the allocator.
    pub release: ReleaseMode,
    /// How the pending queue is drained.
    pub policy: SchedPolicy,
    /// Pool-level spec adjustments before scheduling.
    pub admission: AdmissionPolicy,
    /// The host network [`ReleaseMode::Drained`] co-simulates drain
    /// times on (its flow control, queue capacity, and link latency
    /// all shape the drain). Required for `Drained`, ignored
    /// otherwise.
    pub net: Option<&'n Network>,
}

impl<'n> SchedConfig<'n> {
    /// Drain-aware release on `net`, strict FCFS otherwise.
    #[must_use]
    pub fn drained(net: &'n Network) -> Self {
        SchedConfig {
            release: ReleaseMode::Drained,
            net: Some(net),
            ..SchedConfig::default()
        }
    }

    /// This config with EASY backfill switched on.
    #[must_use]
    pub fn with_backfill(self) -> Self {
        SchedConfig {
            policy: SchedPolicy::EasyBackfill,
            ..self
        }
    }
}

/// Dimension-order embedding routing **inside one sub-star**: both
/// endpoints are projected to the local `S_k`, routed by
/// [`EmbeddingRouting`], and the generator sequence is reused
/// globally unchanged. Containment is structural: every generator it
/// emits is `< k`, and those never touch the fixed slots.
#[derive(Debug, Clone)]
pub struct SubstarEmbedding {
    sub: SubStar,
}

impl SubstarEmbedding {
    /// Embedding routing confined to `sub`.
    #[must_use]
    pub fn new(sub: SubStar) -> Self {
        SubstarEmbedding { sub }
    }

    /// The sub-star this policy is confined to.
    #[must_use]
    pub fn substar(&self) -> &SubStar {
        &self.sub
    }
}

impl RoutingPolicy for SubstarEmbedding {
    fn name(&self) -> &'static str {
        "substar-embedding"
    }

    fn route(&self, src: &Perm, dst: &Perm) -> Vec<u8> {
        assert!(
            self.sub.contains(src) && self.sub.contains(dst),
            "sub-star embedding routing asked to route foreign traffic"
        );
        EmbeddingRouting.route(&self.sub.project(src), &self.sub.project(dst))
    }
}

/// The policy object a tenant with the given discipline routes under.
#[must_use]
pub fn tenant_policy(routing: TenantRouting, sub: &SubStar) -> Box<dyn RoutingPolicy> {
    match routing {
        TenantRouting::Embedding => Box::new(SubstarEmbedding::new(sub.clone())),
        TenantRouting::Greedy => Box::new(GreedyRouting),
        TenantRouting::Adaptive => Box::new(AdaptiveRouting),
        TenantRouting::GlobalEmbedding => Box::new(EmbeddingRouting),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::lehmer::unrank;

    #[test]
    fn substar_embedding_routes_stay_inside_and_land() {
        let n = 5;
        let sub = SubStar::new(n, vec![2]);
        let policy = SubstarEmbedding::new(sub.clone());
        for ra in (0..sub.size()).step_by(3) {
            for rb in (0..sub.size()).step_by(5) {
                let a = sub.lift(&unrank(ra, 4).unwrap());
                let b = sub.lift(&unrank(rb, 4).unwrap());
                let route = policy.route(&a, &b);
                assert_eq!(route.is_empty(), a == b);
                let mut cur = a;
                for &g in &route {
                    assert!((g as usize) < sub.order(), "generator {g} is non-local");
                    cur.swap_slots(0, g as usize);
                    assert!(sub.contains(&cur), "hop {g} left the sub-star");
                }
                assert_eq!(cur, b, "route must land on dst");
            }
        }
    }

    #[test]
    fn tenant_policy_dispatch() {
        let sub = SubStar::new(4, vec![1]);
        assert!(!tenant_policy(TenantRouting::Embedding, &sub).is_adaptive());
        assert!(!tenant_policy(TenantRouting::Greedy, &sub).is_adaptive());
        assert!(tenant_policy(TenantRouting::Adaptive, &sub).is_adaptive());
        assert!(!tenant_policy(TenantRouting::GlobalEmbedding, &sub).is_adaptive());
        assert_eq!(
            tenant_policy(TenantRouting::GlobalEmbedding, &sub).name(),
            "embedding",
            "oblivious tenants use the machine-coordinate router"
        );
    }
}
