//! Per-tenant routing policies.
//!
//! [`sg_net::Network::run_partitioned`] routes every packet under its
//! own job's policy, so each tenant gets exactly one
//! [`RoutingPolicy`] object. Embedding tenants use
//! [`SubstarEmbedding`]: dimension-order routing of the job's `D_k`
//! computed in **local** sub-star coordinates — and because
//! [`SubStar::project`] commutes with generators `g_1 … g_{k−1}`, the
//! locally computed generator sequence is valid verbatim on the host
//! and provably never leaves the sub-star. Greedy and adaptive
//! tenants route globally yet stay confined too (minimal routes
//! cannot leave a geodesically closed sub-star — measured by the
//! containment suite); the discipline that really trespasses is
//! [`TenantRouting::GlobalEmbedding`], dimension-order routing in
//! machine coordinates — the measurable-interference side of the
//! contrast.
//!
//! One caveat rides on top of the policy axis: a tenant opted into
//! the escape channel ([`crate::job::JobSpec::escape`]) whose packet
//! actually diverts abandons its tenant policy mid-flight for the
//! machine-coordinate dimension-order escape route — which, like
//! `GlobalEmbedding`, may traverse foreign sub-stars. Deadlock
//! freedom is bought at the price of confinement for exactly the
//! packets that would otherwise have wedged; tenants that need the
//! byte-isolation guarantee should stay opted out.

use crate::job::TenantRouting;
use sg_net::{AdaptiveRouting, EmbeddingRouting, GreedyRouting, RoutingPolicy};
use sg_perm::Perm;
use sg_star::substar::SubStar;

/// Dimension-order embedding routing **inside one sub-star**: both
/// endpoints are projected to the local `S_k`, routed by
/// [`EmbeddingRouting`], and the generator sequence is reused
/// globally unchanged. Containment is structural: every generator it
/// emits is `< k`, and those never touch the fixed slots.
#[derive(Debug, Clone)]
pub struct SubstarEmbedding {
    sub: SubStar,
}

impl SubstarEmbedding {
    /// Embedding routing confined to `sub`.
    #[must_use]
    pub fn new(sub: SubStar) -> Self {
        SubstarEmbedding { sub }
    }

    /// The sub-star this policy is confined to.
    #[must_use]
    pub fn substar(&self) -> &SubStar {
        &self.sub
    }
}

impl RoutingPolicy for SubstarEmbedding {
    fn name(&self) -> &'static str {
        "substar-embedding"
    }

    fn route(&self, src: &Perm, dst: &Perm) -> Vec<u8> {
        assert!(
            self.sub.contains(src) && self.sub.contains(dst),
            "sub-star embedding routing asked to route foreign traffic"
        );
        EmbeddingRouting.route(&self.sub.project(src), &self.sub.project(dst))
    }
}

/// The policy object a tenant with the given discipline routes under.
#[must_use]
pub fn tenant_policy(routing: TenantRouting, sub: &SubStar) -> Box<dyn RoutingPolicy> {
    match routing {
        TenantRouting::Embedding => Box::new(SubstarEmbedding::new(sub.clone())),
        TenantRouting::Greedy => Box::new(GreedyRouting),
        TenantRouting::Adaptive => Box::new(AdaptiveRouting),
        TenantRouting::GlobalEmbedding => Box::new(EmbeddingRouting),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::lehmer::unrank;

    #[test]
    fn substar_embedding_routes_stay_inside_and_land() {
        let n = 5;
        let sub = SubStar::new(n, vec![2]);
        let policy = SubstarEmbedding::new(sub.clone());
        for ra in (0..sub.size()).step_by(3) {
            for rb in (0..sub.size()).step_by(5) {
                let a = sub.lift(&unrank(ra, 4).unwrap());
                let b = sub.lift(&unrank(rb, 4).unwrap());
                let route = policy.route(&a, &b);
                assert_eq!(route.is_empty(), a == b);
                let mut cur = a;
                for &g in &route {
                    assert!((g as usize) < sub.order(), "generator {g} is non-local");
                    cur.swap_slots(0, g as usize);
                    assert!(sub.contains(&cur), "hop {g} left the sub-star");
                }
                assert_eq!(cur, b, "route must land on dst");
            }
        }
    }

    #[test]
    fn tenant_policy_dispatch() {
        let sub = SubStar::new(4, vec![1]);
        assert!(!tenant_policy(TenantRouting::Embedding, &sub).is_adaptive());
        assert!(!tenant_policy(TenantRouting::Greedy, &sub).is_adaptive());
        assert!(tenant_policy(TenantRouting::Adaptive, &sub).is_adaptive());
        assert!(!tenant_policy(TenantRouting::GlobalEmbedding, &sub).is_adaptive());
        assert_eq!(
            tenant_policy(TenantRouting::GlobalEmbedding, &sub).name(),
            "embedding",
            "oblivious tenants use the machine-coordinate router"
        );
    }
}
