//! Seeded job-stream generation: the arrival-pattern axis.
//!
//! A [`StreamConfig`] describes a population of tenants (orders,
//! durations, traffic, routing mix) plus an [`ArrivalPattern`]; [`generate`]
//! expands it into a concrete, deterministic [`JobSpec`] list — the
//! same config and seed always replay the same stream, which is what
//! makes whole schedules replayable end to end.

use crate::job::{JobSpec, TenantRouting, TrafficProfile};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// When jobs show up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// One job every `gap` rounds.
    Steady {
        /// Rounds between consecutive arrivals.
        gap: u32,
    },
    /// `burst` jobs at once, then `gap` quiet rounds.
    Bursty {
        /// Jobs per burst.
        burst: usize,
        /// Rounds between bursts.
        gap: u32,
    },
    /// Geometric inter-arrival gaps with the given mean — the
    /// discrete stand-in for Poisson arrivals.
    Random {
        /// Mean rounds between arrivals (≥ 1).
        mean_gap: u32,
    },
}

impl ArrivalPattern {
    /// Table label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalPattern::Steady { .. } => "steady",
            ArrivalPattern::Bursty { .. } => "bursty",
            ArrivalPattern::Random { .. } => "random",
        }
    }
}

/// Parameters of a seeded job stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Host star order (jobs request sub-stars of `S_n`).
    pub n: usize,
    /// Number of jobs.
    pub jobs: usize,
    /// Smallest requested order (≥ [`crate::alloc::MIN_ORDER`]).
    pub min_order: usize,
    /// Largest requested order (≤ `n`).
    pub max_order: usize,
    /// Arrival timing.
    pub pattern: ArrivalPattern,
    /// Declared walltime range (inclusive), rounds.
    pub duration: (u32, u32),
    /// Percent of tenants routed greedily (globally minimal, still
    /// confined by sub-star convexity).
    pub greedy_pct: u32,
    /// Percent of tenants routed adaptively (also minimal/confined).
    pub adaptive_pct: u32,
    /// Percent of tenants on machine-coordinate dimension-order
    /// routing ([`TenantRouting::GlobalEmbedding`]) — the trespassing
    /// class; the remainder are embedding-routed (isolated).
    pub oblivious_pct: u32,
    /// Percent of tenants opting into the escape channel
    /// ([`JobSpec::escape`]); relevant only when the host network runs
    /// [`sg_net::FlowControl::EscapeChannel`]. At `0` no extra random
    /// draw is made, so streams generated before this axis existed
    /// replay byte-identically.
    pub escape_pct: u32,
    /// Percent of tenants that *under-declare*: their declared
    /// walltime is clamped to 1 round regardless of the duration
    /// range, so their traffic is guaranteed to out-live the
    /// declaration — the population that makes
    /// [`crate::ReleaseMode::Declared`] hand sub-stars over dirty and
    /// that EASY reservations are optimistic about. At `0` no extra
    /// random draw is made (streams replay byte-identically).
    pub underdeclare_pct: u32,
    /// Stream seed.
    pub seed: u64,
}

impl StreamConfig {
    /// An all-embedding (fully isolated) stream with steady arrivals —
    /// the configuration the isolation theorem is asserted on.
    #[must_use]
    pub fn isolated(n: usize, jobs: usize, seed: u64) -> Self {
        StreamConfig {
            n,
            jobs,
            min_order: 3.min(n),
            max_order: n - 1,
            pattern: ArrivalPattern::Steady { gap: 4 },
            duration: (20, 60),
            greedy_pct: 0,
            adaptive_pct: 0,
            oblivious_pct: 0,
            escape_pct: 0,
            underdeclare_pct: 0,
            seed,
        }
    }
}

/// Expands the config into its deterministic job list (sorted by
/// arrival, ids in stream order).
///
/// # Panics
/// Panics on an empty/invalid order range or percentages summing
/// past 100.
#[must_use]
pub fn generate(cfg: &StreamConfig) -> Vec<JobSpec> {
    assert!(
        crate::alloc::MIN_ORDER <= cfg.min_order
            && cfg.min_order <= cfg.max_order
            && cfg.max_order <= cfg.n,
        "order range {}..={} invalid for S_{}",
        cfg.min_order,
        cfg.max_order,
        cfg.n
    );
    assert!(cfg.duration.0 <= cfg.duration.1, "empty duration range");
    assert!(
        cfg.greedy_pct + cfg.adaptive_pct + cfg.oblivious_pct <= 100,
        "routing mix exceeds 100%"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut arrival = 0u32;
    let mut jobs = Vec::with_capacity(cfg.jobs);
    for id in 0..cfg.jobs {
        let order = rng.gen_range(cfg.min_order as u64..=cfg.max_order as u64) as usize;
        let duration = rng.gen_range(u64::from(cfg.duration.0)..=u64::from(cfg.duration.1)) as u32;
        let traffic = match rng.gen_range(0u32..4) {
            0 => TrafficProfile::DimensionSweep {
                dim: rng.gen_range(1..order as u64) as usize,
                plus: rng.gen_range(0u32..2) == 0,
            },
            1 => TrafficProfile::UniformPairs {
                // Scale with the slice so load tracks machine share.
                pairs: (sg_perm::factorial::factorial(order) / 2).max(4) as usize,
                seed: rng.gen_range(0..u64::MAX),
            },
            2 => TrafficProfile::Transpose,
            _ => TrafficProfile::Bernoulli {
                rounds: 3,
                rate_pct: 40,
                seed: rng.gen_range(0..u64::MAX),
            },
        };
        let mix = rng.gen_range(0u32..100);
        let routing = if mix < cfg.greedy_pct {
            TenantRouting::Greedy
        } else if mix < cfg.greedy_pct + cfg.adaptive_pct {
            TenantRouting::Adaptive
        } else if mix < cfg.greedy_pct + cfg.adaptive_pct + cfg.oblivious_pct {
            TenantRouting::GlobalEmbedding
        } else {
            TenantRouting::Embedding
        };
        // Short-circuit keeps the rng stream untouched at 0%, so
        // pre-escape configs replay byte-identically.
        let escape = cfg.escape_pct > 0 && rng.gen_range(0u32..100) < cfg.escape_pct;
        let duration =
            if cfg.underdeclare_pct > 0 && rng.gen_range(0u32..100) < cfg.underdeclare_pct {
                1
            } else {
                duration
            };
        jobs.push(JobSpec {
            id: id as u32,
            order,
            arrival,
            duration,
            traffic,
            routing,
            escape,
        });
        arrival += match cfg.pattern {
            ArrivalPattern::Steady { gap } => gap,
            ArrivalPattern::Bursty { burst, gap } => {
                if (id + 1) % burst.max(1) == 0 {
                    gap
                } else {
                    0
                }
            }
            ArrivalPattern::Random { mean_gap } => {
                // Geometric with mean `mean_gap`: count fair-coin
                // style trials at success probability 1/mean.
                let mean = u64::from(mean_gap.max(1));
                let mut g = 0u32;
                while rng.gen_range(0..mean) != 0 {
                    g += 1;
                }
                g
            }
        };
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_replay_per_seed() {
        let cfg = StreamConfig {
            greedy_pct: 30,
            adaptive_pct: 10,
            pattern: ArrivalPattern::Random { mean_gap: 5 },
            ..StreamConfig::isolated(6, 25, 42)
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = StreamConfig { seed: 43, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn stream_respects_bounds() {
        let cfg = StreamConfig::isolated(6, 40, 7);
        let jobs = generate(&cfg);
        assert_eq!(jobs.len(), 40);
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "sorted by arrival");
        }
        for j in &jobs {
            assert!((cfg.min_order..=cfg.max_order).contains(&j.order));
            assert!((cfg.duration.0..=cfg.duration.1).contains(&j.duration));
            assert_eq!(j.routing, TenantRouting::Embedding, "isolated stream");
        }
    }

    #[test]
    fn escape_pct_bounds_and_zero_is_silent() {
        let base = StreamConfig::isolated(6, 30, 9);
        let none = generate(&base);
        assert!(none.iter().all(|j| !j.escape), "0% opts nobody in");
        let all = generate(&StreamConfig {
            escape_pct: 100,
            ..base
        });
        assert!(all.iter().all(|j| j.escape), "100% opts everybody in");
        assert_eq!(
            all,
            generate(&StreamConfig {
                escape_pct: 100,
                ..base
            })
        );
        // The first job's pre-escape draws are shared with the 0%
        // stream (its escape draw comes last), pinning that 0% makes
        // no draw at all rather than a discarded one.
        assert_eq!(
            (none[0].order, none[0].duration, none[0].routing),
            (all[0].order, all[0].duration, all[0].routing),
        );
    }

    #[test]
    fn underdeclare_pct_clamps_and_zero_is_silent() {
        let base = StreamConfig::isolated(6, 30, 9);
        let honest = generate(&base);
        let liars = generate(&StreamConfig {
            underdeclare_pct: 100,
            ..base
        });
        assert!(liars.iter().all(|j| j.duration == 1), "100% under-declare");
        // The first job's other draws all precede its under-declare
        // draw, so they are shared with the honest stream — pinning
        // that 0% makes no draw at all rather than a discarded one.
        assert_eq!(
            (honest[0].order, honest[0].traffic, honest[0].routing),
            (liars[0].order, liars[0].traffic, liars[0].routing),
        );
        assert_eq!(honest, generate(&base), "0% makes no draw");
    }

    #[test]
    fn bursty_arrivals_cluster() {
        let cfg = StreamConfig {
            pattern: ArrivalPattern::Bursty { burst: 3, gap: 10 },
            ..StreamConfig::isolated(5, 9, 1)
        };
        let jobs = generate(&cfg);
        assert_eq!(jobs[0].arrival, jobs[1].arrival);
        assert_eq!(jobs[1].arrival, jobs[2].arrival);
        assert_eq!(jobs[3].arrival, jobs[2].arrival + 10);
    }
}
