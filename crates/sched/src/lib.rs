//! # sg-sched — multi-tenant sub-star scheduling on one `S_n`
//!
//! The paper's expansion-1 / dilation-3 embedding (Theorem 6) makes a
//! mesh job a first-class tenant of the star graph: a job asking for
//! the mesh `D_k` is exactly a request for an order-`k` sub-star, and
//! the recursive decomposition of `S_n` into `n` copies of `S_{n−1}`
//! is a processor-allocation lattice. This crate turns that
//! observation into a batch scheduler for a shared interconnect:
//!
//! * [`job`] — mesh-shaped job specs: order, arrival, declared
//!   walltime, a seeded [`job::TrafficProfile`], a per-tenant
//!   routing discipline ([`job::TenantRouting`]), and a per-job
//!   escape-channel opt-in ([`job::JobSpec::escape`], honored when
//!   the host network runs
//!   [`sg_net::FlowControl::EscapeChannel`]);
//! * [`stream`] — deterministic seeded job streams (steady / bursty /
//!   random arrivals, order and routing mixes);
//! * [`alloc`] — the allocation lattice with three pluggable
//!   policies: [`alloc::FirstFit`] (leftmost), [`alloc::BestFit`]
//!   (smallest sufficient block, busiest parent), and
//!   [`alloc::BuddySplit`] (per-order LIFO free lists with
//!   coalescing);
//! * [`scheduler`] — the FCFS event loop producing a
//!   [`scheduler::Schedule`] (placements + fragmentation timeline),
//!   compiled by [`scheduler::Schedule::tenant_run`] into **one**
//!   [`sg_net::Network`] run with per-job routing and per-job
//!   [`sg_net::TrafficStats`];
//! * [`policy`] — per-tenant routing: [`policy::SubstarEmbedding`]
//!   routes in local sub-star coordinates (provably confined), while
//!   greedy/adaptive tenants route globally and interfere.
//!
//! ## The isolation theorem, executable
//!
//! Embedding-routed tenants on disjoint sub-stars use only generators
//! local to their slice, so their packets never share a queue with
//! anyone: each tenant's attributed statistics are **byte-equal** to
//! the same job run alone on an empty machine
//! ([`scheduler::ScheduleReport::perturbed_jobs`] returns nobody).
//! Two measured refinements sharpen the picture: sub-stars are
//! *geodesically closed*, so even the tenancy-oblivious minimal
//! routers (greedy, adaptive) stay confined and byte-isolate; the
//! discipline that really trespasses is dimension-order routing in
//! **machine** coordinates ([`job::TenantRouting::GlobalEmbedding`]),
//! whose Lemma-2 paths wander through foreign sub-stars and
//! measurably perturb their owners — quantified per job by
//! [`scheduler::ScheduleReport::interference_wait`].
//!
//! ```
//! use sg_net::Network;
//! use sg_sched::alloc::AllocPolicy;
//! use sg_sched::scheduler::schedule;
//! use sg_sched::stream::{generate, StreamConfig};
//!
//! let n = 5;
//! let jobs = generate(&StreamConfig::isolated(n, 6, 42));
//! let mut alloc = AllocPolicy::BestFit.build(n);
//! let sched = schedule(&jobs, alloc.as_mut());
//! assert!(sched.concurrent_placements_disjoint());
//!
//! let run = sched.tenant_run();
//! let report = run.run(&Network::new(n));
//! let isolated = run.isolated_stats(&Network::new(n));
//! assert!(report.perturbed_jobs(&isolated).is_empty()); // isolation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod job;
pub mod policy;
pub mod scheduler;
pub mod stream;

pub use alloc::{AllocPolicy, SubstarAllocator};
pub use job::{JobId, JobSpec, TenantRouting, TrafficProfile};
pub use policy::{AdmissionPolicy, ReleaseMode, SchedConfig, SchedPolicy, SubstarEmbedding};
pub use scheduler::{
    schedule, schedule_probed, schedule_profiled, schedule_traced, schedule_with, Placement,
    Schedule, ScheduleReport, TenantRun,
};
pub use stream::{generate, ArrivalPattern, StreamConfig};
