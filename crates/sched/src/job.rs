//! Jobs: what a tenant asks for and what traffic it runs.
//!
//! A [`JobSpec`] requests a mesh `D_k` — by Theorem 6 that is exactly
//! an order-`k` sub-star of the shared `S_n` at expansion 1 — for a
//! declared number of rounds, and names the traffic it will drive
//! over its slice and the routing discipline it uses
//! ([`TenantRouting`]).

use sg_net::Workload;

/// Dense job identifier (index into the job stream).
pub type JobId = u32;

/// How a tenant routes inside (and possibly outside) its sub-star.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantRouting {
    /// Dimension-order routing of the job's own `D_k` embedding,
    /// computed in **local** sub-star coordinates. Uses only
    /// generators `g_1 … g_{k−1}`, so traffic provably never leaves
    /// the sub-star — the isolated tenant class.
    Embedding,
    /// Global greedy shortest-path routing. Tenancy-oblivious by
    /// construction — yet **measurably confined**: sub-stars are
    /// geodesically closed, so every minimal route between sub-star
    /// nodes stays inside (the containment suite audits this hop by
    /// hop). Greedy tenants therefore also isolate perfectly.
    Greedy,
    /// Global contention-adaptive routing (least-occupied
    /// shortest-path hop, chosen at enqueue time). Minimal per hop,
    /// hence confined by the same convexity — but its hop choices
    /// read live queue state, all of it sub-star-local.
    Adaptive,
    /// Dimension-order routing in the **machine's** mesh coordinates
    /// (`D_n` of the host, not the tenant's own `D_k`): the
    /// tenancy-oblivious discipline that really does trespass —
    /// Lemma-2 paths wander through foreign sub-stars, lengthening
    /// its own routes and perturbing its neighbors. This is the
    /// interference class the scheduler quantifies.
    GlobalEmbedding,
}

impl TenantRouting {
    /// Table/report label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TenantRouting::Embedding => "embedding",
            TenantRouting::Greedy => "greedy",
            TenantRouting::Adaptive => "adaptive",
            TenantRouting::GlobalEmbedding => "global-dor",
        }
    }

    /// `true` for disciplines whose routes provably (embedding,
    /// minimal-routing convexity) stay inside the tenant's sub-star.
    #[must_use]
    pub fn is_confined(self) -> bool {
        !matches!(self, TenantRouting::GlobalEmbedding)
    }
}

/// The traffic a job drives over its sub-star, generated in **local**
/// `S_k` coordinates (Lehmer ranks of the order-`k` sub-star) and
/// lifted to global PEs at composition time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficProfile {
    /// The Lemma-5 workload: one mesh unit route along `dim`.
    DimensionSweep {
        /// Mesh dimension `1 ≤ dim < k`.
        dim: usize,
        /// Direction of the unit route.
        plus: bool,
    },
    /// `pairs` uniform random `src → dst` packets at round 0.
    UniformPairs {
        /// Packet count.
        pairs: usize,
        /// Workload seed.
        seed: u64,
    },
    /// Every PE sends to its inverse permutation.
    Transpose,
    /// Open-loop uniform traffic at `rate_pct`% injection for
    /// `rounds` rounds.
    Bernoulli {
        /// Injection rounds.
        rounds: u32,
        /// Per-PE injection probability (percent).
        rate_pct: u32,
        /// Workload seed.
        seed: u64,
    },
}

impl TrafficProfile {
    /// Materializes the profile on the local `S_order`.
    ///
    /// # Panics
    /// Panics if the profile is invalid for `order` (e.g. a sweep
    /// dimension `≥ order`).
    #[must_use]
    pub fn local_workload(&self, order: usize) -> Workload {
        match *self {
            TrafficProfile::DimensionSweep { dim, plus } => {
                Workload::dimension_sweep(order, dim, plus)
            }
            TrafficProfile::UniformPairs { pairs, seed } => {
                Workload::uniform_pairs(order, pairs, seed)
            }
            TrafficProfile::Transpose => Workload::transpose(order),
            TrafficProfile::Bernoulli {
                rounds,
                rate_pct,
                seed,
            } => Workload::bernoulli_uniform(order, rounds, rate_pct, seed),
        }
    }

    /// Table/report label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TrafficProfile::DimensionSweep { .. } => "sweep",
            TrafficProfile::UniformPairs { .. } => "pairs",
            TrafficProfile::Transpose => "transpose",
            TrafficProfile::Bernoulli { .. } => "uniform",
        }
    }
}

/// One job of the stream: a mesh-shaped tenant request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Dense id (stream order).
    pub id: JobId,
    /// Requested mesh `D_order` ⇒ sub-star order (`2 ≤ order ≤ n`).
    pub order: usize,
    /// Round the job enters the arrival queue.
    pub arrival: u32,
    /// Declared walltime: the job *claims* it needs this many rounds.
    /// Under [`crate::ReleaseMode::Declared`] the sub-star is released
    /// exactly `duration` rounds after the start (the batch-scheduler
    /// convention — unsound when traffic out-lives the declaration);
    /// under [`crate::ReleaseMode::Drained`] the declaration is a
    /// floor and the region is held until the traffic has actually
    /// drained. EASY backfill trusts declarations for reservations
    /// either way.
    pub duration: u32,
    /// Traffic the job injects, in local coordinates.
    pub traffic: TrafficProfile,
    /// Routing discipline of the tenant.
    pub routing: TenantRouting,
    /// Opt-in to the escape channel: when the host network runs
    /// [`sg_net::FlowControl::EscapeChannel`], this job's packets may
    /// divert onto the deadlock-free escape partition when starved
    /// for credit. Opted-out tenants keep pure credit semantics (and
    /// keep the deadlock risk that comes with them); the flag is
    /// ignored under every other flow-control mode.
    pub escape: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_materialize_locally() {
        assert!(!TrafficProfile::Transpose.local_workload(4).is_empty());
        let w = TrafficProfile::UniformPairs { pairs: 9, seed: 3 }.local_workload(3);
        assert_eq!(w.len(), 9);
        assert_eq!(w.n(), 3);
        let s = TrafficProfile::DimensionSweep { dim: 2, plus: true }.local_workload(4);
        assert!(s.injections().iter().all(|i| i.round == 0));
    }
}
