//! The batch scheduler: admission, placement, composition, and the
//! measured run.
//!
//! [`schedule`] replays a job stream against a pluggable
//! [`SubstarAllocator`] in a deterministic event loop (FCFS with
//! declared walltimes, releases before arrivals, admissions in
//! arrival order), producing a [`Schedule`] of placements plus a
//! fragmentation timeline. [`Schedule::tenant_run`] then lifts every
//! job's local traffic onto its sub-star, composes one shared
//! workload, and [`TenantRun::run`] drives it through a single
//! [`Network`] with per-job routing and per-job statistics — the
//! whole multi-tenant machine in one simulated run.

use crate::alloc::{SubstarAllocator, MIN_ORDER};
use crate::job::{JobId, JobSpec, TenantRouting};
use crate::policy::{tenant_policy, AdmissionPolicy, ReleaseMode, SchedConfig, SchedPolicy};
use rayon::prelude::*;
use sg_net::{Injection, Network, QuiescenceViolation, RoutingPolicy, TrafficStats, Workload};
use sg_obs::{
    Event, EventLog, NullProbe, Probe, SchedPhaseProfile, Trace, TraceHeader, SCHEMA_VERSION,
};
use sg_star::substar::SubStar;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One admitted job: where it ran and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The job as specified.
    pub job: JobSpec,
    /// The disjoint slice of the machine it received.
    pub substar: SubStar,
    /// Round the allocation was granted (traffic starts here).
    pub start: u32,
    /// Round the allocation is returned. Under
    /// [`ReleaseMode::Declared`] this is the declared
    /// `start + duration` (min 1); under [`ReleaseMode::Drained`] it
    /// is `start + max(duration, drain + 1)` — never earlier than
    /// declared, and late enough that the last flit has resolved.
    pub finish: u32,
    /// True when the job jumped the FCFS queue under
    /// [`SchedPolicy::EasyBackfill`].
    pub backfilled: bool,
}

impl Placement {
    /// Rounds spent waiting in the arrival queue.
    #[must_use]
    pub fn queueing_delay(&self) -> u32 {
        self.start - self.job.arrival
    }

    /// The finish the *declaration* promised (`start + duration`, min
    /// 1 round) — what EASY reservations are computed from, and equal
    /// to [`Placement::finish`] under [`ReleaseMode::Declared`].
    #[must_use]
    pub fn declared_finish(&self) -> u32 {
        self.start + self.job.duration.max(1)
    }
}

/// Allocator state observed after the admissions of one event round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragSample {
    /// Event round.
    pub round: u32,
    /// PEs not allocated to anyone.
    pub free_pes: u64,
    /// Largest sub-star order still allocatable.
    pub largest_free_order: usize,
    /// Jobs waiting in the arrival queue.
    pub pending: usize,
}

impl FragSample {
    /// External fragmentation in `[0, 1]`: the share of free capacity
    /// *not* reachable as one largest free sub-star (`0` when the
    /// free space is one block or the machine is full).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        if self.free_pes == 0 {
            return 0.0;
        }
        let largest = sg_perm::factorial::factorial(self.largest_free_order);
        1.0 - largest as f64 / self.free_pes as f64
    }
}

/// The outcome of replaying a job stream against one allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    n: usize,
    placements: Vec<Placement>,
    frag: Vec<FragSample>,
    horizon: u32,
}

impl Schedule {
    /// Host star order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Placements in admission order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Fragmentation timeline, one sample per event round.
    #[must_use]
    pub fn frag_timeline(&self) -> &[FragSample] {
        &self.frag
    }

    /// Round the last allocation is released — the schedule makespan.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Jobs placed by jumping the queue (EASY backfill).
    #[must_use]
    pub fn backfills(&self) -> usize {
        self.placements.iter().filter(|p| p.backfilled).count()
    }

    /// Mean queueing delay over all jobs, in rounds.
    #[must_use]
    pub fn mean_queueing_delay(&self) -> f64 {
        if self.placements.is_empty() {
            return 0.0;
        }
        self.placements
            .iter()
            .map(|p| f64::from(p.queueing_delay()))
            .sum::<f64>()
            / self.placements.len() as f64
    }

    /// Mean external fragmentation over the timeline.
    #[must_use]
    pub fn mean_fragmentation(&self) -> f64 {
        if self.frag.is_empty() {
            return 0.0;
        }
        self.frag.iter().map(FragSample::fragmentation).sum::<f64>() / self.frag.len() as f64
    }

    /// `true` iff every pair of placements with overlapping
    /// `[start, finish)` residency holds disjoint sub-stars — the
    /// allocator contract, checkable after the fact.
    #[must_use]
    pub fn concurrent_placements_disjoint(&self) -> bool {
        for (i, a) in self.placements.iter().enumerate() {
            for b in &self.placements[i + 1..] {
                let overlap = a.start < b.finish && b.start < a.finish;
                if overlap && !a.substar.is_disjoint(&b.substar) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the composed multi-tenant run for this schedule.
    #[must_use]
    pub fn tenant_run(&self) -> TenantRun {
        self.tenant_run_with(|_, _| None)
    }

    /// [`Schedule::tenant_run`] with a per-job traffic override:
    /// `part_override(i, placement)` may replace placement `i`'s
    /// declared [`crate::TrafficProfile`] with an explicit workload —
    /// **global** PE ranks, **job-local** rounds (exactly what an
    /// isolated run of the job would inject; the job's start offset
    /// is applied here, as for declared traffic). Return `None` to
    /// keep the declared profile.
    ///
    /// This is how structured traffic that cannot be described by a
    /// profile enum — e.g. an `sg-coll` collective compiled onto the
    /// job's sub-star — runs as a tenant: confined overrides keep the
    /// byte-isolation theorem, since the run machinery downstream is
    /// identical.
    ///
    /// # Panics
    /// Panics if an override targets a different star order.
    #[must_use]
    pub fn tenant_run_with<F>(&self, part_override: F) -> TenantRun
    where
        F: Fn(usize, &Placement) -> Option<Workload>,
    {
        let parts: Vec<Workload> = self
            .placements
            .iter()
            .enumerate()
            .map(|(i, p)| match part_override(i, p) {
                Some(w) => {
                    assert_eq!(
                        w.n(),
                        self.n,
                        "override for job {} targets S_{} not S_{}",
                        p.job.id,
                        w.n(),
                        self.n
                    );
                    w
                }
                None => lift_workload(self.n, p),
            })
            .collect();
        let with_offsets: Vec<(&Workload, u32)> = parts
            .iter()
            .zip(&self.placements)
            .map(|(w, p)| (w, p.start))
            .collect();
        let (workload, owner) = Workload::compose("tenants", self.n, &with_offsets);
        let policies = self
            .placements
            .iter()
            .map(|p| tenant_policy(p.job.routing, &p.substar))
            .collect();
        TenantRun {
            schedule: self.clone(),
            parts,
            workload,
            owner,
            policies,
        }
    }
}

/// A job's local traffic lifted onto its sub-star (rounds still
/// job-local; [`Workload::compose`] applies the start offset).
fn lift_workload(n: usize, p: &Placement) -> Workload {
    let local = p.job.traffic.local_workload(p.job.order);
    let map = p.substar.node_ranks();
    let injections = local
        .injections()
        .iter()
        .map(|i| Injection {
            round: i.round,
            src: map[i.src as usize],
            dst: map[i.dst as usize],
        })
        .collect();
    Workload::from_injections(&format!("job{}", p.job.id), n, injections)
}

/// Replays `jobs` (FCFS by arrival, stable on ties) against `alloc`.
/// Deterministic: same stream + same policy ⇒ identical schedule.
///
/// Event loop per distinct round: releases first, then arrivals, then
/// admissions from the queue head while they fit (strict FCFS — a
/// blocked head blocks everyone behind it, the classic batch
/// discipline).
///
/// # Panics
/// Panics if a job requests an order outside
/// [`MIN_ORDER`]`..=alloc.n()` (it could never be placed).
#[must_use]
pub fn schedule(jobs: &[JobSpec], alloc: &mut dyn SubstarAllocator) -> Schedule {
    schedule_probed(jobs, alloc, &mut NullProbe)
}

/// [`schedule`] with an attached [`Probe`]: emits
/// [`Event::JobArrived`] when a job enters the pending queue,
/// [`Event::JobPlaced`] when it is admitted, and
/// [`Event::JobReleased`] when its sub-star is returned — in the event
/// loop's own deterministic order. The schedule returned is
/// byte-identical to an unprobed [`schedule`] of the same stream.
///
/// # Panics
/// Panics if a job requests an order outside
/// [`MIN_ORDER`]`..=alloc.n()` (it could never be placed).
#[must_use]
pub fn schedule_probed<P: Probe>(
    jobs: &[JobSpec],
    alloc: &mut dyn SubstarAllocator,
    probe: &mut P,
) -> Schedule {
    schedule_with(jobs, alloc, &SchedConfig::default(), probe)
}

/// How long a placement holds its sub-star under
/// [`ReleaseMode::Drained`]: the job's traffic is co-simulated alone
/// on its sub-star (same lift, same policy, same escape flag the
/// composed run will use) and the region is held one round past the
/// last flit's resolution — or the full declaration, whichever is
/// longer. Exact when every tenant in the stream is confined
/// ([`TenantRouting::is_confined`]): byte-isolation makes the
/// isolated co-simulation identical to the job's slice of the shared
/// run.
fn drained_hold(net: &Network, n: usize, job: &JobSpec, substar: &SubStar) -> u32 {
    let probe_placement = Placement {
        job: *job,
        substar: substar.clone(),
        start: 0,
        finish: 0,
        backfilled: false,
    };
    let workload = lift_workload(n, &probe_placement);
    let policy = tenant_policy(job.routing, substar);
    let policies: [&dyn RoutingPolicy; 1] = [policy.as_ref()];
    let owner = vec![0u32; workload.len()];
    let (total, _) = net.run_partitioned_with_escape(&workload, &policies, &owner, &[job.escape]);
    assert_eq!(
        total.stranded, 0,
        "job {} wedges in isolation and never drains — drained release would hold its sub-star forever",
        job.id
    );
    job.duration.max(1).max(total.makespan + 1)
}

/// When could the blocked head start, if every running job released
/// at its **declared** finish? Probes a clone of the allocator,
/// releasing running placements in declared-finish order (never
/// before `now` — an over-running job's best-case release is
/// immediate) until the head's order fits. The classic EASY shadow
/// time.
fn easy_shadow(
    alloc: &dyn SubstarAllocator,
    placements: &[Placement],
    running: &[usize],
    head_order: usize,
    now: u32,
) -> u32 {
    let mut ghost = alloc.box_clone();
    if ghost.allocate(head_order).is_some() {
        return now;
    }
    let mut order: Vec<usize> = running.to_vec();
    order.sort_by_key(|&i| (placements[i].declared_finish().max(now), i));
    for &i in &order {
        ghost.release(&placements[i].substar);
        if ghost.allocate(head_order).is_some() {
            return placements[i].declared_finish().max(now);
        }
    }
    unreachable!("an order <= n job always fits the drained machine")
}

/// [`schedule_probed`] under an explicit policy bundle: release mode
/// ([`ReleaseMode`]), queueing discipline ([`SchedPolicy`]), and
/// pool admission ([`AdmissionPolicy`]). `SchedConfig::default()`
/// reproduces [`schedule`] byte-identically.
///
/// Under [`SchedPolicy::EasyBackfill`] the probe additionally sees
/// [`Event::JobReserved`] when a blocked head receives its
/// declared-walltime reservation (once per head) and
/// [`Event::JobBackfilled`] next to the [`Event::JobPlaced`] of every
/// queue-jumper.
///
/// # Panics
/// Panics if a job requests an order outside
/// [`MIN_ORDER`]`..=alloc.n()`, if [`ReleaseMode::Drained`] is asked
/// for without [`SchedConfig::net`], or if a job's isolated
/// co-simulation strands flits (it would never drain).
#[must_use]
pub fn schedule_with<P: Probe>(
    jobs: &[JobSpec],
    alloc: &mut dyn SubstarAllocator,
    cfg: &SchedConfig<'_>,
    probe: &mut P,
) -> Schedule {
    schedule_inner(jobs, alloc, cfg, probe, None).0
}

/// [`schedule_with`] under an injected monotonic clock, returning the
/// event loop's [`SchedPhaseProfile`] next to the schedule — which is
/// **byte-identical** to the unprofiled one (profiling only reads the
/// clock; it never touches scheduling state).
///
/// Use [`sg_obs::wall_clock`] for real timings or the deterministic
/// [`sg_obs::tick_clock`] (after [`sg_obs::reset_tick_clock`]) for
/// exact assertable phase counts.
///
/// # Panics
/// As [`schedule_with`].
#[must_use]
pub fn schedule_profiled<P: Probe>(
    jobs: &[JobSpec],
    alloc: &mut dyn SubstarAllocator,
    cfg: &SchedConfig<'_>,
    probe: &mut P,
    clock: fn() -> u64,
) -> (Schedule, SchedPhaseProfile) {
    let (schedule, prof) = schedule_inner(jobs, alloc, cfg, probe, Some(clock));
    (schedule, prof.expect("profiler was armed"))
}

/// Armed profiler state: the injected clock, the running mark, and
/// the accumulators. Lives in a `RefCell` so the placement closure
/// and the loop body can both charge through a shared borrow.
struct SchedProf {
    clock: fn() -> u64,
    mark: u64,
    prof: SchedPhaseProfile,
}

#[derive(Clone, Copy)]
enum SchedPhase {
    Placement,
    Drain,
    Backfill,
    Release,
}

/// Charge the delta since the last mark to `phase` and advance the
/// mark. No-op when the profiler is unarmed. Nested phases share the
/// one mark, so an inner charge (the drain co-simulation inside a
/// placement) is automatically subtracted from the enclosing phase.
fn charge(slot: &RefCell<Option<SchedProf>>, phase: SchedPhase) {
    if let Some(p) = slot.borrow_mut().as_mut() {
        let now = (p.clock)();
        let delta = now - p.mark;
        match phase {
            SchedPhase::Placement => p.prof.placement_ticks += delta,
            SchedPhase::Drain => p.prof.drain_ticks += delta,
            SchedPhase::Backfill => p.prof.backfill_ticks += delta,
            SchedPhase::Release => p.prof.release_ticks += delta,
        }
        p.mark = now;
    }
}

/// Open a new event round: count it and reset the mark so the
/// inter-round gap is charged to nothing.
fn begin_round(slot: &RefCell<Option<SchedProf>>) {
    if let Some(p) = slot.borrow_mut().as_mut() {
        p.prof.rounds += 1;
        p.mark = (p.clock)();
    }
}

fn schedule_inner<P: Probe>(
    jobs: &[JobSpec],
    alloc: &mut dyn SubstarAllocator,
    cfg: &SchedConfig<'_>,
    probe: &mut P,
    clock: Option<fn() -> u64>,
) -> (Schedule, Option<SchedPhaseProfile>) {
    let prof: RefCell<Option<SchedProf>> = RefCell::new(clock.map(|clock| SchedProf {
        clock,
        mark: clock(),
        prof: SchedPhaseProfile::default(),
    }));
    let n = alloc.n();
    for j in jobs {
        assert!(
            (MIN_ORDER..=n).contains(&j.order),
            "job {} requests order {} outside {MIN_ORDER}..={n}",
            j.id,
            j.order
        );
    }
    assert!(
        cfg.release == ReleaseMode::Declared || cfg.net.is_some(),
        "ReleaseMode::Drained needs SchedConfig::net to co-simulate drain times"
    );
    // Pool-level admission rewrites happen before the loop sees the
    // stream, so every downstream consumer (placements, TenantRun)
    // observes the adjusted specs.
    let adjusted: Vec<JobSpec> = match cfg.admission {
        AdmissionPolicy::AsRequested => jobs.to_vec(),
        AdmissionPolicy::UniformEscape => {
            let any = jobs.iter().any(|j| j.escape);
            jobs.iter()
                .map(|j| JobSpec {
                    escape: j.escape || any,
                    ..*j
                })
                .collect()
        }
    };
    let mut sorted: Vec<&JobSpec> = adjusted.iter().collect();
    sorted.sort_by_key(|j| j.arrival);
    let mut placements: Vec<Placement> = Vec::with_capacity(jobs.len());
    let mut frag = Vec::new();
    let mut pending: VecDeque<&JobSpec> = VecDeque::new();
    // Min-heap of (finish, placement index) for capacity releases.
    let mut releases: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    let mut next_arrival = 0usize;
    // The sticky EASY reservation: (head job, promised start).
    // Recomputed only when a different job becomes the blocked head,
    // so the optimism gap is measured against the first promise.
    let mut reservation: Option<(JobId, u32)> = None;
    let place = |job: &JobSpec,
                 substar: SubStar,
                 now: u32,
                 backfilled: bool,
                 placements: &mut Vec<Placement>,
                 releases: &mut BinaryHeap<Reverse<(u32, usize)>>,
                 probe: &mut P| {
        let hold = match cfg.release {
            ReleaseMode::Declared => job.duration.max(1),
            ReleaseMode::Drained => {
                // The allocator work so far belongs to placement; the
                // co-simulation itself is its own phase.
                charge(&prof, SchedPhase::Placement);
                let hold = drained_hold(cfg.net.expect("validated above"), n, job, &substar);
                charge(&prof, SchedPhase::Drain);
                hold
            }
        };
        let finish = now + hold;
        releases.push(Reverse((finish, placements.len())));
        if P::ENABLED {
            probe.event(&Event::JobPlaced {
                round: now,
                job: job.id,
                order: substar.order() as u8,
                pes: sg_perm::factorial::factorial(substar.order()),
            });
            if backfilled {
                probe.event(&Event::JobBackfilled {
                    round: now,
                    job: job.id,
                });
            }
        }
        placements.push(Placement {
            job: *job,
            substar,
            start: now,
            finish,
            backfilled,
        });
    };
    while next_arrival < sorted.len() || !pending.is_empty() {
        begin_round(&prof);
        let mut now = u32::MAX;
        if let Some(j) = sorted.get(next_arrival) {
            now = j.arrival;
        }
        if let Some(&Reverse((f, _))) = releases.peek() {
            now = now.min(f);
        }
        debug_assert!(now != u32::MAX, "blocked queue with no future release");
        while let Some(&Reverse((f, idx))) = releases.peek() {
            if f > now {
                break;
            }
            releases.pop();
            alloc.release(&placements[idx].substar);
            if P::ENABLED {
                probe.event(&Event::JobReleased {
                    round: f,
                    job: placements[idx].job.id,
                });
            }
        }
        charge(&prof, SchedPhase::Release);
        while sorted.get(next_arrival).is_some_and(|j| j.arrival <= now) {
            if P::ENABLED {
                probe.event(&Event::JobArrived {
                    round: sorted[next_arrival].arrival,
                    job: sorted[next_arrival].id,
                });
            }
            pending.push_back(sorted[next_arrival]);
            next_arrival += 1;
        }
        while let Some(&head) = pending.front() {
            let Some(substar) = alloc.allocate(head.order) else {
                break;
            };
            pending.pop_front();
            place(
                head,
                substar,
                now,
                false,
                &mut placements,
                &mut releases,
                probe,
            );
        }
        charge(&prof, SchedPhase::Placement);
        if cfg.policy == SchedPolicy::EasyBackfill {
            if let Some(&head) = pending.front() {
                // The head is blocked: reserve it a start (sticky per
                // head), then let queued jobs that — by declaration —
                // finish before that start jump onto free PEs.
                let shadow = match reservation {
                    Some((id, s)) if id == head.id => s,
                    _ => {
                        let running: Vec<usize> =
                            releases.iter().map(|&Reverse((_, idx))| idx).collect();
                        let s = easy_shadow(alloc, &placements, &running, head.order, now);
                        reservation = Some((head.id, s));
                        if P::ENABLED {
                            probe.event(&Event::JobReserved {
                                round: now,
                                job: head.id,
                                start: s,
                            });
                        }
                        s
                    }
                };
                let mut i = 1;
                while i < pending.len() {
                    let cand = pending[i];
                    if now + cand.duration.max(1) <= shadow {
                        if let Some(substar) = alloc.allocate(cand.order) {
                            pending.remove(i);
                            place(
                                cand,
                                substar,
                                now,
                                true,
                                &mut placements,
                                &mut releases,
                                probe,
                            );
                            continue;
                        }
                    }
                    i += 1;
                }
            }
            charge(&prof, SchedPhase::Backfill);
        }
        frag.push(FragSample {
            round: now,
            free_pes: alloc.free_pes(),
            largest_free_order: alloc.largest_free_order(),
            pending: pending.len(),
        });
    }
    // The loop ends once the last job is admitted; releases still in
    // the heap happen after every remaining event, so the allocator
    // state no longer matters — but the probe's timeline does. Drain
    // them in finish order so every placed job gets its release event.
    if P::ENABLED {
        while let Some(Reverse((f, idx))) = releases.pop() {
            probe.event(&Event::JobReleased {
                round: f,
                job: placements[idx].job.id,
            });
        }
    }
    charge(&prof, SchedPhase::Release);
    let horizon = placements.iter().map(|p| p.finish).max().unwrap_or(0);
    let profile = prof.into_inner().map(|p| p.prof);
    (
        Schedule {
            n,
            placements,
            frag,
            horizon,
        },
        profile,
    )
}

/// Record a profiled scheduling run as an `sg-trace` [`Trace`]:
/// engine `"sched"`, the [`SchedPhaseProfile`] embedded in the
/// header's `"sched_profile"` field, a policy-bundle fingerprint, and
/// the full job event stream. Scheduler traces carry no packet
/// preamble (`packets: 0`) — jobs, not flits, are the unit here.
///
/// # Panics
/// As [`schedule_with`].
#[must_use]
pub fn schedule_traced(
    jobs: &[JobSpec],
    alloc: &mut dyn SubstarAllocator,
    cfg: &SchedConfig<'_>,
    seed: u64,
    clock: fn() -> u64,
) -> (Schedule, Trace) {
    let n = alloc.n();
    let mut log = EventLog::new();
    let (schedule, prof) = schedule_profiled(jobs, alloc, cfg, &mut log, clock);
    let trace = Trace {
        header: TraceHeader {
            schema: SCHEMA_VERSION,
            engine: "sched".to_string(),
            n: n as u32,
            seed,
            fingerprint: format!(
                "sched;release={};policy={};admission={}",
                cfg.release.name(),
                cfg.policy.name(),
                cfg.admission.name(),
            ),
            jobs: jobs.len() as u32,
            packets: 0,
            events: log.events().len() as u64,
            dropped: log.dropped(),
            sched_profile: Some(prof),
        },
        packets: Vec::new(),
        events: log.events().to_vec(),
    };
    (schedule, trace)
}

/// A schedule compiled down to one shared-network run: the composed
/// workload, the per-packet owner map, and one routing policy per
/// tenant.
pub struct TenantRun {
    schedule: Schedule,
    /// Per-job lifted workloads at job-local rounds — exactly what an
    /// isolated run of the job injects.
    parts: Vec<Workload>,
    workload: Workload,
    owner: Vec<u32>,
    policies: Vec<Box<dyn RoutingPolicy>>,
}

impl TenantRun {
    /// The schedule this run was compiled from.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The composed workload (all tenants, global PEs and rounds).
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Owner map: `owner()[pid]` = placement index of the packet.
    #[must_use]
    pub fn owner(&self) -> &[u32] {
        &self.owner
    }

    /// Job `i`'s traffic as an isolated run would inject it (local
    /// clock, global PEs).
    #[must_use]
    pub fn part(&self, i: usize) -> &Workload {
        &self.parts[i]
    }

    /// Per-tenant routing policies, by placement index.
    #[must_use]
    pub fn policies(&self) -> Vec<&dyn RoutingPolicy> {
        self.policies.iter().map(Box::as_ref).collect()
    }

    /// Drives all tenants concurrently through `net` and splits the
    /// statistics per job (each rebased to its own clock).
    ///
    /// Each job's [`JobSpec::escape`] opt-in is threaded through to
    /// the network: on a [`sg_net::FlowControl::EscapeChannel`] host,
    /// opted-in tenants may divert starved packets onto the
    /// deadlock-free escape partition while opted-out tenants keep
    /// pure credit semantics. (On every other flow-control mode the
    /// flags are inert, so this is byte-identical to the pre-escape
    /// behavior.) Note a *mixed* tenancy — some jobs opted out — can
    /// still deadlock through the opted-out packets; only an
    /// all-opted-in run carries the zero-`Stranded` guarantee.
    ///
    /// # Panics
    /// Panics if `net` is not an `S_n` of the schedule's order.
    #[must_use]
    pub fn run(&self, net: &Network) -> ScheduleReport {
        assert_eq!(net.n(), self.schedule.n, "network order mismatch");
        let escape: Vec<bool> = self
            .schedule
            .placements
            .iter()
            .map(|p| p.job.escape)
            .collect();
        let (total, per_job) =
            net.run_partitioned_with_escape(&self.workload, &self.policies(), &self.owner, &escape);
        let jobs = self
            .schedule
            .placements
            .iter()
            .zip(per_job)
            .map(|(p, stats)| JobReport {
                id: p.job.id,
                routing: p.job.routing,
                placement: p.clone(),
                stats: stats.rebased(p.start),
            })
            .collect();
        ScheduleReport { total, jobs }
    }

    /// [`TenantRun::run`] plus the cross-layer handoff check:
    /// panics (via [`Network::assert_region_quiescent`]) if any
    /// tenant's flit resolved at — or survived past — its placement's
    /// release round, i.e. if a sub-star was handed to a successor
    /// still dirty. Under [`ReleaseMode::Drained`] with confined
    /// tenants this always passes; under [`ReleaseMode::Declared`]
    /// with under-declared walltimes it is exactly the hard error the
    /// drain-aware release exists to prevent. Both engines feed the
    /// same per-packet resolution records into the check, so a dirty
    /// handoff is a hard error on either engine.
    ///
    /// # Panics
    /// Panics on a network order mismatch or a dirty handoff.
    #[must_use]
    pub fn run_quiesce_checked(&self, net: &Network) -> ScheduleReport {
        let report = self.run(net);
        Network::assert_region_quiescent(&report.total, &self.owner, &self.release_rounds());
        report
    }

    /// The handoff audit without the panic: every tenant flit that
    /// resolved at or after its placement's release round (or never
    /// resolved at all). Empty iff the schedule's releases were truly
    /// drain-aware.
    #[must_use]
    pub fn quiescence_violations(&self, report: &ScheduleReport) -> Vec<QuiescenceViolation> {
        Network::region_quiescence_violations(&report.total, &self.owner, &self.release_rounds())
    }

    fn release_rounds(&self) -> Vec<u32> {
        self.schedule.placements.iter().map(|p| p.finish).collect()
    }

    /// The composed run on the **reference** engine, total statistics
    /// only — the oracle side of the differential argument. Byte-equal
    /// to [`TenantRun::run`]'s `total` on the fast engine for the same
    /// network.
    ///
    /// # Panics
    /// Panics if `net` is not an `S_n` of the schedule's order.
    #[must_use]
    pub fn run_reference_total(&self, net: &Network) -> TrafficStats {
        assert_eq!(net.n(), self.schedule.n, "network order mismatch");
        let escape: Vec<bool> = self
            .schedule
            .placements
            .iter()
            .map(|p| p.job.escape)
            .collect();
        net.run_partitioned_reference(
            &self.workload,
            &self.policies(),
            &self.owner,
            &escape,
            &mut NullProbe,
        )
    }

    /// Runs every job **alone** on the same network (same policy
    /// object, same sub-star, local clock) — the baseline the
    /// isolation theorem compares against. Jobs are fanned out in
    /// `par_chunks` lanes, each lane simulating its jobs serially on
    /// one thread.
    ///
    /// # Panics
    /// Panics if `net` is not an `S_n` of the schedule's order.
    #[must_use]
    pub fn isolated_stats(&self, net: &Network) -> Vec<TrafficStats> {
        assert_eq!(net.n(), self.schedule.n, "network order mismatch");
        let pairs: Vec<(&Workload, &Box<dyn RoutingPolicy>)> =
            self.parts.iter().zip(&self.policies).collect();
        if pairs.is_empty() {
            return Vec::new();
        }
        let lane = pairs.len().div_ceil(8).max(1);
        let lanes: Vec<Vec<TrafficStats>> = pairs
            .par_chunks(lane)
            .map(|jobs| {
                jobs.iter()
                    .map(|(w, policy)| net.run(w, policy.as_ref()))
                    .collect()
            })
            .collect();
        lanes.concat()
    }
}

/// One tenant's slice of the shared run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job id.
    pub id: JobId,
    /// Routing discipline the tenant used.
    pub routing: TenantRouting,
    /// Where and when it ran.
    pub placement: Placement,
    /// The job's attributed statistics, rebased to its own clock
    /// (round 0 = allocation grant) so they compare byte-for-byte
    /// against an isolated run.
    pub stats: TrafficStats,
}

/// The full measured outcome of a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Whole-network statistics of the composed run.
    pub total: TrafficStats,
    /// Per-tenant reports, in admission order.
    pub jobs: Vec<JobReport>,
}

impl ScheduleReport {
    /// Ids of jobs whose per-tenant stats differ from their isolated
    /// baseline — empty for embedding-routed tenants on disjoint
    /// sub-stars (the isolation theorem), generally non-empty when
    /// greedy/adaptive tenants trespass.
    #[must_use]
    pub fn perturbed_jobs(&self, isolated: &[TrafficStats]) -> Vec<JobId> {
        self.jobs
            .iter()
            .zip(isolated)
            .filter(|(j, iso)| j.stats != **iso)
            .map(|(j, _)| j.id)
            .collect()
    }

    /// Extra queue-wait rounds each job paid versus isolation
    /// (cross-job interference, by job id).
    #[must_use]
    pub fn interference_wait(&self, isolated: &[TrafficStats]) -> Vec<(JobId, i64)> {
        self.jobs
            .iter()
            .zip(isolated)
            .map(|(j, iso)| {
                (
                    j.id,
                    j.stats.total_wait_rounds as i64 - iso.total_wait_rounds as i64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocPolicy;
    use crate::job::TrafficProfile;
    use crate::stream::{generate, StreamConfig};

    fn tiny_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                id: 0,
                order: 3,
                arrival: 0,
                duration: 50,
                traffic: TrafficProfile::DimensionSweep { dim: 1, plus: true },
                routing: TenantRouting::Embedding,
                escape: false,
            },
            JobSpec {
                id: 1,
                order: 3,
                arrival: 0,
                duration: 50,
                traffic: TrafficProfile::Transpose,
                routing: TenantRouting::Embedding,
                escape: false,
            },
            JobSpec {
                id: 2,
                order: 4,
                arrival: 5,
                duration: 40,
                traffic: TrafficProfile::UniformPairs { pairs: 30, seed: 9 },
                routing: TenantRouting::Embedding,
                escape: false,
            },
        ]
    }

    #[test]
    fn schedule_is_fcfs_and_disjoint() {
        for policy in AllocPolicy::ALL {
            let mut alloc = policy.build(4);
            let s = schedule(&tiny_jobs(), alloc.as_mut());
            assert_eq!(s.placements().len(), 3, "{}", policy.name());
            assert!(s.concurrent_placements_disjoint());
            // Jobs 0 and 1 (order 3) fill S_4 half each; job 2 wants
            // the whole S_4 and must wait for both releases.
            assert_eq!(s.placements()[0].start, 0);
            assert_eq!(s.placements()[1].start, 0);
            assert_eq!(s.placements()[2].start, 50);
            assert_eq!(s.placements()[2].queueing_delay(), 45);
            assert_eq!(s.horizon(), 90);
        }
    }

    #[test]
    fn schedules_replay_identically() {
        let cfg = StreamConfig {
            greedy_pct: 25,
            ..StreamConfig::isolated(5, 20, 77)
        };
        let jobs = generate(&cfg);
        for policy in AllocPolicy::ALL {
            let a = schedule(&jobs, policy.build(5).as_mut());
            let b = schedule(&jobs, policy.build(5).as_mut());
            assert_eq!(a, b, "{} must replay", policy.name());
        }
    }

    #[test]
    fn all_embedding_tenants_are_isolated_end_to_end() {
        // The tentpole property at unit-test scale: S_5, every tenant
        // embedding-routed, long enough walltimes that regions drain
        // before reuse — per-job stats byte-equal isolated runs.
        let net = Network::new(5);
        let cfg = StreamConfig {
            duration: (80, 120),
            ..StreamConfig::isolated(5, 10, 3)
        };
        let jobs = generate(&cfg);
        let mut alloc = AllocPolicy::FirstFit.build(5);
        let s = schedule(&jobs, alloc.as_mut());
        assert!(s.concurrent_placements_disjoint());
        let run = s.tenant_run();
        let report = run.run(&net);
        let isolated = run.isolated_stats(&net);
        assert_eq!(
            report.perturbed_jobs(&isolated),
            Vec::<JobId>::new(),
            "embedding tenants must be byte-isolated"
        );
        // Conservation per job.
        for j in &report.jobs {
            assert_eq!(
                j.stats.delivered + j.stats.dropped() + j.stats.stranded,
                j.stats.injected
            );
        }
    }

    #[test]
    fn minimal_routing_tenants_are_isolated_too() {
        // Convexity in action end-to-end: greedy and adaptive tenants
        // route globally, yet minimal routes cannot leave a sub-star,
        // so they byte-isolate exactly like embedding tenants.
        let net = Network::new(5);
        let cfg = StreamConfig {
            duration: (80, 120),
            greedy_pct: 50,
            adaptive_pct: 30,
            ..StreamConfig::isolated(5, 10, 5)
        };
        let jobs = generate(&cfg);
        assert!(
            jobs.iter().any(|j| j.routing != TenantRouting::Embedding),
            "the mix must actually include minimal-routing tenants"
        );
        let mut alloc = AllocPolicy::BestFit.build(5);
        let s = schedule(&jobs, alloc.as_mut());
        let run = s.tenant_run();
        let report = run.run(&net);
        let isolated = run.isolated_stats(&net);
        assert_eq!(report.perturbed_jobs(&isolated), Vec::<JobId>::new());
    }

    #[test]
    fn oblivious_tenants_interfere_measurably() {
        // Machine-coordinate dimension-order tenants trespass, so
        // somebody's shared-run stats depart their isolated baseline.
        let net = Network::new(5);
        let cfg = StreamConfig {
            duration: (80, 120),
            oblivious_pct: 60,
            pattern: crate::stream::ArrivalPattern::Bursty { burst: 4, gap: 30 },
            ..StreamConfig::isolated(5, 8, 11)
        };
        let jobs = generate(&cfg);
        assert!(jobs
            .iter()
            .any(|j| j.routing == TenantRouting::GlobalEmbedding));
        let mut alloc = AllocPolicy::FirstFit.build(5);
        let s = schedule(&jobs, alloc.as_mut());
        let run = s.tenant_run();
        let report = run.run(&net);
        let isolated = run.isolated_stats(&net);
        let perturbed = report.perturbed_jobs(&isolated);
        assert!(
            !perturbed.is_empty(),
            "oblivious dimension-order tenants must interfere"
        );
        // Everything still conserves per job, interference or not.
        for j in &report.jobs {
            assert_eq!(
                j.stats.delivered + j.stats.dropped() + j.stats.stranded,
                j.stats.injected
            );
        }
    }

    #[test]
    fn escape_optin_threads_through_tenant_run() {
        // One whole-machine tenant pushing saturating traffic through
        // a 1-slot credit pool: opted out it wedges at the credit
        // fixed point (stranded survivors), opted in the escape
        // channel drains every packet — the per-job flag reaching the
        // network is exactly the difference.
        let n = 4;
        let net = Network::new(n).with_config(sg_net::NetConfig {
            queue_capacity: Some(1),
            flow_control: sg_net::FlowControl::EscapeChannel,
            ..sg_net::NetConfig::default()
        });
        let mk = |escape| {
            vec![JobSpec {
                id: 0,
                order: n,
                arrival: 0,
                duration: 400,
                traffic: TrafficProfile::Bernoulli {
                    rounds: 40,
                    rate_pct: 100,
                    seed: 1,
                },
                routing: TenantRouting::Greedy,
                escape,
            }]
        };
        let run_with = |jobs: &[JobSpec]| {
            let mut alloc = AllocPolicy::FirstFit.build(n);
            let s = schedule(jobs, alloc.as_mut());
            assert_eq!(s.placements().len(), 1, "whole machine placed");
            s.tenant_run().run(&net)
        };
        let out = run_with(&mk(false));
        assert!(
            out.total.stranded > 0,
            "opted-out tenant must still hit the credit deadlock"
        );
        assert_eq!(out.total.escape_diversions, 0, "flag off ⇒ channel idle");
        let inn = run_with(&mk(true));
        assert_eq!(inn.total.stranded, 0, "opted-in tenant must drain");
        assert_eq!(inn.total.delivered, inn.total.injected);
        assert!(inn.total.escape_diversions > 0, "the channel did the work");
        assert!(inn.jobs[0].stats.escape_diversions > 0, "per-job stats too");
    }

    #[test]
    fn schedule_with_default_is_byte_identical_to_schedule() {
        let cfg = StreamConfig {
            greedy_pct: 25,
            ..StreamConfig::isolated(5, 20, 77)
        };
        let jobs = generate(&cfg);
        for policy in AllocPolicy::ALL {
            let old = schedule(&jobs, policy.build(5).as_mut());
            let new = schedule_with(
                &jobs,
                policy.build(5).as_mut(),
                &SchedConfig::default(),
                &mut sg_obs::NullProbe,
            );
            assert_eq!(old, new, "{}", policy.name());
        }
    }

    #[test]
    fn drained_release_holds_past_the_declaration() {
        // An under-declared job (1 round declared, multi-round
        // transpose drain) keeps its sub-star strictly longer under
        // Drained; honest declarations are never released earlier.
        let net = Network::new(4);
        let jobs = vec![
            JobSpec {
                duration: 1,
                ..tiny_jobs()[1]
            },
            tiny_jobs()[1],
        ];
        let mut alloc = AllocPolicy::FirstFit.build(4);
        let s = schedule_with(
            &jobs,
            alloc.as_mut(),
            &SchedConfig::drained(&net),
            &mut sg_obs::NullProbe,
        );
        let liar = &s.placements()[0];
        assert!(
            liar.finish > liar.declared_finish(),
            "under-declared job must be held until drain ({} vs declared {})",
            liar.finish,
            liar.declared_finish()
        );
        for p in s.placements() {
            assert!(p.finish >= p.declared_finish());
        }
    }

    #[test]
    fn easy_backfill_jumps_only_safe_jobs() {
        // j0 holds half of S_4 for 50 rounds; j1 wants the whole
        // machine and blocks; j2 (order 3, 40 rounds) fits the free
        // half and ends before j1's reservation at 50 — EASY starts it
        // immediately, FCFS makes it wait behind j1.
        let jobs = vec![
            JobSpec {
                id: 0,
                order: 3,
                arrival: 0,
                duration: 50,
                traffic: TrafficProfile::Transpose,
                routing: TenantRouting::Embedding,
                escape: false,
            },
            JobSpec {
                id: 1,
                order: 4,
                arrival: 0,
                duration: 30,
                traffic: TrafficProfile::Transpose,
                routing: TenantRouting::Embedding,
                escape: false,
            },
            JobSpec {
                id: 2,
                order: 3,
                arrival: 0,
                duration: 40,
                traffic: TrafficProfile::Transpose,
                routing: TenantRouting::Embedding,
                escape: false,
            },
        ];
        let fcfs = schedule(&jobs, AllocPolicy::FirstFit.build(4).as_mut());
        assert_eq!(fcfs.backfills(), 0);
        let mut probe = sg_obs::SchedProbe::new();
        let easy = schedule_with(
            &jobs,
            AllocPolicy::FirstFit.build(4).as_mut(),
            &SchedConfig {
                policy: SchedPolicy::EasyBackfill,
                ..SchedConfig::default()
            },
            &mut probe,
        );
        assert_eq!(easy.backfills(), 1);
        let j2 = easy.placements().iter().find(|p| p.job.id == 2).unwrap();
        assert!(j2.backfilled);
        assert_eq!(j2.start, 0, "j2 jumps the blocked head immediately");
        // The head was promised (and got) its FCFS start: backfill did
        // not delay it.
        let j1 = easy.placements().iter().find(|p| p.job.id == 1).unwrap();
        let j1_fcfs = fcfs.placements().iter().find(|p| p.job.id == 1).unwrap();
        assert_eq!(j1.start, j1_fcfs.start);
        let span1 = probe.spans().iter().find(|s| s.job == 1).unwrap();
        assert_eq!(span1.reserved, Some(50), "reserved at j0's declared finish");
        assert_eq!(
            span1.optimism_gap(),
            Some(0),
            "honest declarations: promise held"
        );
        assert_eq!(probe.backfills(), 1);
        assert!(
            easy.horizon() < fcfs.horizon(),
            "backfill shortens the schedule"
        );
        assert!(easy.concurrent_placements_disjoint());
    }

    #[test]
    fn uniform_escape_admission_is_all_or_nothing() {
        let mut jobs = tiny_jobs();
        jobs[1].escape = true;
        let mixed = schedule_with(
            &jobs,
            AllocPolicy::FirstFit.build(4).as_mut(),
            &SchedConfig::default(),
            &mut sg_obs::NullProbe,
        );
        assert_eq!(
            mixed.placements().iter().filter(|p| p.job.escape).count(),
            1,
            "as-requested keeps the mix"
        );
        let uniform = schedule_with(
            &jobs,
            AllocPolicy::FirstFit.build(4).as_mut(),
            &SchedConfig {
                admission: AdmissionPolicy::UniformEscape,
                ..SchedConfig::default()
            },
            &mut sg_obs::NullProbe,
        );
        assert!(
            uniform.placements().iter().all(|p| p.job.escape),
            "one opt-in opts the whole pool in"
        );
        // A pool with no opt-ins stays untouched.
        let none = schedule_with(
            &tiny_jobs(),
            AllocPolicy::FirstFit.build(4).as_mut(),
            &SchedConfig {
                admission: AdmissionPolicy::UniformEscape,
                ..SchedConfig::default()
            },
            &mut sg_obs::NullProbe,
        );
        assert!(none.placements().iter().all(|p| !p.job.escape));
    }

    #[test]
    fn fragmentation_samples_are_sane() {
        let mut alloc = AllocPolicy::Buddy.build(4);
        let s = schedule(&tiny_jobs(), alloc.as_mut());
        for f in s.frag_timeline() {
            assert!(f.free_pes <= 24);
            assert!((0.0..=1.0).contains(&f.fragmentation()));
        }
        // Once everything is released, the machine coalesces whole.
        let last = s.frag_timeline().last().unwrap();
        assert_eq!(last.pending, 0);
    }

    /// A tick clock private to the calling thread, so exact phase
    /// counts cannot be perturbed by parallel tests sharing the
    /// process-wide [`sg_obs::tick_clock`].
    fn thread_tick() -> u64 {
        use std::cell::Cell;
        thread_local!(static T: Cell<u64> = const { Cell::new(0) });
        T.with(|t| {
            let v = t.get();
            t.set(v + 1);
            v
        })
    }

    #[test]
    fn profiling_never_perturbs_the_schedule() {
        let cfg = StreamConfig {
            greedy_pct: 25,
            ..StreamConfig::isolated(5, 20, 77)
        };
        let jobs = generate(&cfg);
        for policy in AllocPolicy::ALL {
            let bare = schedule(&jobs, policy.build(5).as_mut());
            let (profiled, prof) = schedule_profiled(
                &jobs,
                policy.build(5).as_mut(),
                &SchedConfig::default(),
                &mut NullProbe,
                thread_tick,
            );
            assert_eq!(
                bare,
                profiled,
                "{}: profiling must not perturb",
                policy.name()
            );
            assert!(prof.rounds > 0);
        }
    }

    #[test]
    fn tick_clock_phase_counts_are_exact() {
        // Fcfs + Declared: exactly one release charge and one
        // placement charge per event round, plus the post-loop heap
        // drain; drain and backfill never run.
        let (_, prof) = schedule_profiled(
            &tiny_jobs(),
            AllocPolicy::Buddy.build(4).as_mut(),
            &SchedConfig::default(),
            &mut NullProbe,
            thread_tick,
        );
        assert!(prof.rounds > 0);
        assert_eq!(prof.release_ticks, prof.rounds + 1);
        assert_eq!(prof.placement_ticks, prof.rounds);
        assert_eq!(prof.drain_ticks, 0);
        assert_eq!(prof.backfill_ticks, 0);
        assert_eq!(prof.total_ticks(), 2 * prof.rounds + 1);
    }

    #[test]
    fn drained_and_backfill_phases_self_charge() {
        let net = Network::new(4);
        let cfg = SchedConfig {
            policy: SchedPolicy::EasyBackfill,
            ..SchedConfig::drained(&net)
        };
        let (s, prof) = schedule_profiled(
            &tiny_jobs(),
            AllocPolicy::Buddy.build(4).as_mut(),
            &cfg,
            &mut NullProbe,
            thread_tick,
        );
        let placed = s.placements().len() as u64;
        assert_eq!(placed, 3);
        // Every placement runs one drain co-simulation (one extra
        // placement charge + one drain charge); backfill charges once
        // per round under EasyBackfill.
        assert_eq!(prof.drain_ticks, placed);
        assert_eq!(prof.placement_ticks, prof.rounds + placed);
        assert_eq!(prof.backfill_ticks, prof.rounds);
        assert_eq!(prof.release_ticks, prof.rounds + 1);
    }

    #[test]
    fn traced_run_embeds_profile_and_round_trips() {
        let (s, trace) = schedule_traced(
            &tiny_jobs(),
            AllocPolicy::Buddy.build(4).as_mut(),
            &SchedConfig::default(),
            42,
            thread_tick,
        );
        assert_eq!(trace.header.engine, "sched");
        assert_eq!(trace.header.jobs, 3);
        assert_eq!(trace.header.packets, 0);
        assert_eq!(trace.header.seed, 42);
        assert!(trace
            .header
            .fingerprint
            .starts_with("sched;release=declared"));
        let prof = trace.header.sched_profile.expect("profile embedded");
        assert!(prof.rounds > 0);
        // Event stream matches an independent probed run, and the
        // whole trace survives the JSONL round trip.
        let mut log = EventLog::new();
        let probed = schedule_probed(&tiny_jobs(), AllocPolicy::Buddy.build(4).as_mut(), &mut log);
        assert_eq!(probed, s);
        assert_eq!(trace.events, log.events());
        let back = Trace::parse(&trace.to_jsonl()).expect("round-trips");
        assert_eq!(back, trace);
    }
}
