//! The mesh-programming interface ([`MeshSimd`]) and route accounting.
//!
//! Algorithms in `sg-algo` are written once against [`MeshSimd`] and
//! run on both the native [`crate::MeshMachine`] and the star-backed
//! [`crate::EmbeddedMeshMachine`]. The only observable difference is
//! the physical unit-route counter — which is the paper's entire
//! complexity story (Theorem 6: a factor of at most 3).

use sg_mesh::shape::{MeshShape, Sign};
use sg_mesh::MeshPoint;

/// Unit-route accounting, kept per machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Physical unit routes executed on the underlying network.
    pub physical_routes: u64,
    /// Logical mesh unit routes requested through the [`MeshSimd`]
    /// interface (for a native mesh these coincide with physical).
    pub logical_mesh_routes: u64,
}

impl RouteStats {
    /// Physical-per-logical slowdown; `None` before any logical route.
    #[must_use]
    pub fn slowdown(&self) -> Option<f64> {
        (self.logical_mesh_routes > 0)
            .then(|| self.physical_routes as f64 / self.logical_mesh_routes as f64)
    }
}

/// An SIMD machine presenting the mesh programming model of §2:
/// per-PE registers, broadcast elementwise instructions with masks,
/// and SIMD-A unit routes along mesh dimensions.
///
/// PEs are addressed by mesh node index (see `MeshShape::index_of`).
pub trait MeshSimd<T: Clone> {
    /// The mesh shape this machine simulates.
    fn shape(&self) -> &MeshShape;

    /// Loads a register, one value per PE, in mesh index order.
    fn load(&mut self, reg: &str, data: Vec<T>);

    /// Reads a register back in mesh index order.
    fn read(&self, reg: &str) -> Vec<T>;

    /// Broadcast elementwise instruction: `f(point, value)` runs on
    /// every PE (use the point to encode a mask, per §2's
    /// `A(i) := …, (f(i) = y)` notation).
    fn update(&mut self, reg: &str, f: &mut dyn FnMut(&MeshPoint, &mut T));

    /// Broadcast two-register instruction: `f(point, dst, src)` with
    /// `src` read-only.
    fn combine(&mut self, dst: &str, src: &str, f: &mut dyn FnMut(&MeshPoint, &mut T, &T));

    /// One SIMD-A mesh unit route on `reg` along `dim` in direction
    /// `sign`, restricted to sending PEs satisfying `mask`
    /// (`B(i^{(dim±)}) ← B(i)`): every receiving PE's register is
    /// overwritten with its neighbor's value; PEs with no sender keep
    /// their value.
    fn route_where(&mut self, reg: &str, dim: usize, sign: Sign, mask: &dyn Fn(&MeshPoint) -> bool);

    /// Unmasked unit route.
    fn route(&mut self, reg: &str, dim: usize, sign: Sign) {
        self.route_where(reg, dim, sign, &|_| true);
    }

    /// Route accounting so far.
    fn stats(&self) -> &RouteStats;
}

/// Reference semantics of one masked SIMD-A mesh unit route, shared by
/// both machines (and by tests as ground truth): returns the new
/// contents of the register.
#[must_use]
pub fn mesh_route_semantics<T: Clone>(
    shape: &MeshShape,
    data: &[T],
    dim: usize,
    sign: Sign,
    mask: &dyn Fn(&MeshPoint) -> bool,
) -> Vec<T> {
    let mut out: Vec<T> = data.to_vec();
    for idx in 0..shape.size() {
        let p = shape.point_at(idx);
        if !mask(&p) {
            continue;
        }
        if let Some(q) = shape.neighbor(&p, dim, sign) {
            out[shape.index_of(&q) as usize] = data[idx as usize].clone();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_semantics_shift_with_boundary_hold() {
        let shape = MeshShape::new(&[4]).unwrap();
        let data = vec![10, 20, 30, 40];
        let plus = mesh_route_semantics(&shape, &data, 1, Sign::Plus, &|_| true);
        // Values move +1; PE 0 has no sender and keeps its value.
        assert_eq!(plus, vec![10, 10, 20, 30]);
        let minus = mesh_route_semantics(&shape, &data, 1, Sign::Minus, &|_| true);
        assert_eq!(minus, vec![20, 30, 40, 40]);
    }

    #[test]
    fn masked_route_only_moves_selected() {
        let shape = MeshShape::new(&[4]).unwrap();
        let data = vec![1, 2, 3, 4];
        // Only even-indexed PEs send.
        let out = mesh_route_semantics(&shape, &data, 1, Sign::Plus, &|p| p.d(1) % 2 == 0);
        assert_eq!(out, vec![1, 1, 3, 3]);
    }

    #[test]
    fn route_semantics_2d() {
        let shape = MeshShape::new(&[2, 2]).unwrap();
        let data = vec![1, 2, 3, 4]; // (0,0) (0,1) (1,0) (1,1) by d1 fastest
        let out = mesh_route_semantics(&shape, &data, 2, Sign::Plus, &|_| true);
        assert_eq!(out, vec![1, 2, 1, 2]);
    }

    #[test]
    fn slowdown_accounting() {
        let mut s = RouteStats::default();
        assert_eq!(s.slowdown(), None);
        s.logical_mesh_routes = 2;
        s.physical_routes = 6;
        assert_eq!(s.slowdown(), Some(3.0));
    }
}
