//! The mesh-on-star machine: Theorem 6 in executable form.
//!
//! [`EmbeddedMeshMachine`] exposes the exact same [`MeshSimd`]
//! programming interface as the native mesh machine, but its PEs are
//! the nodes of a star graph `S_n` arranged by the paper's CONVERT
//! embedding. Each logical mesh unit route along dimension `k` is
//! executed as
//!
//! * **1** SIMD-B star unit route if `k = n−1` (those mesh edges map
//!   to star edges), or
//! * **3** SIMD-B star unit routes otherwise, advancing every
//!   message one hop per route along its Lemma-2 path.
//!
//! The conflict-freedom promised by Lemma 5 is *checked at runtime*:
//! the underlying [`StarMachine::route_select`] rejects any unit route
//! in which two messages target one PE, so a successful run is a
//! machine-checked certificate of the schedule's validity. Transit
//! uses a scratch register and the final delivery is a local masked
//! move, so register semantics match the native mesh machine bit for
//! bit (asserted in tests for every dimension, direction and mask).

use crate::machine::{MeshSimd, RouteStats};
use crate::star_machine::StarMachine;
use sg_core::convert::convert_s_d;
use sg_core::paths::dilation3_path;
use sg_mesh::dn::DnMesh;
use sg_mesh::shape::{MeshShape, Sign};
use sg_mesh::MeshPoint;
use sg_perm::lehmer::rank;

/// Scratch register used for in-flight messages.
const TRANSIT: &str = "__transit";

/// An SIMD-B star machine driven through the mesh programming model.
#[derive(Debug, Clone)]
pub struct EmbeddedMeshMachine<T> {
    dn: DnMesh,
    star: StarMachine<T>,
    /// star rank -> mesh point (the CONVERT-S-D image), cached.
    mesh_point_of_rank: Vec<MeshPoint>,
    /// mesh index -> star rank (the CONVERT-D-S image), cached.
    rank_of_mesh_index: Vec<u32>,
    stats: RouteStats,
}

impl<T: Clone> EmbeddedMeshMachine<T> {
    /// Creates the embedded machine for `D_n` on `S_n`.
    ///
    /// # Panics
    /// Panics for `n` outside `2..=10`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let dn = DnMesh::new(n);
        let star: StarMachine<T> = StarMachine::new(n);
        let mesh_point_of_rank: Vec<MeshPoint> = (0..star.num_pes())
            .map(|r| convert_s_d(star.node_of(r)))
            .collect();
        let shape = dn.shape();
        let mut rank_of_mesh_index = vec![0u32; star.num_pes()];
        for (r, p) in mesh_point_of_rank.iter().enumerate() {
            rank_of_mesh_index[shape.index_of(p) as usize] = r as u32;
        }
        EmbeddedMeshMachine {
            dn,
            star,
            mesh_point_of_rank,
            rank_of_mesh_index,
            stats: RouteStats::default(),
        }
    }

    /// The underlying star machine (read access for audits).
    #[must_use]
    pub fn star(&self) -> &StarMachine<T> {
        &self.star
    }

    /// The `D_n` descriptor.
    #[must_use]
    pub fn dn(&self) -> &DnMesh {
        &self.dn
    }

    /// Star rank hosting the given mesh node.
    #[must_use]
    pub fn rank_of(&self, mesh_index: u64) -> u32 {
        self.rank_of_mesh_index[mesh_index as usize]
    }

    fn sync_physical(&mut self) {
        self.stats.physical_routes = self.star.stats().physical_routes;
    }
}

impl<T: Clone> MeshSimd<T> for EmbeddedMeshMachine<T> {
    fn shape(&self) -> &MeshShape {
        self.dn.shape()
    }

    fn load(&mut self, reg: &str, data: Vec<T>) {
        assert_ne!(reg, TRANSIT, "register name {TRANSIT} is reserved");
        assert_eq!(data.len(), self.star.num_pes(), "one value per PE");
        // Permute mesh-order data into star rank order.
        let mut by_rank: Vec<Option<T>> = vec![None; data.len()];
        for (mesh_idx, v) in data.into_iter().enumerate() {
            by_rank[self.rank_of_mesh_index[mesh_idx] as usize] = Some(v);
        }
        self.star.load(
            reg,
            by_rank.into_iter().map(|o| o.expect("bijection")).collect(),
        );
    }

    fn read(&self, reg: &str) -> Vec<T> {
        let by_rank = self.star.read(reg);
        let shape = self.dn.shape();
        let mut out: Vec<Option<T>> = vec![None; by_rank.len()];
        for (r, v) in by_rank.into_iter().enumerate() {
            let idx = shape.index_of(&self.mesh_point_of_rank[r]) as usize;
            out[idx] = Some(v);
        }
        out.into_iter().map(|o| o.expect("bijection")).collect()
    }

    fn update(&mut self, reg: &str, f: &mut dyn FnMut(&MeshPoint, &mut T)) {
        let points = std::mem::take(&mut self.mesh_point_of_rank);
        self.star
            .update_indexed(reg, &mut |r, _, v| f(&points[r], v));
        self.mesh_point_of_rank = points;
    }

    fn combine(&mut self, dst: &str, src: &str, f: &mut dyn FnMut(&MeshPoint, &mut T, &T)) {
        let points = std::mem::take(&mut self.mesh_point_of_rank);
        self.star
            .combine_indexed(dst, src, &mut |r, _, d, s| f(&points[r], d, s));
        self.mesh_point_of_rank = points;
    }

    fn route_where(
        &mut self,
        reg: &str,
        dim: usize,
        sign: Sign,
        mask: &dyn Fn(&MeshPoint) -> bool,
    ) {
        let n = self.dn.n();
        assert!(dim >= 1 && dim < n, "dimension out of range");
        let plus = sign == Sign::Plus;
        let pes = self.star.num_pes();

        // Plan every active message's Lemma-2 path: per round, the
        // generator each occupied PE transmits along; plus the set of
        // final destinations for delivery.
        let rounds_needed = if dim == n - 1 { 1 } else { 3 };
        let mut gen_of: Vec<Vec<Option<u8>>> = vec![vec![None; pes]; rounds_needed];
        let mut is_dst = vec![false; pes];
        for r in 0..pes {
            let point = &self.mesh_point_of_rank[r];
            if !mask(point) {
                continue;
            }
            let pi = self.star.node_of(r);
            let Some(path) = dilation3_path(pi, dim, plus) else {
                continue; // mesh boundary: no neighbor, no message
            };
            debug_assert_eq!(path.len() - 1, rounds_needed, "uniform path length per dim");
            for (s, w) in path.windows(2).enumerate() {
                let from = rank(&w[0]) as usize;
                // The generator is the slot where the two nodes differ
                // besides slot 0.
                let j = (1..n)
                    .find(|&j| w[0].symbol_at(j) != w[1].symbol_at(j))
                    .expect("front swap changes exactly one other slot");
                debug_assert!(
                    gen_of[s][from].is_none(),
                    "Lemma 5 violated: two messages at one PE"
                );
                gen_of[s][from] = Some(j as u8);
            }
            is_dst[rank(path.last().expect("nonempty")) as usize] = true;
        }

        // Stage the register into transit (intraprocessor copy, free).
        let staged = self.star.read(reg);
        self.star.load(TRANSIT, staged);

        // Advance all messages one hop per SIMD-B unit route; the star
        // machine verifies receive-uniqueness (Lemma 5) each round.
        for round in &gen_of {
            self.star
                .route_select(TRANSIT, &|pe, _| round[pe as usize].map(|j| j as usize))
                .expect("Lemma 5 guarantees a conflict-free schedule");
        }

        // Deliver: destinations overwrite reg from transit (local
        // masked move, free); everyone else keeps reg.
        let arrived = self.star.read(TRANSIT);
        self.star.update_indexed(reg, &mut |r, _, v| {
            if is_dst[r] {
                *v = arrived[r].clone();
            }
        });

        self.stats.logical_mesh_routes += 1;
        self.sync_physical();
    }

    fn stats(&self) -> &RouteStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::mesh_route_semantics;
    use crate::mesh_machine::MeshMachine;

    /// Runs the same masked route on both machines and compares.
    fn compare_route(n: usize, dim: usize, sign: Sign, mask: fn(&MeshPoint) -> bool) {
        let dn = DnMesh::new(n);
        let size = dn.node_count() as usize;
        let data: Vec<u64> = (0..size as u64).map(|x| 1000 + x).collect();

        let mut native: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
        native.load("B", data.clone());
        native.route_where("B", dim, sign, &mask);

        let mut embedded: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        embedded.load("B", data.clone());
        embedded.route_where("B", dim, sign, &mask);

        assert_eq!(
            native.read("B"),
            embedded.read("B"),
            "n={n} dim={dim} sign={sign:?}"
        );
        // Ground truth from the reference semantics too.
        let expect = mesh_route_semantics(dn.shape(), &data, dim, sign, &mask);
        assert_eq!(native.read("B"), expect);
    }

    #[test]
    fn all_routes_match_native_mesh() {
        for n in 2..=5usize {
            for dim in 1..n {
                for sign in [Sign::Plus, Sign::Minus] {
                    compare_route(n, dim, sign, |_| true);
                }
            }
        }
    }

    #[test]
    fn masked_routes_match_native_mesh() {
        // Shearsort-style mask: only even rows along dimension 2 send.
        for n in 3..=5usize {
            for sign in [Sign::Plus, Sign::Minus] {
                compare_route(n, 1, sign, |p| p.d(2) % 2 == 0);
                compare_route(n, 2, sign, |p| p.d(1) % 2 == 1);
            }
        }
    }

    #[test]
    fn theorem6_route_costs() {
        let n = 5;
        let mut m: EmbeddedMeshMachine<u32> = EmbeddedMeshMachine::new(n);
        m.load("B", vec![0; m.star().num_pes()]);
        // Dimensions 1..n-1 cost 3 star routes; dimension n-1 costs 1.
        let mut expected_physical = 0u64;
        for dim in 1..n {
            m.route("B", dim, Sign::Plus);
            expected_physical += if dim == n - 1 { 1 } else { 3 };
            assert_eq!(m.stats().physical_routes, expected_physical, "dim={dim}");
        }
        assert_eq!(m.stats().logical_mesh_routes, (n - 1) as u64);
        // Worst-case slowdown is exactly 3, average below.
        assert!(m.stats().slowdown().unwrap() <= 3.0);
    }

    #[test]
    fn update_and_combine_agree_with_native() {
        let n = 4;
        let dn = DnMesh::new(n);
        let size = dn.node_count() as usize;
        let a: Vec<i64> = (0..size as i64).collect();
        let b: Vec<i64> = (0..size as i64).map(|x| 10 * x).collect();

        let mut native: MeshMachine<i64> = MeshMachine::new(dn.shape().clone());
        native.load("A", a.clone());
        native.load("B", b.clone());
        native.update("A", &mut |p, v| {
            if p.d(1) == 0 {
                *v = -*v;
            }
        });
        native.combine("A", "B", &mut |p, d, s| {
            if p.d(2) == 1 {
                *d += *s;
            }
        });

        let mut emb: EmbeddedMeshMachine<i64> = EmbeddedMeshMachine::new(n);
        emb.load("A", a);
        emb.load("B", b);
        emb.update("A", &mut |p, v| {
            if p.d(1) == 0 {
                *v = -*v;
            }
        });
        emb.combine("A", "B", &mut |p, d, s| {
            if p.d(2) == 1 {
                *d += *s;
            }
        });

        assert_eq!(native.read("A"), emb.read("A"));
        assert_eq!(native.read("B"), emb.read("B"));
        // Pure local work costs zero unit routes on both machines.
        assert_eq!(native.stats().physical_routes, 0);
        assert_eq!(emb.stats().physical_routes, 0);
    }

    #[test]
    fn long_random_program_equivalence() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let n = 4;
        let dn = DnMesh::new(n);
        let size = dn.node_count() as usize;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let data: Vec<u64> = (0..size).map(|_| rng.gen_range(0..1000)).collect();

        let mut native: MeshMachine<u64> = MeshMachine::new(dn.shape().clone());
        let mut emb: EmbeddedMeshMachine<u64> = EmbeddedMeshMachine::new(n);
        native.load("B", data.clone());
        emb.load("B", data);

        for _ in 0..60 {
            let dim = rng.gen_range(1..n);
            let sign = if rng.gen_bool(0.5) {
                Sign::Plus
            } else {
                Sign::Minus
            };
            native.route("B", dim, sign);
            emb.route("B", dim, sign);
        }
        assert_eq!(native.read("B"), emb.read("B"));
        assert_eq!(native.stats().logical_mesh_routes, 60);
        assert_eq!(emb.stats().logical_mesh_routes, 60);
        assert!(emb.stats().physical_routes <= 3 * 60);
        assert!(emb.stats().physical_routes >= 60);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn transit_register_name_reserved() {
        let mut m: EmbeddedMeshMachine<u8> = EmbeddedMeshMachine::new(3);
        m.load(TRANSIT, vec![0; 6]);
    }
}
