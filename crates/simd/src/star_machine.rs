//! The star-graph SIMD machine (SIMD-A and SIMD-B routes).

use crate::machine::RouteStats;
use crate::regfile::RegFile;
use sg_perm::Perm;
use sg_star::StarGraph;

/// An SIMD multicomputer whose interconnect is the star graph `S_n`.
/// PEs are addressed by Lehmer rank.
///
/// Two route models (§2 item 5):
/// * SIMD-A ([`StarMachine::route_generator`]): all PEs exchange along
///   one generator `g_j` — a perfect matching, executed as a global
///   pairwise swap;
/// * SIMD-B ([`StarMachine::route_select`]): each PE picks any one
///   neighbor (or stays silent); the machine *verifies* that no PE
///   receives twice.
#[derive(Debug, Clone)]
pub struct StarMachine<T> {
    star: StarGraph,
    nodes: Vec<Perm>,
    /// neighbor_ranks[pe][j-1] = rank of pe's g_j neighbor
    neighbors: Vec<Vec<u32>>,
    regs: RegFile<T>,
    stats: RouteStats,
}

/// SIMD-B contract violation: some PE was targeted twice in one route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteConflict {
    /// The doubly-targeted PE rank.
    pub receiver: u64,
}

impl std::fmt::Display for RouteConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PE {} would receive two messages in one unit route",
            self.receiver
        )
    }
}

impl std::error::Error for RouteConflict {}

impl<T: Clone> StarMachine<T> {
    /// Creates an `S_n` machine (`n ≤ 10`: the node table is
    /// materialized).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((1..=10).contains(&n), "S_n machine materializes n! PEs");
        let star = StarGraph::new(n);
        let size = star.node_count() as usize;
        let nodes: Vec<Perm> = (0..star.node_count()).map(|r| star.node_at(r)).collect();
        let neighbors: Vec<Vec<u32>> = nodes
            .iter()
            .map(|p| {
                star.generators()
                    .map(|j| star.rank_of(&p.with_slots_swapped(0, j)) as u32)
                    .collect()
            })
            .collect();
        StarMachine {
            star,
            nodes,
            neighbors,
            regs: RegFile::new(size),
            stats: RouteStats::default(),
        }
    }

    /// The underlying topology handle.
    #[must_use]
    pub fn star(&self) -> &StarGraph {
        &self.star
    }

    /// Number of PEs (`n!`).
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.regs.pes()
    }

    /// Permutation label of PE `rank`.
    #[must_use]
    pub fn node_of(&self, rank: usize) -> &Perm {
        &self.nodes[rank]
    }

    /// Rank of the `g_j` neighbor of PE `rank`.
    #[must_use]
    pub fn neighbor_rank(&self, rank: usize, j: usize) -> u32 {
        self.neighbors[rank][j - 1]
    }

    /// Loads a register in rank order.
    pub fn load(&mut self, reg: &str, data: Vec<T>) {
        self.regs.load(reg, data);
    }

    /// Reads a register in rank order.
    #[must_use]
    pub fn read(&self, reg: &str) -> Vec<T> {
        self.regs.get(reg).to_vec()
    }

    /// Broadcast elementwise instruction with the node label available
    /// as mask input.
    pub fn update(&mut self, reg: &str, f: &mut dyn FnMut(&Perm, &mut T)) {
        let nodes = &self.nodes;
        for (idx, v) in self.regs.get_mut(reg).iter_mut().enumerate() {
            f(&nodes[idx], v);
        }
    }

    /// Like [`StarMachine::update`] but also passes the PE rank
    /// (needed by wrappers that key per-PE metadata by rank).
    pub fn update_indexed(&mut self, reg: &str, f: &mut dyn FnMut(usize, &Perm, &mut T)) {
        let nodes = &self.nodes;
        for (idx, v) in self.regs.get_mut(reg).iter_mut().enumerate() {
            f(idx, &nodes[idx], v);
        }
    }

    /// Broadcast two-register instruction (`src` read-only), with rank.
    ///
    /// # Panics
    /// Panics if `dst == src`.
    pub fn combine_indexed(
        &mut self,
        dst: &str,
        src: &str,
        f: &mut dyn FnMut(usize, &Perm, &mut T, &T),
    ) {
        assert_ne!(dst, src, "combine needs distinct registers");
        let srcv = self.regs.take(src);
        {
            let nodes = &self.nodes;
            for (idx, d) in self.regs.get_mut(dst).iter_mut().enumerate() {
                f(idx, &nodes[idx], d, &srcv[idx]);
            }
        }
        self.regs.load(src, srcv);
    }

    /// SIMD-A unit route: `B(π^{(j)}) ← B(π)` for **all** PEs
    /// simultaneously. Since `g_j` is an involution the global effect
    /// is a pairwise swap of the register across the matching.
    ///
    /// # Panics
    /// Panics unless `1 ≤ j ≤ n−1`.
    pub fn route_generator(&mut self, reg: &str, j: usize) {
        assert!(j >= 1 && j < self.star.n(), "generator g_{j} undefined");
        let mut data = self.regs.take(reg);
        for pe in 0..data.len() {
            let other = self.neighbors[pe][j - 1] as usize;
            if pe < other {
                data.swap(pe, other);
            }
        }
        self.regs.load(reg, data);
        self.stats.physical_routes += 1;
    }

    /// SIMD-B unit route: `selector(pe)` returns the generator index
    /// the PE transmits along (`None` = silent). Receivers' registers
    /// are overwritten with the sender's value; everyone else keeps.
    ///
    /// # Errors
    /// [`RouteConflict`] if two senders target one receiver (the route
    /// is *not* executed and not counted in that case).
    pub fn route_select(
        &mut self,
        reg: &str,
        selector: &dyn Fn(u64, &Perm) -> Option<usize>,
    ) -> Result<(), RouteConflict> {
        let data = self.regs.take(reg);
        let mut out = data.clone();
        let mut hit = vec![false; data.len()];
        // index-driven on purpose: `pe` simultaneously keys `nodes`,
        // `neighbors`, `data` and `out`.
        #[allow(clippy::needless_range_loop)]
        for pe in 0..data.len() {
            if let Some(j) = selector(pe as u64, &self.nodes[pe]) {
                assert!(j >= 1 && j < self.star.n(), "generator g_{j} undefined");
                let dst = self.neighbors[pe][j - 1] as usize;
                if hit[dst] {
                    // Roll back: restore the untouched register.
                    self.regs.load(reg, data);
                    return Err(RouteConflict {
                        receiver: dst as u64,
                    });
                }
                hit[dst] = true;
                out[dst] = data[pe].clone();
            }
        }
        self.regs.load(reg, out);
        self.stats.physical_routes += 1;
        Ok(())
    }

    /// Route accounting.
    #[must_use]
    pub fn stats(&self) -> &RouteStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_route_is_global_swap() {
        let mut m: StarMachine<u64> = StarMachine::new(3);
        let ident: Vec<u64> = (0..6).collect();
        m.load("A", ident.clone());
        m.route_generator("A", 1);
        let once = m.read("A");
        assert_ne!(once, ident);
        m.route_generator("A", 1); // involution
        assert_eq!(m.read("A"), ident);
        assert_eq!(m.stats().physical_routes, 2);
    }

    #[test]
    fn generator_route_matches_adjacency() {
        let mut m: StarMachine<u64> = StarMachine::new(4);
        let ident: Vec<u64> = (0..24).collect();
        m.load("A", ident);
        m.route_generator("A", 2);
        let out = m.read("A");
        for (pe, &got) in out.iter().enumerate() {
            let nb = m.neighbor_rank(pe, 2) as usize;
            assert_eq!(got, nb as u64, "PE {pe} should hold its g_2 neighbor's id");
        }
    }

    #[test]
    fn select_route_moves_chosen_messages() {
        let mut m: StarMachine<i32> = StarMachine::new(3);
        m.load("A", vec![100, 0, 0, 0, 0, 0]);
        // Only PE 0 transmits, along g_1.
        m.route_select("A", &|pe, _| (pe == 0).then_some(1))
            .unwrap();
        let out = m.read("A");
        let dst = m.neighbor_rank(0, 1) as usize;
        assert_eq!(out[dst], 100);
        assert_eq!(out[0], 100); // sender keeps its copy
        assert_eq!(out.iter().filter(|&&v| v == 100).count(), 2);
    }

    #[test]
    fn select_route_detects_conflicts() {
        let m0: StarMachine<i32> = StarMachine::new(3);
        // Find two distinct PEs with a common neighbor: any node's two
        // neighbors both reach it back.
        let target = 0usize;
        let a = m0.neighbor_rank(target, 1) as usize;
        let b = m0.neighbor_rank(target, 2) as usize;
        let mut m: StarMachine<i32> = StarMachine::new(3);
        m.load("A", vec![7; 6]);
        let before = m.read("A");
        let err = m
            .route_select("A", &|pe, _| {
                if pe as usize == a {
                    Some(1)
                } else if pe as usize == b {
                    Some(2)
                } else {
                    None
                }
            })
            .unwrap_err();
        assert_eq!(err.receiver, target as u64);
        // Register untouched, route not counted.
        assert_eq!(m.read("A"), before);
        assert_eq!(m.stats().physical_routes, 0);
    }

    #[test]
    fn update_sees_node_labels() {
        let mut m: StarMachine<u8> = StarMachine::new(3);
        m.load("A", vec![0; 6]);
        // Mask on the front symbol, §2-style.
        m.update("A", &mut |pi, v| {
            if pi.symbol_at(0) == 2 {
                *v = 1;
            }
        });
        let marked: u8 = m.read("A").iter().sum();
        assert_eq!(marked, 2); // two perms of 3 symbols start with 2
    }
}
