//! Named register files for the SIMD machines.
//!
//! §2 item 1: "the local memory of each PE holds data only". A
//! register is one value per PE; the file maps register names (the
//! paper's `A`, `B`, …) to dense per-PE vectors.

use std::collections::HashMap;

/// A register file over `pes` processing elements.
#[derive(Debug, Clone)]
pub struct RegFile<T> {
    pes: usize,
    regs: HashMap<String, Vec<T>>,
}

impl<T: Clone> RegFile<T> {
    /// Creates an empty file for `pes` PEs.
    #[must_use]
    pub fn new(pes: usize) -> Self {
        RegFile {
            pes,
            regs: HashMap::new(),
        }
    }

    /// Number of PEs.
    #[must_use]
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Loads a full register (replacing any previous contents).
    ///
    /// # Panics
    /// Panics if `data.len() != pes`.
    pub fn load(&mut self, name: &str, data: Vec<T>) {
        assert_eq!(
            data.len(),
            self.pes,
            "register {name}: {} values for {} PEs",
            data.len(),
            self.pes
        );
        self.regs.insert(name.to_string(), data);
    }

    /// Immutable view of a register.
    ///
    /// # Panics
    /// Panics if the register was never loaded.
    #[must_use]
    pub fn get(&self, name: &str) -> &[T] {
        self.regs
            .get(name)
            .unwrap_or_else(|| panic!("register {name} not loaded"))
    }

    /// Mutable view of a register.
    ///
    /// # Panics
    /// Panics if the register was never loaded.
    #[must_use]
    pub fn get_mut(&mut self, name: &str) -> &mut [T] {
        self.regs
            .get_mut(name)
            .unwrap_or_else(|| panic!("register {name} not loaded"))
    }

    /// Takes a register out of the file (for routing), leaving it
    /// absent until re-inserted.
    ///
    /// # Panics
    /// Panics if the register was never loaded.
    #[must_use]
    pub fn take(&mut self, name: &str) -> Vec<T> {
        self.regs
            .remove(name)
            .unwrap_or_else(|| panic!("register {name} not loaded"))
    }

    /// `true` iff the register exists.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.regs.contains_key(name)
    }

    /// Names of all loaded registers (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.regs.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_get_roundtrip() {
        let mut rf: RegFile<i32> = RegFile::new(3);
        rf.load("A", vec![1, 2, 3]);
        assert_eq!(rf.get("A"), &[1, 2, 3]);
        rf.get_mut("A")[1] = 9;
        assert_eq!(rf.get("A"), &[1, 9, 3]);
        assert!(rf.contains("A"));
        assert!(!rf.contains("B"));
    }

    #[test]
    fn take_and_reload() {
        let mut rf: RegFile<i32> = RegFile::new(2);
        rf.load("A", vec![5, 6]);
        let v = rf.take("A");
        assert_eq!(v, vec![5, 6]);
        assert!(!rf.contains("A"));
        rf.load("A", v);
        assert!(rf.contains("A"));
    }

    #[test]
    #[should_panic(expected = "not loaded")]
    fn missing_register_panics() {
        let rf: RegFile<i32> = RegFile::new(2);
        let _ = rf.get("Z");
    }

    #[test]
    #[should_panic(expected = "3 values for 2 PEs")]
    fn wrong_length_panics() {
        let mut rf: RegFile<i32> = RegFile::new(2);
        rf.load("A", vec![1, 2, 3]);
    }
}
