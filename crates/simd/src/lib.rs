//! # sg-simd — route-level SIMD multicomputer simulator
//!
//! The machine model of the paper's §2 (Figure 1): `N` PEs joined by
//! an interconnection network, driven by a central control unit that
//! broadcasts instructions and *masks*. All complexity accounting is
//! in **unit routes** (§2 item 6) — this simulator counts exactly
//! those, and additionally *validates* the communication contract of
//! each model on every route:
//!
//! * **SIMD-A** — every PE transmits along the same dimension
//!   (mesh: `±e_k`; star: one generator `g_j`);
//! * **SIMD-B** — every PE transmits to any one neighbor, provided no
//!   PE receives more than one message.
//!
//! Three machines are provided:
//!
//! * [`mesh_machine::MeshMachine`] — an SIMD-A mesh of any shape;
//! * [`star_machine::StarMachine`] — an SIMD-A/B star graph `S_n`;
//! * [`embedded::EmbeddedMeshMachine`] — the paper's punchline: a
//!   machine with the *mesh* programming interface whose every unit
//!   route is executed as 3 (or 1) SIMD-B unit routes on an underlying
//!   star machine, along the Lemma-2/Lemma-5 paths. Any algorithm
//!   written against [`machine::MeshSimd`] runs unchanged on both,
//!   which is Theorem 6 in executable form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedded;
pub mod machine;
pub mod mesh_machine;
pub mod regfile;
pub mod star_machine;

pub use embedded::EmbeddedMeshMachine;
pub use machine::{MeshSimd, RouteStats};
pub use mesh_machine::MeshMachine;
pub use star_machine::StarMachine;
