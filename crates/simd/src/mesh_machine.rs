//! The native SIMD-A mesh machine.

use crate::machine::{mesh_route_semantics, MeshSimd, RouteStats};
use crate::regfile::RegFile;
use sg_mesh::shape::{MeshShape, Sign};
use sg_mesh::MeshPoint;

/// An SIMD-A mesh multicomputer of arbitrary shape (§2's mesh model).
/// PEs are addressed by mesh node index; every unit route costs 1.
#[derive(Debug, Clone)]
pub struct MeshMachine<T> {
    shape: MeshShape,
    points: Vec<MeshPoint>,
    regs: RegFile<T>,
    stats: RouteStats,
}

impl<T: Clone> MeshMachine<T> {
    /// Creates a machine with the given shape.
    ///
    /// # Panics
    /// Panics if the shape exceeds `u32::MAX` PEs (nothing that large
    /// should ever be materialized).
    #[must_use]
    pub fn new(shape: MeshShape) -> Self {
        let size = usize::try_from(shape.size()).expect("mesh too large to simulate");
        let points: Vec<MeshPoint> = (0..shape.size()).map(|i| shape.point_at(i)).collect();
        MeshMachine {
            shape,
            points,
            regs: RegFile::new(size),
            stats: RouteStats::default(),
        }
    }

    /// Number of PEs.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.regs.pes()
    }

    /// The mesh point of PE `idx` (cached).
    #[must_use]
    pub fn point_of(&self, idx: usize) -> &MeshPoint {
        &self.points[idx]
    }
}

impl<T: Clone> MeshSimd<T> for MeshMachine<T> {
    fn shape(&self) -> &MeshShape {
        &self.shape
    }

    fn load(&mut self, reg: &str, data: Vec<T>) {
        self.regs.load(reg, data);
    }

    fn read(&self, reg: &str) -> Vec<T> {
        self.regs.get(reg).to_vec()
    }

    fn update(&mut self, reg: &str, f: &mut dyn FnMut(&MeshPoint, &mut T)) {
        let points = &self.points;
        for (idx, v) in self.regs.get_mut(reg).iter_mut().enumerate() {
            f(&points[idx], v);
        }
    }

    fn combine(&mut self, dst: &str, src: &str, f: &mut dyn FnMut(&MeshPoint, &mut T, &T)) {
        assert_ne!(dst, src, "combine needs distinct registers");
        let srcv = self.regs.take(src);
        {
            let points = &self.points;
            for (idx, d) in self.regs.get_mut(dst).iter_mut().enumerate() {
                f(&points[idx], d, &srcv[idx]);
            }
        }
        self.regs.load(src, srcv);
    }

    fn route_where(
        &mut self,
        reg: &str,
        dim: usize,
        sign: Sign,
        mask: &dyn Fn(&MeshPoint) -> bool,
    ) {
        let data = self.regs.take(reg);
        let out = mesh_route_semantics(&self.shape, &data, dim, sign, mask);
        self.regs.load(reg, out);
        self.stats.physical_routes += 1;
        self.stats.logical_mesh_routes += 1;
    }

    fn stats(&self) -> &RouteStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_1d(n: usize) -> MeshMachine<i64> {
        MeshMachine::new(MeshShape::new(&[n]).unwrap())
    }

    #[test]
    fn load_read_roundtrip() {
        let mut m = machine_1d(4);
        m.load("A", vec![1, 2, 3, 4]);
        assert_eq!(m.read("A"), vec![1, 2, 3, 4]);
        assert_eq!(m.num_pes(), 4);
    }

    #[test]
    fn update_with_mask_notation() {
        // §2's example: A(i) := A(i) + 1, (f(i) = y).
        let mut m = machine_1d(5);
        m.load("A", vec![0; 5]);
        m.update("A", &mut |p, v| {
            if p.d(1) % 2 == 0 {
                *v += 1;
            }
        });
        assert_eq!(m.read("A"), vec![1, 0, 1, 0, 1]);
    }

    #[test]
    fn combine_two_registers() {
        let mut m = machine_1d(3);
        m.load("A", vec![1, 2, 3]);
        m.load("B", vec![10, 20, 30]);
        m.combine("A", "B", &mut |_, a, b| *a += *b);
        assert_eq!(m.read("A"), vec![11, 22, 33]);
        assert_eq!(m.read("B"), vec![10, 20, 30]); // src preserved
    }

    #[test]
    fn routes_count() {
        let mut m = machine_1d(4);
        m.load("A", vec![1, 2, 3, 4]);
        m.route("A", 1, Sign::Plus);
        m.route("A", 1, Sign::Minus);
        assert_eq!(m.stats().physical_routes, 2);
        assert_eq!(m.stats().logical_mesh_routes, 2);
        assert_eq!(m.stats().slowdown(), Some(1.0));
    }

    #[test]
    fn route_2d_moves_rows() {
        let shape = MeshShape::new(&[3, 2]).unwrap();
        let mut m: MeshMachine<i64> = MeshMachine::new(shape);
        // index = d1 + 3*d2
        m.load("A", vec![0, 1, 2, 10, 11, 12]);
        m.route("A", 2, Sign::Plus);
        assert_eq!(m.read("A"), vec![0, 1, 2, 0, 1, 2]);
        m.route("A", 1, Sign::Minus);
        assert_eq!(m.read("A"), vec![1, 2, 2, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "distinct registers")]
    fn combine_same_register_rejected() {
        let mut m = machine_1d(2);
        m.load("A", vec![1, 2]);
        m.combine("A", "A", &mut |_, _, _| {});
    }
}
