//! Personalized all-to-all: every PE has a distinct block for every
//! other PE.
//!
//! The rotation schedule runs `m! − 1` phases; in phase `t` every PE
//! `u` moves its block for `v = (u + t) mod m!` directly to `v`. Each
//! phase is a rank-space rotation — a permutation with every PE
//! sending and receiving exactly once — so per-phase contention stays
//! low, and each (ordered) pair is served in exactly one phase.
//!
//! Slot key spaces are split so gathers cannot collide: PE `u`'s
//! *outgoing* block for `v` lives in slot `v` (`< m!`), and a block
//! *received from* `u` lands in slot `m! + u`. PE `u`'s block for
//! itself starts — and stays — in slot `m! + u`.
//!
//! The naive reference collapses all rotations into a single phase of
//! `m!(m!−1)` simultaneous direct sends.

use crate::schedule::{CollSchedule, Send, SlotAction};
use sg_perm::factorial::factorial;

/// Slot where a block *received from* PE `u` lands (disjoint from the
/// outgoing slots `0..m!`).
#[must_use]
pub fn origin_slot(order: usize, u: u64) -> u64 {
    factorial(order) + u
}

/// Rotation all-to-all: `m! − 1` phases, phase `t` moves `u`'s block
/// for `(u + t) mod m!` ([`SlotAction::Move`], so the exactly-once
/// check covers both ends).
#[must_use]
pub fn all_to_all_rotation(order: usize) -> CollSchedule {
    let nodes = factorial(order);
    let phases = (1..nodes)
        .map(|t| {
            (0..nodes)
                .map(|u| {
                    let v = (u + t) % nodes;
                    Send {
                        src: u,
                        dst: v,
                        slots: vec![(v, origin_slot(order, u))],
                        action: SlotAction::Move,
                    }
                })
                .collect()
        })
        .collect();
    CollSchedule::new("all-to-all/rotation", order, phases)
}

/// Naive all-to-all: one phase, all `m!(m!−1)` personalized sends at
/// once.
#[must_use]
pub fn all_to_all_naive(order: usize) -> CollSchedule {
    let nodes = factorial(order);
    let phase = (0..nodes)
        .flat_map(|u| {
            (0..nodes).filter(move |&v| v != u).map(move |v| Send {
                src: u,
                dst: v,
                slots: vec![(v, origin_slot(order, u))],
                action: SlotAction::Move,
            })
        })
        .collect();
    CollSchedule::new("all-to-all/naive", order, vec![phase])
}
