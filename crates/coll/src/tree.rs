//! Broadcast and reduce along the star's dimension spanning tree.
//!
//! Every non-root node `v` has at least one generator that moves it
//! closer to the root (greedy routing terminates); picking the
//! **lowest** such generator everywhere
//! ([`sg_star::distance::improving_generators`]) orients a spanning
//! tree toward the root whose depth equals each node's exact star
//! distance — so the tree is simultaneously a shortest-path tree and
//! a fixed, dimension-structured object (level `d` uses only edges
//! that reduce distance from `d` to `d − 1`).
//!
//! Broadcast descends the tree one level per phase: each phase's
//! sends are parent → child edges into a fixed depth, and since every
//! such edge is a distinct star link, each phase is contention-free —
//! the compiled run finishes in exactly `2·ecc − 1` rounds (ecc
//! phases of 1-hop sends plus ecc − 1 barrier rounds), within a
//! factor 2 of the eccentricity lower bound. Reduce is the mirror
//! image: leaves fold up one level per phase.
//!
//! The naive references flatten everything into one phase: the root
//! sends to (or receives from) all `m! − 1` other PEs directly, which
//! serializes on the root's `m − 1` links and costs at least
//! `(m! − 1)/(m − 1)` rounds — the asymptotic gap the benches
//! measure.

use crate::schedule::{CollSchedule, Send, SlotAction};
use sg_perm::factorial::factorial;
use sg_perm::lehmer::{rank, unrank};
use sg_star::distance::{distance, improving_generators};

/// The payload slot broadcast and reduce operate on.
pub const TREE_SLOT: u64 = 0;

/// The lowest-generator-first spanning tree of `S_order` oriented
/// toward `root`.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    order: usize,
    root: u64,
    /// `parent[v]` (the root is its own parent).
    parent: Vec<u64>,
    /// `depth[v]` = exact star distance `v → root`.
    depth: Vec<u32>,
}

impl SpanningTree {
    /// Builds the tree: each non-root node's parent is its neighbor
    /// across the **lowest** distance-reducing generator.
    ///
    /// # Panics
    /// Panics if `root` is not a rank of `S_order`.
    #[must_use]
    pub fn new(order: usize, root: u64) -> Self {
        let nodes = factorial(order);
        assert!(root < nodes, "root {root} outside S_{order}");
        let root_perm = unrank(root, order).expect("root in range");
        let mut parent = Vec::with_capacity(nodes as usize);
        let mut depth = Vec::with_capacity(nodes as usize);
        for r in 0..nodes {
            let p = unrank(r, order).expect("rank in range");
            depth.push(distance(&p, &root_perm));
            if r == root {
                parent.push(r);
            } else {
                let g = improving_generators(&p, &root_perm)[0];
                parent.push(rank(&p.with_slots_swapped(0, g as usize)));
            }
        }
        SpanningTree {
            order,
            root,
            parent,
            depth,
        }
    }

    /// Star order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The root rank.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Parent of `v` (the root maps to itself).
    #[must_use]
    pub fn parent(&self, v: u64) -> u64 {
        self.parent[v as usize]
    }

    /// Depth of `v` = exact star distance `v → root`.
    #[must_use]
    pub fn depth(&self, v: u64) -> u32 {
        self.depth[v as usize]
    }

    /// Tree height = eccentricity of the root (= the graph diameter,
    /// by vertex transitivity).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Nodes at each depth, rank-ascending; `levels()[0] == [root]`.
    #[must_use]
    pub fn levels(&self) -> Vec<Vec<u64>> {
        let mut levels = vec![Vec::new(); self.height() as usize + 1];
        for (v, &d) in self.depth.iter().enumerate() {
            levels[d as usize].push(v as u64);
        }
        levels
    }
}

/// Tree broadcast: one phase per tree level, parents copy
/// [`TREE_SLOT`] to their children. `height()` phases; every phase is
/// contention-free (each parent→child edge is a distinct star link),
/// so the compiled makespan is exactly `2·height − 1`.
#[must_use]
pub fn broadcast_tree(order: usize, root: u64) -> CollSchedule {
    let tree = SpanningTree::new(order, root);
    let phases = tree
        .levels()
        .into_iter()
        .skip(1)
        .map(|level| {
            level
                .into_iter()
                .map(|v| Send {
                    src: tree.parent(v),
                    dst: v,
                    slots: vec![(TREE_SLOT, TREE_SLOT)],
                    action: SlotAction::Copy,
                })
                .collect()
        })
        .collect();
    CollSchedule::new("broadcast/tree", order, phases)
}

/// Naive broadcast: one phase, the root sends [`TREE_SLOT`] to every
/// other PE directly — `m! − 1` packets squeezed through the root's
/// `m − 1` links, so the makespan is at least `(m! − 1)/(m − 1)`.
#[must_use]
pub fn broadcast_naive(order: usize, root: u64) -> CollSchedule {
    let phase = (0..factorial(order))
        .filter(|&v| v != root)
        .map(|v| Send {
            src: root,
            dst: v,
            slots: vec![(TREE_SLOT, TREE_SLOT)],
            action: SlotAction::Copy,
        })
        .collect();
    CollSchedule::new("broadcast/naive", order, vec![phase])
}

/// Tree reduce: the mirror of [`broadcast_tree`] — deepest level
/// first, children fold [`TREE_SLOT`] into their parents with
/// [`SlotAction::Reduce`]. After the last phase the root holds the
/// wrapping sum of all `m!` initial values and every other PE holds
/// nothing.
#[must_use]
pub fn reduce_tree(order: usize, root: u64) -> CollSchedule {
    let tree = SpanningTree::new(order, root);
    let phases = tree
        .levels()
        .into_iter()
        .skip(1)
        .rev()
        .map(|level| {
            level
                .into_iter()
                .map(|v| Send {
                    src: v,
                    dst: tree.parent(v),
                    slots: vec![(TREE_SLOT, TREE_SLOT)],
                    action: SlotAction::Reduce,
                })
                .collect()
        })
        .collect();
    CollSchedule::new("reduce/tree", order, phases)
}

/// Naive reduce: one phase, every PE sends [`TREE_SLOT`] straight to
/// the root, which folds all `m! − 1` arrivals — the root's links
/// serialize exactly as in [`broadcast_naive`].
#[must_use]
pub fn reduce_naive(order: usize, root: u64) -> CollSchedule {
    let phase = (0..factorial(order))
        .filter(|&v| v != root)
        .map(|v| Send {
            src: v,
            dst: root,
            slots: vec![(TREE_SLOT, TREE_SLOT)],
            action: SlotAction::Reduce,
        })
        .collect();
    CollSchedule::new("reduce/naive", order, vec![phase])
}
