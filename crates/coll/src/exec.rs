//! The payload executor: runs a [`CollSchedule`] over concrete
//! values and enforces exactly-once delivery.
//!
//! Each PE's state is a map `slot → u64`. A phase executes with
//! snapshot semantics — all reads see the state at the start of the
//! phase, then give-away slots leave their senders, then payloads
//! land — which is the payload-level mirror of the network barrier:
//! within a phase all sends are concurrent, between phases everything
//! is ordered. Violations (reading an absent slot, two sends giving
//! away the same slot, two payloads landing on one slot without
//! `Reduce`) are hard errors, so a schedule cannot pass the
//! correctness suite by double-counting or overwriting.

use crate::schedule::{CollSchedule, SlotAction};
use std::collections::BTreeMap;

/// One PE's payload: slot → value.
pub type PeState = BTreeMap<u64, u64>;

/// Global payload state: PE rank → slots. Works unchanged for local
/// schedules (ranks in `S_m`) and lifted ones (ranks in the host
/// `S_n`).
pub type GlobalState = BTreeMap<u64, PeState>;

/// A schedule/payload mismatch detected during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// A send read a slot its source does not hold.
    MissingSlot {
        /// Phase index.
        phase: usize,
        /// Sending PE.
        pe: u64,
        /// The absent slot.
        slot: u64,
    },
    /// Two give-away sends ([`SlotAction::Reduce`]/[`SlotAction::Move`])
    /// shipped the same slot of the same PE in one phase.
    DoubleGive {
        /// Phase index.
        phase: usize,
        /// Sending PE.
        pe: u64,
        /// The doubly-shipped slot.
        slot: u64,
    },
    /// A [`SlotAction::Copy`]/[`SlotAction::Move`] payload landed on a
    /// slot the receiver already holds — delivery was not
    /// exactly-once.
    DuplicateSlot {
        /// Phase index.
        phase: usize,
        /// Receiving PE.
        pe: u64,
        /// The contested slot.
        slot: u64,
    },
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::MissingSlot { phase, pe, slot } => {
                write!(f, "phase {phase}: PE {pe} sent absent slot {slot}")
            }
            PayloadError::DoubleGive { phase, pe, slot } => {
                write!(f, "phase {phase}: PE {pe} gave slot {slot} away twice")
            }
            PayloadError::DuplicateSlot { phase, pe, slot } => {
                write!(f, "phase {phase}: PE {pe} received slot {slot} twice")
            }
        }
    }
}

impl std::error::Error for PayloadError {}

/// Executes `schedule` phase by phase from `init` and returns the
/// final global state.
///
/// Within a phase: (1) every send reads its source slots from the
/// phase-start snapshot, (2) [`SlotAction::Reduce`]/[`SlotAction::Move`]
/// sends remove the shipped slots from their sources, (3) payloads
/// land — `Copy`/`Move` insert (duplicate ⇒ error), `Reduce`
/// wrapping-adds.
///
/// # Errors
/// Any [`PayloadError`]; the state is discarded on error.
pub fn execute(schedule: &CollSchedule, init: &GlobalState) -> Result<GlobalState, PayloadError> {
    let mut state = init.clone();
    for (phase_idx, phase) in schedule.phases().iter().enumerate() {
        // (1) Read everything against the phase-start snapshot.
        let mut payloads: Vec<Vec<u64>> = Vec::with_capacity(phase.len());
        for s in phase {
            let src_state = state.get(&s.src);
            let mut values = Vec::with_capacity(s.slots.len());
            for &(src_slot, _) in &s.slots {
                match src_state.and_then(|m| m.get(&src_slot)) {
                    Some(&v) => values.push(v),
                    None => {
                        return Err(PayloadError::MissingSlot {
                            phase: phase_idx,
                            pe: s.src,
                            slot: src_slot,
                        })
                    }
                }
            }
            payloads.push(values);
        }
        // (2) Give-away slots leave their senders.
        for s in phase {
            if s.action == SlotAction::Copy {
                continue;
            }
            let src_state = state.entry(s.src).or_default();
            for &(src_slot, _) in &s.slots {
                if src_state.remove(&src_slot).is_none() {
                    return Err(PayloadError::DoubleGive {
                        phase: phase_idx,
                        pe: s.src,
                        slot: src_slot,
                    });
                }
            }
        }
        // (3) Payloads land.
        for (s, values) in phase.iter().zip(&payloads) {
            let dst_state = state.entry(s.dst).or_default();
            for (&(_, dst_slot), &v) in s.slots.iter().zip(values) {
                match s.action {
                    SlotAction::Copy | SlotAction::Move => {
                        if dst_state.insert(dst_slot, v).is_some() {
                            return Err(PayloadError::DuplicateSlot {
                                phase: phase_idx,
                                pe: s.dst,
                                slot: dst_slot,
                            });
                        }
                    }
                    SlotAction::Reduce => {
                        let cell = dst_state.entry(dst_slot).or_insert(0);
                        *cell = cell.wrapping_add(v);
                    }
                }
            }
        }
    }
    // Normalize: drop PEs whose state emptied out, so results compare
    // cleanly against expected states that omit empty PEs.
    state.retain(|_, m| !m.is_empty());
    Ok(state)
}
