//! Allgather, reduce-scatter, and allreduce over the sub-star
//! lattice — the star graph's native recursive halving/doubling.
//!
//! `S_m` splits into `m` copies of `S_{m−1}` (fix the last slot's
//! symbol), recursively. The lift/project isomorphisms commute with
//! the generators, so node `u` of child `C_i` has a canonical
//! *counterpart* in every sibling `C_j`: the node with the same local
//! rank. Exchanging data between counterpart pairs is the star
//! analogue of the hypercube's dimension exchange.
//!
//! **Allgather (recursive doubling)** ascends the lattice. Invariant:
//! after the order-ℓ level completes, every node of every order-ℓ
//! sub-star holds exactly the blocks of that sub-star's `ℓ!` nodes.
//! Base ℓ = 1: each node holds its own block. The order-ℓ level runs
//! `ℓ − 1` phases; in phase `t` every node of child `C_i` copies its
//! current `(ℓ−1)!` blocks to its counterpart in `C_{(i+t) mod ℓ}`.
//! Each node receives each sibling's block set exactly once, so the
//! [`SlotAction::Copy`] exactly-once check proves no block travels
//! twice. Total phases: `Σ_{ℓ=2}^{m} (ℓ−1) = m(m−1)/2`.
//!
//! **Reduce-scatter (recursive halving)** descends the same lattice
//! with the mirror invariant: entering the order-ℓ level, every node
//! of an order-ℓ sub-star holds one partial sum per node of that
//! sub-star, and the partials held by counterpart classes partition
//! the contributors. In phase `t` of the level, each node of `C_i`
//! ships the partials destined for `C_{(i+t) mod ℓ}`'s nodes to its
//! counterpart there ([`SlotAction::Reduce`], giving the slots away) —
//! after the level each node keeps only its own child's slots, each
//! now folded over the whole parent. After the final (order-2) level
//! node `u` holds exactly `{u: Σ_w x_w[u]}`.
//!
//! **Allreduce** is reduce-scatter followed by allgather — the
//! scatter's final state is exactly the gather's initial shape.
//!
//! The naive references do everything in a single phase of direct
//! sends (`m!(m!−1)` packets), the all-pairs traffic the structured
//! schedules are measured against.

use crate::schedule::{CollSchedule, Send, SlotAction};
use sg_star::substar::{substars_of_order, SubStar};

/// Counterpart-exchange phases over the lattice, parameterized by the
/// payload rule for "node `u` of child `C_i` sends to its counterpart
/// in `C_j`".
fn lattice_phases(
    order: usize,
    levels: impl Iterator<Item = usize>,
    send: impl Fn(&[u64], &[u64], usize) -> Vec<(u64, u64)>,
    action: SlotAction,
) -> Vec<Vec<Send>> {
    let mut phases = Vec::new();
    for lvl in levels {
        // All order-`lvl` sub-stars of the local S_order, split into
        // their children; cache every child's node table once.
        let families: Vec<Vec<Vec<u64>>> = substars_of_order(order, lvl)
            .iter()
            .map(|parent| parent.children().iter().map(SubStar::node_ranks).collect())
            .collect();
        for t in 1..lvl {
            let mut sends = Vec::new();
            for kids in &families {
                for (i, ranks_i) in kids.iter().enumerate() {
                    let ranks_j = &kids[(i + t) % lvl];
                    for (local, (&u, &v)) in ranks_i.iter().zip(ranks_j).enumerate() {
                        sends.push(Send {
                            src: u,
                            dst: v,
                            slots: send(ranks_i, ranks_j, local),
                            action,
                        });
                    }
                }
            }
            phases.push(sends);
        }
    }
    phases
}

/// Recursive-doubling allgather: block slot = origin PE rank; node
/// `u` starts holding `{u: x_u}` and ends holding every block.
/// Exactly `m(m−1)/2` phases.
#[must_use]
pub fn allgather_doubling(order: usize) -> CollSchedule {
    let phases = lattice_phases(
        order,
        2..=order,
        // Ship every block of the sender's own child — by the level
        // invariant, exactly what the sender holds.
        |ranks_i, _, _| ranks_i.iter().map(|&b| (b, b)).collect(),
        SlotAction::Copy,
    );
    CollSchedule::new("allgather/doubling", order, phases)
}

/// Naive allgather: one phase, every PE copies its block directly to
/// every other PE — `m!(m!−1)` packets.
#[must_use]
pub fn allgather_naive(order: usize) -> CollSchedule {
    let whole = SubStar::whole(order);
    let nodes = whole.size();
    let phase = (0..nodes)
        .flat_map(|u| {
            (0..nodes).filter(move |&v| v != u).map(move |v| Send {
                src: u,
                dst: v,
                slots: vec![(u, u)],
                action: SlotAction::Copy,
            })
        })
        .collect();
    CollSchedule::new("allgather/naive", order, vec![phase])
}

/// Recursive-halving reduce-scatter: slot = destination PE rank; node
/// `u` starts holding a full vector `{v: x_u[v] ∀v}` and ends holding
/// `{u: Σ_w x_w[u]}`. Exactly `m(m−1)/2` phases.
#[must_use]
pub fn reduce_scatter_halving(order: usize) -> CollSchedule {
    let phases = lattice_phases(
        order,
        (2..=order).rev(),
        // Ship the partials destined for the *target* child's nodes.
        |_, ranks_j, _| ranks_j.iter().map(|&b| (b, b)).collect(),
        SlotAction::Reduce,
    );
    CollSchedule::new("reduce-scatter/halving", order, phases)
}

/// Naive reduce-scatter: one phase, every PE sends each destination's
/// partial straight to it.
#[must_use]
pub fn reduce_scatter_naive(order: usize) -> CollSchedule {
    let whole = SubStar::whole(order);
    let nodes = whole.size();
    let phase = (0..nodes)
        .flat_map(|u| {
            (0..nodes).filter(move |&v| v != u).map(move |v| Send {
                src: u,
                dst: v,
                slots: vec![(v, v)],
                action: SlotAction::Reduce,
            })
        })
        .collect();
    CollSchedule::new("reduce-scatter/naive", order, vec![phase])
}

/// Allreduce = [`reduce_scatter_halving`] ++ [`allgather_doubling`]:
/// `m(m−1)` phases; every PE ends holding the full reduced vector.
#[must_use]
pub fn allreduce_lattice(order: usize) -> CollSchedule {
    CollSchedule::concat(
        "allreduce/lattice",
        &[reduce_scatter_halving(order), allgather_doubling(order)],
    )
}

/// Naive allreduce = naive reduce-scatter ++ naive allgather.
#[must_use]
pub fn allreduce_naive(order: usize) -> CollSchedule {
    CollSchedule::concat(
        "allreduce/naive",
        &[reduce_scatter_naive(order), allgather_naive(order)],
    )
}
