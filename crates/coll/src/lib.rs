//! # sg-coll — collective communication on the star interconnect
//!
//! The paper's mesh-into-star embedding exists so that real parallel
//! programs can run on `S_n`, and real programs communicate in
//! *collectives* — broadcast, reduce, allgather, reduce-scatter,
//! allreduce, all-to-all — not in unstructured packet soups. This
//! crate builds deterministic collective algorithms out of the star's
//! own structure and compiles them onto the `sg-net` simulator:
//!
//! * **Broadcast / reduce** ([`tree`]) descend/ascend the
//!   lowest-generator-first spanning tree
//!   ([`sg_star::distance::improving_generators`]): one tree level
//!   per phase, every phase provably contention-free, makespan
//!   exactly `2·ecc − 1` against the eccentricity lower bound `ecc`.
//! * **Allgather / reduce-scatter / allreduce** ([`lattice`]) do
//!   recursive doubling/halving over the sub-star lattice: `S_m`
//!   splits into `m` copies of `S_{m−1}`, and counterpart nodes
//!   (equal local rank under the lift/project isomorphism) exchange
//!   blocks — `m(m−1)/2` phases each, `m(m−1)` for allreduce.
//! * **All-to-all** ([`alltoall`]) rotates: phase `t` moves `u`'s
//!   block for `(u + t) mod m!` — every phase a clean rank-space
//!   permutation.
//!
//! Every algorithm carries a **naive reference** (flat send-to-root /
//! send-to-all in one phase) and is checked two independent ways:
//!
//! * **Payload-level** ([`exec`], [`payload`]): schedules execute
//!   over concrete values with exactly-once slot accounting; the
//!   final state must equal the reference fold — exhaustively for
//!   `m ≤ 5`, seeded at `m = 6, 7`.
//! * **Cost-level**: schedules compile to multi-phase workloads via
//!   [`sg_net::Network::chain_phases`] (a phase injects only after
//!   the previous phase fully resolves) and measured rounds are
//!   asserted against the distance lower bound — see the cost model
//!   below.
//!
//! ## Cost model
//!
//! Unit-message (latency-dominated) accounting: one [`Send`] is one
//! network packet regardless of how many payload slots it carries —
//! the `α` term of the classic `α-β` model, the regime where
//! collective *structure* (phase counts, tree depth, link
//! serialization) dominates. Under it, with unit link latency:
//!
//! * any rooted collective needs ≥ `ecc(root)` rounds (= the diameter
//!   `⌊3(m−1)/2⌋`, by vertex transitivity — [`distance_lower_bound`]);
//! * tree broadcast/reduce achieve exactly `2·ecc − 1` (ecc
//!   contention-free 1-hop phases + ecc − 1 barrier rounds) — within
//!   factor **2** of the bound;
//! * the naive root-collectives need ≥ `(m! − 1)/(m − 1)` rounds
//!   ([`naive_root_lower_bound`]: `m! − 1` packets through the
//!   root's `m − 1` links), so the tree's advantage grows without
//!   bound in `m`;
//! * the lattice collectives run exactly `m(m−1)/2` barrier phases of
//!   counterpart exchanges.
//!
//! ## Tenancy and tracing
//!
//! [`CollSchedule::lifted`]/[`CollSchedule::compile_on`] put a
//! collective on any sub-star of a host network. Lift commutes with
//! the generators, so under confined routing the collective is
//! **byte-isolated** by the existing `sg-sched` theorem — it runs as
//! a tenant via `Schedule::tenant_run_with` with zero perturbation of
//! (or by) its neighbors. Compiled runs are ordinary `sg-net`
//! workloads: they emit the standard `Probe` event stream, and
//! `sg-trace` record/replay/diff works on them unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alltoall;
pub mod exec;
pub mod lattice;
pub mod payload;
pub mod schedule;
pub mod tree;

pub use alltoall::{all_to_all_naive, all_to_all_rotation, origin_slot};
pub use exec::{execute, GlobalState, PayloadError, PeState};
pub use lattice::{
    allgather_doubling, allgather_naive, allreduce_lattice, allreduce_naive,
    reduce_scatter_halving, reduce_scatter_naive,
};
pub use payload::{
    all_to_all_case, allgather_case, allreduce_case, broadcast_case, reduce_case,
    reduce_scatter_case, seeded_matrix, seeded_values, PayloadCase,
};
pub use schedule::{CollSchedule, Send, SlotAction};
pub use tree::{broadcast_naive, broadcast_tree, reduce_naive, reduce_tree, SpanningTree};

use sg_perm::factorial::factorial;

/// The distance lower bound for any collective touching all of
/// `S_m`: the eccentricity of every node equals the diameter
/// `⌊3(m−1)/2⌋` (vertex transitivity; the formula is BFS-verified in
/// `sg-star`). At least one packet must travel this many hops.
#[must_use]
pub fn distance_lower_bound(order: usize) -> u32 {
    sg_star::properties::diameter_formula(order)
}

/// Lower bound on any single-phase root collective: `m! − 1` packets
/// must cross the root's `m − 1` links at one flit per link per
/// round.
#[must_use]
pub fn naive_root_lower_bound(order: usize) -> u32 {
    let packets = factorial(order) - 1;
    let links = (order - 1) as u64;
    packets.div_ceil(links) as u32
}
