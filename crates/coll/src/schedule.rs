//! The collective schedule IR: barrier-synchronized phases of
//! point-to-point transfers, compiled onto `sg-net` via
//! [`Network::chain_phases`].
//!
//! A [`CollSchedule`] is pure data — which PE sends which payload
//! slots to which PE in which phase — so the same schedule drives
//! three independent checks: the payload executor
//! ([`crate::exec::execute`]) folds the values and compares against
//! the reference result, the network compiler measures rounds against
//! the distance lower bound, and `sg-trace` replays the compiled run
//! byte-for-byte.

use sg_net::{ChainedWorkload, Injection, Network, RoutingPolicy, Workload};
use sg_perm::factorial::factorial;
use sg_star::SubStar;

/// How a transfer combines into the receiver's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotAction {
    /// The sender keeps its copy; the receiver must not already hold
    /// the destination slot. The duplicate check makes every gather
    /// exactly-once: a schedule that delivers a block twice is
    /// rejected by the executor, not silently overwritten.
    Copy,
    /// The sender gives the slots up; the receiver wrapping-adds each
    /// value into its own slot (missing slots count as 0). The fold
    /// is commutative and associative, so arrival order within a
    /// phase cannot matter.
    Reduce,
    /// The sender gives the slots up; the receiver must not already
    /// hold them — personalized (all-to-all) transfers.
    Move,
}

/// One point-to-point transfer inside a phase. On the network it is a
/// single packet `src → dst` regardless of how many slots it carries
/// (the unit-message, latency-dominated cost model — see the crate
/// docs); at the payload level it moves each `(src_slot, dst_slot)`
/// pair under the phase's snapshot semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Send {
    /// Sending PE (rank in the schedule's `S_order`).
    pub src: u64,
    /// Receiving PE (rank in the schedule's `S_order`).
    pub dst: u64,
    /// `(slot at the sender, slot at the receiver)` pairs carried.
    pub slots: Vec<(u64, u64)>,
    /// How the payload combines at the receiver.
    pub action: SlotAction,
}

/// A collective as a sequence of barrier-synchronized phases: all
/// sends of phase `k` complete (network: deliver; payload: read,
/// remove, land) before any send of phase `k + 1` starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollSchedule {
    name: String,
    order: usize,
    phases: Vec<Vec<Send>>,
}

impl CollSchedule {
    /// Builds a schedule over `S_order` and validates every send:
    /// ranks in range, no self-sends, no empty slot lists.
    ///
    /// # Panics
    /// Panics on an invalid send.
    #[must_use]
    pub fn new(name: &str, order: usize, phases: Vec<Vec<Send>>) -> Self {
        assert!(order >= 2, "collectives need S_2 or larger");
        let nodes = factorial(order);
        for (k, phase) in phases.iter().enumerate() {
            for s in phase {
                assert!(
                    s.src < nodes && s.dst < nodes,
                    "{name} phase {k}: send {} -> {} outside S_{order}",
                    s.src,
                    s.dst
                );
                assert_ne!(s.src, s.dst, "{name} phase {k}: self-send at {}", s.src);
                assert!(
                    !s.slots.is_empty(),
                    "{name} phase {k}: empty send {} -> {}",
                    s.src,
                    s.dst
                );
            }
        }
        CollSchedule {
            name: name.to_owned(),
            order,
            phases,
        }
    }

    /// Schedule name (used for workload names and tables).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Star order `m` the schedule targets (`m!` PEs).
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The phases, in barrier order.
    #[must_use]
    pub fn phases(&self) -> &[Vec<Send>] {
        &self.phases
    }

    /// Number of phases (each costs one barrier on the network).
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Total number of point-to-point sends (= network packets).
    #[must_use]
    pub fn total_sends(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// Concatenates schedules over the same order into one (e.g.
    /// allreduce = reduce-scatter ++ allgather).
    ///
    /// # Panics
    /// Panics if the parts disagree on order or `parts` is empty.
    #[must_use]
    pub fn concat(name: &str, parts: &[CollSchedule]) -> Self {
        let order = parts.first().expect("at least one part").order;
        let mut phases = Vec::new();
        for p in parts {
            assert_eq!(p.order, order, "concat of schedules over different orders");
            phases.extend(p.phases.iter().cloned());
        }
        CollSchedule::new(name, order, phases)
    }

    /// One round-0 [`Workload`] per phase — each send is a single
    /// packet. Packets are emitted in the schedule's send order, so
    /// the compiled run is deterministic.
    #[must_use]
    pub fn phase_workloads(&self) -> Vec<Workload> {
        self.phases
            .iter()
            .enumerate()
            .map(|(k, phase)| {
                let injections = phase
                    .iter()
                    .map(|s| Injection {
                        round: 0,
                        src: s.src,
                        dst: s.dst,
                    })
                    .collect();
                Workload::from_injections(&format!("{}/p{k}", self.name), self.order, injections)
            })
            .collect()
    }

    /// Compiles the schedule for the whole of `net` (which must be
    /// `S_order`): phases become a [`ChainedWorkload`] with
    /// inject-after-quiescence barriers under `policy`.
    ///
    /// # Panics
    /// Panics if `net.n() != order`.
    #[must_use]
    pub fn compile(&self, net: &Network, policy: &dyn RoutingPolicy) -> ChainedWorkload {
        assert_eq!(
            net.n(),
            self.order,
            "schedule over S_{} compiled for S_{}",
            self.order,
            net.n()
        );
        net.chain_phases(&self.name, &self.phase_workloads(), policy)
    }

    /// The same schedule with every PE lifted onto `sub`'s nodes in
    /// the host star — slots are payload keys and stay as they are.
    /// Because lift commutes with the generators, the lifted sends
    /// stay inside the sub-star under greedy routing (geodesic
    /// closure), which is what lets a collective run as a confined,
    /// byte-isolated `sg-sched` tenant.
    ///
    /// # Panics
    /// Panics if `sub.order() != order`.
    #[must_use]
    pub fn lifted(&self, sub: &SubStar) -> CollSchedule {
        assert_eq!(
            sub.order(),
            self.order,
            "schedule over S_{} lifted onto an order-{} sub-star",
            self.order,
            sub.order()
        );
        let nodes = sub.node_ranks();
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                phase
                    .iter()
                    .map(|s| Send {
                        src: nodes[s.src as usize],
                        dst: nodes[s.dst as usize],
                        slots: s.slots.clone(),
                        action: s.action,
                    })
                    .collect()
            })
            .collect();
        CollSchedule {
            name: format!("{}@{:?}", self.name, sub.fixed_suffix()),
            order: sub.n(),
            phases,
        }
    }

    /// Compiles the schedule onto sub-star `sub` of the **host**
    /// network: lifts every send, then chains the phases on the host
    /// (barrier offsets are measured where the packets will actually
    /// run). The result injects only at `sub`'s nodes and, under a
    /// confined policy, never leaves them.
    ///
    /// # Panics
    /// Panics if `sub.order() != order` or `net.n() != sub.n()`.
    #[must_use]
    pub fn compile_on(
        &self,
        net: &Network,
        sub: &SubStar,
        policy: &dyn RoutingPolicy,
    ) -> ChainedWorkload {
        assert_eq!(net.n(), sub.n(), "sub-star of a different host");
        let lifted = self.lifted(sub);
        net.chain_phases(&lifted.name, &lifted.phase_workloads(), policy)
    }
}
