//! Reference payload cases: seeded initial states and the fold every
//! schedule must reproduce.
//!
//! Each builder returns a [`PayloadCase`] — the initial
//! [`GlobalState`] a collective starts from and the exact final state
//! the reference fold predicts. A schedule is *payload-correct* when
//! [`crate::exec::execute`] maps `init` to `expected`; the structured
//! algorithm and its naive reference are checked against the **same**
//! case, so they can only both pass by agreeing with the fold (and
//! with each other). All sums are `u64::wrapping_add`, matching
//! [`crate::SlotAction::Reduce`].

use crate::alltoall::origin_slot;
use crate::exec::{GlobalState, PeState};
use crate::tree::TREE_SLOT;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sg_perm::factorial::factorial;
use sg_star::SubStar;

/// A collective's initial payload state and the reference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadCase {
    /// State before phase 0.
    pub init: GlobalState,
    /// The reference fold of `init`.
    pub expected: GlobalState,
}

impl PayloadCase {
    /// The case with every PE lifted onto `sub`'s nodes (slot keys
    /// unchanged) — the payload mirror of
    /// [`crate::CollSchedule::lifted`].
    ///
    /// # Panics
    /// Panics if a PE rank is outside `S_{sub.order()}`.
    #[must_use]
    pub fn lifted(&self, sub: &SubStar) -> PayloadCase {
        let lift = |state: &GlobalState| {
            state
                .iter()
                .map(|(&pe, slots)| (sub.lift_rank(pe), slots.clone()))
                .collect()
        };
        PayloadCase {
            init: lift(&self.init),
            expected: lift(&self.expected),
        }
    }
}

/// One seeded value per PE of `S_order`.
#[must_use]
pub fn seeded_values(order: usize, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..factorial(order)).map(|_| rng.gen()).collect()
}

/// One seeded value per (source PE, destination PE) pair —
/// `matrix[u][v]` is `u`'s block for `v`.
#[must_use]
pub fn seeded_matrix(order: usize, seed: u64) -> Vec<Vec<u64>> {
    let nodes = factorial(order) as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..nodes)
        .map(|_| (0..nodes).map(|_| rng.gen()).collect())
        .collect()
}

/// Broadcast of `value` from `root`: only the root starts with
/// [`TREE_SLOT`]; every PE ends with it.
#[must_use]
pub fn broadcast_case(order: usize, root: u64, value: u64) -> PayloadCase {
    let init = GlobalState::from([(root, PeState::from([(TREE_SLOT, value)]))]);
    let expected = (0..factorial(order))
        .map(|v| (v, PeState::from([(TREE_SLOT, value)])))
        .collect();
    PayloadCase { init, expected }
}

/// Reduce to `root`: PE `u` starts with `values[u]`; the root ends
/// with the wrapping sum and everyone else with nothing.
///
/// # Panics
/// Panics unless `values` has one entry per PE.
#[must_use]
pub fn reduce_case(order: usize, root: u64, values: &[u64]) -> PayloadCase {
    assert_eq!(values.len() as u64, factorial(order));
    let init = values
        .iter()
        .enumerate()
        .map(|(u, &x)| (u as u64, PeState::from([(TREE_SLOT, x)])))
        .collect();
    let total = values.iter().fold(0u64, |a, &x| a.wrapping_add(x));
    let expected = GlobalState::from([(root, PeState::from([(TREE_SLOT, total)]))]);
    PayloadCase { init, expected }
}

/// Allgather: PE `u` starts with its own block in slot `u`; every PE
/// ends with all `m!` blocks.
///
/// # Panics
/// Panics unless `values` has one entry per PE.
#[must_use]
pub fn allgather_case(order: usize, values: &[u64]) -> PayloadCase {
    assert_eq!(values.len() as u64, factorial(order));
    let init = values
        .iter()
        .enumerate()
        .map(|(u, &x)| (u as u64, PeState::from([(u as u64, x)])))
        .collect();
    let full: PeState = values
        .iter()
        .enumerate()
        .map(|(v, &x)| (v as u64, x))
        .collect();
    let expected = (0..factorial(order)).map(|u| (u, full.clone())).collect();
    PayloadCase { init, expected }
}

/// Reduce-scatter: PE `u` starts with a full vector (`matrix[u]`,
/// slot per destination) and ends with only its own slot, folded over
/// all contributors.
///
/// # Panics
/// Panics unless `matrix` is `m! × m!`.
#[must_use]
pub fn reduce_scatter_case(order: usize, matrix: &[Vec<u64>]) -> PayloadCase {
    let nodes = factorial(order) as usize;
    assert_eq!(matrix.len(), nodes);
    let init = matrix
        .iter()
        .enumerate()
        .map(|(u, row)| {
            assert_eq!(row.len(), nodes);
            let slots = row
                .iter()
                .enumerate()
                .map(|(v, &x)| (v as u64, x))
                .collect();
            (u as u64, slots)
        })
        .collect();
    let expected = (0..nodes)
        .map(|v| {
            let total = matrix.iter().fold(0u64, |a, row| a.wrapping_add(row[v]));
            (v as u64, PeState::from([(v as u64, total)]))
        })
        .collect();
    PayloadCase { init, expected }
}

/// Allreduce: same start as [`reduce_scatter_case`]; every PE ends
/// with the full column-sum vector.
///
/// # Panics
/// Panics unless `matrix` is `m! × m!`.
#[must_use]
pub fn allreduce_case(order: usize, matrix: &[Vec<u64>]) -> PayloadCase {
    let nodes = factorial(order) as usize;
    let init = reduce_scatter_case(order, matrix).init;
    let sums: PeState = (0..nodes)
        .map(|v| {
            let total = matrix.iter().fold(0u64, |a, row| a.wrapping_add(row[v]));
            (v as u64, total)
        })
        .collect();
    let expected = (0..nodes).map(|u| (u as u64, sums.clone())).collect();
    PayloadCase { init, expected }
}

/// Personalized all-to-all: PE `u` starts with its outgoing blocks
/// (slot `v` holds `matrix[u][v]`; its own block pre-placed in
/// [`origin_slot`]`(u)`) and ends holding everyone's block *for it*,
/// keyed by origin.
///
/// # Panics
/// Panics unless `matrix` is `m! × m!`.
#[must_use]
pub fn all_to_all_case(order: usize, matrix: &[Vec<u64>]) -> PayloadCase {
    let nodes = factorial(order) as usize;
    assert_eq!(matrix.len(), nodes);
    let init = matrix
        .iter()
        .enumerate()
        .map(|(u, row)| {
            assert_eq!(row.len(), nodes);
            let mut slots = PeState::new();
            for (v, &x) in row.iter().enumerate() {
                if v == u {
                    slots.insert(origin_slot(order, u as u64), x);
                } else {
                    slots.insert(v as u64, x);
                }
            }
            (u as u64, slots)
        })
        .collect();
    let expected = (0..nodes)
        .map(|v| {
            let slots = (0..nodes)
                .map(|u| (origin_slot(order, u as u64), matrix[u][v]))
                .collect();
            (v as u64, slots)
        })
        .collect();
    PayloadCase { init, expected }
}
