//! Collectives as `sg-sched` tenants: compile a collective onto the
//! sub-star the scheduler granted, inject it through
//! `Schedule::tenant_run_with`, and the existing byte-isolation
//! theorem applies unchanged — the collective's statistics next to
//! noisy disjoint neighbors equal its isolated run byte-for-byte,
//! handoffs are clean, and the payload fold still checks out on the
//! lifted ranks.

use sg_coll::{
    allreduce_case, allreduce_lattice, broadcast_case, broadcast_tree, execute, seeded_matrix,
    CollSchedule, PayloadCase,
};
use sg_net::Network;
use sg_sched::scheduler::schedule;
use sg_sched::{AllocPolicy, JobSpec, TenantRouting, TrafficProfile};

fn collective_job(id: u32, order: usize) -> JobSpec {
    JobSpec {
        id,
        order,
        arrival: 0,
        duration: 600,
        // Placeholder profile — replaced by the compiled collective
        // through the tenant_run_with override.
        traffic: TrafficProfile::Transpose,
        routing: TenantRouting::Greedy,
        escape: false,
    }
}

fn bystander_job(id: u32, order: usize) -> JobSpec {
    JobSpec {
        id,
        order,
        arrival: 0,
        duration: 600,
        traffic: TrafficProfile::UniformPairs {
            pairs: 25,
            seed: u64::from(id) ^ 0xb5,
        },
        routing: TenantRouting::Greedy,
        escape: false,
    }
}

/// One collective tenant next to two noisy neighbors on `S_6`:
/// byte-isolation, clean handoff, and payload correctness — for both
/// a rooted (broadcast) and an unrooted (allreduce) collective.
#[test]
fn collective_tenants_are_byte_isolated() {
    let n = 6;
    let net = Network::new(n);
    let cases: Vec<(CollSchedule, Box<dyn Fn() -> PayloadCase>)> = vec![
        (
            broadcast_tree(4, 2),
            Box::new(|| broadcast_case(4, 2, 0xfeed)),
        ),
        (
            allreduce_lattice(4),
            Box::new(|| allreduce_case(4, &seeded_matrix(4, 0x7e4a))),
        ),
    ];
    for (coll, make_case) in cases {
        let jobs = vec![
            collective_job(0, coll.order()),
            bystander_job(1, 4),
            bystander_job(2, 5),
        ];
        let s = schedule(&jobs, AllocPolicy::BestFit.build(n).as_mut());
        assert_eq!(s.placements().len(), 3, "all jobs placed at arrival");
        let sub = s.placements()[0].substar.clone();
        assert_eq!(sub.order(), coll.order());

        // Compile the collective onto the granted sub-star; barriers
        // are measured on the host network, where the packets run.
        let run = s.tenant_run_with(|i, p| {
            (i == 0).then(|| {
                coll.compile_on(&net, &p.substar, &sg_net::GreedyRouting)
                    .workload
            })
        });

        // The composed run completes, hands off clean, and no tenant
        // perturbs (or is perturbed by) any other: the isolation
        // theorem, now carrying structured collective traffic.
        let report = run.run_quiesce_checked(&net);
        assert_eq!(report.total.delivered, report.total.injected);
        let isolated = run.isolated_stats(&net);
        assert!(
            report.perturbed_jobs(&isolated).is_empty(),
            "{}: collective tenancy broke byte-isolation",
            coll.name()
        );
        assert_eq!(
            report.jobs[0].stats.delivered,
            coll.total_sends() as u64,
            "{}: every collective packet delivered",
            coll.name()
        );

        // Payload correctness on the lifted ranks: the same schedule
        // the tenant executed, folded over concrete values.
        let case = make_case().lifted(&sub);
        let got = execute(&coll.lifted(&sub), &case.init).expect("payload executes");
        assert_eq!(got, case.expected, "{}: lifted fold diverged", coll.name());
    }
}
