//! Cost-level acceptance: measured rounds vs the distance lower
//! bound, at the stated constant factors (see the crate docs' cost
//! model).
//!
//! Everything here is deterministic — schedules are pure functions of
//! `(collective, order, root)` and the simulator is a pure function
//! of its inputs — so the assertions are exact, not statistical.

use sg_coll::{
    all_to_all_naive, all_to_all_rotation, allgather_doubling, allgather_naive, allreduce_lattice,
    broadcast_naive, broadcast_tree, distance_lower_bound, naive_root_lower_bound, reduce_naive,
    reduce_scatter_halving, reduce_tree, CollSchedule,
};
use sg_net::{GreedyRouting, Network, TrafficStats};
use sg_perm::factorial::factorial;

fn compile_and_run(net: &Network, s: &CollSchedule) -> (sg_net::ChainedWorkload, TrafficStats) {
    let chained = s.compile(net, &GreedyRouting);
    let stats = net.run(&chained.workload, &GreedyRouting);
    assert_eq!(
        stats.delivered,
        stats.injected,
        "{} loses packets",
        s.name()
    );
    (chained, stats)
}

/// Tree broadcast/reduce: exactly `ecc` contention-free one-hop
/// phases ⇒ makespan exactly `2·ecc − 1`, within factor 2 of the
/// eccentricity lower bound — from every probed root, at every order.
#[test]
fn tree_collectives_hit_two_ecc_minus_one() {
    for m in 2..=6usize {
        let net = Network::new(m);
        let lb = distance_lower_bound(m);
        let roots = if m <= 4 {
            (0..factorial(m)).collect::<Vec<_>>()
        } else {
            vec![0, factorial(m) / 2, factorial(m) - 1]
        };
        for root in roots {
            for s in [broadcast_tree(m, root), reduce_tree(m, root)] {
                assert_eq!(s.phase_count() as u32, lb, "{}: height ≠ ecc", s.name());
                assert_eq!(s.total_sends() as u64, factorial(m) - 1);
                let (chained, stats) = compile_and_run(&net, &s);
                assert_eq!(stats.makespan, 2 * lb - 1, "{} m={m} root={root}", s.name());
                assert_eq!(
                    stats.total_wait_rounds,
                    0,
                    "{} m={m} root={root}: a tree phase contended",
                    s.name()
                );
                // Every phase is a single parallel hop.
                assert!(chained.phase_makespans.iter().all(|&ms| ms == 1));
            }
        }
    }
}

/// The naive root collectives serialize on the root's `m − 1` links:
/// makespan ≥ `⌈(m! − 1)/(m − 1)⌉`.
#[test]
fn naive_root_collectives_serialize() {
    for m in 3..=5usize {
        let net = Network::new(m);
        for s in [broadcast_naive(m, 0), reduce_naive(m, 0)] {
            let (_, stats) = compile_and_run(&net, &s);
            assert!(
                stats.makespan >= naive_root_lower_bound(m),
                "{} m={m}: makespan {} under the serialization bound {}",
                s.name(),
                stats.makespan,
                naive_root_lower_bound(m)
            );
        }
    }
}

/// The tree's advantage over naive broadcast grows without bound:
/// tree wins from `m = 4` on, and the naive/tree ratio strictly
/// increases with `m` (the measured asymptotic gap).
#[test]
fn broadcast_gap_grows_with_order() {
    let mut last_ratio = 0.0f64;
    for m in 4..=6usize {
        let net = Network::new(m);
        let (_, tree) = compile_and_run(&net, &broadcast_tree(m, 0));
        let (_, naive) = compile_and_run(&net, &broadcast_naive(m, 0));
        assert!(
            tree.makespan < naive.makespan,
            "m={m}: tree {} !< naive {}",
            tree.makespan,
            naive.makespan
        );
        let ratio = f64::from(naive.makespan) / f64::from(tree.makespan);
        assert!(
            ratio > last_ratio,
            "m={m}: gap ratio {ratio:.2} did not grow past {last_ratio:.2}"
        );
        last_ratio = ratio;
    }
    // The serialization bound alone already forces the gap: naive is
    // Ω(m!/m) while the tree is exactly 2·⌊3(m−1)/2⌋ − 1 = O(m).
    assert!(
        last_ratio > 10.0,
        "gap at m=6 should exceed 10×, got {last_ratio:.2}"
    );
}

/// Lattice collectives: exact phase counts (`m(m−1)/2`; allreduce
/// `m(m−1)`; all-to-all `m! − 1`) and total rounds within the stated
/// factor `lb + 2` per phase of the distance lower bound.
#[test]
fn lattice_phase_counts_and_round_bounds() {
    for m in 2..=5usize {
        let net = Network::new(m);
        let lb = distance_lower_bound(m);
        let per_phase_cap = lb + 2;
        let mut schedules = vec![
            allgather_doubling(m),
            reduce_scatter_halving(m),
            allreduce_lattice(m),
        ];
        if m <= 4 {
            schedules.push(all_to_all_rotation(m));
        }
        for s in schedules {
            let expected_phases = match s.name() {
                "allgather/doubling" | "reduce-scatter/halving" => m * (m - 1) / 2,
                "allreduce/lattice" => m * (m - 1),
                "all-to-all/rotation" => factorial(m) as usize - 1,
                other => panic!("unexpected schedule {other}"),
            };
            assert_eq!(s.phase_count(), expected_phases, "{}", s.name());
            let (chained, stats) = compile_and_run(&net, &s);
            // Each phase takes ≥ 1 round plus its barrier…
            assert!(stats.makespan + 1 >= 2 * s.phase_count() as u32 - 1);
            // …and at most lb + 2, the stated constant factor.
            assert!(
                stats.makespan < s.phase_count() as u32 * (per_phase_cap + 1),
                "{} m={m}: {} rounds exceeds {} phases × (lb+2+1)",
                s.name(),
                stats.makespan + 1,
                s.phase_count()
            );
            assert_eq!(chained.total_rounds(), stats.makespan + 1);
        }
    }
}

/// Structured allgather beats the naive all-pairs blast once the
/// network is big enough for structure to matter (m = 5: 412 total
/// wait rounds vs 1.18M), and waits stay orders of magnitude lower.
#[test]
fn allgather_structure_beats_all_pairs() {
    let m = 5;
    let net = Network::new(m);
    let (_, doubling) = compile_and_run(&net, &allgather_doubling(m));
    let (_, naive) = compile_and_run(&net, &allgather_naive(m));
    assert!(doubling.makespan < naive.makespan);
    assert!(doubling.total_wait_rounds * 100 < naive.total_wait_rounds);
}

/// The rotation all-to-all's phases are clean permutations: every PE
/// sends once and receives once per phase, and each ordered pair is
/// served exactly once across the whole schedule.
#[test]
fn all_to_all_rotation_is_a_permutation_schedule() {
    for m in 3..=5usize {
        let nodes = factorial(m);
        let s = all_to_all_rotation(m);
        assert_eq!(s.phase_count() as u64, nodes - 1);
        let mut pairs = std::collections::BTreeSet::new();
        for phase in s.phases() {
            assert_eq!(phase.len() as u64, nodes);
            let srcs: std::collections::BTreeSet<u64> = phase.iter().map(|s| s.src).collect();
            let dsts: std::collections::BTreeSet<u64> = phase.iter().map(|s| s.dst).collect();
            assert_eq!(srcs.len() as u64, nodes);
            assert_eq!(dsts.len() as u64, nodes);
            for snd in phase {
                assert!(pairs.insert((snd.src, snd.dst)), "pair served twice");
            }
        }
        assert_eq!(pairs.len() as u64, nodes * (nodes - 1));
        // Same pair coverage as naive, in m! − 1 contention-light
        // permutation phases instead of one all-pairs blast.
        let naive = all_to_all_naive(m);
        assert_eq!(naive.total_sends(), s.total_sends());
    }
}
