//! Payload-correctness matrix (the acceptance gate).
//!
//! Exhaustive `m ≤ 5`: every collective × {structured, naive} must
//! map the seeded initial state to the reference fold — and for the
//! rooted collectives, from **every** root. Seeded `m = 6, 7` extend
//! coverage to the larger orders (full tree collectives at `m = 7`;
//! the gather family at `m = 6`, where a full `m! × m!` state is
//! still cheap). The executor's exactly-once slot accounting means a
//! schedule cannot pass by double-delivering or overwriting.

use sg_coll::{
    all_to_all_case, all_to_all_naive, all_to_all_rotation, allgather_case, allgather_doubling,
    allgather_naive, allreduce_case, allreduce_lattice, allreduce_naive, broadcast_case,
    broadcast_naive, broadcast_tree, execute, reduce_case, reduce_naive, reduce_scatter_case,
    reduce_scatter_halving, reduce_scatter_naive, reduce_tree, seeded_matrix, seeded_values,
    CollSchedule, PayloadCase,
};
use sg_perm::factorial::factorial;

fn check(schedule: &CollSchedule, case: &PayloadCase) {
    let got = execute(schedule, &case.init)
        .unwrap_or_else(|e| panic!("{}: payload violation: {e}", schedule.name()));
    assert_eq!(
        got,
        case.expected,
        "{} (order {}) diverges from the reference fold",
        schedule.name(),
        schedule.order()
    );
}

/// Rooted collectives, exhaustive: every order `m ≤ 5`, every root.
#[test]
fn rooted_collectives_exhaustive() {
    for m in 2..=5usize {
        let values = seeded_values(m, 0xc011 + m as u64);
        for root in 0..factorial(m) {
            let b = broadcast_case(m, root, values[root as usize]);
            check(&broadcast_tree(m, root), &b);
            check(&broadcast_naive(m, root), &b);
            let r = reduce_case(m, root, &values);
            check(&reduce_tree(m, root), &r);
            check(&reduce_naive(m, root), &r);
        }
    }
}

/// Gather-family collectives, exhaustive orders `m ≤ 5`.
#[test]
fn gather_family_exhaustive() {
    for m in 2..=5usize {
        let values = seeded_values(m, 0x9a7 + m as u64);
        let matrix = seeded_matrix(m, 0x5ca7 + m as u64);

        let ag = allgather_case(m, &values);
        check(&allgather_doubling(m), &ag);
        check(&allgather_naive(m), &ag);

        let rs = reduce_scatter_case(m, &matrix);
        check(&reduce_scatter_halving(m), &rs);
        check(&reduce_scatter_naive(m), &rs);

        let ar = allreduce_case(m, &matrix);
        check(&allreduce_lattice(m), &ar);
        check(&allreduce_naive(m), &ar);

        let a2a = all_to_all_case(m, &matrix);
        check(&all_to_all_rotation(m), &a2a);
        check(&all_to_all_naive(m), &a2a);
    }
}

/// Seeded large orders: tree collectives over the full `S_6`/`S_7`
/// (5040 PEs), several roots each.
#[test]
fn tree_collectives_large_orders_seeded() {
    for m in [6usize, 7] {
        let values = seeded_values(m, 0xb16 + m as u64);
        let nodes = factorial(m);
        for root in [0, nodes / 3, nodes - 1] {
            let b = broadcast_case(m, root, values[root as usize]);
            check(&broadcast_tree(m, root), &b);
            let r = reduce_case(m, root, &values);
            check(&reduce_tree(m, root), &r);
        }
        // One naive reference at each order pins tree vs naive
        // agreement beyond the exhaustive range too.
        check(&broadcast_naive(m, 1), &broadcast_case(m, 1, values[1]));
        check(&reduce_naive(m, 1), &reduce_case(m, 1, &values));
    }
}

/// Seeded `m = 6` gather family (full `720 × 720` payload state).
#[test]
fn gather_family_order_six_seeded() {
    let m = 6usize;
    let values = seeded_values(m, 0x6a7);
    let ag = allgather_case(m, &values);
    check(&allgather_doubling(m), &ag);

    let matrix = seeded_matrix(m, 0x65ca7);
    let rs = reduce_scatter_case(m, &matrix);
    check(&reduce_scatter_halving(m), &rs);

    let ar = allreduce_case(m, &matrix);
    check(&allreduce_lattice(m), &ar);
}
