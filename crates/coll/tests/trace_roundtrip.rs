//! `sg-trace` coverage for collective-generated runs: a compiled
//! collective is an ordinary `sg-net` workload, so record → replay
//! must rebuild its statistics **byte-identical** (total and
//! per-phase), its JSONL serialization must survive a parse
//! round-trip, and a mutated event in a collective log must be
//! localized by the structural differ to its exact position.

use sg_coll::{
    all_to_all_rotation, allgather_doubling, allreduce_lattice, broadcast_naive, broadcast_tree,
    reduce_scatter_halving, reduce_tree, CollSchedule,
};
use sg_net::trace::{record, record_partitioned, replay, replay_jsonl};
use sg_net::{Engine, GreedyRouting, Network, RoutingPolicy};
use sg_obs::{diff_events, Trace};

fn schedules(m: usize) -> Vec<CollSchedule> {
    let mut out = vec![
        broadcast_tree(m, 0),
        broadcast_naive(m, 1),
        reduce_tree(m, factorial_last(m)),
        allgather_doubling(m),
        reduce_scatter_halving(m),
        allreduce_lattice(m),
    ];
    if m <= 4 {
        out.push(all_to_all_rotation(m));
    }
    out
}

fn factorial_last(m: usize) -> u64 {
    sg_perm::factorial::factorial(m) - 1
}

/// Record → serialize → parse → replay, on both engines, for every
/// collective: replayed stats byte-equal live stats.
#[test]
fn collective_runs_replay_byte_identically() {
    for m in [3usize, 4, 5] {
        let net = Network::new(m);
        for s in schedules(m) {
            let chained = s.compile(&net, &GreedyRouting);
            for engine in [Engine::Fast, Engine::Reference] {
                let (live, trace) = record(&net, &chained.workload, &GreedyRouting, engine, 0xc011);
                assert_eq!(live.stranded, 0);
                let replayed = replay(&trace).expect("collective trace replays");
                assert_eq!(
                    replayed.total,
                    live,
                    "{} m={m} {engine:?}: replay diverged from the live run",
                    s.name()
                );
                // The serialized form survives a full parse + replay.
                let text = trace.to_jsonl();
                assert_eq!(Trace::parse(&text).expect("parses"), trace);
                assert_eq!(replay_jsonl(&text).expect("replays").total, live);
            }
        }
    }
}

/// The partitioned recorder with the chain's phase-owner map: per-
/// phase statistics replay byte-identically too, and each rebased
/// phase equals the phase run alone (the barrier lock, through the
/// trace layer).
#[test]
fn partitioned_collective_traces_attribute_phases() {
    let m = 4;
    let net = Network::new(m);
    for s in [broadcast_tree(m, 0), allreduce_lattice(m)] {
        let chained = s.compile(&net, &GreedyRouting);
        let phases = s.phase_workloads();
        let policies: Vec<Box<dyn RoutingPolicy>> = phases
            .iter()
            .map(|_| Box::new(GreedyRouting) as _)
            .collect();
        let refs: Vec<&dyn RoutingPolicy> = policies.iter().map(|p| p.as_ref()).collect();
        let escape = vec![false; phases.len()];
        let (total, per_phase, trace) = record_partitioned(
            &net,
            &chained.workload,
            &refs,
            &chained.owner,
            &escape,
            0xc011,
        );
        let replayed = replay(&trace).expect("partitioned collective trace replays");
        assert_eq!(replayed.total, total, "{}", s.name());
        assert_eq!(replayed.per_job, per_phase, "{}", s.name());
        for (k, w) in phases.iter().enumerate() {
            assert_eq!(
                per_phase[k].rebased(chained.phase_starts[k]),
                net.run(w, &GreedyRouting),
                "{} phase {k}",
                s.name()
            );
        }
    }
}

/// Divergence localization on a mutated collective log: flip one
/// event deep inside an allreduce trace and the differ must name its
/// exact index, round, and in-round position.
#[test]
fn mutated_collective_log_divergence_is_localized() {
    let net = Network::new(4);
    let chained = allreduce_lattice(4).compile(&net, &GreedyRouting);
    let (_, trace) = record(
        &net,
        &chained.workload,
        &GreedyRouting,
        Engine::Fast,
        0xd1ff,
    );
    let a = trace.events.clone();
    let victim = a.len() * 2 / 3;
    let mut expected_round = 0;
    let mut expected_index = 0;
    for ev in &a[..=victim] {
        if matches!(ev, sg_obs::Event::RoundBegin { .. }) || ev.round() != expected_round {
            expected_round = ev.round();
            expected_index = 0;
        } else {
            expected_index += 1;
        }
    }
    let mut b = a.clone();
    b[victim] = sg_obs::Event::Delivered {
        round: expected_round,
        pid: 424_242,
        pe: 0,
        hops: 1,
    };
    assert_ne!(a[victim], b[victim], "mutation must actually mutate");
    let d = diff_events(&a, &b, 3).expect("mutated streams diverge");
    assert_eq!(d.index, victim, "differ must find the mutated event");
    assert_eq!(d.a.round, Some(expected_round));
    assert_eq!(d.a.index_in_round, expected_index);
    assert_eq!(d.b.event, Some(b[victim]));
    assert!(d.render().contains("424242"));
}
