//! Property suite: payload correctness of the gather-family
//! collectives over random payloads, seeds, and sub-star placements,
//! plus per-seed determinism of the whole pipeline (schedule →
//! compile → run).

use proptest::prelude::*;
use sg_coll::{
    allgather_case, allgather_doubling, allgather_naive, allreduce_case, allreduce_lattice,
    allreduce_naive, execute, seeded_matrix, seeded_values, CollSchedule, PayloadCase,
};
use sg_net::{GreedyRouting, Network};
use sg_star::substar::substars_of_order;

fn agrees(schedule: &CollSchedule, case: &PayloadCase) {
    let got = execute(schedule, &case.init)
        .unwrap_or_else(|e| panic!("{}: payload violation: {e}", schedule.name()));
    assert_eq!(
        got,
        case.expected,
        "{} order {} diverges from the reference fold",
        schedule.name(),
        schedule.order()
    );
}

proptest! {
    /// Allreduce — structured and naive — reproduces the reference
    /// column-sum fold for any seeded payload at any order `m ≤ 4`.
    #[test]
    fn prop_allreduce_payload_correct(m in 2usize..=4, seed in any::<u64>()) {
        let matrix = seeded_matrix(m, seed);
        let case = allreduce_case(m, &matrix);
        agrees(&allreduce_lattice(m), &case);
        agrees(&allreduce_naive(m), &case);
    }

    /// Allgather — structured and naive — distributes every block to
    /// every PE for any seeded payload at any order `m ≤ 5`.
    #[test]
    fn prop_allgather_payload_correct(m in 2usize..=5, seed in any::<u64>()) {
        let values = seeded_values(m, seed);
        let case = allgather_case(m, &values);
        agrees(&allgather_doubling(m), &case);
        agrees(&allgather_naive(m), &case);
    }

    /// Lifting onto a random sub-star placement of a random host
    /// preserves payload correctness: the lifted schedule maps the
    /// lifted initial state to the lifted fold. Covers hosts up to
    /// `S_7` with sub-star orders `2..=4`.
    #[test]
    fn prop_substar_placement_payload_correct(
        n in 4usize..=7,
        m_sel in any::<u64>(),
        sub_sel in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let m = 2 + (m_sel % 3) as usize; // 2..=4, always < n
        let subs = substars_of_order(n, m);
        let sub = &subs[(sub_sel % subs.len() as u64) as usize];

        let matrix = seeded_matrix(m, seed);
        let case = allreduce_case(m, &matrix).lifted(sub);
        agrees(&allreduce_lattice(m).lifted(sub), &case);

        let values = seeded_values(m, seed ^ 0xa6);
        let ag = allgather_case(m, &values).lifted(sub);
        agrees(&allgather_doubling(m).lifted(sub), &ag);
    }

    /// Determinism per seed: building, compiling, and running the
    /// same collective twice yields byte-identical schedules,
    /// chained workloads, and traffic statistics.
    #[test]
    fn prop_deterministic_per_seed(m in 2usize..=4, seed in any::<u64>()) {
        let a = allreduce_lattice(m);
        let b = allreduce_lattice(m);
        prop_assert_eq!(&a, &b, "schedule construction must be deterministic");

        let matrix = seeded_matrix(m, seed);
        prop_assert_eq!(seeded_matrix(m, seed), matrix, "seeded payloads repeat");

        let net = Network::new(m);
        let ca = a.compile(&net, &GreedyRouting);
        let cb = b.compile(&net, &GreedyRouting);
        prop_assert_eq!(&ca, &cb, "compilation must be deterministic");
        prop_assert_eq!(
            net.run(&ca.workload, &GreedyRouting),
            net.run(&cb.workload, &GreedyRouting),
            "runs must be byte-identical"
        );
    }
}
