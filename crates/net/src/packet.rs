//! Per-packet records and outcomes.
//!
//! Every packet injected into a [`crate::Network`] run ends in exactly
//! one [`PacketOutcome`]; the full table of [`PacketRecord`]s is part
//! of [`crate::TrafficStats`], so packet conservation
//! (`delivered + dropped + stranded == injected`) is checkable — and
//! checked, by the property suite — from the stats alone.

/// Dense packet id: index into the run's packet table (assigned in
/// workload order, so ids are stable across runs of the same
/// workload).
pub type PacketId = u32;

/// Terminal state of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Reached its destination.
    Delivered {
        /// Round of arrival at the destination PE.
        round: u32,
        /// Star links traversed (≥ the star distance `src → dst`).
        hops: u32,
    },
    /// Hit a dead node/link under [`crate::FaultPolicy::Drop`], or was
    /// injected at a dead source PE.
    DroppedFault {
        /// Round of the drop.
        round: u32,
    },
    /// No fault-free path existed when a reroute was attempted
    /// (possible only beyond the paper's `n−2` fault tolerance, or
    /// when the destination itself is dead).
    DroppedUnreachable {
        /// Round of the drop.
        round: u32,
    },
    /// Tail-dropped: the next output queue was at capacity.
    DroppedOverflow {
        /// Round of the drop.
        round: u32,
    },
    /// Still queued or in flight when the round cap
    /// ([`crate::NetConfig::max_rounds`]) fired.
    Stranded,
}

impl PacketOutcome {
    /// `true` for [`PacketOutcome::Delivered`].
    #[inline]
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        matches!(self, PacketOutcome::Delivered { .. })
    }

    /// Round the packet resolved — delivery or any drop; `None` for
    /// [`PacketOutcome::Stranded`], which never resolves. The round a
    /// quiescence barrier (see [`crate::Network::chain_phases`]) must
    /// wait past.
    #[inline]
    #[must_use]
    pub fn resolution_round(&self) -> Option<u32> {
        match *self {
            PacketOutcome::Delivered { round, .. }
            | PacketOutcome::DroppedFault { round }
            | PacketOutcome::DroppedUnreachable { round }
            | PacketOutcome::DroppedOverflow { round } => Some(round),
            PacketOutcome::Stranded => None,
        }
    }
}

/// One packet's life, as recorded in [`crate::TrafficStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// Source PE (Lehmer rank of its star node).
    pub src: u64,
    /// Destination PE (Lehmer rank).
    pub dst: u64,
    /// Round the packet entered the network.
    pub inject_round: u32,
    /// How it ended.
    pub outcome: PacketOutcome,
}

impl PacketRecord {
    /// End-to-end latency in rounds (delivery − injection);
    /// `None` unless delivered.
    #[must_use]
    pub fn latency(&self) -> Option<u32> {
        match self.outcome {
            PacketOutcome::Delivered { round, .. } => Some(round - self.inject_round),
            _ => None,
        }
    }
}

/// One forwarded flit hop, as recorded by
/// [`crate::Network::run_traced`]. A packet's trace lists every link
/// it traversed, in order — the ground truth the adaptive-routing
/// validity suite checks against the surviving subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// PE the flit left (Lehmer rank).
    pub from: u64,
    /// Generator link taken (`1 ≤ g < n`).
    pub gen: u8,
    /// PE the flit was forwarded to (Lehmer rank).
    pub to: u64,
    /// Round the flit left `from`; it lands
    /// [`crate::NetConfig::link_latency`] rounds later.
    pub round: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_delivery_minus_injection() {
        let r = PacketRecord {
            src: 0,
            dst: 1,
            inject_round: 2,
            outcome: PacketOutcome::Delivered { round: 7, hops: 3 },
        };
        assert_eq!(r.latency(), Some(5));
        assert!(r.outcome.is_delivered());
        let d = PacketRecord {
            outcome: PacketOutcome::DroppedFault { round: 3 },
            ..r
        };
        assert_eq!(d.latency(), None);
        assert!(!d.outcome.is_delivered());
    }
}
