//! Pluggable routing policies.
//!
//! A [`RoutingPolicy`] maps a `(src, dst)` pair of star nodes to the
//! generator sequence the packet will follow; the [`crate::Network`]
//! charges contention along that path. Three policies ship:
//!
//! * [`GreedyRouting`] — the Akers–Krishnamurthy "sort the front
//!   symbol home" shortest path of [`sg_star::routing`]; optimal in
//!   hops, oblivious to contention.
//! * [`EmbeddingRouting`] — dimension-order routing in the embedded
//!   mesh `D_n`: walk the mesh coordinates of `src` to those of `dst`
//!   one unit move at a time, expanding every mesh edge through its
//!   Lemma-2 dilation-3 (or 1) path. Longer in hops, but on the
//!   mesh-dimension-sweep workload it reproduces the paper's Lemma-5
//!   schedule exactly — provably contention-free.
//! * [`AdaptiveRouting`] — contention-aware: instead of fixing the
//!   route at injection, each hop is chosen **at enqueue time** among
//!   the shortest-path candidate generators, picking the one whose
//!   output queue is least occupied (ties broken toward the
//!   embedding path's order). Still minimal in hops while any
//!   shortest-path link survives; falls back to a BFS detour over the
//!   surviving subgraph when faults block every candidate.

use sg_core::convert::convert_s_d;
use sg_core::lemma3::{minus_swap_symbols, plus_swap_symbols};
use sg_core::paths::transposition_generators;
use sg_perm::Perm;
use sg_star::routing::route_generators;

/// A source-routing strategy: the whole generator sequence is fixed at
/// injection time (faults may later replace the tail, see
/// [`crate::FaultPolicy::Reroute`]).
///
/// `Sync` is required so the simulator can precompute routes for large
/// workloads in parallel.
pub trait RoutingPolicy: Sync {
    /// Human-readable policy name (used in tables and reports).
    fn name(&self) -> &'static str;

    /// Generator indices (`1 ≤ g < n`) carrying `src` to `dst`.
    /// Must return an empty sequence iff `src == dst`.
    fn route(&self, src: &Perm, dst: &Perm) -> Vec<u8>;

    /// `true` for policies that pick each hop at enqueue time from
    /// live queue occupancy instead of following a fixed source
    /// route. The engines then skip route precomputation and call
    /// their shared hop selector per hop; [`RoutingPolicy::route`] is
    /// only a static description of the zero-contention path. In
    /// multi-tenant runs ([`crate::Network::run_partitioned`]) each
    /// job brings its own policy, so adaptivity is effectively
    /// per packet.
    fn is_adaptive(&self) -> bool {
        false
    }
}

/// Greedy shortest-path routing (always `distance(src, dst)` hops).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyRouting;

impl RoutingPolicy for GreedyRouting {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn route(&self, src: &Perm, dst: &Perm) -> Vec<u8> {
        route_generators(src, dst)
            .into_iter()
            .map(|g| g as u8)
            .collect()
    }
}

/// Dimension-order routing through the mesh embedding.
///
/// Corrects mesh dimension 1 first, then 2, …, then `n−1`; each unit
/// move is expanded via [`sg_core::paths::transposition_generators`]
/// on the Lemma-3 symbol pair, i.e. every hop sequence is exactly the
/// path [`sg_core::paths::dilation3_path`] would take for that mesh
/// edge.
///
/// These are also the canonical escape routes: when a packet diverts
/// onto [`crate::FlowControl::EscapeChannel`]'s escape bank on a
/// fault-free network, the route pinned for it is exactly this
/// policy's dimension-order path from the diversion point (dilation-3
/// walks can *pass through* the destination mid-route, in which case
/// the packet simply delivers early).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmbeddingRouting;

impl RoutingPolicy for EmbeddingRouting {
    fn name(&self) -> &'static str {
        "embedding"
    }

    fn route(&self, src: &Perm, dst: &Perm) -> Vec<u8> {
        let n = src.len();
        assert_eq!(n, dst.len(), "routing between different star orders");
        let target = convert_s_d(dst);
        let mut cur = *src;
        let mut cur_d = convert_s_d(src);
        let mut gens: Vec<u8> = Vec::new();
        for k in 1..n {
            let want = target.d(k);
            while cur_d.d(k) != want {
                let plus = cur_d.d(k) < want;
                let (a, b) = if plus {
                    plus_swap_symbols(&cur, k)
                } else {
                    minus_swap_symbols(&cur, k)
                }
                .expect("interior coordinate always has a neighbor toward the target");
                gens.extend(
                    transposition_generators(&cur, a, b)
                        .into_iter()
                        .map(|g| g as u8),
                );
                cur = cur.with_symbols_swapped(a, b);
                let step: i64 = if plus { 1 } else { -1 };
                cur_d = cur_d.with_d(k, (i64::from(cur_d.d(k)) + step) as u32);
            }
        }
        debug_assert_eq!(cur, *dst, "mesh walk must land on dst");
        gens
    }
}

/// Contention-aware minimal routing, decided hop by hop.
///
/// At every enqueue the engines ask: which generators `g` move the
/// packet strictly closer to its destination (there is always at
/// least one in a fault-free star graph), and which of their output
/// queues at the current PE is least occupied? The least-occupied
/// surviving candidate wins; ties prefer the generator the
/// dimension-order [`EmbeddingRouting`] path would take next, then
/// the smallest generator index. Every adaptive hop reduces the star
/// distance by exactly 1, so routes are minimal and provably
/// terminate; when faults kill **all** candidate links at some PE the
/// packet falls back to [`crate::FaultPolicy`] semantics (drop, or
/// pin the BFS detour over the surviving subgraph and follow it to
/// the end).
///
/// [`RoutingPolicy::route`] returns the greedy shortest path — the
/// route an adaptive packet takes when it never meets contention.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveRouting;

impl RoutingPolicy for AdaptiveRouting {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn route(&self, src: &Perm, dst: &Perm) -> Vec<u8> {
        GreedyRouting.route(src, dst)
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::factorial::factorial;
    use sg_perm::lehmer::unrank;
    use sg_star::distance::distance;

    fn apply(src: &Perm, route: &[u8]) -> Perm {
        let mut cur = *src;
        for &g in route {
            cur.swap_slots(0, g as usize);
        }
        cur
    }

    #[test]
    fn both_policies_reach_target_exhaustive_small() {
        for n in 2..=4usize {
            for ra in 0..factorial(n) {
                for rb in 0..factorial(n) {
                    let a = unrank(ra, n).unwrap();
                    let b = unrank(rb, n).unwrap();
                    for policy in [&GreedyRouting as &dyn RoutingPolicy, &EmbeddingRouting] {
                        let route = policy.route(&a, &b);
                        assert_eq!(apply(&a, &route), b, "{} {a}->{b}", policy.name());
                        assert_eq!(route.is_empty(), a == b);
                        assert!(route.iter().all(|&g| g >= 1 && (g as usize) < n));
                    }
                }
            }
        }
    }

    #[test]
    fn greedy_is_shortest() {
        let n = 5;
        for ra in (0..factorial(n)).step_by(7) {
            let a = unrank(ra, n).unwrap();
            let b = unrank((ra * 31 + 17) % factorial(n), n).unwrap();
            assert_eq!(GreedyRouting.route(&a, &b).len() as u32, distance(&a, &b));
        }
    }

    #[test]
    fn embedding_route_length_matches_dilation_times_l1() {
        // Every unit mesh move costs 1 hop (dimension n−1) or 3 hops
        // (all other dimensions), so the total is a per-dimension sum.
        let n = 5;
        for ra in (0..factorial(n)).step_by(11) {
            let a = unrank(ra, n).unwrap();
            let b = unrank((ra * 13 + 5) % factorial(n), n).unwrap();
            let da = convert_s_d(&a);
            let db = convert_s_d(&b);
            let mut expect = 0u64;
            for k in 1..n {
                let delta = u64::from(da.d(k).abs_diff(db.d(k)));
                expect += delta * if k == n - 1 { 1 } else { 3 };
            }
            assert_eq!(EmbeddingRouting.route(&a, &b).len() as u64, expect);
        }
    }

    #[test]
    fn embedding_beats_nothing_but_is_valid_for_single_mesh_hops() {
        // For a single mesh edge the embedding route is the exact
        // Lemma-2 path: 3 hops (or 1 on dimension n−1).
        let n = 5;
        for r in 0..factorial(n) {
            let a = unrank(r, n).unwrap();
            for k in 1..n {
                if let Some(b) = sg_core::lemma3::mesh_neighbor_plus(&a, k) {
                    let route = EmbeddingRouting.route(&a, &b);
                    let expect = if k == n - 1 { 1 } else { 3 };
                    assert_eq!(route.len(), expect, "{a} k={k}");
                }
            }
        }
    }
}
