//! # sg-net — contention-aware interconnect simulator for `S_n`
//!
//! The paper proves its dilation-3 embedding is non-blocking *in
//! lockstep SIMD* (Lemma 5 / Theorem 6) and defines congestion without
//! ever numbering it. This crate measures both claims under arbitrary,
//! asynchronous traffic: a deterministic, round-based discrete-event
//! simulator of the star-graph interconnect with per-generator output
//! queues, one-flit-per-link-per-round arbitration, configurable link
//! latency and queue capacity, pluggable routing, seeded workload
//! generators, and node/edge fault plans.
//!
//! ## Quick start
//!
//! ```
//! use sg_net::{EmbeddingRouting, GreedyRouting, Network, Workload};
//!
//! let net = Network::new(5);
//!
//! // The Lemma-5 scenario: one mesh unit route along dimension 2.
//! // Under embedding-path routing it is provably contention-free and
//! // completes in exactly 3 rounds.
//! let sweep = Workload::dimension_sweep(5, 2, true);
//! let stats = net.run(&sweep, &EmbeddingRouting);
//! assert_eq!(stats.makespan, 3);
//! assert!(stats.is_contention_free());
//!
//! // Uniform random traffic has no such certificate: it queues.
//! let uniform = Workload::bernoulli_uniform(5, 20, 100, 42);
//! let stats = net.run(&uniform, &GreedyRouting);
//! assert!(stats.total_wait_rounds > 0);
//! assert_eq!(stats.delivered, stats.injected); // …but nothing is lost
//! ```
//!
//! ## Model
//!
//! One PE per star node, addressed by Lehmer rank. Per round (see
//! [`network`] for the exact phase order): arrivals land and re-queue,
//! this round's packets inject, every link forwards at most one flit
//! (FIFO), queued flits accrue wait. Everything is scanned in a fixed
//! order and all randomness is seeded, so a run is a pure function of
//! its inputs — the property suite asserts packet conservation,
//! latency ≥ star distance, and bit-identical [`TrafficStats`] per
//! seed.
//!
//! ## Engines
//!
//! Two engines execute that model. [`Engine::Reference`] scans every
//! queue every round — the transparent oracle. [`Engine::Fast`] (the
//! default behind [`Network::run`]) drives an active-queue worklist
//! over flat slab-allocated ring buffers with batched round-keyed
//! arrivals, and skips idle rounds — the engine that makes
//! full-injection sweeps at `n = 8` (40 320 PEs) finish in seconds.
//! `tests/differential.rs` proves them observationally identical:
//! byte-equal [`TrafficStats`] across every workload × routing ×
//! fault axis. Three scenario axes ride on the engines:
//! [`AdaptiveRouting`] (contention-aware least-occupied shortest-path
//! hops), [`FlowControl::CreditBased`] (packets stall at the source
//! instead of tail-dropping — and can deadlock at tiny pools, as real
//! blocking flow control does), and [`FlowControl::EscapeChannel`]
//! (the deadlock-free refinement: starved heads divert onto a per-PE
//! escape bank graded by residual hops and drained lowest-class-first
//! along the canonical embedding routes; `tests/deadlock.rs` proves
//! zero [`PacketOutcome::Stranded`] over an exhaustive tiny-pool
//! sweep whose credit runs demonstrably wedge). Routes live in one
//! flat shared arena (offset + len per packet) rather than per-packet
//! heap vectors.
//!
//! ## Multi-tenancy
//!
//! [`Workload::compose`] stably merges per-tenant workloads with
//! round offsets and an owner map;
//! [`Network::run_partitioned`] drives the merged traffic with **one
//! routing policy per job** (so adaptivity is a per-job choice) and
//! returns fully attributed per-job [`TrafficStats`] next to the
//! global ones;
//! [`Network::run_traced_partitioned`] adds per-packet hop traces for
//! containment audits; [`TrafficStats::rebased`] shifts a tenant's
//! slice onto its own clock for byte-level comparison against an
//! isolated run. The `sg-sched` crate builds the sub-star scheduler
//! on these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod network;
pub mod packet;
pub mod routing;
pub mod stats;
pub mod trace;
pub mod workload;

pub use fault::{FaultPlan, FaultPolicy};
pub use network::{Engine, FlowControl, NetConfig, Network, QuiescenceViolation};
pub use packet::{HopRecord, PacketId, PacketOutcome, PacketRecord};
pub use routing::{AdaptiveRouting, EmbeddingRouting, GreedyRouting, RoutingPolicy};
pub use stats::{saturation_sweep, RunCounters, SaturationPoint, TrafficStats};
pub use trace::ReplayedStats;
pub use workload::{ChainedWorkload, Injection, Workload};
