//! Traffic workload generators.
//!
//! A [`Workload`] is a deterministic list of [`Injection`]s (round,
//! source PE, destination PE), sorted by round. All randomized
//! generators are seeded, so a `(generator, seed)` pair always
//! produces byte-identical traffic — the determinism property the
//! test suite asserts end-to-end.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use sg_core::lemma3::{mesh_neighbor_minus, mesh_neighbor_plus};
use sg_perm::factorial::factorial;
use sg_perm::lehmer::{rank, unrank};

/// One packet to be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Round at which the packet enters its source PE.
    pub round: u32,
    /// Source PE (Lehmer rank of its star node).
    pub src: u64,
    /// Destination PE (Lehmer rank).
    pub dst: u64,
}

/// A named batch of injections, sorted by round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: String,
    n: usize,
    injections: Vec<Injection>,
}

impl Workload {
    /// Builds a workload from raw injections (sorted by round, stably,
    /// so same-round order is the caller's order).
    ///
    /// # Panics
    /// Panics if any rank is `≥ n!`.
    #[must_use]
    pub fn from_injections(name: &str, n: usize, mut injections: Vec<Injection>) -> Self {
        let size = factorial(n);
        for inj in &injections {
            assert!(inj.src < size && inj.dst < size, "PE rank out of range");
        }
        injections.sort_by_key(|i| i.round);
        Workload {
            name: name.to_string(),
            n,
            injections,
        }
    }

    /// The Lemma-5 scenario: every mesh node with a neighbor along
    /// dimension `k` (direction `plus`) sends one packet to that
    /// neighbor, all at round 0. Under [`crate::EmbeddingRouting`]
    /// this is exactly one SIMD-A mesh unit route.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k < n`.
    #[must_use]
    pub fn dimension_sweep(n: usize, k: usize, plus: bool) -> Self {
        assert!(k >= 1 && k < n, "dimension out of range");
        let mut injections = Vec::new();
        for r in 0..factorial(n) {
            let pi = unrank(r, n).expect("rank in range");
            let neighbor = if plus {
                mesh_neighbor_plus(&pi, k)
            } else {
                mesh_neighbor_minus(&pi, k)
            };
            if let Some(q) = neighbor {
                injections.push(Injection {
                    round: 0,
                    src: r,
                    dst: rank(&q),
                });
            }
        }
        let sign = if plus { '+' } else { '-' };
        Workload::from_injections(&format!("sweep(k={k},{sign})"), n, injections)
    }

    /// Uniform random permutation traffic: destinations are a seeded
    /// random permutation of the PEs, one packet per PE at round 0
    /// (fixed points — self-sends — are skipped).
    #[must_use]
    pub fn random_permutation(n: usize, seed: u64) -> Self {
        let size = factorial(n);
        let mut dst: Vec<u64> = (0..size).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        dst.shuffle(&mut rng);
        let injections = dst
            .into_iter()
            .enumerate()
            .filter(|&(src, d)| src as u64 != d)
            .map(|(src, d)| Injection {
                round: 0,
                src: src as u64,
                dst: d,
            })
            .collect();
        Workload::from_injections("random-perm", n, injections)
    }

    /// Transpose-style fixed permutation: every PE `π` sends to `π⁻¹`
    /// at round 0 (the star-graph analogue of mesh transpose traffic;
    /// an involution, so traffic is perfectly symmetric). Self-inverse
    /// nodes are skipped.
    #[must_use]
    pub fn transpose(n: usize) -> Self {
        let mut injections = Vec::new();
        for r in 0..factorial(n) {
            let pi = unrank(r, n).expect("rank in range");
            let inv = rank(&pi.inverse());
            if inv != r {
                injections.push(Injection {
                    round: 0,
                    src: r,
                    dst: inv,
                });
            }
        }
        Workload::from_injections("transpose", n, injections)
    }

    /// Hot-spot traffic at round 0: each PE draws its destination —
    /// `hotspot` with probability `hot_pct`%, a uniformly random PE
    /// otherwise (so background traffic can still hit the hotspot by
    /// chance). Draws that land on the sender itself are skipped
    /// rather than redrawn, so the packet count can be slightly below
    /// `n!` (and the hotspot PE sends nothing at `hot_pct = 100`).
    ///
    /// # Panics
    /// Panics if `hot_pct > 100` or `hotspot ≥ n!`.
    #[must_use]
    pub fn hot_spot(n: usize, hotspot: u64, hot_pct: u32, seed: u64) -> Self {
        assert!(hot_pct <= 100, "hot_pct is a percentage");
        let size = factorial(n);
        assert!(hotspot < size, "hotspot rank out of range");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut injections = Vec::new();
        for src in 0..size {
            let dst = if rng.gen_range(0u32..100) < hot_pct {
                hotspot
            } else {
                rng.gen_range(0..size)
            };
            if dst != src {
                injections.push(Injection { round: 0, src, dst });
            }
        }
        Workload::from_injections(&format!("hotspot({hot_pct}%)"), n, injections)
    }

    /// Open-loop uniform traffic: for `rounds` rounds, every PE
    /// injects a packet with probability `rate_pct`% per round, to a
    /// uniformly random other PE. `rate_pct = 100` is full injection
    /// — one packet per PE per round — the saturation regime where
    /// queueing is unavoidable.
    ///
    /// # Panics
    /// Panics if `rate_pct > 100`.
    #[must_use]
    pub fn bernoulli_uniform(n: usize, rounds: u32, rate_pct: u32, seed: u64) -> Self {
        assert!(rate_pct <= 100, "rate_pct is a percentage");
        let size = factorial(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut injections = Vec::new();
        for round in 0..rounds {
            for src in 0..size {
                if rng.gen_range(0u32..100) < rate_pct {
                    let dst = rng.gen_range(0..size);
                    if dst != src {
                        injections.push(Injection { round, src, dst });
                    }
                }
            }
        }
        Workload::from_injections(&format!("uniform({rate_pct}%)"), n, injections)
    }

    /// Fixed-count uniform random traffic: exactly `pairs` packets,
    /// each with an independently uniform source and destination
    /// (`src ≠ dst`, redrawn on collision), all injected at round 0.
    ///
    /// Unlike [`Workload::bernoulli_uniform`] the generation cost is
    /// `O(pairs)` rather than `O(n!·rounds)`, which is what the
    /// differential suite and the engine benchmarks want: the same
    /// traffic shape at a size chosen independently of `n!`.
    #[must_use]
    pub fn uniform_pairs(n: usize, pairs: usize, seed: u64) -> Self {
        let size = factorial(n);
        debug_assert!(size >= 2, "S_n has at least two PEs for n >= 2");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut injections = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let src = rng.gen_range(0..size);
            let mut dst = rng.gen_range(0..size);
            while dst == src {
                dst = rng.gen_range(0..size);
            }
            injections.push(Injection { round: 0, src, dst });
        }
        Workload::from_injections(&format!("pairs({pairs})"), n, injections)
    }

    /// Stably merges per-tenant workloads into one shared-network
    /// workload. Part `j`'s injections are offset by its start round
    /// and tagged with owner `j`; the merge is **stable** — packets
    /// of the same round keep part order, and packets of the same
    /// part keep their own order — so each tenant sees exactly the
    /// injection sequence it would see alone, shifted in time. The
    /// returned owner map (one entry per packet of the merged
    /// workload, aligned with [`Workload::injections`]) is what
    /// [`crate::Network::run_partitioned`] attributes statistics by.
    ///
    /// # Panics
    /// Panics if a part targets a different star order.
    #[must_use]
    pub fn compose(name: &str, n: usize, parts: &[(&Workload, u32)]) -> (Workload, Vec<u32>) {
        let mut tagged: Vec<(Injection, u32)> = Vec::new();
        for (j, (w, offset)) in parts.iter().enumerate() {
            assert_eq!(w.n(), n, "part {j} targets S_{} not S_{n}", w.n());
            tagged.extend(w.injections().iter().map(|i| {
                (
                    Injection {
                        round: i.round + offset,
                        src: i.src,
                        dst: i.dst,
                    },
                    j as u32,
                )
            }));
        }
        tagged.sort_by_key(|(i, _)| i.round);
        let owner = tagged.iter().map(|&(_, j)| j).collect();
        let injections = tagged.into_iter().map(|(i, _)| i).collect();
        // Already round-sorted; the constructor's stable sort is a
        // no-op, so the owner map stays aligned.
        (Workload::from_injections(name, n, injections), owner)
    }

    /// The same injections shifted `offset` rounds later — the
    /// building block [`crate::Network::chain_phases`] uses to place a
    /// phase after its predecessor's quiescence round.
    #[must_use]
    pub fn shifted(&self, offset: u32) -> Self {
        let injections = self
            .injections
            .iter()
            .map(|i| Injection {
                round: i.round + offset,
                src: i.src,
                dst: i.dst,
            })
            .collect();
        Workload {
            name: self.name.clone(),
            n: self.n,
            injections,
        }
    }

    /// Workload name (used in tables and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Star order `n` the workload targets.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The injections, sorted by round.
    #[must_use]
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Number of packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// `true` if no packets are injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

/// A multi-phase workload with inject-after-quiescence barriers,
/// produced by [`crate::Network::chain_phases`].
///
/// Phase `k + 1`'s injections are scheduled strictly after the round
/// in which phase `k`'s last packet resolves (delivery or drop), so
/// at every phase boundary the network is completely empty. Running
/// [`workload`](Self::workload) therefore behaves, phase by phase,
/// exactly like running each phase alone — the temporal analogue of
/// the spatial isolation theorem for confined tenants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainedWorkload {
    /// The composed workload: all phases merged, each shifted to its
    /// start round. Run it like any other [`Workload`].
    pub workload: Workload,
    /// Round at which each phase begins injecting. `phase_starts[0]`
    /// is 0; `phase_starts[k + 1] = phase_starts[k] +
    /// phase_makespans[k] + 1`.
    pub phase_starts: Vec<u32>,
    /// Makespan of each phase run in isolation on its own clock (the
    /// round of its last packet resolution; 0 for an empty phase).
    pub phase_makespans: Vec<u32>,
    /// Phase index of each packet of [`workload`](Self::workload), in
    /// injection order — the owner map
    /// [`crate::Network::run_partitioned`] expects, so per-phase
    /// statistics of the chained run can be split out directly.
    pub owner: Vec<u32>,
}

impl ChainedWorkload {
    /// Number of phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phase_starts.len()
    }

    /// Total rounds the chain occupies: the round after the last
    /// phase's final resolution (0 for an empty chain). Equals the
    /// composed run's `makespan + 1` when the last phase is
    /// non-empty.
    #[must_use]
    pub fn total_rounds(&self) -> u32 {
        match (self.phase_starts.last(), self.phase_makespans.last()) {
            (Some(s), Some(m)) => s + m + 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_sweep_counts_match_lemma5() {
        // Along dimension k, '+' participants number n!·k/(k+1).
        let n = 5;
        for k in 1..n {
            let w = Workload::dimension_sweep(n, k, true);
            assert_eq!(w.len() as u64, factorial(n) * k as u64 / (k as u64 + 1));
            let wm = Workload::dimension_sweep(n, k, false);
            assert_eq!(wm.len(), w.len());
        }
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let w = Workload::random_permutation(4, 42);
        let mut seen = [false; 24];
        for inj in w.injections() {
            assert!(!seen[inj.dst as usize], "duplicate destination");
            seen[inj.dst as usize] = true;
            assert_ne!(inj.src, inj.dst);
        }
        // Deterministic per seed.
        assert_eq!(w, Workload::random_permutation(4, 42));
        assert_ne!(
            w.injections(),
            Workload::random_permutation(4, 43).injections()
        );
    }

    #[test]
    fn transpose_pairs_up() {
        let w = Workload::transpose(4);
        for inj in w.injections() {
            let pi = unrank(inj.src, 4).unwrap();
            assert_eq!(rank(&pi.inverse()), inj.dst);
        }
    }

    #[test]
    fn bernoulli_rate_bounds() {
        let zero = Workload::bernoulli_uniform(4, 10, 0, 1);
        assert!(zero.is_empty());
        let full = Workload::bernoulli_uniform(4, 10, 100, 1);
        // rate 100 injects every PE every round, minus skipped self-sends.
        assert!(full.len() as u64 >= 10 * 24 - 20);
        assert!(full
            .injections()
            .windows(2)
            .all(|w| w[0].round <= w[1].round));
    }

    #[test]
    fn uniform_pairs_sized_and_seeded() {
        let w = Workload::uniform_pairs(4, 100, 9);
        assert_eq!(w.len(), 100);
        assert!(w.injections().iter().all(|i| i.src != i.dst));
        assert!(w.injections().iter().all(|i| i.round == 0));
        assert_eq!(w, Workload::uniform_pairs(4, 100, 9));
        assert_ne!(
            w.injections(),
            Workload::uniform_pairs(4, 100, 10).injections()
        );
    }

    #[test]
    fn hot_spot_concentrates() {
        let hot = Workload::hot_spot(5, 7, 100, 3);
        assert!(hot.injections().iter().all(|i| i.dst == 7));
        let none = Workload::hot_spot(5, 7, 0, 3);
        let frac = none.injections().iter().filter(|i| i.dst == 7).count();
        assert!(frac < 10, "0% hot traffic should rarely hit the hotspot");
    }
}
