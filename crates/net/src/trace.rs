//! Record and replay network runs through the `sg-trace` JSONL
//! format.
//!
//! [`record`] / [`record_partitioned`] run a workload with an
//! [`EventLog`] attached and package the result as a self-describing
//! [`Trace`]: header (schema version, engine, config fingerprint,
//! seed, drop count), packet preamble (one line per injection — what
//! events alone cannot reconstruct), and the verbatim event stream.
//! [`replay`] inverts it: from a parsed trace alone it rebuilds
//! [`TrafficStats`] — and per-tenant stats for partitioned runs —
//! **byte-identical** to what the live run returned, by feeding the
//! replayed [`sg_obs::ReplayCounters`] and preamble-derived
//! [`PacketRecord`]s back through [`TrafficStats::from_records`]. The
//! round-trip suite asserts that equality across the full `n ≤ 5`
//! differential matrix.

use crate::network::{Engine, Network};
use crate::packet::{PacketOutcome, PacketRecord};
use crate::routing::RoutingPolicy;
use crate::stats::{RunCounters, TrafficStats};
use crate::workload::Workload;
use sg_obs::{
    replay_trace, EventLog, ReplayCounters, ReplayOutcome, Trace, TraceError, TraceHeader,
    TracePacket, SCHEMA_VERSION,
};

/// The header label for an [`Engine`].
#[must_use]
pub fn engine_label(engine: Engine) -> &'static str {
    match engine {
        Engine::Fast => "fast",
        Engine::Reference => "reference",
    }
}

/// An opaque-but-stable description of the network's knobs, written
/// into the trace header so two logs can be checked for "recorded
/// under the same configuration" before diffing.
#[must_use]
pub fn fingerprint(net: &Network) -> String {
    let c = net.config();
    let flow = match c.flow_control {
        crate::FlowControl::TailDrop => "tail_drop",
        crate::FlowControl::CreditBased => "credit",
        crate::FlowControl::EscapeChannel => "escape",
    };
    let cap = c
        .queue_capacity
        .map_or_else(|| "none".to_string(), |v| v.to_string());
    format!(
        "s{};latency={};cap={cap};flow={flow};max_rounds={};faults={}n+{}l",
        net.n(),
        c.link_latency,
        c.max_rounds,
        net.faults().dead_node_count(),
        net.faults().dead_link_count(),
    )
}

/// Package a finished [`EventLog`] (plus the workload it watched) as
/// a [`Trace`]. This is the primitive under [`record`]; use it
/// directly when you need control over the log (e.g. a
/// capacity-bounded capture, whose drop count lands in the header and
/// makes [`replay`] refuse the file).
#[must_use]
pub fn assemble(
    net: &Network,
    workload: &Workload,
    engine: Engine,
    seed: u64,
    owner: Option<&[u32]>,
    jobs: usize,
    log: &EventLog,
) -> Trace {
    let packets: Vec<TracePacket> = workload
        .injections()
        .iter()
        .enumerate()
        .map(|(pid, inj)| TracePacket {
            pid: pid as u32,
            src: inj.src,
            dst: inj.dst,
            round: inj.round,
            job: owner.map(|o| o[pid]),
        })
        .collect();
    Trace {
        header: TraceHeader {
            schema: SCHEMA_VERSION,
            engine: engine_label(engine).to_string(),
            n: net.n() as u32,
            seed,
            fingerprint: fingerprint(net),
            jobs: jobs as u32,
            packets: packets.len() as u64,
            events: log.events().len() as u64,
            dropped: log.dropped(),
            sched_profile: None,
        },
        packets,
        events: log.events().to_vec(),
    }
}

/// Run `workload` on the chosen engine with an unbounded event log
/// attached, and return the live statistics next to the recorded
/// trace. `seed` is stamped into the header (the `Workload` does not
/// remember what seeded it).
///
/// # Panics
/// Panics if the workload targets a different star order.
#[must_use]
pub fn record(
    net: &Network,
    workload: &Workload,
    policy: &dyn RoutingPolicy,
    engine: Engine,
    seed: u64,
) -> (TrafficStats, Trace) {
    let mut log = EventLog::new();
    let stats = net.run_probed(workload, policy, engine, &mut log);
    let trace = assemble(net, workload, engine, seed, None, 0, &log);
    (stats, trace)
}

/// [`record`] for a partitioned multi-tenant run (fast engine): one
/// policy and escape flag per job, the owner map in the packet
/// preamble, and fully attributed per-job statistics next to the
/// totals.
///
/// # Panics
/// As [`Network::run_partitioned_with_escape`].
#[must_use]
pub fn record_partitioned(
    net: &Network,
    workload: &Workload,
    policies: &[&dyn RoutingPolicy],
    owner: &[u32],
    escape: &[bool],
    seed: u64,
) -> (TrafficStats, Vec<TrafficStats>, Trace) {
    let mut log = EventLog::new();
    let (total, per_job) =
        net.run_partitioned_with_escape_probed(workload, policies, owner, escape, &mut log);
    let trace = assemble(
        net,
        workload,
        Engine::Fast,
        seed,
        Some(owner),
        policies.len(),
        &log,
    );
    (total, per_job, trace)
}

/// Statistics reconstructed from a trace alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedStats {
    /// Whole-run statistics — byte-identical to the live run's.
    pub total: TrafficStats,
    /// Per-job statistics for a partitioned trace (empty otherwise),
    /// byte-identical to the live run's.
    pub per_job: Vec<TrafficStats>,
}

fn counters(c: &ReplayCounters) -> RunCounters {
    RunCounters {
        last_event: c.last_event,
        total_wait_rounds: c.total_wait_rounds,
        injection_stall_rounds: c.injection_stall_rounds,
        peak_edge: c.peak_edge,
        peak_node: c.peak_node,
        forwarded: c.forwarded,
        escape_diversions: c.escape_diversions,
        escape_forwarded: c.escape_forwarded,
        peak_escape: c.peak_escape,
    }
}

fn outcome(o: ReplayOutcome) -> PacketOutcome {
    match o {
        ReplayOutcome::Delivered { round, hops } => PacketOutcome::Delivered { round, hops },
        ReplayOutcome::DroppedFault { round } => PacketOutcome::DroppedFault { round },
        ReplayOutcome::DroppedUnreachable { round } => PacketOutcome::DroppedUnreachable { round },
        ReplayOutcome::DroppedOverflow { round } => PacketOutcome::DroppedOverflow { round },
        ReplayOutcome::Stranded => PacketOutcome::Stranded,
        ReplayOutcome::Pending => unreachable!("finish() rejects pending packets"),
    }
}

/// Reconstruct a run's statistics from a parsed trace alone.
///
/// # Errors
/// Refuses truncated logs ([`TraceError::DroppedEvents`] when the
/// recorder's capacity bound dropped events) and streams that fail
/// replay invariants ([`TraceError::Inconsistent`]).
pub fn replay(trace: &Trace) -> Result<ReplayedStats, TraceError> {
    let run = replay_trace(trace)?;
    let n = trace.header.n as usize;
    let records: Vec<PacketRecord> = trace
        .packets
        .iter()
        .zip(&run.outcomes)
        .map(|(p, &o)| PacketRecord {
            src: p.src,
            dst: p.dst,
            inject_round: p.round,
            outcome: outcome(o),
        })
        .collect();
    let jobs = trace.header.jobs as usize;
    let per_job = if jobs > 0 {
        let mut buckets: Vec<Vec<PacketRecord>> = vec![Vec::new(); jobs];
        for (p, rec) in trace.packets.iter().zip(&records) {
            buckets[p.job.expect("validated by replay_trace") as usize].push(*rec);
        }
        buckets
            .into_iter()
            .zip(&run.per_job)
            .map(|(recs, c)| TrafficStats::from_records(n, recs, counters(c)))
            .collect()
    } else {
        Vec::new()
    };
    Ok(ReplayedStats {
        total: TrafficStats::from_records(n, records, counters(&run.total)),
        per_job,
    })
}

/// Parse and replay a JSONL trace in one step.
///
/// # Errors
/// As [`Trace::parse`] and [`replay`].
pub fn replay_jsonl(text: &str) -> Result<ReplayedStats, TraceError> {
    replay(&Trace::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::GreedyRouting;

    #[test]
    fn recorded_run_replays_byte_identical() {
        let net = Network::new(4);
        let w = Workload::random_permutation(4, 0xBEEF);
        let (live, trace) = record(&net, &w, &GreedyRouting, Engine::Fast, 0xBEEF);
        let text = trace.to_jsonl();
        let back = replay_jsonl(&text).expect("replays");
        assert_eq!(back.total, live, "replayed stats must be byte-identical");
        assert!(back.per_job.is_empty());
    }

    #[test]
    fn capped_log_is_refused_with_drop_count() {
        let net = Network::new(4);
        let w = Workload::random_permutation(4, 7);
        let mut log = EventLog::with_capacity(10);
        let _ = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut log);
        assert!(log.dropped() > 0, "cap must actually truncate");
        let trace = assemble(&net, &w, Engine::Fast, 7, None, 0, &log);
        assert_eq!(trace.header.dropped, log.dropped());
        let parsed = Trace::parse(&trace.to_jsonl()).expect("parses fine — replay refuses");
        assert_eq!(
            replay(&parsed),
            Err(TraceError::DroppedEvents {
                dropped: log.dropped()
            })
        );
    }
}
