//! The round-based discrete-event interconnect simulator — two
//! engines, one semantics.
//!
//! Model: one PE per star node (addressed by Lehmer rank). Each PE
//! owns `n−1` output queues, one per generator link. A round has four
//! deterministic phases:
//!
//! 1. **Arrivals** — flits finishing a link traversal land at the far
//!    PE; a flit at its destination is delivered, any other is
//!    enqueued on the output queue its route names next (or the queue
//!    the adaptive policy picks, see [`crate::AdaptiveRouting`]).
//! 2. **Injections** — packets stalled for credit retry in FIFO
//!    order, then this round's workload packets enter their source
//!    PE's queues.
//! 3. **Arbitration** — every link forwards **at most one flit per
//!    round** (FIFO head of its queue); the flit is in flight for
//!    [`NetConfig::link_latency`] rounds. Under
//!    [`FlowControl::CreditBased`] a head flit stalls in place while
//!    the downstream PE has no free buffer credit.
//! 4. **Accounting** — every flit still queued is charged one wait
//!    round; every packet still stalled pre-injection is charged one
//!    stall round.
//!
//! PEs are scanned in rank order and queues in generator order, so a
//! run is a pure function of `(workload, policy, config, faults)`.
//!
//! ## The two engines
//!
//! [`Engine::Reference`] is the transparent oracle: a `VecDeque` per
//! queue, and an arbitration phase that scans *every* queue every
//! round — obviously correct, and `O(n!·(n−1))` per round no matter
//! how idle the network is.
//!
//! [`Engine::Fast`] (the default behind [`Network::run`]) is the
//! production engine:
//!
//! * an **active-queue worklist** — an occupancy bitmap scanned a
//!   word at a time — so arbitration touches only non-empty queues,
//!   in exactly the reference scan order;
//! * **flat slab-allocated ring-buffer queues** — all queue storage
//!   lives in one paged slab with a free list, no per-packet boxing
//!   and no per-queue allocation churn;
//! * **batched arrivals keyed by round** — flits landing in round `r`
//!   are drained as one batch from a `link_latency + 1` lane ring;
//! * **idle-round skipping** — when nothing is queued, time jumps
//!   straight to the next injection or landing round.
//!
//! The two engines are **observationally identical**: for any
//! `(workload, policy, config, faults)` they produce byte-identical
//! [`TrafficStats`] — enforced by `tests/differential.rs` across
//! every workload × policy × fault-plan axis. Queue capacity is
//! enforced at enqueue time (tail drop) or as stalling buffer credits
//! (see [`FlowControl`]); faults are consulted whenever a flit is
//! about to take a link (see [`crate::FaultPlan`]).
//!
//! ## Observability
//!
//! Both engines are generic over an [`sg_obs::Probe`] and emit typed
//! [`sg_obs::Event`]s at every state transition (enqueues, forwards,
//! stalls, diversions, drops, deliveries), in reference-scan order —
//! the differential suite asserts the two engines produce *identical
//! event streams*, not just identical stats. Round brackets are lazy:
//! `RoundBegin` precedes a round's first event and `RoundEnd` closes
//! it at accounting time, so a round in which nothing observable
//! happens (only in-flight flits crossing a multi-round link) emits
//! nothing — which is exactly what keeps the fast engine's idle-round
//! skipping invisible to probes. The default path runs with
//! [`sg_obs::NullProbe`], whose `ENABLED = false` constant folds
//! every emission site out of the monomorphized loop: attach nothing,
//! pay nothing. Attach probes via [`Network::run_probed`] /
//! [`Network::run_partitioned_probed`]; profile the fast engine's
//! phases via [`Network::run_profiled`] (with a clock injected at
//! construction through [`Network::with_clock`], so profiled runs
//! stay deterministic and testable).

use crate::fault::{FaultPlan, FaultPolicy};
use crate::packet::{HopRecord, PacketId, PacketOutcome, PacketRecord};
use crate::routing::RoutingPolicy;
use crate::stats::{RunCounters, TrafficStats};
use crate::workload::{ChainedWorkload, Injection, Workload};
use rayon::prelude::*;
use sg_core::convert::convert_s_d;
use sg_core::lemma3::{minus_swap_symbols, plus_swap_symbols};
use sg_core::paths::transposition_generators;
use sg_obs::{DropReason, Event, NullProbe, PhaseProfile, Probe, StallKind};
use sg_perm::factorial::factorial;
use sg_perm::lehmer::unrank;
use sg_perm::Perm;
use sg_star::distance::distance;
use std::collections::{HashMap, VecDeque};

/// What happens when a packet heads for a full downstream buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowControl {
    /// Enqueue onto a full queue drops the packet
    /// ([`crate::PacketOutcome::DroppedOverflow`]). The classic lossy
    /// model; [`NetConfig::queue_capacity`] bounds each queue.
    #[default]
    TailDrop,
    /// Credit-based (shared-buffer virtual cut-through): each PE owns
    /// a pool of `queue_capacity × (n−1)` buffer slots shared by its
    /// output queues. A flit is forwarded over a link only when the
    /// downstream PE has a free slot (reserved at forward time,
    /// released on delivery), and a packet enters the network only
    /// when its source PE has one — otherwise it **stalls at the
    /// source** and retries every round, FIFO. Nothing is ever
    /// tail-dropped; `queue_capacity = None` means infinite credits.
    CreditBased,
    /// [`FlowControl::CreditBased`] plus a deadlock-free **escape
    /// partition** per PE. The adaptive partition is the identical
    /// credit pool; on top of it every PE reserves one escape buffer
    /// slot per *residual-hop class* (Gopal's structured buffer pool,
    /// graded by hops left on the packet's pinned escape route). A
    /// head flit stalled for adaptive credit may **divert**: it claims
    /// the escape slot of its residual class, is re-routed onto the
    /// canonical dimension-order embedding path (BFS over the
    /// surviving subgraph when faults are installed) and from then on
    /// travels the escape channel, which has priority on every link
    /// and forwards lowest residual class first. A class-`k` flit
    /// moving to the next PE needs only the class-`k−1` slot there, so
    /// the slot-dependency relation is strictly decreasing — acyclic —
    /// and on a fault-free network **no packet is ever
    /// [`crate::PacketOutcome::Stranded`]**: the configurations where
    /// `CreditBased` deadlocks drain to completion (the tiny-pool
    /// sweep in `tests/deadlock.rs` proves the contrast). Diversions
    /// are counted in [`crate::TrafficStats::escape_diversions`].
    EscapeChannel,
}

/// Which simulation engine executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Worklist + slab ring buffers + batched arrivals (the default).
    #[default]
    Fast,
    /// The scan-everything oracle the differential suite compares
    /// against.
    Reference,
}

/// Tunable knobs of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Rounds one link traversal takes (≥ 1).
    pub link_latency: u32,
    /// Per-output-queue capacity; `None` = unbounded (the default —
    /// packet conservation then means every packet is delivered).
    /// Under [`FlowControl::CreditBased`] this sizes the shared
    /// per-PE buffer pool instead (`capacity × (n−1)` slots).
    pub queue_capacity: Option<u32>,
    /// What a full downstream buffer does: drop or stall.
    pub flow_control: FlowControl,
    /// Safety valve: packets unresolved after this many rounds are
    /// recorded as [`PacketOutcome::Stranded`]. (A credit deadlock —
    /// possible when tiny pools form a cycle of full PEs — is
    /// detected as soon as the network provably cannot move again and
    /// strands the survivors immediately instead of spinning to this
    /// cap.)
    pub max_rounds: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link_latency: 1,
            queue_capacity: None,
            flow_control: FlowControl::TailDrop,
            max_rounds: 1_000_000,
        }
    }
}

/// One packet that outlived its tenant's sub-star release — evidence
/// of a dirty region handoff, produced by
/// [`Network::region_quiescence_violations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuiescenceViolation {
    /// Owning job (index into the run's policy/release tables).
    pub job: u32,
    /// Offending packet id.
    pub pid: u32,
    /// Round the packet resolved (delivery or drop), or `None` for a
    /// stranded packet that never resolved at all.
    pub resolved: Option<u32>,
    /// Round the scheduler returned the job's sub-star. Quiescence
    /// requires `resolved < release`.
    pub release: u32,
}

/// A simulated `S_n` interconnect: topology + configuration + faults.
///
/// The struct is immutable; [`Network::run`] builds fresh per-run
/// state, so one `Network` can drive many workloads.
///
/// ```
/// use sg_net::{GreedyRouting, Network, Workload};
/// let net = Network::new(4);
/// let w = Workload::random_permutation(4, 0xC0FFEE);
/// let stats = net.run(&w, &GreedyRouting);
/// assert_eq!(stats.delivered, stats.injected); // nothing drops
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    node_count: usize,
    config: NetConfig,
    faults: FaultPlan,
    /// `neighbor[u·(n−1) + (g−1)]` = rank of `u`'s neighbor via `g`.
    neighbor: Vec<u32>,
    /// Monotonic counter for [`Network::run_profiled`]; `None` means
    /// wall-clock nanoseconds. Never consulted outside profiled runs.
    clock: Option<fn() -> u64>,
}

impl Network {
    /// Builds the `S_n` interconnect with default configuration and no
    /// faults.
    ///
    /// # Panics
    /// Panics for `n` outside `2..=9` (the node table is materialized,
    /// `9! = 362 880` PEs).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            (2..=9).contains(&n),
            "simulator materializes n! PEs; supported for 2 <= n <= 9"
        );
        let node_count = factorial(n) as usize;
        let gens = n - 1;
        // Neighbor table, built in parallel: one row per PE.
        let rows: Vec<Vec<u32>> = (0..node_count)
            .into_par_iter()
            .map(|u| {
                let p = unrank(u as u64, n).expect("rank in range");
                (1..n)
                    .map(|g| sg_perm::lehmer::rank(&p.with_slots_swapped(0, g)) as u32)
                    .collect()
            })
            .collect();
        let mut neighbor = Vec::with_capacity(node_count * gens);
        for row in rows {
            neighbor.extend(row);
        }
        Network {
            n,
            node_count,
            config: NetConfig::default(),
            faults: FaultPlan::none(),
            neighbor,
            clock: None,
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: NetConfig) -> Self {
        assert!(config.link_latency >= 1, "links need at least one round");
        self.config = config;
        self
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Installs the monotonic counter [`Network::run_profiled`]
    /// samples around the fast engine's phases. Defaults to
    /// [`sg_obs::wall_clock`] (nanoseconds); inject
    /// [`sg_obs::tick_clock`] for a deterministic counting clock
    /// (every phase delta becomes exactly 1, so profile totals are
    /// exact round counts — testable). The clock never influences the
    /// simulation itself: profiled stats stay byte-identical.
    #[must_use]
    pub fn with_clock(mut self, clock: fn() -> u64) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Star order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of PEs (`n!`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The installed fault plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    #[inline]
    fn neighbor_of(&self, u: u32, g: usize) -> u32 {
        self.neighbor[u as usize * (self.n - 1) + (g - 1)]
    }

    /// Per-PE buffer pool under credit-based flow control; `None`
    /// means credits are not limiting (tail-drop mode, or unbounded
    /// capacity).
    fn credit_pool(&self) -> Option<u64> {
        match self.config.flow_control {
            FlowControl::TailDrop => None,
            // The escape mode's adaptive partition is *exactly* the
            // credit-based pool, so deadlock-prone configurations stay
            // comparable between the two modes.
            FlowControl::CreditBased | FlowControl::EscapeChannel => self
                .config
                .queue_capacity
                .map(|cap| u64::from(cap) * (self.n as u64 - 1)),
        }
    }

    /// Runs `workload` under `policy` on the default [`Engine::Fast`]
    /// and returns the full statistics.
    ///
    /// Routes for all packets are precomputed in parallel (adaptive
    /// policies route hop-by-hop instead); the round loop itself is
    /// sequential and deterministic.
    ///
    /// # Panics
    /// Panics if the workload targets a different star order.
    #[must_use]
    pub fn run(&self, workload: &Workload, policy: &dyn RoutingPolicy) -> TrafficStats {
        self.run_with(workload, policy, Engine::Fast)
    }

    /// Composes `phases` into one workload with
    /// inject-after-quiescence barriers: phase `k + 1` starts
    /// strictly after the round in which phase `k`'s last packet
    /// resolves (delivery or drop), so the network is completely
    /// empty at every phase boundary.
    ///
    /// Each phase is first run alone (fast engine, `policy`) to
    /// measure its isolated makespan; phase `k + 1` then starts at
    /// `start_k + makespan_k + 1` (an empty phase advances the clock
    /// by one round). Because the network state at each boundary is
    /// empty and the simulator is deterministic, the composed run
    /// behaves per phase exactly like the isolated runs shifted in
    /// time — the temporal analogue of the spatial isolation theorem;
    /// `tests/phases.rs` asserts byte-identical per-phase statistics
    /// on both engines. This is the primitive `sg-coll` compiles
    /// multi-phase collectives onto.
    ///
    /// The returned [`ChainedWorkload`] carries the phase start
    /// rounds, the isolated makespans, and an owner map (phase index
    /// per packet) ready for [`Network::run_partitioned`].
    ///
    /// # Panics
    /// Panics if a phase targets a different star order, or if a
    /// phase strands packets under this network's flow control (a
    /// stranded packet never resolves, so "after quiescence" would be
    /// meaningless).
    #[must_use]
    pub fn chain_phases(
        &self,
        name: &str,
        phases: &[Workload],
        policy: &dyn RoutingPolicy,
    ) -> ChainedWorkload {
        let mut phase_starts = Vec::with_capacity(phases.len());
        let mut phase_makespans = Vec::with_capacity(phases.len());
        let mut offset = 0u32;
        for (k, phase) in phases.iter().enumerate() {
            assert_eq!(
                phase.n(),
                self.n,
                "phase {k} targets S_{} not S_{}",
                phase.n(),
                self.n
            );
            let makespan = if phase.injections().is_empty() {
                0
            } else {
                let stats = self.run(phase, policy);
                assert_eq!(
                    stats.stranded,
                    0,
                    "phase {k} ({:?}) strands packets and never quiesces",
                    phase.name()
                );
                stats.makespan
            };
            phase_starts.push(offset);
            phase_makespans.push(makespan);
            offset = offset + makespan + 1;
        }
        let parts: Vec<(&Workload, u32)> =
            phases.iter().zip(phase_starts.iter().copied()).collect();
        let (workload, owner) = Workload::compose(name, self.n, &parts);
        ChainedWorkload {
            workload,
            phase_starts,
            phase_makespans,
            owner,
        }
    }

    /// Runs a multi-tenant `workload` and splits the statistics by
    /// job: `owner[pid]` names the job each packet belongs to (see
    /// [`Workload::compose`]) and `policies[j]` routes job `j`'s
    /// packets — per-job routing (and so per-job adaptivity) over one
    /// shared interconnect. Returns the whole-network stats plus one
    /// **fully attributed** [`TrafficStats`] per job, tracked online
    /// by the fast engine:
    ///
    /// * per-packet fields (outcomes, latencies, histogram) come from
    ///   the job's own packet records;
    /// * `total_wait_rounds` / `injection_stall_rounds` charge each
    ///   queued or stalled flit to its owner;
    /// * `forwarded_flits` counts the job's link traversals;
    /// * `peak_edge_occupancy` / `peak_node_occupancy` are observed at
    ///   the job's own enqueues — the depth of the queue (and PE) a
    ///   flit of the job just joined, foreign flits included. On a
    ///   sub-star the job has to itself they equal the isolated-run
    ///   peaks; under cross-job sharing they measure interference.
    ///
    /// All rounds are global; [`TrafficStats::rebased`] shifts a
    /// job's stats to its own clock for comparison against an
    /// isolated run.
    ///
    /// # Panics
    /// Panics if `owner` is not one entry per packet or names a job
    /// `>= policies.len()`.
    #[must_use]
    pub fn run_partitioned(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
    ) -> (TrafficStats, Vec<TrafficStats>) {
        self.run_partitioned_inner(workload, policies, owner, None, None, &mut NullProbe)
    }

    /// [`Network::run_partitioned`] with a probe attached: the probe
    /// sees the run's full event stream (use e.g.
    /// [`sg_obs::NetProbe::with_tenants`] with the same owner map for
    /// per-tenant in-flight gauges). Per-job and total statistics are
    /// byte-identical to the unprobed run.
    ///
    /// # Panics
    /// As [`Network::run_partitioned`].
    #[must_use]
    pub fn run_partitioned_probed<P: Probe>(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
        probe: &mut P,
    ) -> (TrafficStats, Vec<TrafficStats>) {
        self.run_partitioned_inner(workload, policies, owner, None, None, probe)
    }

    /// [`Network::run_partitioned`] with per-job escape eligibility:
    /// under [`FlowControl::EscapeChannel`], only packets of jobs with
    /// `escape[j] == true` may divert onto the escape channel; opted-
    /// out jobs behave exactly as under [`FlowControl::CreditBased`]
    /// (and can therefore still deadlock and strand — mixing opt-ins
    /// trades the global deadlock-freedom guarantee for per-tenant
    /// control). Under any other flow control the flags are inert.
    ///
    /// # Panics
    /// As [`Network::run_partitioned`], plus if `escape` is not one
    /// flag per job.
    #[must_use]
    pub fn run_partitioned_with_escape(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
        escape: &[bool],
    ) -> (TrafficStats, Vec<TrafficStats>) {
        assert_eq!(
            escape.len(),
            policies.len(),
            "escape eligibility must name every job"
        );
        self.run_partitioned_inner(
            workload,
            policies,
            owner,
            Some(escape),
            None,
            &mut NullProbe,
        )
    }

    /// [`Network::run_partitioned_with_escape`] with a probe attached:
    /// the probe sees the run's full event stream and the statistics
    /// are byte-identical to the unprobed run. This is the entry point
    /// the drain-aware scheduler co-simulates through.
    ///
    /// # Panics
    /// As [`Network::run_partitioned_with_escape`].
    #[must_use]
    pub fn run_partitioned_with_escape_probed<P: Probe>(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
        escape: &[bool],
        probe: &mut P,
    ) -> (TrafficStats, Vec<TrafficStats>) {
        assert_eq!(
            escape.len(),
            policies.len(),
            "escape eligibility must name every job"
        );
        self.run_partitioned_inner(workload, policies, owner, Some(escape), None, probe)
    }

    /// The multi-tenant run on the **reference engine**: same
    /// per-packet routes, per-job escape eligibility, and round
    /// semantics as [`Network::run_partitioned_with_escape`], executed
    /// by the scan-everything oracle. Returns the whole-network
    /// statistics only (per-job attribution is a fast-engine
    /// feature); the differential suite asserts they are
    /// byte-identical to the fast engine's totals, which is what makes
    /// a quiescence violation a hard error *in both engines* rather
    /// than a fast-path artifact.
    ///
    /// # Panics
    /// As [`Network::run_partitioned_with_escape`].
    #[must_use]
    pub fn run_partitioned_reference<P: Probe>(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
        escape: &[bool],
        probe: &mut P,
    ) -> TrafficStats {
        assert_eq!(
            escape.len(),
            policies.len(),
            "escape eligibility must name every job"
        );
        let (inj, routes, mut pkts) = self.prepare_multi(workload, policies, owner);
        for (pkt, &j) in pkts.iter_mut().zip(owner) {
            pkt.may_escape = escape[j as usize];
        }
        ReferenceSim::new(self, inj, routes, pkts, probe).run()
    }

    /// Collects every region-handoff violation of a finished
    /// multi-tenant run: packets of job `j` (per `owner`) that were
    /// still unresolved — queued, in flight, stalled, or holding a
    /// credit/escape slot — at round `release[j]`, the round the
    /// scheduler returned the job's sub-star. A delivered or dropped
    /// packet frees every resource it holds at its resolution round,
    /// so "resolved strictly before the release round" is exactly
    /// "the region is quiescent when the successor can first inject";
    /// a stranded packet never resolves and is always a violation.
    ///
    /// The check reads only [`TrafficStats::packets`], which both
    /// engines produce byte-identically (differential suite), so the
    /// verdict is engine-independent by construction.
    ///
    /// # Panics
    /// Panics if `owner` does not cover every packet or names a job
    /// without a release round.
    #[must_use]
    pub fn region_quiescence_violations(
        stats: &TrafficStats,
        owner: &[u32],
        release: &[u32],
    ) -> Vec<QuiescenceViolation> {
        assert_eq!(
            owner.len(),
            stats.packets.len(),
            "owner map must cover every packet"
        );
        let mut out = Vec::new();
        for (pid, (rec, &j)) in stats.packets.iter().zip(owner).enumerate() {
            let released = release[j as usize];
            let resolved = match rec.outcome {
                PacketOutcome::Delivered { round, .. }
                | PacketOutcome::DroppedFault { round }
                | PacketOutcome::DroppedUnreachable { round }
                | PacketOutcome::DroppedOverflow { round } => Some(round),
                PacketOutcome::Stranded => None,
            };
            if resolved.is_none_or(|r| r >= released) {
                out.push(QuiescenceViolation {
                    job: j,
                    pid: pid as u32,
                    resolved,
                    release: released,
                });
            }
        }
        out
    }

    /// [`Network::region_quiescence_violations`] as a hard error: a
    /// dirty sub-star handoff — any tenant flit still owning queue,
    /// credit, or escape state at its release round — panics with the
    /// offending job, packet, and rounds. `Drained` release schedules
    /// pass by construction; `Declared` schedules whose tenants
    /// under-declare fail here instead of silently perturbing the
    /// successor.
    ///
    /// # Panics
    /// Panics on the first violation (and as
    /// [`Network::region_quiescence_violations`]).
    pub fn assert_region_quiescent(stats: &TrafficStats, owner: &[u32], release: &[u32]) {
        let violations = Self::region_quiescence_violations(stats, owner, release);
        assert!(
            violations.is_empty(),
            "dirty sub-star handoff: {} tenant flit(s) outlived their release round; first: {:?}",
            violations.len(),
            violations[0]
        );
    }

    fn run_partitioned_inner<P: Probe>(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
        escape: Option<&[bool]>,
        trace: Option<&mut Vec<Vec<HopRecord>>>,
        probe: &mut P,
    ) -> (TrafficStats, Vec<TrafficStats>) {
        let jobs = policies.len();
        let (inj, routes, mut pkts) = self.prepare_multi(workload, policies, owner);
        if let Some(esc) = escape {
            for (pkt, &j) in pkts.iter_mut().zip(owner) {
                pkt.may_escape = esc[j as usize];
            }
        }
        let mut sim = FastSim::new(self, inj, routes, pkts, probe);
        sim.attr = Some(JobAttribution::new(owner, jobs));
        let (total, counters, _) = sim.run(trace);
        let counters = counters.expect("attribution was installed");
        let mut buckets: Vec<Vec<PacketRecord>> = vec![Vec::new(); jobs];
        for (rec, &j) in total.packets.iter().zip(owner) {
            buckets[j as usize].push(*rec);
        }
        let per_job = buckets
            .into_iter()
            .zip(counters)
            .map(|(records, c)| TrafficStats::from_records(self.n, records, c))
            .collect();
        (total, per_job)
    }

    /// Runs `workload` under `policy` on the chosen engine. Both
    /// engines produce byte-identical [`TrafficStats`]; the reference
    /// engine exists as the oracle for the differential suite (and
    /// for debugging the fast one).
    ///
    /// # Panics
    /// Panics if the workload targets a different star order.
    #[must_use]
    pub fn run_with(
        &self,
        workload: &Workload,
        policy: &dyn RoutingPolicy,
        engine: Engine,
    ) -> TrafficStats {
        self.run_probed(workload, policy, engine, &mut NullProbe)
    }

    /// Runs `workload` under `policy` on the chosen engine with a
    /// probe attached: `probe` receives the run's full
    /// [`sg_obs::Event`] stream in deterministic reference-scan order
    /// — both engines deliver the *same* stream. The returned
    /// statistics are byte-identical to the unprobed run (asserted by
    /// the differential suite); the default [`NullProbe`] costs
    /// nothing at all.
    ///
    /// # Panics
    /// Panics if the workload targets a different star order.
    #[must_use]
    pub fn run_probed<P: Probe>(
        &self,
        workload: &Workload,
        policy: &dyn RoutingPolicy,
        engine: Engine,
        probe: &mut P,
    ) -> TrafficStats {
        match engine {
            Engine::Fast => self.run_fast(workload, policy, None, probe),
            Engine::Reference => {
                let (inj, routes, pkts) = self.prepare(workload, policy);
                ReferenceSim::new(self, inj, routes, pkts, probe).run()
            }
        }
    }

    /// Runs `workload` on the fast engine with the self-profiler
    /// armed: returns the usual statistics plus a [`PhaseProfile`]
    /// splitting each executed round into its arrivals / injections /
    /// arbitration / accounting phases, measured with the clock from
    /// [`Network::with_clock`] (wall-clock nanoseconds by default).
    /// The clock feeds only the profile — the statistics are
    /// byte-identical to an unprofiled run.
    ///
    /// # Panics
    /// Panics if the workload targets a different star order.
    #[must_use]
    pub fn run_profiled(
        &self,
        workload: &Workload,
        policy: &dyn RoutingPolicy,
    ) -> (TrafficStats, PhaseProfile) {
        let (inj, routes, pkts) = self.prepare(workload, policy);
        let mut probe = NullProbe;
        let mut sim = FastSim::new(self, inj, routes, pkts, &mut probe);
        sim.profile = Some((
            self.clock.unwrap_or(sg_obs::wall_clock),
            PhaseProfile::default(),
        ));
        let (stats, _, profile) = sim.run(None);
        (stats, profile.expect("profiler was armed"))
    }

    /// Like [`Network::run`], but additionally returns one hop trace
    /// per packet (every link traversal, in order) — the ground truth
    /// the adaptive-routing validity suite audits against the
    /// surviving subgraph. Runs on [`Engine::Fast`].
    ///
    /// # Panics
    /// Panics if the workload targets a different star order.
    #[must_use]
    pub fn run_traced(
        &self,
        workload: &Workload,
        policy: &dyn RoutingPolicy,
    ) -> (TrafficStats, Vec<Vec<HopRecord>>) {
        let mut traces = vec![Vec::new(); workload.len()];
        let stats = self.run_fast(workload, policy, Some(&mut traces), &mut NullProbe);
        (stats, traces)
    }

    /// [`Network::run_partitioned`] plus one hop trace per packet —
    /// the containment-audit entry point: a tenant's isolation claim
    /// is checkable hop by hop (`sg-sched` asserts embedding-routed
    /// job traffic never leaves its sub-star) in the same run that
    /// yields the per-job statistics.
    ///
    /// # Panics
    /// As [`Network::run_partitioned`].
    #[must_use]
    pub fn run_traced_partitioned(
        &self,
        workload: &Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
    ) -> (TrafficStats, Vec<TrafficStats>, Vec<Vec<HopRecord>>) {
        let mut traces = vec![Vec::new(); workload.len()];
        let (total, per_job) = self.run_partitioned_inner(
            workload,
            policies,
            owner,
            None,
            Some(&mut traces),
            &mut NullProbe,
        );
        (total, per_job, traces)
    }

    fn run_fast<P: Probe>(
        &self,
        workload: &Workload,
        policy: &dyn RoutingPolicy,
        trace: Option<&mut Vec<Vec<HopRecord>>>,
        probe: &mut P,
    ) -> TrafficStats {
        let (inj, routes, pkts) = self.prepare(workload, policy);
        FastSim::new(self, inj, routes, pkts, probe).run(trace).0
    }

    /// Shared run setup: workload validation, parallel route
    /// precomputation into the shared [`RouteArena`], and the initial
    /// packet table. Adaptive packets carry an empty span and pick
    /// hops at enqueue time.
    fn prepare<'w>(
        &self,
        workload: &'w Workload,
        policy: &dyn RoutingPolicy,
    ) -> (&'w [Injection], RouteArena, Vec<SimPacket>) {
        self.check_order(workload);
        let inj = workload.injections();
        let n = self.n;
        let chunks: Vec<RouteChunk> = if inj.is_empty() {
            Vec::new()
        } else {
            inj.par_chunks(ROUTE_CHUNK)
                .map(|chunk| route_chunk(n, chunk, |_| policy))
                .collect()
        };
        let (arena, pkts) = assemble_routes(inj, chunks);
        (inj, arena, pkts)
    }

    /// [`Network::prepare`] with one routing policy per job:
    /// packet `pid` routes under `policies[owner[pid]]`. Validates
    /// the owner map for every partitioned entry point.
    fn prepare_multi<'w>(
        &self,
        workload: &'w Workload,
        policies: &[&dyn RoutingPolicy],
        owner: &[u32],
    ) -> (&'w [Injection], RouteArena, Vec<SimPacket>) {
        self.check_order(workload);
        assert_eq!(
            owner.len(),
            workload.len(),
            "owner map must cover every packet"
        );
        assert!(
            owner.iter().all(|&j| (j as usize) < policies.len()),
            "owner names a job >= policies.len()"
        );
        let inj = workload.injections();
        let n = self.n;
        let pairs: Vec<(&[Injection], &[u32])> = inj
            .chunks(ROUTE_CHUNK)
            .zip(owner.chunks(ROUTE_CHUNK))
            .collect();
        let chunks: Vec<RouteChunk> = pairs
            .into_par_iter()
            .map(|(ic, oc)| route_chunk(n, ic, |k| policies[oc[k] as usize]))
            .collect();
        let (arena, pkts) = assemble_routes(inj, chunks);
        (inj, arena, pkts)
    }

    fn check_order(&self, workload: &Workload) {
        assert_eq!(
            workload.n(),
            self.n,
            "workload is for S_{} but network is S_{}",
            workload.n(),
            self.n
        );
    }
}

/// Parallel route-precompute granularity: big enough to amortize
/// thread dispatch, small enough to balance uneven route lengths.
const ROUTE_CHUNK: usize = 4096;

/// One chunk's private slab of route bytes plus per-packet
/// `(len, adaptive)` spans, ready to concatenate in input order.
type RouteChunk = (Vec<u8>, Vec<(u32, bool)>);

/// Routes one injection chunk; `policy_for(k)` names the policy of
/// the chunk's `k`-th packet.
fn route_chunk<'p>(
    n: usize,
    chunk: &[Injection],
    policy_for: impl Fn(usize) -> &'p dyn RoutingPolicy,
) -> RouteChunk {
    let mut data = Vec::new();
    let mut spans = Vec::with_capacity(chunk.len());
    for (k, i) in chunk.iter().enumerate() {
        let policy = policy_for(k);
        let span = if i.src == i.dst {
            (0u32, false)
        } else if policy.is_adaptive() {
            (0, true)
        } else {
            let a = unrank(i.src, n).expect("rank in range");
            let b = unrank(i.dst, n).expect("rank in range");
            let route = policy.route(&a, &b);
            data.extend_from_slice(&route);
            (route.len() as u32, false)
        };
        spans.push(span);
    }
    (data, spans)
}

/// Stitches the per-chunk slabs into the shared arena and the packet
/// table, assigning each packet its `(offset, len)` span.
fn assemble_routes(inj: &[Injection], chunks: Vec<RouteChunk>) -> (RouteArena, Vec<SimPacket>) {
    let total_bytes = chunks.iter().map(|(d, _)| d.len()).sum();
    let mut arena = RouteArena::with_capacity(total_bytes);
    let mut pkts = Vec::with_capacity(inj.len());
    let mut next = 0usize;
    for (data, spans) in chunks {
        let mut off = arena.data.len() as u32;
        arena.data.extend_from_slice(&data);
        for (len, adaptive) in spans {
            let i = &inj[next];
            next += 1;
            pkts.push(SimPacket {
                cur: i.src as u32,
                dst: i.dst as u32,
                route_off: off,
                route_len: len,
                route_pos: 0,
                hops: 0,
                adaptive,
                escaped: false,
                may_escape: true,
                esc_class: 0,
            });
            off += len;
        }
    }
    (arena, pkts)
}

// ---------------------------------------------------------------------
// Logic shared verbatim by both engines.
// ---------------------------------------------------------------------

/// All precomputed routes packed into one flat byte arena; each
/// packet names its route as an `(offset, len)` span. Replacing the
/// per-packet `Vec<u8>` keeps the packet table a plain
/// structure-of-arrays record and makes the route byte read in
/// `enqueue_next` a dense-arena index instead of a pointer chase —
/// the SoA headroom item noted in the ROADMAP after the fast-engine
/// PR. Fault reroutes append their BFS detour and repoint the span;
/// the stale bytes are never reclaimed (reroutes are rare and
/// per-run).
struct RouteArena {
    data: Vec<u8>,
}

impl RouteArena {
    fn with_capacity(bytes: usize) -> Self {
        RouteArena {
            data: Vec::with_capacity(bytes),
        }
    }

    /// Appends a route, returning its `(offset, len)` span.
    fn push(&mut self, route: &[u8]) -> (u32, u32) {
        let off = self.data.len() as u32;
        self.data.extend_from_slice(route);
        (off, route.len() as u32)
    }
}

/// In-flight per-packet state. Routes live in the shared
/// [`RouteArena`]; `route_off`/`route_len` span this packet's bytes.
struct SimPacket {
    cur: u32,
    dst: u32,
    route_off: u32,
    route_len: u32,
    route_pos: u32,
    hops: u32,
    /// Hop chosen at enqueue time; cleared when a fault pins the
    /// packet to a BFS detour route.
    adaptive: bool,
    /// The packet diverted onto the escape channel (escape mode only;
    /// a one-way transition — escaped packets stay escape-routed).
    escaped: bool,
    /// Whether the packet may divert at all: per-job opt-in under
    /// [`Network::run_partitioned_with_escape`], `true` elsewhere.
    may_escape: bool,
    /// The residual-hop class whose escape slot the packet currently
    /// holds (occupied while buffered, reserved while in flight).
    /// Meaningful only while `escaped`.
    esc_class: u32,
}

/// Outcome of one adaptive next-hop selection.
enum HopChoice {
    /// Take generator `g` (its link is alive and reduces distance).
    Go(usize),
    /// Faults killed every distance-reducing link at this PE.
    Blocked,
}

/// Upper bound on `n − 1` for the supported `n ≤ 9`, so per-hop
/// scratch buffers can live on the stack.
const MAX_GENS: usize = 8;

/// The adaptive hop selector both engines call: among the generators
/// that move the packet strictly closer to `dst` and whose link
/// survives the fault plan, pick the one with the smallest output
/// queue at the current PE (`occ[g−1]` is that queue's occupancy).
/// Ties prefer the next generator of the dimension-order embedding
/// path, then the smallest generator index. Allocation-free: this
/// runs once per hop of every adaptive packet.
fn adaptive_hop(net: &Network, u: u32, dst: u32, occ: &[u32]) -> HopChoice {
    let n = net.n;
    let cur_p = unrank(u64::from(u), n).expect("rank in range");
    let dst_p = unrank(u64::from(dst), n).expect("rank in range");
    let d0 = distance(&cur_p, &dst_p);
    debug_assert!(d0 > 0, "adaptive hop requested at the destination");
    let faulty = !net.faults.is_empty();
    let mut is_cand = [false; MAX_GENS + 1];
    let mut min_occ = u32::MAX;
    for g in 1..n {
        let v = net.neighbor_of(u, g);
        if faulty && net.faults.is_link_dead(u64::from(u), u64::from(v), g) {
            continue;
        }
        if distance(&cur_p.with_slots_swapped(0, g), &dst_p) < d0 {
            is_cand[g] = true;
            min_occ = min_occ.min(occ[g - 1]);
        }
    }
    if min_occ == u32::MAX {
        return HopChoice::Blocked;
    }
    let mut first = 0usize;
    let mut ties = 0usize;
    for g in 1..n {
        if is_cand[g] && occ[g - 1] == min_occ {
            if first == 0 {
                first = g;
            }
            ties += 1;
        }
    }
    if ties > 1 {
        // Tie: follow the embedding path's order when it is one of
        // the tied candidates.
        let eg = embedding_first_generator(&cur_p, &dst_p);
        if is_cand[eg] && occ[eg - 1] == min_occ {
            return HopChoice::Go(eg);
        }
    }
    HopChoice::Go(first)
}

/// First generator of [`EmbeddingRouting::route`]`(cur, dst)` without
/// building the whole route: locate the first mesh dimension that
/// needs correcting and expand just the first transposition of its
/// first unit move.
///
/// # Panics
/// Panics if `cur == dst` (there is no first hop).
fn embedding_first_generator(cur: &Perm, dst: &Perm) -> usize {
    let n = cur.len();
    let target = convert_s_d(dst);
    let cur_d = convert_s_d(cur);
    for k in 1..n {
        let want = target.d(k);
        if cur_d.d(k) == want {
            continue;
        }
        let pair = if cur_d.d(k) < want {
            plus_swap_symbols(cur, k)
        } else {
            minus_swap_symbols(cur, k)
        };
        let (a, b) = pair.expect("interior coordinate always has a neighbor toward the target");
        return transposition_generators(cur, a, b)[0];
    }
    unreachable!("cur == dst has no first embedding hop")
}

/// Why [`select_generator`] could not name a next hop.
enum HopFail {
    /// The fault policy says drop on the spot.
    Fault,
    /// No surviving path exists (reroute exhausted).
    Unreachable,
}

/// Decides which generator link packet `pid` takes next from its
/// current PE: the fixed route's next entry (source-routed), or the
/// least-occupied shortest-path candidate (adaptive, `occ` holds the
/// current PE's queue occupancies). When faults block the hop this
/// applies the fault policy — dropping, or pinning the BFS detour
/// over the surviving subgraph (which also turns an adaptive packet
/// into a source-routed one). Shared verbatim by both engines so the
/// fault/credit fallback can never drift between them; only queue
/// bookkeeping stays engine-specific.
fn select_generator(
    net: &Network,
    faulty: bool,
    pkts: &mut [SimPacket],
    routes: &mut RouteArena,
    memo: &mut HashMap<u32, Vec<u8>>,
    pid: PacketId,
    occ: &[u32],
) -> Result<usize, HopFail> {
    let p = pid as usize;
    let u = pkts[p].cur;
    if pkts[p].adaptive {
        if let HopChoice::Go(g) = adaptive_hop(net, u, pkts[p].dst, occ) {
            return Ok(g);
        }
    } else {
        let pos = pkts[p].route_pos;
        debug_assert!(
            pos < pkts[p].route_len,
            "route exhausted before destination"
        );
        let g = routes.data[(pkts[p].route_off + pos) as usize] as usize;
        let v = net.neighbor_of(u, g);
        if !(faulty && net.faults.is_link_dead(u64::from(u), u64::from(v), g)) {
            return Ok(g);
        }
    }
    // The hop (or every adaptive candidate) is dead: fault fallback.
    match net.faults.policy() {
        FaultPolicy::Drop => Err(HopFail::Fault),
        FaultPolicy::Reroute => {
            let dst = pkts[p].dst;
            match reroute_from(net, memo, u, dst) {
                Some(route) => {
                    let g = route[0] as usize;
                    let (off, len) = routes.push(&route);
                    pkts[p].route_off = off;
                    pkts[p].route_len = len;
                    pkts[p].route_pos = 0;
                    pkts[p].adaptive = false;
                    Ok(g)
                }
                None => Err(HopFail::Unreachable),
            }
        }
    }
}

/// BFS over the surviving subgraph, memoized per destination: returns
/// the generator sequence `u → dst`, or `None` if `u` is cut off.
fn reroute_from(
    net: &Network,
    memo: &mut HashMap<u32, Vec<u8>>,
    u: u32,
    dst: u32,
) -> Option<Vec<u8>> {
    let gens = net.n - 1;
    let next_gen = memo.entry(dst).or_insert_with(|| {
        let mut next = vec![0u8; net.node_count];
        let mut frontier = VecDeque::from([dst]);
        let mut seen = vec![false; net.node_count];
        seen[dst as usize] = true;
        while let Some(w) = frontier.pop_front() {
            for g in 1..=gens {
                let v = net.neighbor_of(w, g);
                if seen[v as usize] || net.faults.is_link_dead(u64::from(w), u64::from(v), g) {
                    continue;
                }
                seen[v as usize] = true;
                // The same generator leads back toward dst (the slot
                // swap is an involution).
                next[v as usize] = g as u8;
                frontier.push_back(v);
            }
        }
        next
    });
    let mut route = Vec::new();
    let mut cur = u;
    while cur != dst {
        let g = next_gen[cur as usize];
        if g == 0 {
            return None;
        }
        route.push(g);
        cur = net.neighbor_of(cur, g as usize);
        debug_assert!(route.len() <= net.node_count, "reroute cycle");
    }
    Some(route)
}

/// An empty escape slot.
const ESC_FREE: u32 = u32::MAX;
/// Tag bit on a slot holder that is still in flight toward the PE
/// (the slot is *reserved*, not yet occupied); cleared on arrival.
const ESC_RESV: u32 = 1 << 31;

/// The escape partition: Gopal's structured buffer pool, graded by
/// residual hops. `classes[c][u]` is the single class-`c` escape slot
/// of PE `u` — [`ESC_FREE`], the resident packet id, or the id tagged
/// [`ESC_RESV`] while the holder is in flight toward `u`. A class-`c`
/// flit forwarding to the next PE needs only that PE's class-`c−1`
/// slot (final hops need none), so slot dependencies strictly descend
/// the grading and can never cycle. Class arrays are grown lazily:
/// only classes some packet actually reaches are ever allocated
/// (bounded by the longest pinned escape route).
struct EscapeBank {
    node_count: usize,
    classes: Vec<Vec<u32>>,
}

impl EscapeBank {
    fn new(node_count: usize) -> Self {
        EscapeBank {
            node_count,
            classes: Vec::new(),
        }
    }

    #[inline]
    fn holder(&self, c: usize, u: usize) -> u32 {
        self.classes.get(c).map_or(ESC_FREE, |slots| slots[u])
    }

    #[inline]
    fn is_free(&self, c: usize, u: usize) -> bool {
        self.holder(c, u) == ESC_FREE
    }

    fn set(&mut self, c: usize, u: usize, val: u32) {
        if self.classes.len() <= c {
            self.classes
                .resize_with(c + 1, || vec![ESC_FREE; self.node_count]);
        }
        self.classes[c][u] = val;
    }

    fn clear(&mut self, c: usize, u: usize) {
        self.classes[c][u] = ESC_FREE;
    }
}

/// The pinned escape route `u → dst`, as a memoized arena span: the
/// canonical dimension-order embedding path on a clean network, the
/// BFS route over the surviving subgraph when faults are installed
/// (`None` only if `dst` is unreachable — the diversion then simply
/// fails and the head keeps waiting for adaptive credit). Either way
/// the route is pinned and every hop shortens it, which is what the
/// residual-hop grading needs.
fn escape_span(
    net: &Network,
    routes: &mut RouteArena,
    memo: &mut HashMap<(u32, u32), Option<(u32, u32)>>,
    reroute_memo: &mut HashMap<u32, Vec<u8>>,
    u: u32,
    dst: u32,
) -> Option<(u32, u32)> {
    if let Some(&span) = memo.get(&(u, dst)) {
        return span;
    }
    let route = if net.faults.is_empty() {
        let a = unrank(u64::from(u), net.n).expect("rank in range");
        let b = unrank(u64::from(dst), net.n).expect("rank in range");
        Some(crate::routing::EmbeddingRouting.route(&a, &b))
    } else {
        reroute_from(net, reroute_memo, u, dst)
    };
    let span = route.map(|r| routes.push(&r));
    memo.insert((u, dst), span);
    span
}

/// Resolves every still-open packet as [`PacketOutcome::Stranded`]
/// (round cap or credit deadlock).
fn strand_remaining(outcomes: &mut [Option<PacketOutcome>], resolved: &mut usize) {
    for o in outcomes.iter_mut() {
        if o.is_none() {
            *o = Some(PacketOutcome::Stranded);
            *resolved += 1;
        }
    }
}

fn finish(
    net: &Network,
    inj: &[Injection],
    outcomes: &[Option<PacketOutcome>],
    counters: RunCounters,
) -> TrafficStats {
    let records: Vec<PacketRecord> = inj
        .iter()
        .zip(outcomes)
        .map(|(i, o)| PacketRecord {
            src: i.src,
            dst: i.dst,
            inject_round: i.round,
            outcome: o.expect("all packets resolved"),
        })
        .collect();
    TrafficStats::from_records(net.n, records, counters)
}

// ---------------------------------------------------------------------
// Reference engine: the scan-everything oracle.
// ---------------------------------------------------------------------

/// One reference run's mutable state. A `VecDeque` per queue, every
/// queue scanned every round — the simplest faithful implementation
/// of the phase semantics, kept as the differential oracle.
struct ReferenceSim<'a, P: Probe> {
    net: &'a Network,
    gens: usize,
    lanes: usize,
    inj: &'a [Injection],
    pkts: Vec<SimPacket>,
    routes: RouteArena,
    outcomes: Vec<Option<PacketOutcome>>,
    queues: Vec<VecDeque<PacketId>>,
    node_occ: Vec<u32>,
    /// Buffer slots promised to in-flight flits (credit mode).
    reserved: Vec<u32>,
    /// Ring buffer of arrival lists, indexed by `round % lanes`.
    arrivals: Vec<Vec<PacketId>>,
    in_flight: usize,
    /// Packets waiting at their source for a buffer credit, FIFO.
    stalled: VecDeque<PacketId>,
    /// Per-destination BFS next-hop tables for fault reroutes.
    reroute_memo: HashMap<u32, Vec<u8>>,
    resolved: usize,
    total_queued: u64,
    pool: Option<u64>,
    /// Cached `!faults.is_empty()`: skips the per-hop fault lookups
    /// entirely on a clean network.
    faulty: bool,
    /// The escape partition — `Some` only under
    /// [`FlowControl::EscapeChannel`].
    esc: Option<EscapeBank>,
    /// Escape residents per PE (adaptive occupancy stays in
    /// `node_occ`, so the credit math is untouched by escape traffic).
    esc_node: Vec<u32>,
    /// Memoized escape-route spans per `(PE, dst)`.
    esc_memo: HashMap<(u32, u32), Option<(u32, u32)>>,
    /// Diversion attempts staged during the arbitration scan, applied
    /// after it in scan order (so a diversion can never alter the
    /// scan it was decided in).
    divert: Vec<(usize, PacketId)>,
    counters: RunCounters,
    /// Event sink; [`NullProbe`] (the default) disables every
    /// emission site at compile time.
    probe: &'a mut P,
    /// Lazy round bracket: set by the first [`Event`] of a round, so
    /// eventless rounds emit neither `RoundBegin` nor `RoundEnd`.
    round_open: bool,
}

impl<'a, P: Probe> ReferenceSim<'a, P> {
    fn new(
        net: &'a Network,
        inj: &'a [Injection],
        routes: RouteArena,
        pkts: Vec<SimPacket>,
        probe: &'a mut P,
    ) -> Self {
        let gens = net.n - 1;
        let lanes = net.config.link_latency as usize + 1;
        let esc_mode = net.config.flow_control == FlowControl::EscapeChannel;
        ReferenceSim {
            net,
            gens,
            lanes,
            inj,
            pkts,
            routes,
            outcomes: vec![None; inj.len()],
            queues: vec![VecDeque::new(); net.node_count * gens],
            node_occ: vec![0; net.node_count],
            reserved: vec![0; net.node_count],
            arrivals: vec![Vec::new(); lanes],
            in_flight: 0,
            stalled: VecDeque::new(),
            reroute_memo: HashMap::new(),
            resolved: 0,
            total_queued: 0,
            pool: net.credit_pool(),
            faulty: !net.faults.is_empty(),
            esc: esc_mode.then(|| EscapeBank::new(net.node_count)),
            esc_node: vec![0; net.node_count],
            esc_memo: HashMap::new(),
            divert: Vec::new(),
            counters: RunCounters::default(),
            probe,
            round_open: false,
        }
    }

    fn resolve(&mut self, pid: PacketId, round: u32, outcome: PacketOutcome) {
        debug_assert!(self.outcomes[pid as usize].is_none(), "double resolution");
        self.outcomes[pid as usize] = Some(outcome);
        self.resolved += 1;
        self.counters.last_event = self.counters.last_event.max(round);
    }

    /// Emits `ev`, opening the round bracket first when this is the
    /// round's first event. Call sites are guarded by `P::ENABLED`.
    fn emit(&mut self, round: u32, ev: Event) {
        if !self.round_open {
            self.round_open = true;
            self.probe.event(&Event::RoundBegin { round });
        }
        self.probe.event(&ev);
    }

    /// Emits a `Dropped { Stranded }` for every unresolved packet (in
    /// pid order), then closes the round bracket. Called just before
    /// `strand_remaining` on both strand paths (round cap, deadlock).
    fn emit_strand(&mut self, round: u32) {
        for pid in 0..self.outcomes.len() {
            if self.outcomes[pid].is_none() {
                let pe = self.pkts[pid].cur;
                self.emit(
                    round,
                    Event::Dropped {
                        round,
                        pid: pid as PacketId,
                        pe,
                        reason: DropReason::Stranded,
                    },
                );
            }
        }
        if self.round_open {
            self.round_open = false;
            self.probe.event(&Event::RoundEnd {
                round,
                queued: self.total_queued,
                in_flight: self.in_flight as u64,
                stalled: self.stalled.len() as u64,
            });
        }
    }

    fn has_credit(&self, v: u32) -> bool {
        self.pool.is_none_or(|pool| {
            u64::from(self.node_occ[v as usize]) + u64::from(self.reserved[v as usize]) < pool
        })
    }

    /// Places a packet (known not to be at its destination) onto an
    /// output queue: the one its route names next, or the adaptive
    /// pick — handling faults and queue capacity.
    fn enqueue_next(&mut self, pid: PacketId, round: u32) {
        let p = pid as usize;
        let u = self.pkts[p].cur;
        let mut occ = [0u32; MAX_GENS];
        if self.pkts[p].adaptive {
            let base = u as usize * self.gens;
            for (i, slot) in occ[..self.gens].iter_mut().enumerate() {
                *slot = self.queues[base + i].len() as u32;
            }
        }
        let g = match select_generator(
            self.net,
            self.faulty,
            &mut self.pkts,
            &mut self.routes,
            &mut self.reroute_memo,
            pid,
            &occ[..self.gens],
        ) {
            Ok(g) => g,
            Err(fail) => {
                if self.pkts[p].escaped {
                    // The class slot reserved at forward time is
                    // surrendered along with the packet.
                    let c = self.pkts[p].esc_class as usize;
                    let bank = self.esc.as_mut().expect("escaped packet implies bank");
                    bank.clear(c, u as usize);
                }
                let (outcome, reason) = match fail {
                    HopFail::Fault => (PacketOutcome::DroppedFault { round }, DropReason::Fault),
                    HopFail::Unreachable => (
                        PacketOutcome::DroppedUnreachable { round },
                        DropReason::Unreachable,
                    ),
                };
                self.resolve(pid, round, outcome);
                if P::ENABLED {
                    self.emit(
                        round,
                        Event::Dropped {
                            round,
                            pid,
                            pe: u,
                            reason,
                        },
                    );
                }
                return;
            }
        };
        if self.pkts[p].escaped {
            self.place_escape(pid, g, round);
            return;
        }
        let qi = u as usize * self.gens + (g - 1);
        if self.net.config.flow_control == FlowControl::TailDrop {
            if let Some(cap) = self.net.config.queue_capacity {
                if self.queues[qi].len() >= cap as usize {
                    self.resolve(pid, round, PacketOutcome::DroppedOverflow { round });
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Dropped {
                                round,
                                pid,
                                pe: u,
                                reason: DropReason::Overflow,
                            },
                        );
                    }
                    return;
                }
            }
        }
        self.queues[qi].push_back(pid);
        self.total_queued += 1;
        self.counters.peak_edge = self.counters.peak_edge.max(self.queues[qi].len() as u64);
        self.node_occ[u as usize] += 1;
        let at_pe = u64::from(self.node_occ[u as usize]) + u64::from(self.esc_node[u as usize]);
        self.counters.peak_node = self.counters.peak_node.max(at_pe);
        if P::ENABLED {
            let depth = self.queues[qi].len() as u32;
            self.emit(
                round,
                Event::Queued {
                    round,
                    pid,
                    pe: u,
                    gen: g as u8,
                    depth,
                    escape: false,
                },
            );
        }
    }

    /// An escaped packet lands: its forward-time slot reservation
    /// becomes occupancy and the packet sits in the escape bank (not
    /// in any FIFO) until link arbitration forwards it.
    fn place_escape(&mut self, pid: PacketId, g: usize, round: u32) {
        let p = pid as usize;
        let u = self.pkts[p].cur as usize;
        let remaining = self.pkts[p].route_len - self.pkts[p].route_pos;
        let mut c = self.pkts[p].esc_class;
        let bank = self.esc.as_mut().expect("escaped packet implies bank");
        // A fault fallback can repin the route mid-flight and change
        // the residual length; re-grade to the new class when its slot
        // is free (pinned escape routes never hit the static fault
        // plan, so this is defensive — the grading invariant is only
        // claimed fault-free anyway).
        if remaining != c && bank.is_free(remaining as usize, u) {
            bank.clear(c as usize, u);
            c = remaining;
            self.pkts[p].esc_class = c;
        }
        bank.set(c as usize, u, pid);
        self.esc_node[u] += 1;
        self.total_queued += 1;
        self.counters.peak_escape = self.counters.peak_escape.max(u64::from(self.esc_node[u]));
        let at_pe = u64::from(self.node_occ[u]) + u64::from(self.esc_node[u]);
        self.counters.peak_node = self.counters.peak_node.max(at_pe);
        if P::ENABLED {
            let depth = self.esc_node[u];
            self.emit(
                round,
                Event::Queued {
                    round,
                    pid,
                    pe: u as u32,
                    gen: g as u8,
                    depth,
                    escape: true,
                },
            );
        }
    }

    /// Escape-channel arbitration for link `li`: forward the resident
    /// of the **lowest** residual class bound for this link whose
    /// downstream slot is free (final hops need none). Returns whether
    /// the link was used. Lowest-class-first service is what the
    /// deadlock-freedom argument leans on: the globally minimal class
    /// always finds its next slot empty.
    fn try_escape_forward(&mut self, li: usize, round: u32, land: usize) -> bool {
        let u = li / self.gens;
        if self.esc_node[u] == 0 {
            return false;
        }
        let g = (li % self.gens + 1) as u8;
        let v = self.net.neighbor[li];
        let nclasses = self.esc.as_ref().expect("escape mode").classes.len();
        for c in 1..nclasses {
            let slot = self.esc.as_ref().expect("escape mode").holder(c, u);
            if slot == ESC_FREE || slot & ESC_RESV != 0 {
                continue;
            }
            let pid = slot;
            let p = pid as usize;
            let next = self.routes.data[(self.pkts[p].route_off + self.pkts[p].route_pos) as usize];
            if next != g {
                continue;
            }
            debug_assert_eq!(self.pkts[p].esc_class as usize, c, "bank/class drift");
            let remaining = self.pkts[p].route_len - self.pkts[p].route_pos;
            let bank = self.esc.as_mut().expect("escape mode");
            if v == self.pkts[p].dst {
                // Final hop — delivered on arrival even when the
                // pinned route only *passes through* dst (dilation-3
                // transpositions revisit lattice points), so no
                // downstream slot is needed.
            } else {
                let c_next = (remaining - 1) as usize;
                if !bank.is_free(c_next, v as usize) {
                    continue; // this class stalls; a higher one may still go
                }
                bank.set(c_next, v as usize, pid | ESC_RESV);
                self.pkts[p].esc_class = c_next as u32;
            }
            bank.clear(c, u);
            self.esc_node[u] -= 1;
            self.total_queued -= 1;
            self.pkts[p].cur = v;
            self.pkts[p].hops += 1;
            self.pkts[p].route_pos += 1;
            self.counters.forwarded += 1;
            self.counters.escape_forwarded += 1;
            self.arrivals[land].push(pid);
            self.in_flight += 1;
            if P::ENABLED {
                self.emit(
                    round,
                    Event::Forwarded {
                        round,
                        pid,
                        from: u as u32,
                        to: v,
                        gen: g,
                        escape: true,
                    },
                );
            }
            return true;
        }
        false
    }

    /// Applies one staged diversion: the (still-)head of adaptive
    /// queue `li` moves onto the escape channel if its residual-class
    /// slot at this PE is free and an escape route exists. Frees one
    /// adaptive pool slot at the PE; the flit stays buffered (and
    /// charged wait rounds) throughout.
    fn apply_diversion(&mut self, li: usize, pid: PacketId, round: u32) -> bool {
        let p = pid as usize;
        let u = (li / self.gens) as u32;
        let dst = self.pkts[p].dst;
        let Some((off, len)) = escape_span(
            self.net,
            &mut self.routes,
            &mut self.esc_memo,
            &mut self.reroute_memo,
            u,
            dst,
        ) else {
            return false;
        };
        let bank = self.esc.as_mut().expect("escape mode");
        if !bank.is_free(len as usize, u as usize) {
            return false;
        }
        bank.set(len as usize, u as usize, pid);
        let popped = self.queues[li].pop_front();
        debug_assert_eq!(popped, Some(pid), "staged head moved before apply");
        self.pkts[p].route_off = off;
        self.pkts[p].route_len = len;
        self.pkts[p].route_pos = 0;
        self.pkts[p].adaptive = false;
        self.pkts[p].escaped = true;
        self.pkts[p].esc_class = len;
        self.node_occ[u as usize] -= 1;
        self.esc_node[u as usize] += 1;
        self.counters.escape_diversions += 1;
        self.counters.peak_escape = self
            .counters
            .peak_escape
            .max(u64::from(self.esc_node[u as usize]));
        if P::ENABLED {
            self.emit(
                round,
                Event::Diverted {
                    round,
                    pid,
                    pe: u,
                    class: len,
                },
            );
        }
        true
    }

    fn run(mut self) -> TrafficStats {
        let total = self.inj.len();
        let latency = self.net.config.link_latency as usize;
        let mut inj_ptr = 0usize;
        let mut round: u32 = 0;
        while self.resolved < total {
            if round >= self.net.config.max_rounds {
                if P::ENABLED {
                    self.emit_strand(round);
                }
                strand_remaining(&mut self.outcomes, &mut self.resolved);
                break;
            }
            let mut progress = false;
            // 1. Arrivals.
            let slot = round as usize % self.lanes;
            let arrived = std::mem::take(&mut self.arrivals[slot]);
            self.in_flight -= arrived.len();
            for pid in arrived {
                progress = true;
                let p = pid as usize;
                if self.pkts[p].cur == self.pkts[p].dst {
                    let hops = self.pkts[p].hops;
                    self.resolve(pid, round, PacketOutcome::Delivered { round, hops });
                    if P::ENABLED {
                        let pe = self.pkts[p].cur;
                        self.emit(
                            round,
                            Event::Delivered {
                                round,
                                pid,
                                pe,
                                hops,
                            },
                        );
                    }
                } else {
                    if self.pool.is_some() && !self.pkts[p].escaped {
                        // The reservation taken at forward time turns
                        // into real occupancy (or is released if the
                        // enqueue drops on a fault). Escaped packets
                        // reserve class slots instead of pool credits.
                        self.reserved[self.pkts[p].cur as usize] -= 1;
                    }
                    self.enqueue_next(pid, round);
                }
            }
            // 2. Injections: stalled retries first (FIFO), then this
            // round's workload.
            for _ in 0..self.stalled.len() {
                let pid = self.stalled.pop_front().expect("len checked");
                let src = self.pkts[pid as usize].cur;
                if self.has_credit(src) {
                    self.enqueue_next(pid, round);
                    progress = true;
                } else {
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Stalled {
                                round,
                                pid,
                                pe: src,
                                kind: StallKind::Injection,
                            },
                        );
                    }
                    self.stalled.push_back(pid);
                }
            }
            while inj_ptr < total && self.inj[inj_ptr].round <= round {
                let pid = inj_ptr as PacketId;
                let (src, dst) = (self.inj[inj_ptr].src, self.inj[inj_ptr].dst);
                inj_ptr += 1;
                if self.faulty && self.net.faults.is_node_dead(src) {
                    self.resolve(pid, round, PacketOutcome::DroppedFault { round });
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Dropped {
                                round,
                                pid,
                                pe: src as u32,
                                reason: DropReason::Fault,
                            },
                        );
                    }
                    progress = true;
                } else if src == dst {
                    self.resolve(pid, round, PacketOutcome::Delivered { round, hops: 0 });
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Delivered {
                                round,
                                pid,
                                pe: dst as u32,
                                hops: 0,
                            },
                        );
                    }
                    progress = true;
                } else if !self.has_credit(src as u32) {
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Stalled {
                                round,
                                pid,
                                pe: src as u32,
                                kind: StallKind::Injection,
                            },
                        );
                    }
                    self.stalled.push_back(pid);
                } else {
                    self.enqueue_next(pid, round);
                    progress = true;
                }
            }
            // 3. Arbitration: one flit per link per round, scanning
            // every link in index order. Under escape flow control the
            // escape channel has priority on each link; an adaptive
            // head that fails its credit check stages a diversion
            // attempt instead, applied after the scan so the scan
            // itself never observes its own diversions.
            let esc_mode = self.esc.is_some();
            let land = (round as usize + latency) % self.lanes;
            for qi in 0..self.queues.len() {
                if esc_mode && self.try_escape_forward(qi, round, land) {
                    progress = true;
                    continue; // the escape flit consumed the link
                }
                let Some(&pid) = self.queues[qi].front() else {
                    continue;
                };
                let v = self.net.neighbor[qi];
                let p = pid as usize;
                if self.pool.is_some() {
                    // Final hops need no downstream buffer: delivery
                    // consumes the ejection port, not a credit.
                    let final_hop = self.pkts[p].dst == v;
                    if !final_hop {
                        if !self.has_credit(v) {
                            if P::ENABLED {
                                let pe = (qi / self.gens) as u32;
                                self.emit(
                                    round,
                                    Event::Stalled {
                                        round,
                                        pid,
                                        pe,
                                        kind: StallKind::CreditHead,
                                    },
                                );
                            }
                            if esc_mode && self.pkts[p].may_escape {
                                self.divert.push((qi, pid));
                            }
                            continue; // head stalls for credit
                        }
                        self.reserved[v as usize] += 1;
                    }
                }
                self.queues[qi].pop_front();
                let u = qi / self.gens;
                self.total_queued -= 1;
                self.node_occ[u] -= 1;
                self.pkts[p].cur = v;
                self.pkts[p].hops += 1;
                self.pkts[p].route_pos += 1;
                self.counters.forwarded += 1;
                progress = true;
                self.arrivals[land].push(pid);
                self.in_flight += 1;
                if P::ENABLED {
                    let gen = (qi % self.gens + 1) as u8;
                    self.emit(
                        round,
                        Event::Forwarded {
                            round,
                            pid,
                            from: u as u32,
                            to: v,
                            gen,
                            escape: false,
                        },
                    );
                }
            }
            for i in 0..self.divert.len() {
                let (li, pid) = self.divert[i];
                progress |= self.apply_diversion(li, pid, round);
            }
            self.divert.clear();
            // 4. Wait + stall accounting.
            self.counters.total_wait_rounds += self.total_queued;
            self.counters.injection_stall_rounds += self.stalled.len() as u64;
            // Credit deadlock: no event fired, nothing in flight, no
            // workload left — the state is a fixed point, so the
            // survivors can never move again.
            if !progress && self.in_flight == 0 && inj_ptr == total && self.resolved < total {
                if P::ENABLED {
                    self.emit_strand(round);
                }
                strand_remaining(&mut self.outcomes, &mut self.resolved);
                break;
            }
            if P::ENABLED && self.round_open {
                self.round_open = false;
                self.probe.event(&Event::RoundEnd {
                    round,
                    queued: self.total_queued,
                    in_flight: self.in_flight as u64,
                    stalled: self.stalled.len() as u64,
                });
            }
            round += 1;
        }
        finish(self.net, self.inj, &self.outcomes, self.counters)
    }
}

// ---------------------------------------------------------------------
// Fast engine: worklist + slab ring buffers + batched arrivals.
// ---------------------------------------------------------------------

/// Flits per slab page. Small enough that near-empty queues waste
/// little, big enough that a busy queue touches one page per ~16 ops.
const PAGE: usize = 16;
const NO_PAGE: u32 = u32::MAX;

/// Per-queue ring state inside the slab.
#[derive(Clone, Copy)]
struct QState {
    head: u32,
    tail: u32,
    head_off: u8,
    tail_off: u8,
    len: u32,
}

const EMPTY_Q: QState = QState {
    head: NO_PAGE,
    tail: NO_PAGE,
    head_off: 0,
    tail_off: 0,
    len: 0,
};

/// All output queues of the network, packed into one paged slab: a
/// flat `data` arena of `PAGE`-sized chunks linked through `next`,
/// recycled through a free list. Pushing and popping never allocate
/// once the arena has grown to the high-water mark, and queue storage
/// is dense in memory — the "flat slab-allocated ring buffers"
/// replacing the reference engine's per-queue `VecDeque`s.
struct SlabQueues {
    data: Vec<PacketId>,
    next: Vec<u32>,
    free: Vec<u32>,
    q: Vec<QState>,
}

impl SlabQueues {
    fn new(queues: usize) -> Self {
        SlabQueues {
            data: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            q: vec![EMPTY_Q; queues],
        }
    }

    fn alloc_page(&mut self) -> u32 {
        if let Some(p) = self.free.pop() {
            self.next[p as usize] = NO_PAGE;
            return p;
        }
        let p = (self.data.len() / PAGE) as u32;
        self.data.resize(self.data.len() + PAGE, 0);
        self.next.push(NO_PAGE);
        p
    }

    fn push(&mut self, qi: usize, pid: PacketId) {
        let mut q = self.q[qi];
        if q.tail == NO_PAGE {
            let pg = self.alloc_page();
            q = QState {
                head: pg,
                tail: pg,
                head_off: 0,
                tail_off: 0,
                len: 0,
            };
        } else if q.tail_off as usize == PAGE {
            let pg = self.alloc_page();
            self.next[q.tail as usize] = pg;
            q.tail = pg;
            q.tail_off = 0;
        }
        self.data[q.tail as usize * PAGE + q.tail_off as usize] = pid;
        q.tail_off += 1;
        q.len += 1;
        self.q[qi] = q;
    }

    fn front(&self, qi: usize) -> Option<PacketId> {
        let q = self.q[qi];
        (q.len > 0).then(|| self.data[q.head as usize * PAGE + q.head_off as usize])
    }

    fn pop(&mut self, qi: usize) -> PacketId {
        let mut q = self.q[qi];
        debug_assert!(q.len > 0, "pop from empty queue");
        let pid = self.data[q.head as usize * PAGE + q.head_off as usize];
        q.head_off += 1;
        q.len -= 1;
        if q.len == 0 {
            debug_assert_eq!(q.head, q.tail);
            self.free.push(q.head);
            q = EMPTY_Q;
        } else if q.head_off as usize == PAGE {
            let nxt = self.next[q.head as usize];
            self.free.push(q.head);
            q.head = nxt;
            q.head_off = 0;
        }
        self.q[qi] = q;
        pid
    }

    #[inline]
    fn len(&self, qi: usize) -> u32 {
        self.q[qi].len
    }
}

/// Online per-job attribution for [`Network::run_partitioned`]: one
/// [`RunCounters`] per job plus the live queued/stalled tallies the
/// wait accounting needs. Peaks are observed at the owning job's own
/// enqueues (see `run_partitioned` docs for the semantics).
struct JobAttribution<'o> {
    owner: &'o [u32],
    counters: Vec<RunCounters>,
    /// Currently queued flits per job.
    queued: Vec<u64>,
    /// Currently source-stalled packets per job (credit mode).
    stalled: Vec<u64>,
}

impl<'o> JobAttribution<'o> {
    fn new(owner: &'o [u32], jobs: usize) -> Self {
        JobAttribution {
            owner,
            counters: vec![RunCounters::default(); jobs],
            queued: vec![0; jobs],
            stalled: vec![0; jobs],
        }
    }
}

/// One fast run's mutable state.
struct FastSim<'a, P: Probe> {
    net: &'a Network,
    gens: usize,
    lanes: usize,
    inj: &'a [Injection],
    pkts: Vec<SimPacket>,
    routes: RouteArena,
    /// Per-job attribution, installed only by
    /// [`Network::run_partitioned`].
    attr: Option<JobAttribution<'a>>,
    outcomes: Vec<Option<PacketOutcome>>,
    qs: SlabQueues,
    /// Occupancy-bitmap worklist: bit `qi` is set iff queue `qi` is
    /// non-empty. Arbitration scans words and skips zeros, visiting
    /// exactly the non-empty queues in ascending index order — the
    /// reference engine's scan order — with no per-round sorting.
    active_bits: Vec<u64>,
    node_occ: Vec<u32>,
    reserved: Vec<u32>,
    /// Arrival batches keyed by landing round, one lane per possible
    /// in-flight round (`link_latency + 1`).
    arrivals: Vec<Vec<PacketId>>,
    arrival_round: Vec<u32>,
    in_flight: usize,
    stalled: VecDeque<PacketId>,
    reroute_memo: HashMap<u32, Vec<u8>>,
    resolved: usize,
    total_queued: u64,
    pool: Option<u64>,
    /// Cached `!faults.is_empty()`: skips the per-hop fault lookups
    /// entirely on a clean network.
    faulty: bool,
    /// The escape partition — `Some` only under
    /// [`FlowControl::EscapeChannel`]. In escape mode a worklist bit
    /// covers **both** channels of its link: set while the adaptive
    /// queue is non-empty *or* some escape resident wants the link.
    esc: Option<EscapeBank>,
    /// Escape residents per PE (adaptive occupancy stays in
    /// `node_occ`, so the credit math is untouched by escape traffic).
    esc_node: Vec<u32>,
    /// Memoized escape-route spans per `(PE, dst)`.
    esc_memo: HashMap<(u32, u32), Option<(u32, u32)>>,
    /// Diversion attempts staged during the arbitration scan, applied
    /// after it in scan order — which also keeps every worklist-bit
    /// mutation out of the word currently being iterated.
    divert: Vec<(usize, PacketId)>,
    counters: RunCounters,
    /// Event sink; [`NullProbe`]'s `ENABLED = false` folds every
    /// emission site out of this monomorphization.
    probe: &'a mut P,
    /// Whether the current round's `RoundBegin` has been emitted.
    round_open: bool,
    /// Armed only by [`Network::run_profiled`]: the injected phase
    /// clock plus the accumulating profile.
    profile: Option<(fn() -> u64, PhaseProfile)>,
}

impl<'a, P: Probe> FastSim<'a, P> {
    fn new(
        net: &'a Network,
        inj: &'a [Injection],
        routes: RouteArena,
        pkts: Vec<SimPacket>,
        probe: &'a mut P,
    ) -> Self {
        let gens = net.n - 1;
        let lanes = net.config.link_latency as usize + 1;
        let queues = net.node_count * gens;
        let esc_mode = net.config.flow_control == FlowControl::EscapeChannel;
        FastSim {
            net,
            gens,
            lanes,
            inj,
            pkts,
            routes,
            attr: None,
            outcomes: vec![None; inj.len()],
            qs: SlabQueues::new(queues),
            active_bits: vec![0; queues.div_ceil(64)],
            node_occ: vec![0; net.node_count],
            reserved: vec![0; net.node_count],
            arrivals: vec![Vec::new(); lanes],
            arrival_round: vec![0; lanes],
            in_flight: 0,
            stalled: VecDeque::new(),
            reroute_memo: HashMap::new(),
            resolved: 0,
            total_queued: 0,
            pool: net.credit_pool(),
            faulty: !net.faults.is_empty(),
            esc: esc_mode.then(|| EscapeBank::new(net.node_count)),
            esc_node: vec![0; net.node_count],
            esc_memo: HashMap::new(),
            divert: Vec::new(),
            counters: RunCounters::default(),
            probe,
            round_open: false,
            profile: None,
        }
    }

    fn resolve(&mut self, pid: PacketId, round: u32, outcome: PacketOutcome) {
        debug_assert!(self.outcomes[pid as usize].is_none(), "double resolution");
        self.outcomes[pid as usize] = Some(outcome);
        self.resolved += 1;
        self.counters.last_event = self.counters.last_event.max(round);
        if let Some(a) = self.attr.as_mut() {
            let j = a.owner[pid as usize] as usize;
            a.counters[j].last_event = a.counters[j].last_event.max(round);
        }
    }

    /// Mirror of [`ReferenceSim::emit`]: opens the round bracket on
    /// the round's first event. Call sites are guarded by `P::ENABLED`.
    fn emit(&mut self, round: u32, ev: Event) {
        if !self.round_open {
            self.round_open = true;
            self.probe.event(&Event::RoundBegin { round });
        }
        self.probe.event(&ev);
    }

    /// Mirror of [`ReferenceSim::emit_strand`]: a `Dropped { Stranded }`
    /// per unresolved packet in pid order, then the round bracket
    /// closes.
    fn emit_strand(&mut self, round: u32) {
        for pid in 0..self.outcomes.len() {
            if self.outcomes[pid].is_none() {
                let pe = self.pkts[pid].cur;
                self.emit(
                    round,
                    Event::Dropped {
                        round,
                        pid: pid as PacketId,
                        pe,
                        reason: DropReason::Stranded,
                    },
                );
            }
        }
        if self.round_open {
            self.round_open = false;
            self.probe.event(&Event::RoundEnd {
                round,
                queued: self.total_queued,
                in_flight: self.in_flight as u64,
                stalled: self.stalled.len() as u64,
            });
        }
    }

    /// Profiler sampling: charges the delta since `mark` to phase
    /// accumulator `phase` (0 = arrivals … 3 = accounting) and
    /// advances `mark`. No-op (and `mark` stays `None`) when the
    /// profiler is unarmed.
    fn sample(&mut self, mark: &mut Option<u64>, phase: usize) {
        if let Some((clock, prof)) = self.profile.as_mut() {
            let now = clock();
            let delta = now - mark.unwrap_or(now);
            match phase {
                0 => prof.arrivals_ticks += delta,
                1 => prof.injections_ticks += delta,
                2 => prof.arbitration_ticks += delta,
                _ => prof.accounting_ticks += delta,
            }
            *mark = Some(now);
        }
    }

    fn has_credit(&self, v: u32) -> bool {
        self.pool.is_none_or(|pool| {
            u64::from(self.node_occ[v as usize]) + u64::from(self.reserved[v as usize]) < pool
        })
    }

    /// Enqueues `pid` on queue `qi`, keeping the worklist invariant:
    /// bit `qi` is set iff queue `qi` is non-empty.
    fn push_queue(&mut self, qi: usize, pid: PacketId) {
        self.qs.push(qi, pid);
        self.active_bits[qi / 64] |= 1u64 << (qi % 64);
    }

    /// Mirror of [`ReferenceSim::enqueue_next`] on the slab queues.
    fn enqueue_next(&mut self, pid: PacketId, round: u32) {
        let p = pid as usize;
        let u = self.pkts[p].cur;
        let mut occ = [0u32; MAX_GENS];
        if self.pkts[p].adaptive {
            let base = u as usize * self.gens;
            for (i, slot) in occ[..self.gens].iter_mut().enumerate() {
                *slot = self.qs.len(base + i);
            }
        }
        let g = match select_generator(
            self.net,
            self.faulty,
            &mut self.pkts,
            &mut self.routes,
            &mut self.reroute_memo,
            pid,
            &occ[..self.gens],
        ) {
            Ok(g) => g,
            Err(fail) => {
                if self.pkts[p].escaped {
                    // The class slot reserved at forward time is
                    // surrendered along with the packet.
                    let c = self.pkts[p].esc_class as usize;
                    let bank = self.esc.as_mut().expect("escaped packet implies bank");
                    bank.clear(c, u as usize);
                }
                let (outcome, reason) = match fail {
                    HopFail::Fault => (PacketOutcome::DroppedFault { round }, DropReason::Fault),
                    HopFail::Unreachable => (
                        PacketOutcome::DroppedUnreachable { round },
                        DropReason::Unreachable,
                    ),
                };
                self.resolve(pid, round, outcome);
                if P::ENABLED {
                    self.emit(
                        round,
                        Event::Dropped {
                            round,
                            pid,
                            pe: u,
                            reason,
                        },
                    );
                }
                return;
            }
        };
        if self.pkts[p].escaped {
            self.place_escape(pid, g, round);
            return;
        }
        let qi = u as usize * self.gens + (g - 1);
        if self.net.config.flow_control == FlowControl::TailDrop {
            if let Some(cap) = self.net.config.queue_capacity {
                if self.qs.len(qi) >= cap {
                    self.resolve(pid, round, PacketOutcome::DroppedOverflow { round });
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Dropped {
                                round,
                                pid,
                                pe: u,
                                reason: DropReason::Overflow,
                            },
                        );
                    }
                    return;
                }
            }
        }
        self.push_queue(qi, pid);
        self.total_queued += 1;
        self.counters.peak_edge = self.counters.peak_edge.max(u64::from(self.qs.len(qi)));
        self.node_occ[u as usize] += 1;
        let at_pe = u64::from(self.node_occ[u as usize]) + u64::from(self.esc_node[u as usize]);
        self.counters.peak_node = self.counters.peak_node.max(at_pe);
        if let Some(a) = self.attr.as_mut() {
            let j = a.owner[p] as usize;
            a.queued[j] += 1;
            a.counters[j].peak_edge = a.counters[j].peak_edge.max(u64::from(self.qs.len(qi)));
            a.counters[j].peak_node = a.counters[j].peak_node.max(at_pe);
        }
        if P::ENABLED {
            let depth = self.qs.len(qi);
            self.emit(
                round,
                Event::Queued {
                    round,
                    pid,
                    pe: u,
                    gen: g as u8,
                    depth,
                    escape: false,
                },
            );
        }
    }

    /// Mirror of [`ReferenceSim::place_escape`], plus the worklist bit
    /// for the link the resident wants and per-job attribution.
    fn place_escape(&mut self, pid: PacketId, g: usize, round: u32) {
        let p = pid as usize;
        let u = self.pkts[p].cur as usize;
        let remaining = self.pkts[p].route_len - self.pkts[p].route_pos;
        let mut c = self.pkts[p].esc_class;
        let bank = self.esc.as_mut().expect("escaped packet implies bank");
        if remaining != c && bank.is_free(remaining as usize, u) {
            bank.clear(c as usize, u);
            c = remaining;
            self.pkts[p].esc_class = c;
        }
        bank.set(c as usize, u, pid);
        self.esc_node[u] += 1;
        self.total_queued += 1;
        let li = u * self.gens + (g - 1);
        self.active_bits[li / 64] |= 1u64 << (li % 64);
        self.counters.peak_escape = self.counters.peak_escape.max(u64::from(self.esc_node[u]));
        let at_pe = u64::from(self.node_occ[u]) + u64::from(self.esc_node[u]);
        self.counters.peak_node = self.counters.peak_node.max(at_pe);
        if let Some(a) = self.attr.as_mut() {
            let j = a.owner[p] as usize;
            a.queued[j] += 1;
            a.counters[j].peak_escape = a.counters[j].peak_escape.max(u64::from(self.esc_node[u]));
            a.counters[j].peak_node = a.counters[j].peak_node.max(at_pe);
        }
        if P::ENABLED {
            let depth = self.esc_node[u];
            self.emit(
                round,
                Event::Queued {
                    round,
                    pid,
                    pe: u as u32,
                    gen: g as u8,
                    depth,
                    escape: true,
                },
            );
        }
    }

    /// `true` iff some escape resident's next hop uses link `li` —
    /// the escape half of the worklist-bit invariant.
    fn escape_wants(&self, li: usize) -> bool {
        let u = li / self.gens;
        if self.esc_node[u] == 0 {
            return false;
        }
        let g = (li % self.gens + 1) as u8;
        let bank = self.esc.as_ref().expect("escape mode");
        for c in 1..bank.classes.len() {
            let slot = bank.classes[c][u];
            if slot == ESC_FREE || slot & ESC_RESV != 0 {
                continue;
            }
            let p = slot as usize;
            let next = self.routes.data[(self.pkts[p].route_off + self.pkts[p].route_pos) as usize];
            if next == g {
                return true;
            }
        }
        false
    }

    /// Mirror of [`ReferenceSim::try_escape_forward`], plus hop
    /// tracing and per-job attribution. Worklist-bit upkeep stays with
    /// the caller.
    fn try_escape_forward(
        &mut self,
        li: usize,
        round: u32,
        land: usize,
        trace: &mut Option<&mut Vec<Vec<HopRecord>>>,
    ) -> bool {
        let u = li / self.gens;
        if self.esc_node[u] == 0 {
            return false;
        }
        let g = (li % self.gens + 1) as u8;
        let v = self.net.neighbor[li];
        let nclasses = self.esc.as_ref().expect("escape mode").classes.len();
        for c in 1..nclasses {
            let slot = self.esc.as_ref().expect("escape mode").holder(c, u);
            if slot == ESC_FREE || slot & ESC_RESV != 0 {
                continue;
            }
            let pid = slot;
            let p = pid as usize;
            let next = self.routes.data[(self.pkts[p].route_off + self.pkts[p].route_pos) as usize];
            if next != g {
                continue;
            }
            debug_assert_eq!(self.pkts[p].esc_class as usize, c, "bank/class drift");
            let remaining = self.pkts[p].route_len - self.pkts[p].route_pos;
            let bank = self.esc.as_mut().expect("escape mode");
            if v == self.pkts[p].dst {
                // Final hop — delivered on arrival even when the
                // pinned route only passes through dst mid-route.
            } else {
                let c_next = (remaining - 1) as usize;
                if !bank.is_free(c_next, v as usize) {
                    continue; // this class stalls; a higher one may still go
                }
                bank.set(c_next, v as usize, pid | ESC_RESV);
                self.pkts[p].esc_class = c_next as u32;
            }
            bank.clear(c, u);
            self.esc_node[u] -= 1;
            self.total_queued -= 1;
            self.pkts[p].cur = v;
            self.pkts[p].hops += 1;
            self.pkts[p].route_pos += 1;
            self.counters.forwarded += 1;
            self.counters.escape_forwarded += 1;
            if let Some(a) = self.attr.as_mut() {
                let j = a.owner[p] as usize;
                a.queued[j] -= 1;
                a.counters[j].forwarded += 1;
                a.counters[j].escape_forwarded += 1;
            }
            if let Some(traces) = trace.as_deref_mut() {
                traces[p].push(HopRecord {
                    from: u as u64,
                    gen: g,
                    to: u64::from(v),
                    round,
                });
            }
            self.arrivals[land].push(pid);
            self.in_flight += 1;
            if P::ENABLED {
                self.emit(
                    round,
                    Event::Forwarded {
                        round,
                        pid,
                        from: u as u32,
                        to: v,
                        gen: g,
                        escape: true,
                    },
                );
            }
            return true;
        }
        false
    }

    /// Mirror of [`ReferenceSim::apply_diversion`], plus worklist-bit
    /// upkeep (runs post-scan, so setting bits is safe) and per-job
    /// attribution.
    fn apply_diversion(&mut self, li: usize, pid: PacketId, round: u32) -> bool {
        let p = pid as usize;
        let u = (li / self.gens) as u32;
        let dst = self.pkts[p].dst;
        let Some((off, len)) = escape_span(
            self.net,
            &mut self.routes,
            &mut self.esc_memo,
            &mut self.reroute_memo,
            u,
            dst,
        ) else {
            return false;
        };
        let bank = self.esc.as_mut().expect("escape mode");
        if !bank.is_free(len as usize, u as usize) {
            return false;
        }
        bank.set(len as usize, u as usize, pid);
        let popped = self.qs.pop(li);
        debug_assert_eq!(popped, pid, "staged head moved before apply");
        self.pkts[p].route_off = off;
        self.pkts[p].route_len = len;
        self.pkts[p].route_pos = 0;
        self.pkts[p].adaptive = false;
        self.pkts[p].escaped = true;
        self.pkts[p].esc_class = len;
        self.node_occ[u as usize] -= 1;
        self.esc_node[u as usize] += 1;
        self.counters.escape_diversions += 1;
        self.counters.peak_escape = self
            .counters
            .peak_escape
            .max(u64::from(self.esc_node[u as usize]));
        if let Some(a) = self.attr.as_mut() {
            let j = a.owner[p] as usize;
            a.counters[j].escape_diversions += 1;
            a.counters[j].peak_escape = a.counters[j]
                .peak_escape
                .max(u64::from(self.esc_node[u as usize]));
        }
        if P::ENABLED {
            self.emit(
                round,
                Event::Diverted {
                    round,
                    pid,
                    pe: u,
                    class: len,
                },
            );
        }
        // The resident now wants the first link of its escape route;
        // the source link's bit may or may not still be needed.
        let g_e = self.routes.data[off as usize] as usize;
        let le = u as usize * self.gens + (g_e - 1);
        self.active_bits[le / 64] |= 1u64 << (le % 64);
        if self.qs.len(li) == 0 && !self.escape_wants(li) {
            self.active_bits[li / 64] &= !(1u64 << (li % 64));
        }
        true
    }

    fn run(
        mut self,
        mut trace: Option<&mut Vec<Vec<HopRecord>>>,
    ) -> (TrafficStats, Option<Vec<RunCounters>>, Option<PhaseProfile>) {
        let total = self.inj.len();
        let latency = self.net.config.link_latency as usize;
        let max_rounds = self.net.config.max_rounds;
        let mut inj_ptr = 0usize;
        let mut round: u32 = 0;
        while self.resolved < total {
            if round >= max_rounds {
                if P::ENABLED {
                    self.emit_strand(round);
                }
                strand_remaining(&mut self.outcomes, &mut self.resolved);
                break;
            }
            let mut mark = None;
            if let Some((clock, prof)) = self.profile.as_mut() {
                prof.rounds += 1;
                mark = Some(clock());
            }
            let mut progress = false;
            // 1. Arrivals: drain this round's batch. The batch was
            // filled in ascending forwarding-queue order, which is
            // exactly the order the reference engine lands flits in.
            let slot = round as usize % self.lanes;
            if !self.arrivals[slot].is_empty() {
                debug_assert_eq!(self.arrival_round[slot], round, "lane landed early/late");
                let arrived = std::mem::take(&mut self.arrivals[slot]);
                self.in_flight -= arrived.len();
                for pid in arrived {
                    progress = true;
                    let p = pid as usize;
                    if self.pkts[p].cur == self.pkts[p].dst {
                        let hops = self.pkts[p].hops;
                        self.resolve(pid, round, PacketOutcome::Delivered { round, hops });
                        if P::ENABLED {
                            let pe = self.pkts[p].cur;
                            self.emit(
                                round,
                                Event::Delivered {
                                    round,
                                    pid,
                                    pe,
                                    hops,
                                },
                            );
                        }
                    } else {
                        if self.pool.is_some() && !self.pkts[p].escaped {
                            self.reserved[self.pkts[p].cur as usize] -= 1;
                        }
                        self.enqueue_next(pid, round);
                    }
                }
            }
            self.sample(&mut mark, 0);
            // 2. Injections: stalled retries first (FIFO), then this
            // round's workload.
            for _ in 0..self.stalled.len() {
                let pid = self.stalled.pop_front().expect("len checked");
                let src = self.pkts[pid as usize].cur;
                if self.has_credit(src) {
                    if let Some(a) = self.attr.as_mut() {
                        a.stalled[a.owner[pid as usize] as usize] -= 1;
                    }
                    self.enqueue_next(pid, round);
                    progress = true;
                } else {
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Stalled {
                                round,
                                pid,
                                pe: src,
                                kind: StallKind::Injection,
                            },
                        );
                    }
                    self.stalled.push_back(pid);
                }
            }
            while inj_ptr < total && self.inj[inj_ptr].round <= round {
                let pid = inj_ptr as PacketId;
                let (src, dst) = (self.inj[inj_ptr].src, self.inj[inj_ptr].dst);
                inj_ptr += 1;
                if self.faulty && self.net.faults.is_node_dead(src) {
                    self.resolve(pid, round, PacketOutcome::DroppedFault { round });
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Dropped {
                                round,
                                pid,
                                pe: src as u32,
                                reason: DropReason::Fault,
                            },
                        );
                    }
                    progress = true;
                } else if src == dst {
                    self.resolve(pid, round, PacketOutcome::Delivered { round, hops: 0 });
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Delivered {
                                round,
                                pid,
                                pe: dst as u32,
                                hops: 0,
                            },
                        );
                    }
                    progress = true;
                } else if !self.has_credit(src as u32) {
                    if P::ENABLED {
                        self.emit(
                            round,
                            Event::Stalled {
                                round,
                                pid,
                                pe: src as u32,
                                kind: StallKind::Injection,
                            },
                        );
                    }
                    if let Some(a) = self.attr.as_mut() {
                        a.stalled[a.owner[pid as usize] as usize] += 1;
                    }
                    self.stalled.push_back(pid);
                } else {
                    self.enqueue_next(pid, round);
                    progress = true;
                }
            }
            self.sample(&mut mark, 1);
            // 3. Arbitration over the occupancy bitmap: visit exactly
            // the live links in ascending index order (the reference
            // scan order). In escape mode a set bit means "adaptive
            // queue non-empty OR an escape resident wants this link";
            // the escape channel is served first on each link, exactly
            // as in the reference scan. Enqueues only happen in phases
            // 1–2 and diversions are staged and applied post-scan, so
            // no bit is set during this pass.
            let esc_mode = self.esc.is_some();
            let land = (round as usize + latency) % self.lanes;
            for wi in 0..self.active_bits.len() {
                let mut word = self.active_bits[wi];
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let qi = wi * 64 + bit;
                    if esc_mode && self.try_escape_forward(qi, round, land, &mut trace) {
                        progress = true;
                        if self.qs.len(qi) == 0 && !self.escape_wants(qi) {
                            self.active_bits[wi] &= !(1u64 << bit);
                        }
                        continue;
                    }
                    let Some(pid) = self.qs.front(qi) else {
                        // Escape-only bit whose resident couldn't move
                        // (or just left): keep it iff still wanted.
                        if !(esc_mode && self.escape_wants(qi)) {
                            self.active_bits[wi] &= !(1u64 << bit);
                        }
                        continue;
                    };
                    let v = self.net.neighbor[qi];
                    let p = pid as usize;
                    if self.pool.is_some() {
                        let final_hop = self.pkts[p].dst == v;
                        if !final_hop {
                            if !self.has_credit(v) {
                                if P::ENABLED {
                                    let pe = (qi / self.gens) as u32;
                                    self.emit(
                                        round,
                                        Event::Stalled {
                                            round,
                                            pid,
                                            pe,
                                            kind: StallKind::CreditHead,
                                        },
                                    );
                                }
                                if esc_mode && self.pkts[p].may_escape {
                                    self.divert.push((qi, pid));
                                }
                                continue; // head stalls for credit, bit stays
                            }
                            self.reserved[v as usize] += 1;
                        }
                    }
                    self.qs.pop(qi);
                    let u = qi / self.gens;
                    self.total_queued -= 1;
                    self.node_occ[u] -= 1;
                    self.pkts[p].cur = v;
                    self.pkts[p].hops += 1;
                    self.pkts[p].route_pos += 1;
                    self.counters.forwarded += 1;
                    if let Some(a) = self.attr.as_mut() {
                        let j = a.owner[p] as usize;
                        a.queued[j] -= 1;
                        a.counters[j].forwarded += 1;
                    }
                    progress = true;
                    if let Some(traces) = trace.as_deref_mut() {
                        traces[p].push(HopRecord {
                            from: u as u64,
                            gen: (qi % self.gens + 1) as u8,
                            to: u64::from(v),
                            round,
                        });
                    }
                    self.arrivals[land].push(pid);
                    self.in_flight += 1;
                    if P::ENABLED {
                        let gen = (qi % self.gens + 1) as u8;
                        self.emit(
                            round,
                            Event::Forwarded {
                                round,
                                pid,
                                from: u as u32,
                                to: v,
                                gen,
                                escape: false,
                            },
                        );
                    }
                    if self.qs.len(qi) == 0 && !(esc_mode && self.escape_wants(qi)) {
                        self.active_bits[wi] &= !(1u64 << bit);
                    }
                }
            }
            // Staged escape diversions, applied in scan order — after
            // the bitmap walk so the bit mutations they perform can't
            // race the iterated word.
            for i in 0..self.divert.len() {
                let (li, pid) = self.divert[i];
                progress |= self.apply_diversion(li, pid, round);
            }
            self.divert.clear();
            if !self.arrivals[land].is_empty() {
                self.arrival_round[land] = round + latency as u32;
            }
            self.sample(&mut mark, 2);
            // 4. Wait + stall accounting, deadlock detection.
            self.counters.total_wait_rounds += self.total_queued;
            self.counters.injection_stall_rounds += self.stalled.len() as u64;
            if let Some(a) = self.attr.as_mut() {
                for (c, (&q, &s)) in a.counters.iter_mut().zip(a.queued.iter().zip(&a.stalled)) {
                    c.total_wait_rounds += q;
                    c.injection_stall_rounds += s;
                }
            }
            self.sample(&mut mark, 3);
            if !progress && self.in_flight == 0 && inj_ptr == total && self.resolved < total {
                if P::ENABLED {
                    self.emit_strand(round);
                }
                strand_remaining(&mut self.outcomes, &mut self.resolved);
                break;
            }
            if P::ENABLED && self.round_open {
                self.round_open = false;
                self.probe.event(&Event::RoundEnd {
                    round,
                    queued: self.total_queued,
                    in_flight: self.in_flight as u64,
                    stalled: self.stalled.len() as u64,
                });
            }
            // Idle skip: with nothing queued and nothing stalled,
            // rounds pass eventlessly until the next injection or
            // landing — jump straight there. Unobservable in the
            // stats: idle rounds accrue zero wait, and the stalled
            // guard keeps injection_stall_rounds accounting exact
            // (a stalled packet is charged every round even when the
            // pool is held only by in-flight reservations).
            round = if self.total_queued == 0 && self.stalled.is_empty() && self.resolved < total {
                let next_inj = (inj_ptr < total).then(|| self.inj[inj_ptr].round);
                let next_arr = (0..self.lanes)
                    .filter(|&s| !self.arrivals[s].is_empty())
                    .map(|s| self.arrival_round[s])
                    .min();
                match next_inj.into_iter().chain(next_arr).min() {
                    Some(t) => t.clamp(round + 1, max_rounds),
                    None => max_rounds,
                }
            } else {
                round + 1
            };
        }
        let per_job = self.attr.take().map(|a| a.counters);
        let profile = self.profile.take().map(|(_, prof)| prof);
        (
            finish(self.net, self.inj, &self.outcomes, self.counters),
            per_job,
            profile,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{AdaptiveRouting, EmbeddingRouting, GreedyRouting};
    use sg_perm::lehmer::rank;

    #[test]
    fn quiescence_audit_is_strict_about_the_release_round() {
        // One packet delivered at round d: a release at d (or any
        // earlier round) is a dirty handoff, a release at d + 1 is
        // clean — resolution frees the region's state *at* its round,
        // so the successor may arrive strictly after.
        let net = Network::new(4);
        let w = Workload::from_injections(
            "one",
            4,
            vec![Injection {
                round: 0,
                src: 7,
                dst: 0,
            }],
        );
        let stats = net.run(&w, &GreedyRouting);
        let d = match stats.packets[0].outcome {
            PacketOutcome::Delivered { round, .. } => round,
            other => panic!("expected delivery, got {other:?}"),
        };
        assert!(d > 0, "a multi-hop route resolves after injection");
        let owner = vec![0u32];
        let dirty = Network::region_quiescence_violations(&stats, &owner, &[d]);
        assert_eq!(
            dirty,
            vec![QuiescenceViolation {
                job: 0,
                pid: 0,
                resolved: Some(d),
                release: d,
            }]
        );
        assert_eq!(
            Network::region_quiescence_violations(&stats, &owner, &[d + 1]),
            vec![]
        );
        Network::assert_region_quiescent(&stats, &owner, &[d + 1]);
    }

    #[test]
    #[should_panic(expected = "dirty sub-star handoff")]
    fn quiescence_assert_panics_on_stranded_flits() {
        // A stranded packet never resolves: no release round is late
        // enough.
        let net = Network::new(3).with_config(NetConfig {
            queue_capacity: Some(1),
            flow_control: FlowControl::CreditBased,
            ..NetConfig::default()
        });
        let w = Workload::bernoulli_uniform(3, 10, 100, 5);
        let stats = net.run(&w, &GreedyRouting);
        assert!(stats.stranded > 0, "the tiny credit pool must wedge");
        let owner = vec![0u32; stats.packets.len()];
        Network::assert_region_quiescent(&stats, &owner, &[u32::MAX]);
    }

    #[test]
    fn single_packet_latency_equals_distance() {
        let net = Network::new(4);
        let a = Perm::from_slice(&[3, 1, 0, 2]).unwrap();
        let b = Perm::from_slice(&[0, 1, 2, 3]).unwrap();
        let w = Workload::from_injections(
            "one",
            4,
            vec![Injection {
                round: 0,
                src: rank(&a),
                dst: rank(&b),
            }],
        );
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.makespan, distance(&a, &b));
        assert_eq!(stats.max_latency, distance(&a, &b));
        assert!(stats.is_contention_free());
    }

    #[test]
    fn link_latency_scales_delivery_time() {
        let a = Perm::from_slice(&[3, 1, 0, 2]).unwrap();
        let b = Perm::identity(4);
        let d = distance(&a, &b);
        for latency in [1u32, 2, 5] {
            let net = Network::new(4).with_config(NetConfig {
                link_latency: latency,
                ..NetConfig::default()
            });
            let w = Workload::from_injections(
                "one",
                4,
                vec![Injection {
                    round: 0,
                    src: rank(&a),
                    dst: rank(&b),
                }],
            );
            let stats = net.run(&w, &GreedyRouting);
            assert_eq!(stats.makespan, d * latency);
        }
    }

    #[test]
    fn two_packets_sharing_a_link_serialize() {
        // Both packets need link identity→g1 in the same round; one of
        // them must wait exactly one round.
        let net = Network::new(3);
        let id = Perm::identity(3);
        let via = id.with_slots_swapped(0, 1); // (1 0 2)
        let far = via.with_slots_swapped(0, 2); // two hops from id
        let near = via;
        // Packet A: id -> far (route g1,g2 under greedy), B: id -> near (g1).
        let w = Workload::from_injections(
            "collide",
            3,
            vec![
                Injection {
                    round: 0,
                    src: rank(&id),
                    dst: rank(&far),
                },
                Injection {
                    round: 0,
                    src: rank(&id),
                    dst: rank(&near),
                },
            ],
        );
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.total_wait_rounds, 1, "loser waits one round");
        assert_eq!(stats.peak_edge_occupancy, 2);
        assert!(!stats.is_contention_free());
    }

    #[test]
    fn self_send_delivers_instantly() {
        // Also exercises the fast engine's idle-round skip: nothing
        // happens until round 4.
        let net = Network::new(3);
        let w = Workload::from_injections(
            "self",
            3,
            vec![Injection {
                round: 4,
                src: 2,
                dst: 2,
            }],
        );
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.makespan, 4);
        assert_eq!(stats.sum_latency, 0);
        assert_eq!(stats, net.run_with(&w, &GreedyRouting, Engine::Reference));
    }

    #[test]
    fn queue_capacity_tail_drops() {
        // Saturate one node's single useful output link.
        let net = Network::new(3).with_config(NetConfig {
            queue_capacity: Some(1),
            ..NetConfig::default()
        });
        let id = Perm::identity(3);
        let dst = id.with_slots_swapped(0, 1);
        let injections = (0..3)
            .map(|_| Injection {
                round: 0,
                src: rank(&id),
                dst: rank(&dst),
            })
            .collect();
        let stats = net.run(
            &Workload::from_injections("burst", 3, injections),
            &GreedyRouting,
        );
        assert_eq!(stats.delivered + stats.dropped_overflow, 3);
        assert!(stats.dropped_overflow >= 1, "capacity 1 must tail-drop");
    }

    #[test]
    fn credit_flow_stalls_instead_of_dropping() {
        // The same over-capacity burst under credit-based flow
        // control: no drops, everything delivered late.
        let id = Perm::identity(3);
        let dst = id.with_slots_swapped(0, 1);
        let injections: Vec<Injection> = (0..6)
            .map(|_| Injection {
                round: 0,
                src: rank(&id),
                dst: rank(&dst),
            })
            .collect();
        let w = Workload::from_injections("burst", 3, injections);
        let net = Network::new(3).with_config(NetConfig {
            queue_capacity: Some(1),
            flow_control: FlowControl::CreditBased,
            ..NetConfig::default()
        });
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.dropped(), 0, "credits never drop");
        assert_eq!(stats.delivered, 6);
        assert!(
            stats.injection_stall_rounds > 0,
            "a 6-packet burst into a 2-slot pool must stall at the source"
        );
        assert_eq!(stats, net.run_with(&w, &GreedyRouting, Engine::Reference));
    }

    #[test]
    fn fault_drop_vs_reroute() {
        let n = 4;
        let a = Perm::identity(n);
        let b = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
        // Kill the first hop of the greedy route a -> b.
        let first_gen = GreedyRouting.route(&a, &b)[0] as usize;
        let dead_plan = |policy| {
            FaultPlan::none()
                .with_policy(policy)
                .kill_link(&a, first_gen)
        };
        let w = Workload::from_injections(
            "faulted",
            n,
            vec![Injection {
                round: 0,
                src: rank(&a),
                dst: rank(&b),
            }],
        );
        let dropped = Network::new(n)
            .with_faults(dead_plan(FaultPolicy::Drop))
            .run(&w, &GreedyRouting);
        assert_eq!(dropped.dropped_fault, 1);
        assert_eq!(dropped.delivered, 0);

        let rerouted = Network::new(n)
            .with_faults(dead_plan(FaultPolicy::Reroute))
            .run(&w, &GreedyRouting);
        assert_eq!(rerouted.delivered, 1);
        // The detour can cost more than the fault-free distance but
        // must still be a real path.
        assert!(rerouted.max_latency >= distance(&a, &b));
    }

    #[test]
    fn dead_destination_is_unreachable_under_reroute() {
        let n = 4;
        let a = Perm::identity(n);
        let b = Perm::from_slice(&[1, 0, 3, 2]).unwrap();
        let plan = FaultPlan::none()
            .with_policy(FaultPolicy::Reroute)
            .kill_node(&b);
        let w = Workload::from_injections(
            "dead-dst",
            n,
            vec![Injection {
                round: 0,
                src: rank(&a),
                dst: rank(&b),
            }],
        );
        let stats = Network::new(n).with_faults(plan).run(&w, &GreedyRouting);
        assert_eq!(stats.dropped_unreachable, 1);
    }

    #[test]
    fn n_minus_2_faults_still_deliver_everything_with_reroute() {
        // The paper's fault-tolerance bound: n-2 dead nodes cannot
        // disconnect S_n, so every packet between live PEs delivers.
        let n = 5;
        let plan = FaultPlan::random_nodes(n, n - 2, 99).with_policy(FaultPolicy::Reroute);
        let net = Network::new(n).with_faults(plan.clone());
        let w = Workload::random_permutation(n, 1234);
        let stats = net.run(&w, &GreedyRouting);
        for rec in &stats.packets {
            if plan.is_node_dead(rec.src) || plan.is_node_dead(rec.dst) {
                assert!(!rec.outcome.is_delivered());
            } else {
                assert!(
                    rec.outcome.is_delivered(),
                    "live pair {}->{} must survive n-2 faults",
                    rec.src,
                    rec.dst
                );
            }
        }
    }

    #[test]
    fn embedding_and_greedy_agree_on_delivery() {
        let net = Network::new(4);
        let w = Workload::random_permutation(4, 5);
        let g = net.run(&w, &GreedyRouting);
        let e = net.run(&w, &EmbeddingRouting);
        assert_eq!(g.delivered, g.injected);
        assert_eq!(e.delivered, e.injected);
        // Greedy routes are never longer than embedding routes.
        assert!(g.forwarded_flits <= e.forwarded_flits);
    }

    #[test]
    fn adaptive_routing_is_minimal_without_contention_or_faults() {
        // One lone packet: adaptive must take a shortest path — same
        // flit count and latency as greedy.
        let n = 5;
        let net = Network::new(n);
        for seed in 0..4u64 {
            let w = Workload::uniform_pairs(n, 1, seed);
            let a = net.run(&w, &AdaptiveRouting);
            let g = net.run(&w, &GreedyRouting);
            assert_eq!(a.forwarded_flits, g.forwarded_flits, "seed {seed}");
            assert_eq!(a.sum_latency, g.sum_latency, "seed {seed}");
        }
    }

    #[test]
    fn engines_agree_on_contended_uniform_traffic() {
        let net = Network::new(4);
        let w = Workload::bernoulli_uniform(4, 5, 80, 0xABBA);
        let fast = net.run_with(&w, &GreedyRouting, Engine::Fast);
        let reference = net.run_with(&w, &GreedyRouting, Engine::Reference);
        assert_eq!(fast, reference);
        assert!(fast.total_wait_rounds > 0, "the case must exercise queues");
    }

    #[test]
    fn max_rounds_strands_in_both_engines() {
        let w = Workload::hot_spot(4, 0, 100, 7);
        let net = Network::new(4).with_config(NetConfig {
            max_rounds: 2,
            ..NetConfig::default()
        });
        let fast = net.run_with(&w, &GreedyRouting, Engine::Fast);
        assert!(fast.stranded > 0, "2 rounds cannot drain a hot spot");
        assert_eq!(
            fast.delivered + fast.stranded + fast.dropped(),
            fast.injected
        );
        assert_eq!(fast, net.run_with(&w, &GreedyRouting, Engine::Reference));
    }

    #[test]
    fn run_traced_records_every_forwarded_flit() {
        let net = Network::new(4);
        let w = Workload::random_permutation(4, 21);
        let (stats, traces) = net.run_traced(&w, &GreedyRouting);
        let hops: u64 = traces.iter().map(|t| t.len() as u64).sum();
        assert_eq!(hops, stats.forwarded_flits);
        for (rec, tr) in stats.packets.iter().zip(&traces) {
            assert_eq!(tr.first().map(|h| h.from), Some(rec.src));
            assert_eq!(tr.last().map(|h| h.to), Some(rec.dst));
            for pair in tr.windows(2) {
                assert_eq!(pair[0].to, pair[1].from, "trace must chain");
                assert!(pair[0].round < pair[1].round, "hops take time");
            }
        }
    }

    #[test]
    fn partitioned_run_attributes_everything_exactly_once() {
        // Two tenants composed onto one S_5: every additive counter
        // splits exactly, per-packet records partition by owner.
        let n = 5;
        let net = Network::new(n);
        let a = Workload::uniform_pairs(n, 40, 11);
        let b = Workload::bernoulli_uniform(n, 3, 30, 22);
        let (merged, owner) = Workload::compose("two-tenant", n, &[(&a, 0), (&b, 2)]);
        assert_eq!(owner.len(), merged.len());
        let (total, jobs) =
            net.run_partitioned(&merged, &[&GreedyRouting as &dyn RoutingPolicy; 2], &owner);
        assert_eq!(
            total,
            net.run(&merged, &GreedyRouting),
            "attribution is free"
        );
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].injected, a.len() as u64);
        assert_eq!(jobs[1].injected, b.len() as u64);
        for (f, sum) in [
            (
                total.forwarded_flits,
                jobs[0].forwarded_flits + jobs[1].forwarded_flits,
            ),
            (
                total.total_wait_rounds,
                jobs[0].total_wait_rounds + jobs[1].total_wait_rounds,
            ),
            (total.delivered, jobs[0].delivered + jobs[1].delivered),
        ] {
            assert_eq!(f, sum, "additive counters must split exactly");
        }
        assert_eq!(total.makespan, jobs[0].makespan.max(jobs[1].makespan));
        for j in &jobs {
            assert_eq!(j.delivered + j.dropped() + j.stranded, j.injected);
            assert!(j.peak_edge_occupancy <= total.peak_edge_occupancy);
        }
    }

    #[test]
    fn compose_is_stable_per_part() {
        let n = 4;
        let a = Workload::uniform_pairs(n, 10, 1);
        let b = Workload::uniform_pairs(n, 10, 2);
        let (merged, owner) = Workload::compose("m", n, &[(&a, 3), (&b, 3)]);
        // Part packets, in merged order, are the part's own sequence
        // shifted by its offset.
        for (j, part) in [&a, &b].iter().enumerate() {
            let mine: Vec<Injection> = merged
                .injections()
                .iter()
                .zip(&owner)
                .filter(|&(_, &o)| o == j as u32)
                .map(|(i, _)| *i)
                .collect();
            assert_eq!(mine.len(), part.len());
            for (got, want) in mine.iter().zip(part.injections()) {
                assert_eq!(got.round, want.round + 3);
                assert_eq!((got.src, got.dst), (want.src, want.dst));
            }
        }
    }

    #[test]
    fn rebased_shifts_rounds_only() {
        let n = 4;
        let net = Network::new(n);
        let w = Workload::uniform_pairs(n, 20, 5);
        let (merged, owner) = Workload::compose("solo", n, &[(&w, 7)]);
        let (_, jobs) = net.run_partitioned(&merged, &[&GreedyRouting], &owner);
        let alone = net.run(&w, &GreedyRouting);
        assert_eq!(jobs[0].rebased(7), alone, "one tenant, shifted clock");
    }

    #[test]
    fn slab_queue_fifo_across_pages() {
        let mut qs = SlabQueues::new(2);
        // Interleave two queues well past one page each.
        for i in 0..100u32 {
            qs.push(0, i);
            qs.push(1, 1000 + i);
        }
        assert_eq!(qs.len(0), 100);
        for i in 0..100u32 {
            assert_eq!(qs.front(0), Some(i));
            assert_eq!(qs.pop(0), i);
            assert_eq!(qs.pop(1), 1000 + i);
        }
        assert_eq!(qs.len(0), 0);
        assert_eq!(qs.front(0), None);
        // Freed pages are recycled: push again and drain in order.
        let pages_before = qs.next.len();
        for i in 0..50u32 {
            qs.push(0, i * 3);
        }
        for i in 0..50u32 {
            assert_eq!(qs.pop(0), i * 3);
        }
        assert_eq!(qs.next.len(), pages_before, "no new pages allocated");
    }
}
