//! The round-based discrete-event interconnect simulator.
//!
//! Model: one PE per star node (addressed by Lehmer rank). Each PE
//! owns `n−1` output queues, one per generator link. A round has four
//! deterministic phases:
//!
//! 1. **Arrivals** — flits finishing a link traversal land at the far
//!    PE; a flit at its destination is delivered, any other is
//!    enqueued on the output queue its route names next.
//! 2. **Injections** — this round's workload packets enter their
//!    source PE's queues (routes were fixed at injection by the
//!    [`RoutingPolicy`]).
//! 3. **Arbitration** — every link forwards **at most one flit per
//!    round** (FIFO head of its queue); the flit is in flight for
//!    [`NetConfig::link_latency`] rounds.
//! 4. **Accounting** — every flit still queued is charged one wait
//!    round.
//!
//! PEs are scanned in rank order and queues in generator order, so a
//! run is a pure function of `(workload, policy, config, faults)` —
//! the determinism the property suite asserts. Queue capacity is
//! enforced at enqueue time (tail drop); faults are consulted whenever
//! a flit is about to take a link (see [`crate::FaultPlan`]).

use crate::fault::{FaultPlan, FaultPolicy};
use crate::packet::{PacketId, PacketOutcome, PacketRecord};
use crate::routing::RoutingPolicy;
use crate::stats::TrafficStats;
use crate::workload::{Injection, Workload};
use rayon::prelude::*;
use sg_perm::factorial::factorial;
use sg_perm::lehmer::unrank;
use std::collections::{HashMap, VecDeque};

/// Tunable knobs of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Rounds one link traversal takes (≥ 1).
    pub link_latency: u32,
    /// Per-output-queue capacity; `None` = unbounded (the default —
    /// packet conservation then means every packet is delivered).
    pub queue_capacity: Option<u32>,
    /// Safety valve: packets unresolved after this many rounds are
    /// recorded as [`PacketOutcome::Stranded`].
    pub max_rounds: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            link_latency: 1,
            queue_capacity: None,
            max_rounds: 1_000_000,
        }
    }
}

/// A simulated `S_n` interconnect: topology + configuration + faults.
///
/// The struct is immutable; [`Network::run`] builds fresh per-run
/// state, so one `Network` can drive many workloads.
///
/// ```
/// use sg_net::{GreedyRouting, Network, Workload};
/// let net = Network::new(4);
/// let w = Workload::random_permutation(4, 0xC0FFEE);
/// let stats = net.run(&w, &GreedyRouting);
/// assert_eq!(stats.delivered, stats.injected); // nothing drops
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    node_count: usize,
    config: NetConfig,
    faults: FaultPlan,
    /// `neighbor[u·(n−1) + (g−1)]` = rank of `u`'s neighbor via `g`.
    neighbor: Vec<u32>,
}

impl Network {
    /// Builds the `S_n` interconnect with default configuration and no
    /// faults.
    ///
    /// # Panics
    /// Panics for `n` outside `2..=9` (the node table is materialized,
    /// `9! = 362 880` PEs).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            (2..=9).contains(&n),
            "simulator materializes n! PEs; supported for 2 <= n <= 9"
        );
        let node_count = factorial(n) as usize;
        let gens = n - 1;
        // Neighbor table, built in parallel: one row per PE.
        let rows: Vec<Vec<u32>> = (0..node_count)
            .into_par_iter()
            .map(|u| {
                let p = unrank(u as u64, n).expect("rank in range");
                (1..n)
                    .map(|g| sg_perm::lehmer::rank(&p.with_slots_swapped(0, g)) as u32)
                    .collect()
            })
            .collect();
        let mut neighbor = Vec::with_capacity(node_count * gens);
        for row in rows {
            neighbor.extend(row);
        }
        Network {
            n,
            node_count,
            config: NetConfig::default(),
            faults: FaultPlan::none(),
            neighbor,
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: NetConfig) -> Self {
        assert!(config.link_latency >= 1, "links need at least one round");
        self.config = config;
        self
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Star order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of PEs (`n!`).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The installed fault plan.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    #[inline]
    fn neighbor_of(&self, u: u32, g: usize) -> u32 {
        self.neighbor[u as usize * (self.n - 1) + (g - 1)]
    }

    /// Runs `workload` under `policy` and returns the full statistics.
    ///
    /// Routes for all packets are precomputed in parallel; the round
    /// loop itself is sequential and deterministic.
    ///
    /// # Panics
    /// Panics if the workload targets a different star order.
    #[must_use]
    pub fn run(&self, workload: &Workload, policy: &dyn RoutingPolicy) -> TrafficStats {
        assert_eq!(
            workload.n(),
            self.n,
            "workload is for S_{} but network is S_{}",
            workload.n(),
            self.n
        );
        let inj = workload.injections();
        let n = self.n;
        let routes: Vec<Vec<u8>> = (0..inj.len())
            .into_par_iter()
            .map(|i| {
                let Injection { src, dst, .. } = inj[i];
                if src == dst {
                    Vec::new()
                } else {
                    let a = unrank(src, n).expect("rank in range");
                    let b = unrank(dst, n).expect("rank in range");
                    policy.route(&a, &b)
                }
            })
            .collect();
        Sim::new(self, inj, routes).run()
    }
}

/// In-flight per-packet state.
struct SimPacket {
    cur: u32,
    dst: u32,
    route: Vec<u8>,
    route_pos: u32,
    hops: u32,
}

/// One run's mutable state.
struct Sim<'a> {
    net: &'a Network,
    gens: usize,
    lanes: usize,
    inj: &'a [Injection],
    pkts: Vec<SimPacket>,
    outcomes: Vec<Option<PacketOutcome>>,
    queues: Vec<VecDeque<PacketId>>,
    node_occ: Vec<u32>,
    /// Ring buffer of arrival lists, indexed by `round % lanes`.
    arrivals: Vec<Vec<PacketId>>,
    /// Per-destination BFS next-hop tables for fault reroutes
    /// (generator per node; 0 = unreachable).
    reroute_memo: HashMap<u32, Vec<u8>>,
    resolved: usize,
    last_event: u32,
    total_queued: u64,
    total_wait_rounds: u64,
    peak_edge: u64,
    peak_node: u64,
    forwarded: u64,
}

impl<'a> Sim<'a> {
    fn new(net: &'a Network, inj: &'a [Injection], routes: Vec<Vec<u8>>) -> Self {
        let gens = net.n - 1;
        let lanes = net.config.link_latency as usize + 1;
        let pkts = routes
            .into_iter()
            .zip(inj)
            .map(|(route, i)| SimPacket {
                cur: i.src as u32,
                dst: i.dst as u32,
                route,
                route_pos: 0,
                hops: 0,
            })
            .collect();
        Sim {
            net,
            gens,
            lanes,
            inj,
            pkts,
            outcomes: vec![None; inj.len()],
            queues: vec![VecDeque::new(); net.node_count * gens],
            node_occ: vec![0; net.node_count],
            arrivals: vec![Vec::new(); lanes],
            reroute_memo: HashMap::new(),
            resolved: 0,
            last_event: 0,
            total_queued: 0,
            total_wait_rounds: 0,
            peak_edge: 0,
            peak_node: 0,
            forwarded: 0,
        }
    }

    fn resolve(&mut self, pid: PacketId, round: u32, outcome: PacketOutcome) {
        debug_assert!(self.outcomes[pid as usize].is_none(), "double resolution");
        self.outcomes[pid as usize] = Some(outcome);
        self.resolved += 1;
        self.last_event = self.last_event.max(round);
    }

    /// BFS over the surviving subgraph, memoized per destination:
    /// returns the generator sequence `u → dst`, or `None` if `u` is
    /// cut off.
    fn reroute(&mut self, u: u32, dst: u32) -> Option<Vec<u8>> {
        let net = self.net;
        let gens = self.gens;
        let next_gen = self.reroute_memo.entry(dst).or_insert_with(|| {
            let mut next = vec![0u8; net.node_count];
            let mut frontier = VecDeque::from([dst]);
            let mut seen = vec![false; net.node_count];
            seen[dst as usize] = true;
            while let Some(w) = frontier.pop_front() {
                for g in 1..=gens {
                    let v = net.neighbor_of(w, g);
                    if seen[v as usize] || net.faults.is_link_dead(u64::from(w), u64::from(v), g) {
                        continue;
                    }
                    seen[v as usize] = true;
                    // The same generator leads back toward dst (the
                    // slot swap is an involution).
                    next[v as usize] = g as u8;
                    frontier.push_back(v);
                }
            }
            next
        });
        let mut route = Vec::new();
        let mut cur = u;
        while cur != dst {
            let g = next_gen[cur as usize];
            if g == 0 {
                return None;
            }
            route.push(g);
            cur = net.neighbor_of(cur, g as usize);
            debug_assert!(route.len() <= net.node_count, "reroute cycle");
        }
        Some(route)
    }

    /// Places a packet (known not to be at its destination) onto the
    /// output queue its route names next, handling faults and queue
    /// capacity.
    fn enqueue_next(&mut self, pid: PacketId, round: u32) {
        let p = pid as usize;
        let u = self.pkts[p].cur;
        let pos = self.pkts[p].route_pos as usize;
        debug_assert!(
            pos < self.pkts[p].route.len(),
            "route exhausted before destination"
        );
        let mut g = self.pkts[p].route[pos] as usize;
        let mut v = self.net.neighbor_of(u, g);
        if self.net.faults.is_link_dead(u64::from(u), u64::from(v), g) {
            match self.net.faults.policy() {
                FaultPolicy::Drop => {
                    self.resolve(pid, round, PacketOutcome::DroppedFault { round });
                    return;
                }
                FaultPolicy::Reroute => {
                    let dst = self.pkts[p].dst;
                    match self.reroute(u, dst) {
                        Some(route) => {
                            g = route[0] as usize;
                            v = self.net.neighbor_of(u, g);
                            self.pkts[p].route = route;
                            self.pkts[p].route_pos = 0;
                        }
                        None => {
                            self.resolve(pid, round, PacketOutcome::DroppedUnreachable { round });
                            return;
                        }
                    }
                }
            }
        }
        let _ = v;
        let qi = u as usize * self.gens + (g - 1);
        if let Some(cap) = self.net.config.queue_capacity {
            if self.queues[qi].len() >= cap as usize {
                self.resolve(pid, round, PacketOutcome::DroppedOverflow { round });
                return;
            }
        }
        self.queues[qi].push_back(pid);
        self.total_queued += 1;
        self.peak_edge = self.peak_edge.max(self.queues[qi].len() as u64);
        self.node_occ[u as usize] += 1;
        self.peak_node = self.peak_node.max(u64::from(self.node_occ[u as usize]));
    }

    fn run(mut self) -> TrafficStats {
        let total = self.inj.len();
        let latency = self.net.config.link_latency as usize;
        let mut inj_ptr = 0usize;
        let mut round: u32 = 0;
        while self.resolved < total {
            if round >= self.net.config.max_rounds {
                for pid in 0..total {
                    if self.outcomes[pid].is_none() {
                        self.outcomes[pid] = Some(PacketOutcome::Stranded);
                        self.resolved += 1;
                    }
                }
                break;
            }
            // 1. Arrivals.
            let slot = round as usize % self.lanes;
            let arrived = std::mem::take(&mut self.arrivals[slot]);
            for pid in arrived {
                let p = pid as usize;
                if self.pkts[p].cur == self.pkts[p].dst {
                    let hops = self.pkts[p].hops;
                    self.resolve(pid, round, PacketOutcome::Delivered { round, hops });
                } else {
                    self.enqueue_next(pid, round);
                }
            }
            // 2. Injections.
            while inj_ptr < total && self.inj[inj_ptr].round <= round {
                let pid = inj_ptr as PacketId;
                let i = &self.inj[inj_ptr];
                inj_ptr += 1;
                if self.net.faults.is_node_dead(i.src) {
                    self.resolve(pid, round, PacketOutcome::DroppedFault { round });
                } else if i.src == i.dst {
                    self.resolve(pid, round, PacketOutcome::Delivered { round, hops: 0 });
                } else {
                    self.enqueue_next(pid, round);
                }
            }
            // 3. Arbitration: one flit per link per round.
            for qi in 0..self.queues.len() {
                if let Some(pid) = self.queues[qi].pop_front() {
                    let u = qi / self.gens;
                    self.total_queued -= 1;
                    self.node_occ[u] -= 1;
                    let v = self.net.neighbor[qi];
                    let p = pid as usize;
                    self.pkts[p].cur = v;
                    self.pkts[p].hops += 1;
                    self.pkts[p].route_pos += 1;
                    self.forwarded += 1;
                    let land = (round as usize + latency) % self.lanes;
                    self.arrivals[land].push(pid);
                }
            }
            // 4. Wait accounting.
            self.total_wait_rounds += self.total_queued;
            round += 1;
        }

        let records: Vec<PacketRecord> = self
            .inj
            .iter()
            .zip(&self.outcomes)
            .map(|(i, o)| PacketRecord {
                src: i.src,
                dst: i.dst,
                inject_round: i.round,
                outcome: o.expect("all packets resolved"),
            })
            .collect();
        TrafficStats::from_records(
            self.net.n,
            records,
            self.last_event,
            self.total_wait_rounds,
            self.peak_edge,
            self.peak_node,
            self.forwarded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{EmbeddingRouting, GreedyRouting};
    use sg_perm::lehmer::rank;
    use sg_perm::Perm;
    use sg_star::distance::distance;

    #[test]
    fn single_packet_latency_equals_distance() {
        let net = Network::new(4);
        let a = Perm::from_slice(&[3, 1, 0, 2]).unwrap();
        let b = Perm::from_slice(&[0, 1, 2, 3]).unwrap();
        let w = Workload::from_injections(
            "one",
            4,
            vec![Injection {
                round: 0,
                src: rank(&a),
                dst: rank(&b),
            }],
        );
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.makespan, distance(&a, &b));
        assert_eq!(stats.max_latency, distance(&a, &b));
        assert!(stats.is_contention_free());
    }

    #[test]
    fn link_latency_scales_delivery_time() {
        let a = Perm::from_slice(&[3, 1, 0, 2]).unwrap();
        let b = Perm::identity(4);
        let d = distance(&a, &b);
        for latency in [1u32, 2, 5] {
            let net = Network::new(4).with_config(NetConfig {
                link_latency: latency,
                ..NetConfig::default()
            });
            let w = Workload::from_injections(
                "one",
                4,
                vec![Injection {
                    round: 0,
                    src: rank(&a),
                    dst: rank(&b),
                }],
            );
            let stats = net.run(&w, &GreedyRouting);
            assert_eq!(stats.makespan, d * latency);
        }
    }

    #[test]
    fn two_packets_sharing_a_link_serialize() {
        // Both packets need link identity→g1 in the same round; one of
        // them must wait exactly one round.
        let net = Network::new(3);
        let id = Perm::identity(3);
        let via = id.with_slots_swapped(0, 1); // (1 0 2)
        let far = via.with_slots_swapped(0, 2); // two hops from id
        let near = via;
        // Packet A: id -> far (route g1,g2 under greedy), B: id -> near (g1).
        let w = Workload::from_injections(
            "collide",
            3,
            vec![
                Injection {
                    round: 0,
                    src: rank(&id),
                    dst: rank(&far),
                },
                Injection {
                    round: 0,
                    src: rank(&id),
                    dst: rank(&near),
                },
            ],
        );
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.total_wait_rounds, 1, "loser waits one round");
        assert_eq!(stats.peak_edge_occupancy, 2);
        assert!(!stats.is_contention_free());
    }

    #[test]
    fn self_send_delivers_instantly() {
        let net = Network::new(3);
        let w = Workload::from_injections(
            "self",
            3,
            vec![Injection {
                round: 4,
                src: 2,
                dst: 2,
            }],
        );
        let stats = net.run(&w, &GreedyRouting);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.makespan, 4);
        assert_eq!(stats.sum_latency, 0);
    }

    #[test]
    fn queue_capacity_tail_drops() {
        // Saturate one node's single useful output link.
        let net = Network::new(3).with_config(NetConfig {
            queue_capacity: Some(1),
            ..NetConfig::default()
        });
        let id = Perm::identity(3);
        let dst = id.with_slots_swapped(0, 1);
        let injections = (0..3)
            .map(|_| Injection {
                round: 0,
                src: rank(&id),
                dst: rank(&dst),
            })
            .collect();
        let stats = net.run(
            &Workload::from_injections("burst", 3, injections),
            &GreedyRouting,
        );
        assert_eq!(stats.delivered + stats.dropped_overflow, 3);
        assert!(stats.dropped_overflow >= 1, "capacity 1 must tail-drop");
    }

    #[test]
    fn fault_drop_vs_reroute() {
        let n = 4;
        let a = Perm::identity(n);
        let b = Perm::from_slice(&[3, 2, 1, 0]).unwrap();
        // Kill the first hop of the greedy route a -> b.
        let first_gen = GreedyRouting.route(&a, &b)[0] as usize;
        let dead_plan = |policy| {
            FaultPlan::none()
                .with_policy(policy)
                .kill_link(&a, first_gen)
        };
        let w = Workload::from_injections(
            "faulted",
            n,
            vec![Injection {
                round: 0,
                src: rank(&a),
                dst: rank(&b),
            }],
        );
        let dropped = Network::new(n)
            .with_faults(dead_plan(FaultPolicy::Drop))
            .run(&w, &GreedyRouting);
        assert_eq!(dropped.dropped_fault, 1);
        assert_eq!(dropped.delivered, 0);

        let rerouted = Network::new(n)
            .with_faults(dead_plan(FaultPolicy::Reroute))
            .run(&w, &GreedyRouting);
        assert_eq!(rerouted.delivered, 1);
        // The detour can cost more than the fault-free distance but
        // must still be a real path.
        assert!(rerouted.max_latency >= distance(&a, &b));
    }

    #[test]
    fn dead_destination_is_unreachable_under_reroute() {
        let n = 4;
        let a = Perm::identity(n);
        let b = Perm::from_slice(&[1, 0, 3, 2]).unwrap();
        let plan = FaultPlan::none()
            .with_policy(FaultPolicy::Reroute)
            .kill_node(&b);
        let w = Workload::from_injections(
            "dead-dst",
            n,
            vec![Injection {
                round: 0,
                src: rank(&a),
                dst: rank(&b),
            }],
        );
        let stats = Network::new(n).with_faults(plan).run(&w, &GreedyRouting);
        assert_eq!(stats.dropped_unreachable, 1);
    }

    #[test]
    fn n_minus_2_faults_still_deliver_everything_with_reroute() {
        // The paper's fault-tolerance bound: n-2 dead nodes cannot
        // disconnect S_n, so every packet between live PEs delivers.
        let n = 5;
        let plan = FaultPlan::random_nodes(n, n - 2, 99).with_policy(FaultPolicy::Reroute);
        let net = Network::new(n).with_faults(plan.clone());
        let w = Workload::random_permutation(n, 1234);
        let stats = net.run(&w, &GreedyRouting);
        for rec in &stats.packets {
            if plan.is_node_dead(rec.src) || plan.is_node_dead(rec.dst) {
                assert!(!rec.outcome.is_delivered());
            } else {
                assert!(
                    rec.outcome.is_delivered(),
                    "live pair {}->{} must survive n-2 faults",
                    rec.src,
                    rec.dst
                );
            }
        }
    }

    #[test]
    fn embedding_and_greedy_agree_on_delivery() {
        let net = Network::new(4);
        let w = Workload::random_permutation(4, 5);
        let g = net.run(&w, &GreedyRouting);
        let e = net.run(&w, &EmbeddingRouting);
        assert_eq!(g.delivered, g.injected);
        assert_eq!(e.delivered, e.injected);
        // Greedy routes are never longer than embedding routes.
        assert!(g.forwarded_flits <= e.forwarded_flits);
    }
}
