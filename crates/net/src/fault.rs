//! Node/edge kill-sets and fault-handling policy.
//!
//! The star graph `S_n` is `(n−1)`-connected, so it tolerates up to
//! `n−2` node faults without disconnecting — the paper's fault
//! tolerance. A [`FaultPlan`] names dead PEs (by Lehmer rank) and dead
//! links (by canonical endpoint/generator key); the simulator consults
//! it whenever a packet is about to use a link:
//!
//! * [`FaultPolicy::Drop`] — the packet dies on the spot
//!   ([`crate::PacketOutcome::DroppedFault`]);
//! * [`FaultPolicy::Reroute`] — the remaining route is recomputed by
//!   BFS over the surviving subgraph (shortest detour); if no path
//!   survives the packet is
//!   [`crate::PacketOutcome::DroppedUnreachable`].

use sg_perm::lehmer::rank;
use sg_perm::Perm;
use std::collections::BTreeSet;

/// What happens when a packet's next hop is dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Drop the packet and count it.
    #[default]
    Drop,
    /// Recompute a shortest surviving path from the current node.
    Reroute,
}

/// A static set of dead nodes and links, plus the handling policy.
///
/// Links are keyed by `(min(rank(u), rank(v)), g)` where `v = u·g` —
/// both directions of an undirected star edge die together (the swap
/// `g` is an involution, so the same generator labels both
/// directions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    dead_nodes: BTreeSet<u64>,
    dead_links: BTreeSet<(u64, usize)>,
    policy: FaultPolicy,
}

impl FaultPlan {
    /// The empty plan (no faults, policy irrelevant).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Sets the handling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Kills the PE at `rank`.
    #[must_use]
    pub fn kill_node_rank(mut self, rank: u64) -> Self {
        self.dead_nodes.insert(rank);
        self
    }

    /// Kills the PE hosting star node `pi`.
    #[must_use]
    pub fn kill_node(self, pi: &Perm) -> Self {
        self.kill_node_rank(rank(pi))
    }

    /// Kills the undirected link `pi ↔ pi·g`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ g < n`.
    #[must_use]
    pub fn kill_link(mut self, pi: &Perm, g: usize) -> Self {
        assert!(g >= 1 && g < pi.len(), "generator out of range");
        let u = rank(pi);
        let v = rank(&pi.with_slots_swapped(0, g));
        self.dead_links.insert((u.min(v), g));
        self
    }

    /// Kills `count ≤ n−2` distinct pseudo-random PEs (the paper's
    /// fault-tolerance budget), seeded and deterministic. Node 0 (the
    /// identity) is spared so a run always has at least one
    /// conventional reference PE.
    ///
    /// # Panics
    /// Panics if `count > n − 2`.
    #[must_use]
    pub fn random_nodes(n: usize, count: usize, seed: u64) -> Self {
        assert!(
            count <= n.saturating_sub(2),
            "S_n tolerates at most n-2 = {} node faults",
            n.saturating_sub(2)
        );
        use rand::prelude::*;
        let size = sg_perm::factorial::factorial(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        while plan.dead_nodes.len() < count {
            let r = rng.gen_range(1..size);
            plan.dead_nodes.insert(r);
        }
        plan
    }

    /// Kills `count ≤ n−2` distinct pseudo-random undirected links,
    /// seeded and deterministic — the edge-fault twin of
    /// [`FaultPlan::random_nodes`]. `S_n` is `(n−1)`-edge-connected
    /// (it is `(n−1)`-regular and vertex-transitive), so staying
    /// within the paper's `n−2` fault budget leaves the graph
    /// connected and reroutes always exist between live PEs.
    ///
    /// # Panics
    /// Panics if `count > n − 2`.
    #[must_use]
    pub fn random_links(n: usize, count: usize, seed: u64) -> Self {
        assert!(
            count <= n.saturating_sub(2),
            "keep edge faults within the n-2 = {} budget",
            n.saturating_sub(2)
        );
        use rand::prelude::*;
        let size = sg_perm::factorial::factorial(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        while plan.dead_links.len() < count {
            let r = rng.gen_range(0..size);
            let g = rng.gen_range(1..n as u64) as usize;
            let pi = sg_perm::lehmer::unrank(r, n).expect("rank in range");
            plan = plan.kill_link(&pi, g);
        }
        plan
    }

    /// Is the PE at `rank` dead?
    #[must_use]
    pub fn is_node_dead(&self, rank: u64) -> bool {
        self.dead_nodes.contains(&rank)
    }

    /// Is the undirected link between ranks `u` and `v` via generator
    /// `g` dead (either explicitly, or because an endpoint is dead)?
    #[must_use]
    pub fn is_link_dead(&self, u: u64, v: u64, g: usize) -> bool {
        self.dead_nodes.contains(&u)
            || self.dead_nodes.contains(&v)
            || self.dead_links.contains(&(u.min(v), g))
    }

    /// The handling policy.
    #[must_use]
    pub fn policy(&self) -> FaultPolicy {
        self.policy
    }

    /// Number of dead PEs.
    #[must_use]
    pub fn dead_node_count(&self) -> usize {
        self.dead_nodes.len()
    }

    /// Number of explicitly dead links (endpoint deaths not counted).
    #[must_use]
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }

    /// `true` when nothing is dead.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dead_nodes.is_empty() && self.dead_links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sg_perm::lehmer::unrank;

    #[test]
    fn link_kill_is_undirected() {
        let pi = unrank(10, 4).unwrap();
        let plan = FaultPlan::none().kill_link(&pi, 2);
        let v = pi.with_slots_swapped(0, 2);
        assert!(plan.is_link_dead(rank(&pi), rank(&v), 2));
        assert!(plan.is_link_dead(rank(&v), rank(&pi), 2));
        assert!(!plan.is_link_dead(rank(&pi), rank(&v), 3));
    }

    #[test]
    fn dead_node_kills_incident_links() {
        let plan = FaultPlan::none().kill_node_rank(5);
        assert!(plan.is_node_dead(5));
        assert!(plan.is_link_dead(5, 9, 1));
        assert!(plan.is_link_dead(9, 5, 3));
        assert!(!plan.is_link_dead(9, 4, 3));
    }

    #[test]
    fn random_nodes_respects_budget_and_seed() {
        let a = FaultPlan::random_nodes(5, 3, 7);
        assert_eq!(a.dead_node_count(), 3);
        assert!(!a.is_node_dead(0), "identity PE is spared");
        assert_eq!(a, FaultPlan::random_nodes(5, 3, 7));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn over_budget_rejected() {
        let _ = FaultPlan::random_nodes(4, 3, 0);
    }

    #[test]
    fn random_links_respects_budget_and_seed() {
        let a = FaultPlan::random_links(5, 3, 11);
        assert_eq!(a.dead_link_count(), 3);
        assert_eq!(a.dead_node_count(), 0);
        assert_eq!(a, FaultPlan::random_links(5, 3, 11));
        assert_ne!(a, FaultPlan::random_links(5, 3, 12));
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn random_links_over_budget_rejected() {
        let _ = FaultPlan::random_links(4, 3, 0);
    }
}
