//! Traffic statistics and the saturation-sweep driver.
//!
//! [`TrafficStats`] is a pure-integer, `Eq`-comparable summary of one
//! simulation run (floats appear only in derived accessors), so the
//! determinism property — same seed ⇒ identical stats — is a single
//! `assert_eq!`. Latency aggregation over the per-packet records uses
//! the rayon shim's `fold`/`reduce` adapters.

use crate::network::Network;
use crate::packet::{PacketOutcome, PacketRecord};
use crate::routing::RoutingPolicy;
use crate::workload::Workload;
use rayon::prelude::*;

/// Aggregated outcome of one [`Network::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficStats {
    /// Star order.
    pub n: usize,
    /// Packets injected (= workload size).
    pub injected: u64,
    /// Packets delivered to their destination PE.
    pub delivered: u64,
    /// Packets dropped on a dead node/link under
    /// [`crate::FaultPolicy::Drop`].
    pub dropped_fault: u64,
    /// Packets with no surviving path under
    /// [`crate::FaultPolicy::Reroute`].
    pub dropped_unreachable: u64,
    /// Packets tail-dropped at a full output queue.
    pub dropped_overflow: u64,
    /// Packets still unresolved when the round cap fired.
    pub stranded: u64,
    /// Round of the last packet resolution (delivery or drop).
    pub makespan: u32,
    /// Total flit·rounds spent waiting in output queues beyond the
    /// round that forwarded each flit. Zero iff the run was
    /// contention-free.
    pub total_wait_rounds: u64,
    /// Packet·rounds spent stalled **before** injection because the
    /// source PE had no buffer credit (always 0 outside
    /// [`crate::FlowControl::CreditBased`]). Stalled packets are not
    /// in any queue yet, so this is disjoint from
    /// [`TrafficStats::total_wait_rounds`]; it still shows up in
    /// end-to-end latency, which is measured from the workload's
    /// injection round.
    pub injection_stall_rounds: u64,
    /// Peak occupancy of any single output queue.
    pub peak_edge_occupancy: u64,
    /// Peak queued packets at any single PE (all its queues summed).
    pub peak_node_occupancy: u64,
    /// Star links traversed in total.
    pub forwarded_flits: u64,
    /// Packets diverted from the adaptive partition onto the escape
    /// channel (always 0 outside
    /// [`crate::FlowControl::EscapeChannel`]). Each packet is counted
    /// at most once — a diversion is one-way.
    pub escape_diversions: u64,
    /// Links traversed on the escape channel (a subset of
    /// [`TrafficStats::forwarded_flits`]).
    pub escape_forwarded_flits: u64,
    /// Peak escape-channel residents at any single PE. Bounded by the
    /// network diameter: the escape partition holds one slot per
    /// residual-hop class.
    pub peak_escape_occupancy: u64,
    /// `latency_histogram[l]` counts delivered packets with latency
    /// `l` rounds.
    pub latency_histogram: Vec<u64>,
    /// Sum of delivered latencies (rounds).
    pub sum_latency: u64,
    /// Largest delivered latency (rounds); 0 if nothing was delivered.
    pub max_latency: u32,
    /// One record per packet, in injection order.
    pub packets: Vec<PacketRecord>,
}

/// Partial latency aggregate folded per chunk, merged by `reduce`.
#[derive(Default)]
struct LatencyAgg {
    histogram: Vec<u64>,
    sum: u64,
    max: u32,
    delivered: u64,
    dropped_fault: u64,
    dropped_unreachable: u64,
    dropped_overflow: u64,
    stranded: u64,
}

impl LatencyAgg {
    fn absorb(mut self, rec: &PacketRecord) -> Self {
        match rec.outcome {
            PacketOutcome::Delivered { round, .. } => {
                let lat = round - rec.inject_round;
                if self.histogram.len() <= lat as usize {
                    self.histogram.resize(lat as usize + 1, 0);
                }
                self.histogram[lat as usize] += 1;
                self.sum += u64::from(lat);
                self.max = self.max.max(lat);
                self.delivered += 1;
            }
            PacketOutcome::DroppedFault { .. } => self.dropped_fault += 1,
            PacketOutcome::DroppedUnreachable { .. } => self.dropped_unreachable += 1,
            PacketOutcome::DroppedOverflow { .. } => self.dropped_overflow += 1,
            PacketOutcome::Stranded => self.stranded += 1,
        }
        self
    }

    fn merge(mut self, other: Self) -> Self {
        if self.histogram.len() < other.histogram.len() {
            self.histogram.resize(other.histogram.len(), 0);
        }
        for (slot, v) in self.histogram.iter_mut().zip(other.histogram) {
            *slot += v;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.delivered += other.delivered;
        self.dropped_fault += other.dropped_fault;
        self.dropped_unreachable += other.dropped_unreachable;
        self.dropped_overflow += other.dropped_overflow;
        self.stranded += other.stranded;
        self
    }
}

/// The counters an engine tracks online during one run, handed to
/// [`TrafficStats::from_records`] at the end. Both engines fill the
/// same struct, so the differential suite compares like with like.
///
/// Public because it is also the **log round-trip hook**: the
/// `sg-trace` replayer reconstructs these counters from an event
/// stream alone ([`sg_obs::ReplayCounters`] is a field-for-field
/// mirror) and [`crate::trace::replay`] feeds them back through
/// [`TrafficStats::from_records`] to rebuild statistics byte-identical
/// to the live run's.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunCounters {
    /// Round of the last packet resolution (= makespan).
    pub last_event: u32,
    /// Flit·rounds spent queued.
    pub total_wait_rounds: u64,
    /// Packet·rounds stalled pre-injection (credit mode only).
    pub injection_stall_rounds: u64,
    /// Peak single-queue occupancy.
    pub peak_edge: u64,
    /// Peak per-PE queued total.
    pub peak_node: u64,
    /// Links traversed.
    pub forwarded: u64,
    /// Adaptive→escape diversions (escape mode only).
    pub escape_diversions: u64,
    /// Links traversed on the escape channel.
    pub escape_forwarded: u64,
    /// Peak per-PE escape residents.
    pub peak_escape: u64,
}

impl TrafficStats {
    /// Builds the stats from per-packet records plus the counters the
    /// simulator tracks online. The latency histogram and outcome
    /// tallies are aggregated in parallel (shim `fold`/`reduce`).
    ///
    /// Public as the second half of the log round-trip hook: replayed
    /// [`RunCounters`] + preamble-derived [`PacketRecord`]s rebuild a
    /// run's statistics from its trace alone.
    #[must_use]
    pub fn from_records(n: usize, packets: Vec<PacketRecord>, counters: RunCounters) -> Self {
        let records = &packets;
        let agg = (0..records.len())
            .into_par_iter()
            .fold(LatencyAgg::default, |acc, i| acc.absorb(&records[i]))
            .reduce(LatencyAgg::default, LatencyAgg::merge);
        TrafficStats {
            n,
            injected: packets.len() as u64,
            delivered: agg.delivered,
            dropped_fault: agg.dropped_fault,
            dropped_unreachable: agg.dropped_unreachable,
            dropped_overflow: agg.dropped_overflow,
            stranded: agg.stranded,
            makespan: counters.last_event,
            total_wait_rounds: counters.total_wait_rounds,
            injection_stall_rounds: counters.injection_stall_rounds,
            peak_edge_occupancy: counters.peak_edge,
            peak_node_occupancy: counters.peak_node,
            forwarded_flits: counters.forwarded,
            escape_diversions: counters.escape_diversions,
            escape_forwarded_flits: counters.escape_forwarded,
            peak_escape_occupancy: counters.peak_escape,
            latency_histogram: agg.histogram,
            sum_latency: agg.sum,
            max_latency: agg.max,
            packets,
        }
    }

    /// All drops combined.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_fault + self.dropped_unreachable + self.dropped_overflow
    }

    /// The same statistics on a clock shifted `offset` rounds
    /// earlier: `makespan` and every per-packet round (injection and
    /// outcome) drop by `offset`; latencies, waits, peaks and flit
    /// counts are round-differences and stay untouched. This is how a
    /// tenant's slice of a [`crate::Network::run_partitioned`] run is
    /// compared **byte for byte** against the same job run in
    /// isolation at round 0 — the executable form of the sub-star
    /// isolation theorem. Rounds saturate at 0 rather than underflow
    /// (relevant only to jobs with no events).
    #[must_use]
    pub fn rebased(&self, offset: u32) -> Self {
        let mut out = self.clone();
        out.makespan = out.makespan.saturating_sub(offset);
        for rec in &mut out.packets {
            rec.inject_round = rec.inject_round.saturating_sub(offset);
            rec.outcome = match rec.outcome {
                PacketOutcome::Delivered { round, hops } => PacketOutcome::Delivered {
                    round: round.saturating_sub(offset),
                    hops,
                },
                PacketOutcome::DroppedFault { round } => PacketOutcome::DroppedFault {
                    round: round.saturating_sub(offset),
                },
                PacketOutcome::DroppedUnreachable { round } => PacketOutcome::DroppedUnreachable {
                    round: round.saturating_sub(offset),
                },
                PacketOutcome::DroppedOverflow { round } => PacketOutcome::DroppedOverflow {
                    round: round.saturating_sub(offset),
                },
                PacketOutcome::Stranded => PacketOutcome::Stranded,
            };
        }
        out
    }

    /// Mean delivered latency in rounds (`NaN` if nothing delivered).
    #[must_use]
    pub fn avg_latency(&self) -> f64 {
        self.sum_latency as f64 / self.delivered as f64
    }

    /// Delivered packets per round over the whole run.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            self.delivered as f64
        } else {
            self.delivered as f64 / f64::from(self.makespan)
        }
    }

    /// `true` iff no packet ever waited in a queue — the network ran
    /// the workload exactly as a lockstep SIMD schedule would.
    #[must_use]
    pub fn is_contention_free(&self) -> bool {
        self.total_wait_rounds == 0 && self.peak_edge_occupancy <= 1
    }
}

/// One point of a saturation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationPoint {
    /// Injection rate in percent of full injection.
    pub rate_pct: u32,
    /// Packets offered.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Run length in rounds.
    pub makespan: u32,
    /// Mean delivered latency (rounds).
    pub avg_latency: f64,
    /// Delivered packets per round.
    pub throughput: f64,
    /// Peak single-queue occupancy.
    pub peak_edge_occupancy: u64,
    /// Total queue wait (flit·rounds).
    pub total_wait_rounds: u64,
}

/// Drives [`Workload::bernoulli_uniform`] across injection rates and
/// summarizes each run — the classic latency-vs-offered-load curve.
/// Deterministic: each rate reuses the same base `seed`.
///
/// # Panics
/// Panics if any rate exceeds 100.
#[must_use]
pub fn saturation_sweep(
    net: &Network,
    rates_pct: &[u32],
    rounds: u32,
    seed: u64,
    policy: &dyn RoutingPolicy,
) -> Vec<SaturationPoint> {
    rates_pct
        .iter()
        .map(|&rate_pct| {
            let w = Workload::bernoulli_uniform(net.n(), rounds, rate_pct, seed);
            let stats = net.run(&w, policy);
            SaturationPoint {
                rate_pct,
                injected: stats.injected,
                delivered: stats.delivered,
                makespan: stats.makespan,
                avg_latency: stats.avg_latency(),
                throughput: stats.throughput(),
                peak_edge_occupancy: stats.peak_edge_occupancy,
                total_wait_rounds: stats.total_wait_rounds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(inject: u32, outcome: PacketOutcome) -> PacketRecord {
        PacketRecord {
            src: 0,
            dst: 1,
            inject_round: inject,
            outcome,
        }
    }

    #[test]
    fn from_records_tallies_outcomes() {
        let packets = vec![
            rec(0, PacketOutcome::Delivered { round: 3, hops: 3 }),
            rec(0, PacketOutcome::Delivered { round: 5, hops: 4 }),
            rec(1, PacketOutcome::DroppedFault { round: 2 }),
            rec(1, PacketOutcome::DroppedOverflow { round: 2 }),
            rec(2, PacketOutcome::Stranded),
        ];
        let s = TrafficStats::from_records(
            4,
            packets,
            RunCounters {
                last_event: 5,
                total_wait_rounds: 7,
                injection_stall_rounds: 0,
                peak_edge: 2,
                peak_node: 3,
                forwarded: 11,
                ..RunCounters::default()
            },
        );
        assert_eq!(s.injected, 5);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.stranded, 1);
        assert_eq!(s.sum_latency, 3 + 5);
        assert_eq!(s.max_latency, 5);
        assert_eq!(s.latency_histogram[3], 1);
        assert_eq!(s.latency_histogram[5], 1);
        assert!((s.avg_latency() - 4.0).abs() < 1e-12);
        assert!(!s.is_contention_free());
        assert_eq!(
            s.delivered + s.dropped() + s.stranded,
            s.injected,
            "conservation"
        );
    }

    #[test]
    fn contention_free_requires_zero_waits() {
        let packets = vec![rec(0, PacketOutcome::Delivered { round: 3, hops: 3 })];
        let s = TrafficStats::from_records(
            4,
            packets,
            RunCounters {
                last_event: 3,
                total_wait_rounds: 0,
                injection_stall_rounds: 0,
                peak_edge: 1,
                peak_node: 1,
                forwarded: 3,
                ..RunCounters::default()
            },
        );
        assert!(s.is_contention_free());
        assert!((s.throughput() - 1.0 / 3.0).abs() < 1e-12);
    }
}
