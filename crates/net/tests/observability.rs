//! Observability integration suite: the probe event stream as an
//! independent witness of `TrafficStats`.
//!
//! Every test here recounts some statistic from the raw [`Event`]
//! stream and checks the engine's own counter against it — the two
//! are computed by disjoint code paths (engine accumulators vs.
//! probe-side folds), so agreement is real evidence. Alongside: the
//! purity guarantee (attaching a probe never changes the stats), the
//! engine-equality of the streams at smoke scale (the full slice
//! lives in `differential.rs`), `TrafficStats::rebased` against event
//! rounds, and the fast engine's self-profiler under the
//! deterministic tick clock.

use sg_net::{
    AdaptiveRouting, Engine, FlowControl, GreedyRouting, NetConfig, Network, PacketOutcome,
    TrafficStats, Workload,
};
use sg_obs::{
    reset_tick_clock, tick_clock, DropReason, Event, EventLog, NetProbe, Probe, StallKind,
};

/// Folds an event stream back into the aggregate counters
/// `TrafficStats` reports, by an entirely independent computation.
#[derive(Default)]
struct Recount {
    forwarded: u64,
    escape_forwarded: u64,
    delivered: u64,
    dropped: u64,
    stranded: u64,
    diverted: u64,
    wait_rounds: u64,
    stall_rounds: u64,
    /// `esc_occ[pe]` live escape residents, and the running peak.
    esc_occ: Vec<u32>,
    peak_escape: u64,
    /// Delivery round per pid, from `Delivered` events.
    delivery_round: Vec<Option<u32>>,
}

impl Recount {
    fn new(node_count: usize, packets: usize) -> Self {
        Recount {
            esc_occ: vec![0; node_count],
            delivery_round: vec![None; packets],
            ..Recount::default()
        }
    }
}

impl Probe for Recount {
    fn event(&mut self, ev: &Event) {
        match *ev {
            Event::Forwarded { from, escape, .. } => {
                self.forwarded += 1;
                if escape {
                    self.escape_forwarded += 1;
                    self.esc_occ[from as usize] -= 1;
                }
            }
            Event::Queued {
                pe, escape: true, ..
            } => {
                self.esc_occ[pe as usize] += 1;
                self.peak_escape = self.peak_escape.max(u64::from(self.esc_occ[pe as usize]));
            }
            Event::Diverted { pe, .. } => {
                self.diverted += 1;
                self.esc_occ[pe as usize] += 1;
                self.peak_escape = self.peak_escape.max(u64::from(self.esc_occ[pe as usize]));
            }
            Event::Delivered { round, pid, .. } => {
                self.delivered += 1;
                self.delivery_round[pid as usize] = Some(round);
            }
            Event::Dropped { reason, .. } => {
                if reason == DropReason::Stranded {
                    self.stranded += 1;
                } else {
                    self.dropped += 1;
                }
            }
            Event::RoundEnd {
                queued, stalled, ..
            } => {
                self.wait_rounds += queued;
                self.stall_rounds += stalled;
            }
            _ => {}
        }
    }
}

/// Checks stream bracketing: rounds strictly increase, every
/// `RoundBegin` is closed by a `RoundEnd` of the same round, and no
/// event falls outside a bracket.
fn assert_well_bracketed(events: &[Event]) {
    let mut open: Option<u32> = None;
    let mut last_closed: Option<u32> = None;
    for ev in events {
        match *ev {
            Event::RoundBegin { round } => {
                assert_eq!(open, None, "nested round {round}");
                assert!(
                    last_closed.is_none_or(|c| round > c),
                    "round {round} reopened after {last_closed:?}"
                );
                open = Some(round);
            }
            Event::RoundEnd { round, .. } => {
                assert_eq!(open, Some(round), "unbalanced round end {round}");
                open = None;
                last_closed = Some(round);
            }
            other => {
                assert_eq!(
                    open,
                    Some(other.round()),
                    "event outside its round bracket: {other:?}"
                );
            }
        }
    }
    assert_eq!(open, None, "stream ended inside a round");
}

fn recounted(
    net: &Network,
    w: &Workload,
    policy: &dyn sg_net::RoutingPolicy,
    engine: Engine,
) -> (TrafficStats, Recount, EventLog) {
    let mut probe = (Recount::new(net.node_count(), w.len()), EventLog::new());
    let stats = net.run_probed(w, policy, engine, &mut probe);
    let (recount, log) = probe;
    (stats, recount, log)
}

#[test]
fn probe_recount_matches_stats_on_both_engines() {
    let net = Network::new(5);
    let w = Workload::bernoulli_uniform(5, 30, 40, 0xA11CE);
    for engine in [Engine::Fast, Engine::Reference] {
        let (stats, rc, log) = recounted(&net, &w, &GreedyRouting, engine);
        let unprobed = net.run_with(&w, &GreedyRouting, engine);
        assert_eq!(stats, unprobed, "probe must not perturb {engine:?}");
        assert_well_bracketed(log.events());
        assert_eq!(rc.forwarded, stats.forwarded_flits);
        assert_eq!(rc.delivered, stats.delivered);
        assert_eq!(rc.dropped, stats.dropped());
        assert_eq!(rc.stranded, stats.stranded);
        assert_eq!(rc.wait_rounds, stats.total_wait_rounds);
        assert_eq!(rc.stall_rounds, stats.injection_stall_rounds);
        // Delivery rounds in the event stream are the packet records'.
        for (pid, rec) in stats.packets.iter().enumerate() {
            if let PacketOutcome::Delivered { round, .. } = rec.outcome {
                assert_eq!(rc.delivery_round[pid], Some(round), "pid {pid}");
            } else {
                assert_eq!(rc.delivery_round[pid], None, "pid {pid}");
            }
        }
    }
}

#[test]
fn event_streams_identical_across_engines_smoke() {
    // The exhaustive n ≤ 5 cross-product lives in differential.rs;
    // this pins the property on one contended run of each flavor.
    let configs = [
        NetConfig::default(),
        NetConfig {
            queue_capacity: Some(2),
            flow_control: FlowControl::CreditBased,
            ..NetConfig::default()
        },
        NetConfig {
            queue_capacity: Some(1),
            flow_control: FlowControl::EscapeChannel,
            ..NetConfig::default()
        },
    ];
    for config in configs {
        let net = Network::new(4).with_config(config);
        let w = Workload::bernoulli_uniform(4, 25, 100, 77);
        let mut fast = EventLog::new();
        let mut reference = EventLog::new();
        let sf = net.run_probed(&w, &AdaptiveRouting, Engine::Fast, &mut fast);
        let sr = net.run_probed(&w, &AdaptiveRouting, Engine::Reference, &mut reference);
        assert_eq!(sf, sr, "stats must agree under {config:?}");
        assert_eq!(
            fast.events().len(),
            reference.events().len(),
            "stream length under {config:?}"
        );
        assert_eq!(
            fast.events(),
            reference.events(),
            "streams must agree under {config:?}"
        );
    }
}

#[test]
fn escape_counters_cross_check_against_recount() {
    // The escape-crush configuration: a 1-slot credit pool under
    // saturating uniform traffic forces diversions; the probe recounts
    // every escape statistic from the raw events.
    let net = Network::new(4).with_config(NetConfig {
        queue_capacity: Some(1),
        flow_control: FlowControl::EscapeChannel,
        ..NetConfig::default()
    });
    let w = Workload::bernoulli_uniform(4, 40, 100, 1);
    let (stats, rc, log) = recounted(&net, &w, &GreedyRouting, Engine::Fast);
    assert!(
        stats.escape_diversions > 0,
        "the crush workload must exercise the channel"
    );
    assert_eq!(stats.stranded, 0, "escape mode must drain");
    assert_eq!(rc.diverted, stats.escape_diversions);
    assert_eq!(rc.escape_forwarded, stats.escape_forwarded_flits);
    assert_eq!(rc.peak_escape, stats.peak_escape_occupancy);
    assert_eq!(rc.forwarded, stats.forwarded_flits);
    // The ready-made NetProbe recounts the same statistics.
    let mut np = NetProbe::new(net.node_count(), net.n() - 1);
    let probed = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut np);
    assert_eq!(probed, stats);
    assert_eq!(np.peak_escape_occupancy(), stats.peak_escape_occupancy);
    assert_eq!(
        np.registry().counter_value("escape_diversions"),
        Some(stats.escape_diversions)
    );
    assert_eq!(
        np.registry().counter_value("flits_forwarded"),
        Some(stats.forwarded_flits)
    );
    // Escape traffic is visible in the log as typed events.
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, Event::Diverted { .. })));
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, Event::Forwarded { escape: true, .. })));
}

#[test]
fn credit_stalls_emit_typed_stall_events() {
    let net = Network::new(4).with_config(NetConfig {
        queue_capacity: Some(1),
        flow_control: FlowControl::CreditBased,
        ..NetConfig::default()
    });
    let w = Workload::bernoulli_uniform(4, 30, 100, 3);
    let (stats, rc, log) = recounted(&net, &w, &GreedyRouting, Engine::Fast);
    assert_eq!(rc.stall_rounds, stats.injection_stall_rounds);
    assert!(
        log.events().iter().any(|e| matches!(
            e,
            Event::Stalled {
                kind: StallKind::Injection,
                ..
            }
        )),
        "a 1-slot pool at rate 1.0 must stall injections"
    );
    if stats.stranded > 0 {
        assert_eq!(rc.stranded, stats.stranded);
        assert!(log.events().iter().any(|e| matches!(
            e,
            Event::Dropped {
                reason: DropReason::Stranded,
                ..
            }
        )));
    }
}

#[test]
fn rebased_shifts_packet_rounds_against_event_log() {
    let net = Network::new(4);
    let w = Workload::bernoulli_uniform(4, 10, 60, 9);
    let (stats, rc, _) = recounted(&net, &w, &GreedyRouting, Engine::Fast);
    assert_eq!(stats.rebased(0), stats, "offset 0 is the identity");
    let offset = 7u32;
    let shifted = stats.rebased(offset);
    assert_eq!(shifted.makespan, stats.makespan.saturating_sub(offset));
    assert_eq!(shifted.delivered, stats.delivered);
    assert_eq!(shifted.total_wait_rounds, stats.total_wait_rounds);
    assert_eq!(shifted.latency_histogram, stats.latency_histogram);
    for (pid, (orig, reb)) in stats.packets.iter().zip(&shifted.packets).enumerate() {
        assert_eq!(
            reb.inject_round,
            orig.inject_round.saturating_sub(offset),
            "pid {pid}"
        );
        if let PacketOutcome::Delivered { round, hops } = reb.outcome {
            // The event log holds the unshifted round: rebasing is a
            // pure re-clocking of what the probe saw.
            let ev_round = rc.delivery_round[pid].expect("delivered => event");
            assert_eq!(round, ev_round.saturating_sub(offset), "pid {pid}");
            let PacketOutcome::Delivered { hops: oh, .. } = orig.outcome else {
                panic!("outcome kind changed by rebased");
            };
            assert_eq!(hops, oh, "hops are round-free and must not move");
        }
    }
    // Rebasing past every event floors at zero.
    let floored = stats.rebased(u32::MAX);
    assert_eq!(floored.makespan, 0);
    assert!(floored
        .packets
        .iter()
        .all(|r| matches!(r.outcome, PacketOutcome::Delivered { round: 0, .. })));
}

#[test]
fn profiler_is_exact_under_the_tick_clock() {
    // One tick per phase sample makes the profile fully deterministic:
    // each phase accumulator equals the number of executed rounds.
    reset_tick_clock();
    let net = Network::new(5).with_clock(tick_clock);
    let w = Workload::bernoulli_uniform(5, 20, 50, 0xBEEF);
    let (stats, profile) = net.run_profiled(&w, &GreedyRouting);
    assert_eq!(stats, net.run(&w, &GreedyRouting), "profiling is pure");
    assert!(profile.rounds > 0);
    assert_eq!(profile.arrivals_ticks, profile.rounds);
    assert_eq!(profile.injections_ticks, profile.rounds);
    assert_eq!(profile.arbitration_ticks, profile.rounds);
    assert_eq!(profile.accounting_ticks, profile.rounds);
    assert_eq!(profile.total_ticks(), 4 * profile.rounds);
    // The idle-skip makes executed rounds ≤ the makespan, and the
    // render names every phase.
    assert!(profile.rounds <= u64::from(stats.makespan) + 1);
    let text = profile.render();
    for phase in ["arrivals", "injections", "arbitration", "accounting"] {
        assert!(text.contains(phase), "{phase} missing from {text}");
    }
}

#[test]
fn bounded_event_log_drops_past_capacity_without_perturbing() {
    let net = Network::new(4);
    let w = Workload::bernoulli_uniform(4, 20, 80, 5);
    let mut full = EventLog::new();
    let total = {
        let s = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut full);
        assert_eq!(s, net.run(&w, &GreedyRouting));
        full.events().len()
    };
    let cap = total / 2;
    let mut bounded = EventLog::with_capacity(cap);
    let s = net.run_probed(&w, &GreedyRouting, Engine::Fast, &mut bounded);
    assert_eq!(s, net.run(&w, &GreedyRouting), "cap overflow is silent");
    assert_eq!(bounded.events().len(), cap);
    assert_eq!(bounded.dropped() as usize, total - cap);
    assert_eq!(bounded.events(), &full.events()[..cap]);
    // JSONL export: one object per recorded event.
    let jsonl = bounded.to_jsonl();
    assert_eq!(jsonl.lines().count(), cap);
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"ev\":\"") && line.ends_with('}'));
    }
}

#[test]
fn partitioned_probe_sees_tenant_traffic() {
    // Two synthetic tenants over one S_4: compose two workloads, run
    // partitioned with a NetProbe carrying the owner map, and check
    // the per-tenant gauges actually saw both tenants' flits — and
    // that probing perturbs neither the total nor the per-job stats.
    let net = Network::new(4);
    let a = Workload::random_permutation(4, 11);
    let b = Workload::transpose(4);
    let (w, owner) = Workload::compose("pair", 4, &[(&a, 0), (&b, 0)]);
    let policies: Vec<&dyn sg_net::RoutingPolicy> = vec![&GreedyRouting, &GreedyRouting];
    let (t0, pj0) = net.run_partitioned(&w, &policies, &owner);
    let mut np = NetProbe::new(net.node_count(), net.n() - 1).with_tenants(owner.clone(), 2);
    let (t1, pj1) = net.run_partitioned_probed(&w, &policies, &owner, &mut np);
    assert_eq!(t0, t1, "probed partitioned total must be identical");
    assert_eq!(pj0, pj1, "probed per-job stats must be identical");
    assert!(np.tenant_peak_in_flight(0) > 0);
    assert!(np.tenant_peak_in_flight(1) > 0);
    assert_eq!(
        np.registry().counter_value("flits_forwarded"),
        Some(t0.forwarded_flits)
    );
}
