//! Inject-after-quiescence phase chaining ([`Network::chain_phases`]).
//!
//! The contract under test is the temporal analogue of the spatial
//! isolation theorem: because phase `k + 1` injects strictly after
//! phase `k`'s last packet resolves, the network is empty at every
//! phase boundary, so the composed run must behave per phase exactly
//! like each phase run alone — byte-identical per-phase statistics
//! after rebasing, on both engines, under tail-drop and credit-based
//! flow control alike.

use sg_net::{
    Engine, FlowControl, GreedyRouting, NetConfig, Network, RoutingPolicy, TrafficStats, Workload,
};

/// A mixed bag of phases: contention-free sweep, random permutation,
/// hot-spot burst, an *empty* phase (the barrier must still advance
/// the clock), and scattered pairs.
fn phases(n: usize, seed: u64) -> Vec<Workload> {
    vec![
        Workload::dimension_sweep(n, 1, true),
        Workload::random_permutation(n, seed),
        Workload::hot_spot(n, seed % 3, 30, seed),
        Workload::from_injections("empty", n, Vec::new()),
        Workload::uniform_pairs(n, 40, seed ^ 0x5eed),
    ]
}

/// Phase starts are exactly `prev_start + prev_makespan + 1`, every
/// packet of phase `k` injects at `start_k + local_round`, and no
/// packet of phase `k` resolves at or after `start_{k+1}`.
#[test]
fn barriers_are_strict() {
    for n in [4, 5] {
        for seed in 0..4u64 {
            let net = Network::new(n);
            let ws = phases(n, seed);
            let chained = net.chain_phases("chain", &ws, &GreedyRouting);
            assert_eq!(chained.phase_count(), ws.len());
            assert_eq!(chained.phase_starts[0], 0);
            for k in 0..ws.len() {
                if k + 1 < ws.len() {
                    assert_eq!(
                        chained.phase_starts[k + 1],
                        chained.phase_starts[k] + chained.phase_makespans[k] + 1,
                        "n={n} seed={seed} phase {k}"
                    );
                }
                let isolated = if ws[k].injections().is_empty() {
                    0
                } else {
                    net.run(&ws[k], &GreedyRouting).makespan
                };
                assert_eq!(chained.phase_makespans[k], isolated);
            }

            // Resolve the composed run and audit the barrier per packet.
            let stats = net.run(&chained.workload, &GreedyRouting);
            assert_eq!(stats.stranded, 0);
            assert_eq!(stats.makespan + 1, chained.total_rounds());
            assert_eq!(chained.owner.len(), stats.packets.len());
            for (rec, &phase) in stats.packets.iter().zip(&chained.owner) {
                let start = chained.phase_starts[phase as usize];
                let end = start + chained.phase_makespans[phase as usize];
                assert!(
                    rec.inject_round >= start,
                    "phase {phase} packet injected before its barrier"
                );
                let resolved = rec.outcome.resolution_round().expect("no stranded packets");
                assert!(
                    resolved <= end,
                    "phase {phase} packet resolved at {resolved}, after its window end {end}"
                );
            }
        }
    }
}

/// The composed run, split per phase via the owner map and rebased
/// onto each phase's own clock, is **byte-identical** to running each
/// phase alone — `TrafficStats::eq` compares every counter, the full
/// latency histogram, and every per-packet record.
#[test]
fn chained_phases_equal_isolated_runs() {
    for n in [4, 5] {
        for seed in 0..4u64 {
            let net = Network::new(n);
            let ws = phases(n, seed);
            let chained = net.chain_phases("chain", &ws, &GreedyRouting);
            let policies: Vec<Box<dyn RoutingPolicy>> =
                ws.iter().map(|_| Box::new(GreedyRouting) as _).collect();
            let refs: Vec<&dyn RoutingPolicy> = policies.iter().map(|p| p.as_ref()).collect();
            let (_, per_phase) = net.run_partitioned(&chained.workload, &refs, &chained.owner);
            assert_eq!(per_phase.len(), ws.len());
            for (k, w) in ws.iter().enumerate() {
                let rebased = per_phase[k].rebased(chained.phase_starts[k]);
                let isolated = net.run(w, &GreedyRouting);
                assert_eq!(
                    rebased, isolated,
                    "n={n} seed={seed} phase {k} diverges from its isolated run"
                );
            }
        }
    }
}

/// Both engines agree byte-for-byte on the chained workload — the
/// barrier structure (long idle gaps between phases) is exactly what
/// the fast engine's idle-round skipping accelerates, so this pins it
/// against the reference oracle.
#[test]
fn engines_agree_on_chained_workloads() {
    for n in [4, 5] {
        for seed in 0..4u64 {
            let net = Network::new(n);
            let chained = net.chain_phases("chain", &phases(n, seed), &GreedyRouting);
            let fast = net.run_with(&chained.workload, &GreedyRouting, Engine::Fast);
            let reference = net.run_with(&chained.workload, &GreedyRouting, Engine::Reference);
            assert_eq!(fast, reference, "n={n} seed={seed}");
            assert_eq!(fast.delivered, fast.injected);
        }
    }
}

/// Chaining under credit-based flow control: quiescence is judged
/// under the same configuration the chain will run under, the barrier
/// keeps every phase's credit pressure from leaking into the next,
/// and both engines still agree.
#[test]
fn credit_based_chains_stay_isolated() {
    let n = 4;
    let config = NetConfig {
        queue_capacity: Some(2),
        flow_control: FlowControl::CreditBased,
        ..NetConfig::default()
    };
    for seed in 0..4u64 {
        let net = Network::new(n).with_config(config);
        let ws = vec![
            Workload::uniform_pairs(n, 48, seed),
            Workload::random_permutation(n, seed),
            Workload::uniform_pairs(n, 48, seed ^ 1),
        ];
        let chained = net.chain_phases("credit-chain", &ws, &GreedyRouting);
        let fast = net.run_with(&chained.workload, &GreedyRouting, Engine::Fast);
        let reference = net.run_with(&chained.workload, &GreedyRouting, Engine::Reference);
        assert_eq!(fast, reference, "seed={seed}");
        assert_eq!(fast.stranded, 0);

        let policies: Vec<Box<dyn RoutingPolicy>> =
            ws.iter().map(|_| Box::new(GreedyRouting) as _).collect();
        let refs: Vec<&dyn RoutingPolicy> = policies.iter().map(|p| p.as_ref()).collect();
        let (_, per_phase) = net.run_partitioned(&chained.workload, &refs, &chained.owner);
        for (k, w) in ws.iter().enumerate() {
            let rebased: TrafficStats = per_phase[k].rebased(chained.phase_starts[k]);
            assert_eq!(rebased, net.run(w, &GreedyRouting), "seed={seed} phase {k}");
        }
    }
}

/// `Workload::shifted` round-trips with compose: shifting every phase
/// by its start and merging by hand reproduces the chained workload.
#[test]
fn shifted_reconstruction_matches() {
    let n = 4;
    let net = Network::new(n);
    let ws = phases(n, 7);
    let chained = net.chain_phases("chain", &ws, &GreedyRouting);
    let mut manual: Vec<sg_net::Injection> = Vec::new();
    for (w, &start) in ws.iter().zip(&chained.phase_starts) {
        manual.extend(w.shifted(start).injections().iter().copied());
    }
    manual.sort_by_key(|i| i.round);
    assert_eq!(manual, chained.workload.injections());
}
