//! Property suite for the simulator: packet conservation, the
//! latency-vs-distance lower bound, seed determinism, the
//! credit-based flow-control contract (no drops; stalling only ever
//! costs time at moderate load), and the escape-channel deadlock-
//! freedom invariant (no `Stranded` outcome exists under
//! `FlowControl::EscapeChannel`, ever).

use proptest::prelude::*;
use sg_net::{
    EmbeddingRouting, Engine, FaultPlan, FaultPolicy, FlowControl, GreedyRouting, NetConfig,
    Network, PacketOutcome, RoutingPolicy, Workload,
};
use sg_perm::lehmer::unrank;
use sg_star::distance::distance;

fn policy_for(flip: bool) -> &'static dyn RoutingPolicy {
    if flip {
        &GreedyRouting
    } else {
        &EmbeddingRouting
    }
}

proptest! {
    /// Default config (unbounded queues, no faults): every injected
    /// packet is delivered exactly once — none lost, none duplicated.
    #[test]
    fn prop_packet_conservation(n in 3usize..=5, seed in any::<u64>(), rate in 1u32..=60, flip in any::<bool>()) {
        let net = Network::new(n);
        let w = Workload::bernoulli_uniform(n, 3, rate, seed);
        let stats = net.run(&w, policy_for(flip));
        prop_assert_eq!(stats.injected, w.len() as u64);
        prop_assert_eq!(stats.delivered, stats.injected);
        prop_assert_eq!(stats.dropped(), 0);
        prop_assert_eq!(stats.stranded, 0);
        // Exactly once: one record per injection, all delivered, and
        // the histogram re-counts them with no surplus.
        prop_assert_eq!(stats.packets.len() as u64, stats.injected);
        prop_assert!(stats.packets.iter().all(|r| r.outcome.is_delivered()));
        prop_assert_eq!(stats.latency_histogram.iter().sum::<u64>(), stats.delivered);
    }

    /// Conservation also holds as a partition when faults and finite
    /// queues make drops possible.
    #[test]
    fn prop_conservation_partitions_under_faults(n in 4usize..=5, seed in any::<u64>(), cap in 1u32..=4, reroute in any::<bool>()) {
        let policy = if reroute { FaultPolicy::Reroute } else { FaultPolicy::Drop };
        let plan = FaultPlan::random_nodes(n, n - 2, seed ^ 0xFA17).with_policy(policy);
        let net = Network::new(n)
            .with_config(NetConfig { queue_capacity: Some(cap), ..NetConfig::default() })
            .with_faults(plan);
        let w = Workload::bernoulli_uniform(n, 3, 40, seed);
        let stats = net.run(&w, policy_for(reroute));
        prop_assert_eq!(
            stats.delivered + stats.dropped() + stats.stranded,
            stats.injected
        );
    }

    /// No packet beats the star metric: observed latency is at least
    /// `distance(src, dst) · link_latency`.
    #[test]
    fn prop_latency_at_least_star_distance(n in 3usize..=5, seed in any::<u64>(), latency in 1u32..=3, flip in any::<bool>()) {
        let net = Network::new(n).with_config(NetConfig { link_latency: latency, ..NetConfig::default() });
        let w = Workload::random_permutation(n, seed);
        let stats = net.run(&w, policy_for(flip));
        for rec in &stats.packets {
            if let PacketOutcome::Delivered { hops, .. } = rec.outcome {
                let a = unrank(rec.src, n).unwrap();
                let b = unrank(rec.dst, n).unwrap();
                let d = distance(&a, &b);
                prop_assert!(hops >= d, "hops {} < distance {}", hops, d);
                let lat = rec.latency().unwrap();
                prop_assert!(lat >= d * latency, "latency {} < {}", lat, d * latency);
            }
        }
    }

    /// Same seed ⇒ bit-identical stats, independently constructed
    /// networks included. (The whole pipeline — workload generation,
    /// route precomputation, round loop, parallel aggregation — must
    /// be deterministic for this to hold.)
    #[test]
    fn prop_determinism(n in 3usize..=5, seed in any::<u64>(), rate in 1u32..=100, flip in any::<bool>()) {
        let w1 = Workload::bernoulli_uniform(n, 2, rate, seed);
        let w2 = Workload::bernoulli_uniform(n, 2, rate, seed);
        prop_assert_eq!(&w1, &w2);
        let s1 = Network::new(n).run(&w1, policy_for(flip));
        let s2 = Network::new(n).run(&w2, policy_for(flip));
        prop_assert_eq!(s1, s2);
    }

    /// Hot-spot traffic concentrates queueing at the hot PE.
    #[test]
    fn prop_hotspot_queues_when_hot(n in 4usize..=5, seed in any::<u64>()) {
        let net = Network::new(n);
        let hot = net.run(&Workload::hot_spot(n, 0, 100, seed), &GreedyRouting);
        prop_assert_eq!(hot.delivered, hot.injected);
        // n!−1 packets funnel into one PE of degree n−1: waiting is
        // unavoidable.
        prop_assert!(hot.total_wait_rounds > 0);
        prop_assert!(hot.peak_edge_occupancy > 1);
    }

    /// Credit-based flow control never drops: a full downstream pool
    /// stalls the packet (at its source or at a queue head) instead
    /// of discarding it, so without faults every delivered+stranded
    /// count is the whole workload — and outside a credit deadlock,
    /// stranded is zero too.
    #[test]
    fn prop_credit_zero_drops(n in 3usize..=5, seed in any::<u64>(), cap in 1u32..=4, rate in 1u32..=100, flip in any::<bool>()) {
        let net = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(cap),
            flow_control: FlowControl::CreditBased,
            ..NetConfig::default()
        });
        let w = Workload::bernoulli_uniform(n, 3, rate, seed);
        let stats = net.run(&w, policy_for(flip));
        prop_assert_eq!(stats.dropped(), 0, "credits must never drop");
        prop_assert_eq!(stats.dropped_overflow, 0);
        // Conservation still partitions exactly (stranded covers the
        // deadlock case, which tiny pools can legitimately reach).
        prop_assert_eq!(stats.delivered + stats.stranded, stats.injected);
        // A packet that stalls before injection is charged stall
        // rounds, never wait rounds — the two books are disjoint.
        if stats.injection_stall_rounds > 0 {
            prop_assert!(stats.delivered > 0 || stats.stranded > 0);
        }
    }

    /// The tail-drop/credit contrast on the same traffic: whatever
    /// the lossy run dropped, the credit run delivers (or, in the
    /// deadlock corner, strands — observed never with cap ≥ 2 here),
    /// and both conserve packets exactly.
    #[test]
    fn prop_credit_conservation_vs_taildrop(n in 4usize..=5, seed in any::<u64>(), cap in 2u32..=4, flip in any::<bool>()) {
        let w = Workload::bernoulli_uniform(n, 3, 60, seed);
        let lossy = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(cap),
            ..NetConfig::default()
        });
        let credit = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(cap),
            flow_control: FlowControl::CreditBased,
            ..NetConfig::default()
        });
        let l = lossy.run(&w, policy_for(flip));
        let c = credit.run(&w, policy_for(flip));
        prop_assert_eq!(l.delivered + l.dropped() + l.stranded, l.injected);
        prop_assert_eq!(c.delivered + c.stranded, c.injected);
        prop_assert_eq!(c.dropped(), 0);
        prop_assert!(c.delivered >= l.delivered, "stalling outperforms dropping");
    }

    /// At moderate load, stalling only ever costs time: per packet,
    /// latency under credits ≥ latency under infinite queues for the
    /// same seed. (This is *not* a theorem at saturation — a credit
    /// stall upstream can hand a contested link to a packet that
    /// would otherwise have lost the FIFO race and deliver it a round
    /// early; `credit_latency_domination_fails_at_saturation` below
    /// pins a live counterexample. Up to 60% injection with pools of
    /// ≥ 2×(n−1) slots the domination held for every packet across a
    /// 555k-packet offline sweep, and this deterministic suite locks
    /// that regime in.)
    #[test]
    fn prop_credit_latency_dominates_at_moderate_load(n in 4usize..=5, seed in any::<u64>(), cap in 2u32..=4, rate in 1u32..=60) {
        let w = Workload::bernoulli_uniform(n, 3, rate, seed);
        let infinite = Network::new(n);
        let credit = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(cap),
            flow_control: FlowControl::CreditBased,
            ..NetConfig::default()
        });
        let c = credit.run(&w, &GreedyRouting);
        let inf = infinite.run(&w, &GreedyRouting);
        prop_assert_eq!(inf.delivered, inf.injected);
        for (rc, ri) in c.packets.iter().zip(&inf.packets) {
            if let (Some(lc), Some(li)) = (rc.latency(), ri.latency()) {
                prop_assert!(
                    lc >= li,
                    "credit latency {} < infinite-queue latency {} for {}->{}",
                    lc, li, rc.src, rc.dst
                );
            }
        }
    }

    /// The deadlock-freedom invariant, as a property: under
    /// `EscapeChannel` no fault-free run ever strands a packet — not
    /// at pool size 1, not at full injection, not for any seed or
    /// order up to n = 6. Conservation sharpens to "all delivered,
    /// exactly once".
    #[test]
    fn prop_escape_never_strands(n in 2usize..=6, seed in any::<u64>(), cap in 1u32..=2, rate in 1u32..=100, flip in any::<bool>()) {
        let net = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(cap),
            flow_control: FlowControl::EscapeChannel,
            ..NetConfig::default()
        });
        let w = Workload::bernoulli_uniform(n, 2, rate, seed);
        let stats = net.run(&w, policy_for(flip));
        prop_assert_eq!(stats.stranded, 0, "escape mode must never deadlock");
        prop_assert_eq!(stats.dropped(), 0, "escape mode must never drop");
        prop_assert_eq!(stats.delivered, stats.injected);
        prop_assert_eq!(stats.packets.len() as u64, stats.injected);
        prop_assert!(stats.packets.iter().all(|r| r.outcome.is_delivered()));
        prop_assert_eq!(stats.latency_histogram.iter().sum::<u64>(), stats.delivered);
        // Escape traffic is a sub-ledger of the main one.
        prop_assert!(stats.escape_forwarded_flits <= stats.forwarded_flits);
        prop_assert!(stats.escape_diversions <= stats.injected);
    }

    /// Escape diversions reroute but never teleport: every delivered
    /// packet still pays at least the star metric, at any link
    /// latency, even after hopping channels mid-flight.
    #[test]
    fn prop_escape_latency_at_least_star_distance(n in 3usize..=5, seed in any::<u64>(), latency in 1u32..=3, flip in any::<bool>()) {
        let net = Network::new(n).with_config(NetConfig {
            link_latency: latency,
            queue_capacity: Some(1),
            flow_control: FlowControl::EscapeChannel,
            ..NetConfig::default()
        });
        let w = Workload::random_permutation(n, seed);
        let stats = net.run(&w, policy_for(flip));
        prop_assert_eq!(stats.stranded, 0);
        prop_assert_eq!(stats.delivered, stats.injected);
        for rec in &stats.packets {
            if let PacketOutcome::Delivered { hops, .. } = rec.outcome {
                let a = unrank(rec.src, n).unwrap();
                let b = unrank(rec.dst, n).unwrap();
                let d = distance(&a, &b);
                prop_assert!(hops >= d, "hops {} < distance {}", hops, d);
                let lat = rec.latency().unwrap();
                prop_assert!(lat >= d * latency, "latency {} < {}", lat, d * latency);
            }
        }
    }
}

/// The documented edge of the domination property: at full injection
/// a credit stall can *reorder* link arbitration and deliver a packet
/// earlier than the infinite-queue run. This pins one concrete
/// counterexample so the restriction on the property above stays
/// honest (if engine semantics ever change and this starts passing
/// domination everywhere, the property's bounds should be revisited).
#[test]
fn credit_latency_domination_fails_at_saturation() {
    let n = 4;
    let w = Workload::bernoulli_uniform(n, 3, 100, 596);
    let infinite = Network::new(n);
    let credit = Network::new(n).with_config(NetConfig {
        queue_capacity: Some(2),
        flow_control: FlowControl::CreditBased,
        ..NetConfig::default()
    });
    let c = credit.run(&w, &GreedyRouting);
    let inf = infinite.run(&w, &GreedyRouting);
    let early = c
        .packets
        .iter()
        .zip(&inf.packets)
        .filter(|(rc, ri)| match (rc.latency(), ri.latency()) {
            (Some(lc), Some(li)) => lc < li,
            _ => false,
        })
        .count();
    assert!(
        early > 0,
        "expected at least one packet to beat the infinite-queue run at saturation"
    );
}

/// The counterexample above, promoted to a deadlock-freedom
/// regression. Same workload, both tiny pool sizes: at cap 2 (the
/// pinned scenario verbatim) credits reorder arbitration but still
/// drain; at cap 1 the very same traffic wedges the credit run at its
/// fixed point and strands survivors. Under `EscapeChannel` **both**
/// runs must fully drain — every packet delivered, zero stranded,
/// exact conservation, engines in byte agreement — and at cap 1 the
/// escape channel must demonstrably do the work (diversions > 0).
#[test]
fn escape_channel_drains_the_saturation_counterexample() {
    let n = 4;
    let w = Workload::bernoulli_uniform(n, 3, 100, 596);
    for cap in [1u32, 2] {
        let credit = Network::new(n)
            .with_config(NetConfig {
                queue_capacity: Some(cap),
                flow_control: FlowControl::CreditBased,
                ..NetConfig::default()
            })
            .run(&w, &GreedyRouting);
        if cap == 1 {
            assert!(
                credit.stranded > 0,
                "the pinned traffic must still deadlock credits at cap 1, \
                 else this regression guards nothing"
            );
        }
        let escape_net = Network::new(n).with_config(NetConfig {
            queue_capacity: Some(cap),
            flow_control: FlowControl::EscapeChannel,
            ..NetConfig::default()
        });
        let fast = escape_net.run_with(&w, &GreedyRouting, Engine::Fast);
        let reference = escape_net.run_with(&w, &GreedyRouting, Engine::Reference);
        assert_eq!(fast, reference, "engines diverged at cap {cap}");
        assert_eq!(
            fast.stranded, 0,
            "escape mode must break the cap-{cap} deadlock"
        );
        assert_eq!(fast.dropped(), 0);
        assert_eq!(fast.delivered, fast.injected, "every packet delivered");
        assert_eq!(
            fast.delivered + fast.dropped() + fast.stranded,
            fast.injected,
            "conservation"
        );
        if cap == 1 {
            assert!(
                fast.escape_diversions > 0,
                "the escape channel did the work"
            );
        }
    }
}
