//! Differential harness: `Engine::Fast` must be observationally
//! identical to `Engine::Reference`.
//!
//! For every combination of workload family × routing policy × fault
//! plan (and, orthogonally, flow-control/latency configuration) at
//! `n ≤ 6`, with at least 8 seeds each, the two engines must produce
//! **byte-identical** [`TrafficStats`] — the `Eq` impl compares every
//! counter, the full latency histogram, and every per-packet record.
//! This is the lock on the fast engine's worklist, slab ring buffers,
//! batched arrivals, idle-round skipping, credit accounting, and
//! adaptive hop selection: any divergence in any phase of any round
//! shows up here as a stats mismatch.
//!
//! The full cross product runs at `n ∈ {3, 4, 5}`; `n = 6` (720 PEs)
//! runs a narrower but still multi-axis slice to keep the suite's
//! debug-profile runtime in check.
//!
//! The **probed column** re-runs the `n ≤ 5` axes with an
//! [`EventLog`] attached to both engines and tightens the contract in
//! two directions at once: attaching a probe must leave the stats
//! byte-identical to the unprobed run, and the two engines must emit
//! the **same event stream**, event for event, in the same order —
//! not just agree on the aggregates.

use sg_net::{
    AdaptiveRouting, EmbeddingRouting, Engine, FaultPlan, FaultPolicy, FlowControl, GreedyRouting,
    NetConfig, Network, RoutingPolicy, TrafficStats, Workload,
};
use sg_obs::{diff_events, EventLog};

const SEEDS: u64 = 8;

/// The workload families under test, sized for debug-profile runs.
fn workloads(n: usize, seed: u64) -> Vec<Workload> {
    vec![
        Workload::dimension_sweep(n, 1 + (seed as usize) % (n - 1), seed.is_multiple_of(2)),
        Workload::random_permutation(n, seed),
        Workload::bernoulli_uniform(n, 3, 40, seed),
        Workload::transpose(n),
        Workload::hot_spot(n, seed % 5, 60, seed),
        Workload::uniform_pairs(n, 64, seed),
    ]
}

fn policies() -> Vec<(&'static str, Box<dyn RoutingPolicy>)> {
    vec![
        ("greedy", Box::new(GreedyRouting)),
        ("embedding", Box::new(EmbeddingRouting)),
        ("adaptive", Box::new(AdaptiveRouting)),
    ]
}

/// Fault-plan axis: nothing, node kills, and link kills under both
/// fault policies, all within the paper's `n−2` budget.
fn fault_plans(n: usize, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "nodes-drop",
            FaultPlan::random_nodes(n, n - 2, seed).with_policy(FaultPolicy::Drop),
        ),
        (
            "nodes-reroute",
            FaultPlan::random_nodes(n, n - 2, seed).with_policy(FaultPolicy::Reroute),
        ),
        (
            "links-drop",
            FaultPlan::random_links(n, n - 2, seed).with_policy(FaultPolicy::Drop),
        ),
        (
            "links-reroute",
            FaultPlan::random_links(n, n - 2, seed).with_policy(FaultPolicy::Reroute),
        ),
    ]
}

/// Configuration axis: default, bounded tail-drop, credit-based flow
/// control (tight pool, so stalls actually happen), multi-round links.
fn configs() -> Vec<(&'static str, NetConfig)> {
    vec![
        ("default", NetConfig::default()),
        (
            "cap2-taildrop",
            NetConfig {
                queue_capacity: Some(2),
                ..NetConfig::default()
            },
        ),
        (
            "cap1-credit",
            NetConfig {
                queue_capacity: Some(1),
                flow_control: FlowControl::CreditBased,
                ..NetConfig::default()
            },
        ),
        (
            "latency3",
            NetConfig {
                link_latency: 3,
                ..NetConfig::default()
            },
        ),
        // Credit × multi-round links: in-flight reservations can hold
        // a pool while every queue is empty, so injection stalls and
        // the fast engine's idle-skip interact — a corner that once
        // diverged on injection_stall_rounds accounting.
        (
            "cap1-credit-latency2",
            NetConfig {
                link_latency: 2,
                queue_capacity: Some(1),
                flow_control: FlowControl::CreditBased,
                ..NetConfig::default()
            },
        ),
        // Escape-channel flow control at the tightest pool, where the
        // deadlocks that the escape bank exists to break are densest:
        // diversions, min-class arbitration, and the dual-channel
        // worklist-bit invariant all fire constantly.
        (
            "cap1-escape",
            NetConfig {
                queue_capacity: Some(1),
                flow_control: FlowControl::EscapeChannel,
                ..NetConfig::default()
            },
        ),
        (
            "cap2-escape",
            NetConfig {
                queue_capacity: Some(2),
                flow_control: FlowControl::EscapeChannel,
                ..NetConfig::default()
            },
        ),
        // Escape × multi-round links: bank reservations ride in-flight
        // flits, crossing the fast engine's arrival lanes & idle-skip.
        (
            "cap1-escape-latency2",
            NetConfig {
                link_latency: 2,
                queue_capacity: Some(1),
                flow_control: FlowControl::EscapeChannel,
                ..NetConfig::default()
            },
        ),
    ]
}

fn assert_engines_agree(
    net: &Network,
    w: &Workload,
    policy: &dyn RoutingPolicy,
    context: &str,
) -> TrafficStats {
    let fast = net.run_with(w, policy, Engine::Fast);
    let reference = net.run_with(w, policy, Engine::Reference);
    assert_eq!(
        fast, reference,
        "FastEngine diverged from ReferenceEngine: {context}"
    );
    fast
}

/// The probed column: both engines run with an [`EventLog`] attached;
/// the probed stats must match the unprobed fast baseline on both
/// engines, and the two event streams must be identical.
fn assert_probed_column(net: &Network, w: &Workload, policy: &dyn RoutingPolicy, context: &str) {
    let baseline = net.run_with(w, policy, Engine::Fast);
    let mut fast_log = EventLog::new();
    let mut reference_log = EventLog::new();
    let fast = net.run_probed(w, policy, Engine::Fast, &mut fast_log);
    let reference = net.run_probed(w, policy, Engine::Reference, &mut reference_log);
    assert_eq!(fast, baseline, "probe perturbed the fast engine: {context}");
    assert_eq!(
        reference, baseline,
        "probed reference diverged from fast: {context}"
    );
    assert_eq!(fast_log.dropped(), 0, "unbounded log dropped: {context}");
    // Stream equality through the structural differ: on failure it
    // localizes the first diverging round and event instead of
    // dumping two full streams.
    if let Some(d) = diff_events(fast_log.events(), reference_log.events(), 4) {
        panic!(
            "event streams diverged between engines: {context}\n{}",
            d.render()
        );
    }
}

/// The full cross product at n ∈ {3, 4, 5}: every workload × policy ×
/// fault plan, ≥ 8 seeds each, under the default configuration.
#[test]
fn full_cross_product_small_n() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            for (fault_name, plan) in fault_plans(n, 0xFA17 ^ seed) {
                let net = Network::new(n).with_faults(plan);
                for (policy_name, policy) in policies() {
                    for w in workloads(n, seed) {
                        assert_engines_agree(
                            &net,
                            &w,
                            policy.as_ref(),
                            &format!(
                                "n={n} seed={seed} workload={} policy={policy_name} \
                                 faults={fault_name}",
                                w.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The configuration axis (tail-drop capacity, credit-based flow
/// control, multi-round links) crossed with every workload and
/// policy, with and without reroutable faults.
#[test]
fn config_axis_small_n() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            for (config_name, config) in configs() {
                for fault in [
                    FaultPlan::none(),
                    FaultPlan::random_nodes(n, n - 2, seed).with_policy(FaultPolicy::Reroute),
                ] {
                    let net = Network::new(n).with_config(config).with_faults(fault);
                    for (policy_name, policy) in policies() {
                        for w in workloads(n, seed) {
                            assert_engines_agree(
                                &net,
                                &w,
                                policy.as_ref(),
                                &format!(
                                    "n={n} seed={seed} workload={} policy={policy_name} \
                                     config={config_name}",
                                    w.name()
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Probed column over the fault axis at n ∈ {3, 4, 5}: every workload
/// × policy × fault plan, all seeds, with event-stream equality on top
/// of stats equality.
#[test]
fn probed_full_cross_product_small_n() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            for (fault_name, plan) in fault_plans(n, 0xFA17 ^ seed) {
                let net = Network::new(n).with_faults(plan);
                for (policy_name, policy) in policies() {
                    for w in workloads(n, seed) {
                        assert_probed_column(
                            &net,
                            &w,
                            policy.as_ref(),
                            &format!(
                                "probed n={n} seed={seed} workload={} policy={policy_name} \
                                 faults={fault_name}",
                                w.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Probed column over the configuration axis at n ∈ {3, 4, 5}: every
/// flow-control and latency configuration × workload × policy, all
/// seeds — escape diversions, credit stalls, and multi-round arrival
/// lanes must all show up identically in both engines' event streams.
#[test]
fn probed_config_axis_small_n() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            for (config_name, config) in configs() {
                let net = Network::new(n).with_config(config);
                for (policy_name, policy) in policies() {
                    for w in workloads(n, seed) {
                        assert_probed_column(
                            &net,
                            &w,
                            policy.as_ref(),
                            &format!(
                                "probed n={n} seed={seed} workload={} policy={policy_name} \
                                 config={config_name}",
                                w.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// n = 6 slice: every policy and every fault family on the workloads
/// that stress distinct engine paths (contention-free sweep, permuted
/// all-to-all, fixed-size uniform), 8 seeds each.
#[test]
fn n6_slice() {
    let n = 6;
    for seed in 0..SEEDS {
        for (fault_name, plan) in fault_plans(n, 0x6A ^ seed) {
            let net = Network::new(n).with_faults(plan);
            for (policy_name, policy) in policies() {
                for w in [
                    Workload::dimension_sweep(n, 1 + (seed as usize) % (n - 1), true),
                    Workload::random_permutation(n, seed),
                    Workload::uniform_pairs(n, 96, seed),
                ] {
                    assert_engines_agree(
                        &net,
                        &w,
                        policy.as_ref(),
                        &format!(
                            "n=6 seed={seed} workload={} policy={policy_name} \
                             faults={fault_name}",
                            w.name()
                        ),
                    );
                }
            }
        }
    }
}

/// n = 6 credit-mode slice: tight pools under load, where head-of-line
/// credit stalls and injection stalls dominate the schedule.
#[test]
fn n6_credit_slice() {
    let n = 6;
    let config = NetConfig {
        queue_capacity: Some(1),
        flow_control: FlowControl::CreditBased,
        ..NetConfig::default()
    };
    for seed in 0..SEEDS {
        let net = Network::new(n).with_config(config);
        for (policy_name, policy) in policies() {
            let w = Workload::uniform_pairs(n, 96, seed);
            let stats = assert_engines_agree(
                &net,
                &w,
                policy.as_ref(),
                &format!("n=6 seed={seed} credit policy={policy_name}"),
            );
            assert_eq!(stats.dropped(), 0, "credits never drop");
        }
    }
}

/// n = 6 escape-mode slice: the deadlock-free channel at scale. Both
/// engines byte-identical, and — the headline invariant — nothing is
/// ever stranded or dropped: every packet that enters an escape-mode
/// fault-free network leaves it delivered.
#[test]
fn n6_escape_slice() {
    let n = 6;
    let config = NetConfig {
        queue_capacity: Some(1),
        flow_control: FlowControl::EscapeChannel,
        ..NetConfig::default()
    };
    for seed in 0..SEEDS {
        let net = Network::new(n).with_config(config);
        for (policy_name, policy) in policies() {
            let w = Workload::uniform_pairs(n, 96, seed);
            let stats = assert_engines_agree(
                &net,
                &w,
                policy.as_ref(),
                &format!("n=6 seed={seed} escape policy={policy_name}"),
            );
            assert_eq!(stats.dropped(), 0, "escape mode never drops");
            assert_eq!(stats.stranded, 0, "escape mode never deadlocks");
            assert_eq!(stats.delivered, stats.injected, "full drain");
        }
    }
}

/// Partitioned (multi-tenant) row: composed workloads with per-job
/// policies and mixed escape flags must produce byte-identical total
/// statistics on both engines — the lock under the scheduler's
/// drained-release co-simulation and its quiescence audit, which read
/// per-packet resolution rounds out of exactly these stats.
#[test]
fn partitioned_runs_identical_across_engines() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            let parts = [
                Workload::uniform_pairs(n, 32, seed),
                Workload::transpose(n),
                Workload::bernoulli_uniform(n, 3, 40, seed ^ 0xBEEF),
            ];
            let with_offsets: Vec<(&Workload, u32)> = parts.iter().zip([0u32, 2, 5]).collect();
            let (composed, owner) = Workload::compose("diff-tenants", n, &with_offsets);
            let policy_boxes = policies();
            let per_job: Vec<&dyn RoutingPolicy> =
                policy_boxes.iter().map(|(_, p)| p.as_ref()).collect();
            let escape = [true, false, true];
            for (config_name, config) in [
                ("default", NetConfig::default()),
                (
                    "cap1-escape",
                    NetConfig {
                        queue_capacity: Some(1),
                        flow_control: FlowControl::EscapeChannel,
                        ..NetConfig::default()
                    },
                ),
            ] {
                let net = Network::new(n).with_config(config);
                let (fast_total, _) =
                    net.run_partitioned_with_escape(&composed, &per_job, &owner, &escape);
                let reference = net.run_partitioned_reference(
                    &composed,
                    &per_job,
                    &owner,
                    &escape,
                    &mut sg_obs::NullProbe,
                );
                assert_eq!(
                    fast_total, reference,
                    "partitioned engines diverged: n={n} seed={seed} config={config_name}"
                );
            }
        }
    }
}

/// The Lemma-5 certificate workload must stay byte-identical across
/// engines for every dimension and direction — the run the paper's
/// Theorem 6 bound rests on.
#[test]
fn lemma5_sweep_identical_across_engines() {
    for n in 2..=6usize {
        let net = Network::new(n);
        for k in 1..n {
            for plus in [true, false] {
                let w = Workload::dimension_sweep(n, k, plus);
                let stats = assert_engines_agree(
                    &net,
                    &w,
                    &EmbeddingRouting,
                    &format!("lemma5 n={n} k={k} plus={plus}"),
                );
                assert!(stats.is_contention_free(), "n={n} k={k} {plus}");
                let expect = if k == n - 1 { 1 } else { 3 };
                assert_eq!(stats.makespan as usize, expect, "n={n} k={k} {plus}");
            }
        }
    }
}
