//! Deadlock-freedom sweep: the escape channel's headline theorem,
//! checked exhaustively where it is checkable.
//!
//! For **every** (star order `n ≤ 4`) × (pool size 1–2) × (workload
//! pattern) × (routing policy) cell, [`FlowControl::EscapeChannel`]
//! must drain the network completely — every packet delivered, zero
//! stranded, zero dropped — with both engines byte-identical. The same
//! sweep runs under [`FlowControl::CreditBased`] and records which
//! cells deadlock (strand survivors at the fixed point); that set must
//! be **non-empty**, otherwise the theorem is vacuous: an escape
//! channel that is only ever exercised where credits already suffice
//! proves nothing.
//!
//! Why the argument is a theorem and not a hope: escape residents live
//! in a bank with one slot per (PE, residual-hop class), served
//! lowest-class-first with channel priority. At any hypothetical
//! fixed point the globally minimal-class resident would need a slot
//! held by a strictly lower class — infinite descent — so some escape
//! packet always moves; adaptive heads that starve for credit divert
//! into the bank. See `FlowControl::EscapeChannel` rustdoc for the
//! full invariant.

use sg_net::{
    AdaptiveRouting, EmbeddingRouting, Engine, FlowControl, GreedyRouting, NetConfig, Network,
    RoutingPolicy, Workload,
};

fn policies() -> Vec<(&'static str, Box<dyn RoutingPolicy>)> {
    vec![
        ("greedy", Box::new(GreedyRouting)),
        ("embedding", Box::new(EmbeddingRouting)),
        ("adaptive", Box::new(AdaptiveRouting)),
    ]
}

/// Saturating workload patterns sized to wedge tiny pools: sustained
/// full-rate Bernoulli traffic, dense uniform pairs, permutation
/// all-to-all, and a hot spot. (The Lemma-5 sweeps are deliberately
/// absent — they are contention-free and wedge nothing.)
fn patterns(n: usize, seed: u64) -> Vec<Workload> {
    vec![
        Workload::bernoulli_uniform(n, 40, 100, seed),
        Workload::uniform_pairs(n, 48, seed),
        Workload::random_permutation(n, seed),
        Workload::hot_spot(n, seed % 2, 80, seed),
    ]
}

fn config(fc: FlowControl, cap: u32) -> NetConfig {
    NetConfig {
        queue_capacity: Some(cap),
        flow_control: fc,
        ..NetConfig::default()
    }
}

/// The exhaustive sweep. One test so the credit-deadlock set is
/// tallied across the whole grid before the non-emptiness assert.
#[test]
fn escape_drains_every_tiny_pool_cell_where_credit_deadlocks() {
    let mut cells = 0usize;
    let mut credit_deadlocks: Vec<String> = Vec::new();
    for n in 2..=4usize {
        for cap in 1..=2u32 {
            for seed in [1u64, 7, 596] {
                for w in patterns(n, seed) {
                    for (policy_name, policy) in policies() {
                        cells += 1;
                        let cell = format!(
                            "n={n} cap={cap} seed={seed} workload={} policy={policy_name}",
                            w.name()
                        );

                        // Credit side: record (not require) deadlock.
                        let credit = Network::new(n)
                            .with_config(config(FlowControl::CreditBased, cap))
                            .run(&w, policy.as_ref());
                        if credit.stranded > 0 {
                            credit_deadlocks.push(cell.clone());
                        }

                        // Escape side: the theorem, cell by cell.
                        let net =
                            Network::new(n).with_config(config(FlowControl::EscapeChannel, cap));
                        let fast = net.run_with(&w, policy.as_ref(), Engine::Fast);
                        let reference = net.run_with(&w, policy.as_ref(), Engine::Reference);
                        assert_eq!(fast, reference, "engines diverged: {cell}");
                        assert_eq!(fast.stranded, 0, "escape deadlocked: {cell}");
                        assert_eq!(fast.dropped(), 0, "escape dropped: {cell}");
                        assert_eq!(fast.delivered, fast.injected, "incomplete drain: {cell}");
                        assert_eq!(
                            fast.delivered + fast.dropped() + fast.stranded,
                            fast.injected,
                            "conservation: {cell}"
                        );
                    }
                }
            }
        }
    }
    assert!(
        !credit_deadlocks.is_empty(),
        "vacuous theorem: CreditBased never deadlocked in {cells} cells"
    );
    // The sweep is only meaningful if deadlock is the rule at tiny
    // pools, not a fluke of one seed: n = 4 at cap 1 under sustained
    // full-rate traffic wedges for every seed and policy.
    assert!(
        credit_deadlocks.len() >= 10,
        "credit deadlock set suspiciously small ({} of {cells}): {credit_deadlocks:?}",
        credit_deadlocks.len()
    );
}

/// Diversions are real work, not a dead branch: across the sweep grid
/// the escape channel must actually be used where credits wedge.
#[test]
fn escape_channel_is_exercised_not_vacuous() {
    let mut total_diversions = 0u64;
    let mut total_escape_flits = 0u64;
    for n in 3..=4usize {
        let w = Workload::bernoulli_uniform(n, 40, 100, 1);
        let net = Network::new(n).with_config(config(FlowControl::EscapeChannel, 1));
        let stats = net.run(&w, &GreedyRouting);
        total_diversions += stats.escape_diversions;
        total_escape_flits += stats.escape_forwarded_flits;
        assert!(
            stats.escape_forwarded_flits <= stats.forwarded_flits,
            "escape flits are a subset of all flits"
        );
        assert!(
            stats.peak_escape_occupancy > 0,
            "n={n}: bank never held a resident"
        );
    }
    assert!(total_diversions > 0, "no packet ever diverted");
    assert!(
        total_escape_flits >= total_diversions,
        "diverted packets move"
    );
}

/// Opt-out honored: when no packet may escape, `EscapeChannel`
/// degrades to exactly `CreditBased` — byte-identical stats, same
/// deadlock. (Packet-level opt-in is exercised through `sg-sched`;
/// here the equivalence is pinned at the network level with the
/// all-jobs-opted-out partitioned entry point.)
#[test]
fn all_opted_out_escape_equals_credit() {
    let n = 4;
    let w = Workload::bernoulli_uniform(n, 40, 100, 596);
    let owner: Vec<u32> = vec![0; w.len()];
    let policies: [&dyn RoutingPolicy; 1] = [&GreedyRouting];
    let credit = Network::new(n)
        .with_config(config(FlowControl::CreditBased, 1))
        .run_partitioned(&w, &policies, &owner);
    let escape = Network::new(n)
        .with_config(config(FlowControl::EscapeChannel, 1))
        .run_partitioned_with_escape(&w, &policies, &owner, &[false]);
    assert_eq!(credit.0, escape.0, "opted-out escape must match credit");
    assert_eq!(credit.1, escape.1, "per-job stats too");
    assert!(credit.0.stranded > 0, "scenario must actually deadlock");
}
