//! The `sg-trace` round-trip lock: a recorded run's JSONL trace must
//! parse back element-wise identical, and replaying it must rebuild
//! [`TrafficStats`] **byte-identical** to what the live run returned
//! — total and per-tenant — across the differential harness's `n ≤ 5`
//! axes (both engines, every flow-control mode including escape,
//! faults, multi-round links, partitioned multi-tenant runs).
//!
//! On top of the deterministic matrix, a proptest property fuzzes the
//! same round trip over seeded configuration axes, and a seeded
//! injected-divergence test proves the structural differ localizes a
//! single mutated event to its exact round and in-round index.

use proptest::prelude::*;
use sg_net::trace::{record, record_partitioned, replay, replay_jsonl};
use sg_net::{
    AdaptiveRouting, Engine, FaultPlan, FaultPolicy, FlowControl, GreedyRouting, NetConfig,
    Network, RoutingPolicy, Workload,
};
use sg_obs::{diff_events, Trace};

const SEEDS: u64 = 3;

fn workloads(n: usize, seed: u64) -> Vec<Workload> {
    vec![
        Workload::random_permutation(n, seed),
        Workload::bernoulli_uniform(n, 3, 40, seed),
        Workload::uniform_pairs(n, 64, seed),
        Workload::hot_spot(n, seed % 5, 60, seed),
    ]
}

fn configs() -> Vec<(&'static str, NetConfig)> {
    vec![
        ("default", NetConfig::default()),
        (
            "cap2-taildrop",
            NetConfig {
                queue_capacity: Some(2),
                ..NetConfig::default()
            },
        ),
        (
            "cap1-credit",
            NetConfig {
                queue_capacity: Some(1),
                flow_control: FlowControl::CreditBased,
                ..NetConfig::default()
            },
        ),
        (
            "cap1-credit-latency2",
            NetConfig {
                link_latency: 2,
                queue_capacity: Some(1),
                flow_control: FlowControl::CreditBased,
                ..NetConfig::default()
            },
        ),
        (
            "cap1-escape",
            NetConfig {
                queue_capacity: Some(1),
                flow_control: FlowControl::EscapeChannel,
                ..NetConfig::default()
            },
        ),
        (
            "cap2-escape-latency2",
            NetConfig {
                link_latency: 2,
                queue_capacity: Some(2),
                flow_control: FlowControl::EscapeChannel,
                ..NetConfig::default()
            },
        ),
        (
            "latency3",
            NetConfig {
                link_latency: 3,
                ..NetConfig::default()
            },
        ),
    ]
}

/// Record → serialize → parse → replay, asserting every leg: the
/// parsed trace equals the assembled one element-wise, and the
/// replayed stats equal the live ones byte-for-byte.
fn assert_round_trip(
    net: &Network,
    w: &Workload,
    policy: &dyn RoutingPolicy,
    engine: Engine,
    seed: u64,
    context: &str,
) {
    let (live, trace) = record(net, w, policy, engine, seed);
    let text = trace.to_jsonl();
    let parsed = Trace::parse(&text).unwrap_or_else(|e| panic!("parse failed: {context}: {e}"));
    assert_eq!(parsed.header, trace.header, "header mangled: {context}");
    assert_eq!(parsed.packets, trace.packets, "preamble mangled: {context}");
    assert_eq!(
        parsed.events, trace.events,
        "events not element-wise identical: {context}"
    );
    let back = replay(&parsed).unwrap_or_else(|e| panic!("replay failed: {context}: {e}"));
    assert_eq!(
        back.total, live,
        "replayed stats not byte-identical: {context}"
    );
    assert!(back.per_job.is_empty(), "{context}");
}

/// The deterministic matrix: workloads × configs × engines × seeds at
/// `n ∈ {3, 4, 5}` under greedy and adaptive routing.
#[test]
fn round_trip_across_config_matrix() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            for (config_name, config) in configs() {
                let net = Network::new(n).with_config(config);
                for (wi, w) in workloads(n, seed).iter().enumerate() {
                    for engine in [Engine::Fast, Engine::Reference] {
                        let context = format!(
                            "n={n} seed={seed} config={config_name} workload={wi} engine={engine:?}"
                        );
                        assert_round_trip(&net, w, &GreedyRouting, engine, seed, &context);
                        assert_round_trip(
                            &net,
                            w,
                            &AdaptiveRouting,
                            engine,
                            seed,
                            &format!("{context} adaptive"),
                        );
                    }
                }
            }
        }
    }
}

/// Faulty networks drop and reroute; the trace must still replay
/// byte-identically (dropped packets' destinations come from the
/// packet preamble, not the event stream).
#[test]
fn round_trip_under_faults() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            for (fault_name, plan) in [
                (
                    "nodes-drop",
                    FaultPlan::random_nodes(n, n - 2, seed).with_policy(FaultPolicy::Drop),
                ),
                (
                    "nodes-reroute",
                    FaultPlan::random_nodes(n, n - 2, seed).with_policy(FaultPolicy::Reroute),
                ),
                (
                    "links-drop",
                    FaultPlan::random_links(n, n - 2, seed).with_policy(FaultPolicy::Drop),
                ),
            ] {
                let net = Network::new(n).with_faults(plan);
                for engine in [Engine::Fast, Engine::Reference] {
                    let w = Workload::bernoulli_uniform(n, 3, 40, seed);
                    let context = format!("n={n} seed={seed} faults={fault_name} {engine:?}");
                    assert_round_trip(&net, &w, &GreedyRouting, engine, seed, &context);
                }
            }
        }
    }
}

/// Partitioned multi-tenant runs: the owner map rides the packet
/// preamble and the replayed **per-tenant** stats must equal the live
/// attribution byte-for-byte, next to the totals.
#[test]
fn partitioned_round_trip_restores_per_tenant_stats() {
    for n in 3..=5usize {
        for seed in 0..SEEDS {
            let parts = [
                Workload::uniform_pairs(n, 32, seed),
                Workload::transpose(n),
                Workload::bernoulli_uniform(n, 3, 40, seed ^ 0xBEEF),
            ];
            let with_offsets: Vec<(&Workload, u32)> = parts.iter().zip([0u32, 2, 5]).collect();
            let (composed, owner) = Workload::compose("trace-tenants", n, &with_offsets);
            let greedy = GreedyRouting;
            let adaptive = AdaptiveRouting;
            let per_job: [&dyn RoutingPolicy; 3] = [&greedy, &adaptive, &greedy];
            let escape = [true, false, true];
            for (config_name, config) in [
                ("default", NetConfig::default()),
                (
                    "cap1-escape",
                    NetConfig {
                        queue_capacity: Some(1),
                        flow_control: FlowControl::EscapeChannel,
                        ..NetConfig::default()
                    },
                ),
            ] {
                let net = Network::new(n).with_config(config);
                let (total, per_job_live, trace) =
                    record_partitioned(&net, &composed, &per_job, &owner, &escape, seed);
                let context = format!("n={n} seed={seed} config={config_name}");
                let back = replay_jsonl(&trace.to_jsonl())
                    .unwrap_or_else(|e| panic!("replay failed: {context}: {e}"));
                assert_eq!(back.total, total, "total diverged: {context}");
                assert_eq!(
                    back.per_job, per_job_live,
                    "per-tenant stats diverged: {context}"
                );
            }
        }
    }
}

/// Seeded injected divergence: flip one event deep in a recorded
/// stream and the differ must localize exactly that round and
/// in-round index — the debugging workflow the differential harness
/// now relies on.
#[test]
fn injected_divergence_is_localized() {
    let net = Network::new(4);
    let w = Workload::random_permutation(4, 0xD1FF);
    let (_, trace) = record(&net, &w, &GreedyRouting, Engine::Fast, 0xD1FF);
    let a = trace.events.clone();
    // Pick a deterministic victim past the first round and recompute
    // its expected (round, index-in-round) independently of the
    // differ's own cursor.
    let victim = a.len() * 2 / 3;
    let mut expected_round = 0;
    let mut expected_index = 0;
    for ev in &a[..=victim] {
        if matches!(ev, sg_obs::Event::RoundBegin { .. }) || ev.round() != expected_round {
            expected_round = ev.round();
            expected_index = 0;
        } else {
            expected_index += 1;
        }
    }
    let mut b = a.clone();
    b[victim] = sg_obs::Event::Delivered {
        round: expected_round,
        pid: 9999,
        pe: 0,
        hops: 1,
    };
    assert_ne!(a[victim], b[victim], "mutation must actually mutate");
    let d = diff_events(&a, &b, 3).expect("mutated streams diverge");
    assert_eq!(d.index, victim, "differ must find the mutated event");
    assert_eq!(d.a.round, Some(expected_round));
    assert_eq!(d.a.index_in_round, expected_index);
    assert_eq!(d.b.event, Some(b[victim]));
    let report = d.render();
    assert!(report.contains(&format!("event {victim} ")));
    assert!(report.contains("\"pid\":9999"));
}

proptest! {
    /// The fuzzed round trip: over seeded config axes (order, seed,
    /// flow control including escape, injection rate, engine), the
    /// JSONL round trip is lossless and the replayed stats are
    /// byte-identical.
    #[test]
    fn prop_trace_round_trip(
        n in 3usize..=5,
        seed in any::<u64>(),
        rate in 1u32..=50,
        mode in 0u8..=2,
        cap in 1u32..=3,
        fast in any::<bool>(),
    ) {
        let config = match mode {
            0 => NetConfig::default(),
            1 => NetConfig {
                queue_capacity: Some(cap),
                flow_control: FlowControl::CreditBased,
                ..NetConfig::default()
            },
            _ => NetConfig {
                queue_capacity: Some(cap),
                flow_control: FlowControl::EscapeChannel,
                ..NetConfig::default()
            },
        };
        let engine = if fast { Engine::Fast } else { Engine::Reference };
        let net = Network::new(n).with_config(config);
        let w = Workload::bernoulli_uniform(n, 3, rate, seed);
        let (live, trace) = record(&net, &w, &GreedyRouting, engine, seed);
        let text = trace.to_jsonl();
        let parsed = Trace::parse(&text).expect("parses");
        prop_assert_eq!(&parsed.events, &trace.events);
        let back = replay(&parsed).expect("replays");
        prop_assert_eq!(back.total, live);
    }

    /// Partitioned fuzzing: per-tenant attribution survives the round
    /// trip for any seed and escape-flag assignment.
    #[test]
    fn prop_partitioned_round_trip(
        n in 3usize..=4,
        seed in any::<u64>(),
        e0 in any::<bool>(),
        e1 in any::<bool>(),
    ) {
        let parts = [
            Workload::uniform_pairs(n, 24, seed),
            Workload::bernoulli_uniform(n, 3, 30, seed ^ 0x5EED),
        ];
        let with_offsets: Vec<(&Workload, u32)> = parts.iter().zip([0u32, 3]).collect();
        let (composed, owner) = Workload::compose("prop-tenants", n, &with_offsets);
        let greedy = GreedyRouting;
        let per_job: [&dyn RoutingPolicy; 2] = [&greedy, &greedy];
        let net = Network::new(n);
        let (total, per_job_live, trace) =
            record_partitioned(&net, &composed, &per_job, &owner, &[e0, e1], seed);
        let back = replay_jsonl(&trace.to_jsonl()).expect("replays");
        prop_assert_eq!(back.total, total);
        prop_assert_eq!(back.per_job, per_job_live);
    }
}
