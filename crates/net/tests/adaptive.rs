//! Adaptive-routing validity: every hop the contention-aware policy
//! takes is a real edge of the **surviving** subgraph, and every
//! route terminates.
//!
//! The audit works on [`Network::run_traced`] hop traces — the ground
//! truth of what the engine actually forwarded — under fault-plan
//! families within the paper's `n − 2` budget:
//!
//! * exhaustive single-node kills (every PE) at `n ≤ 5`,
//! * exhaustive single-link kills (every edge) at `n ≤ 5`,
//! * exhaustive two-node plans (every pair of PEs) at `n = 4`
//!   (`n − 2 = 2` is the full budget there),
//! * seeded full-budget node and link plans at `n = 5`.
//!
//! Because `S_n` is `(n−1)`-connected, plans within the budget never
//! disconnect live PEs: under `FaultPolicy::Reroute` every
//! live-to-live packet must also be delivered.

use sg_net::{
    AdaptiveRouting, FaultPlan, FaultPolicy, HopRecord, Network, PacketOutcome, Workload,
};
use sg_perm::factorial::factorial;
use sg_perm::lehmer::unrank;

/// Audits one traced run: hops chain, stay on alive edges, and end at
/// the destination for every delivered packet.
fn audit(net: &Network, plan: &FaultPlan, w: &Workload, context: &str) {
    let (stats, traces) = net.run_traced(w, &AdaptiveRouting);
    let n = net.n();
    for (rec, tr) in stats.packets.iter().zip(&traces) {
        // Termination: the engine resolved every packet (run_traced
        // returned), and the trace respects the structural bound —
        // an adaptive prefix of strictly-decreasing distance (≤ the
        // diameter, so < node_count) plus at most one pinned BFS
        // detour (a simple path, ≤ node_count − 1 hops). The route as
        // a whole may legally revisit PEs: after a block the detour
        // can backtrack.
        assert!(
            tr.len() < 2 * net.node_count(),
            "{context}: route of {} hops exceeds the adaptive+detour bound",
            tr.len()
        );
        let mut at = rec.src;
        for &HopRecord { from, gen, to, .. } in tr {
            assert_eq!(from, at, "{context}: trace must chain from the source");
            let g = gen as usize;
            assert!(g >= 1 && g < n, "{context}: generator {g} out of range");
            // The hop is a real star edge...
            let pi = unrank(from, n).expect("rank in range");
            let expect = sg_perm::lehmer::rank(&pi.with_slots_swapped(0, g));
            assert_eq!(to, expect, "{context}: {from} -g{g}-> {to} is not an edge");
            // ...and it survives the fault plan.
            assert!(
                !plan.is_link_dead(from, to, g),
                "{context}: hop {from} -g{g}-> {to} uses a dead link"
            );
            assert!(!plan.is_node_dead(to), "{context}: hop into dead PE {to}");
            at = to;
        }
        match rec.outcome {
            PacketOutcome::Delivered { hops, .. } => {
                assert_eq!(at, rec.dst, "{context}: delivered but trace ends at {at}");
                assert_eq!(hops as usize, tr.len(), "{context}: hop count mismatch");
            }
            _ => {
                // Never delivered: only possible when an endpoint is
                // dead (within the budget the survivors stay
                // connected).
                assert!(
                    plan.is_node_dead(rec.src) || plan.is_node_dead(rec.dst),
                    "{context}: live pair {}->{} not delivered within the n-2 budget",
                    rec.src,
                    rec.dst
                );
            }
        }
    }
}

/// Exhaustive single-fault plans at n ≤ 5: every node kill and every
/// link kill, each auditing a full random-permutation workload.
#[test]
fn exhaustive_single_faults() {
    for n in 3..=5usize {
        let size = factorial(n);
        let w = Workload::random_permutation(n, 0xADA9 + n as u64);
        // Every single dead PE.
        for dead in 0..size {
            let plan = FaultPlan::none()
                .with_policy(FaultPolicy::Reroute)
                .kill_node_rank(dead);
            let net = Network::new(n).with_faults(plan.clone());
            audit(&net, &plan, &w, &format!("n={n} dead-node={dead}"));
        }
        // Every single dead link (canonical endpoint × generator).
        for r in 0..size {
            let pi = unrank(r, n).expect("rank in range");
            for g in 1..n {
                let v = sg_perm::lehmer::rank(&pi.with_slots_swapped(0, g));
                if v < r {
                    continue; // each undirected edge once
                }
                let plan = FaultPlan::none()
                    .with_policy(FaultPolicy::Reroute)
                    .kill_link(&pi, g);
                let net = Network::new(n).with_faults(plan.clone());
                audit(&net, &plan, &w, &format!("n={n} dead-link=({r},g{g})"));
            }
        }
    }
}

/// Exhaustive full-budget plans at n = 4: every pair of dead PEs
/// (n − 2 = 2 is the whole budget).
#[test]
fn exhaustive_two_node_plans_n4() {
    let n = 4;
    let size = factorial(n);
    let w = Workload::random_permutation(n, 0x2BAD);
    for a in 0..size {
        for b in (a + 1)..size {
            let plan = FaultPlan::none()
                .with_policy(FaultPolicy::Reroute)
                .kill_node_rank(a)
                .kill_node_rank(b);
            let net = Network::new(n).with_faults(plan.clone());
            audit(&net, &plan, &w, &format!("n=4 dead-nodes=({a},{b})"));
        }
    }
}

/// Seeded full-budget (n − 2 = 3 faults) node and link plans at
/// n = 5, across many seeds and workload shapes.
#[test]
fn seeded_full_budget_plans_n5() {
    let n = 5;
    for seed in 0..16u64 {
        for plan in [
            FaultPlan::random_nodes(n, n - 2, seed).with_policy(FaultPolicy::Reroute),
            FaultPlan::random_links(n, n - 2, seed).with_policy(FaultPolicy::Reroute),
        ] {
            let net = Network::new(n).with_faults(plan.clone());
            for w in [
                Workload::random_permutation(n, seed),
                Workload::hot_spot(n, 0, 70, seed),
                Workload::uniform_pairs(n, 100, seed),
            ] {
                audit(
                    &net,
                    &plan,
                    &w,
                    &format!("n=5 seed={seed} workload={}", w.name()),
                );
            }
        }
    }
}

/// Under `FaultPolicy::Drop`, adaptive packets survive faults that
/// leave *any* shortest-path candidate alive — they only die when
/// every distance-reducing link at some PE is dead. A single link
/// fault at n ≥ 4 never blocks a packet with ≥ 2 candidate links, so
/// drops can only hit distance-1 traffic crossing the dead link's own
/// last hop.
#[test]
fn adaptive_routes_around_single_faults_under_drop_policy() {
    let n = 4;
    let size = factorial(n);
    let w = Workload::random_permutation(n, 77);
    for r in 0..size {
        let pi = unrank(r, n).expect("rank in range");
        for g in 1..n {
            let plan = FaultPlan::none()
                .with_policy(FaultPolicy::Drop)
                .kill_link(&pi, g);
            let net = Network::new(n).with_faults(plan.clone());
            let stats = net.run(&w, &AdaptiveRouting);
            for rec in &stats.packets {
                if !rec.outcome.is_delivered() {
                    // The only legal casualty: a packet one hop from
                    // its destination whose sole remaining candidate
                    // was the dead link.
                    assert_eq!(
                        stats.dropped_fault + stats.delivered,
                        stats.injected,
                        "dead-link=({r},g{g})"
                    );
                }
            }
        }
    }
}
