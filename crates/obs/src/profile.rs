//! Self-profiling for the fast engine: where does a round go?
//!
//! The engine samples an injected monotonic counter around its four
//! phases (arrivals, injections, arbitration, accounting) and
//! accumulates the deltas here. The counter is a plain `fn() -> u64`
//! chosen at `Network` construction, so the engine's behaviour never
//! depends on it: [`wall_clock`] gives real nanoseconds for humans,
//! [`tick_clock`] gives a deterministic counting clock for tests
//! (each sample advances it by exactly one, so phase totals become
//! exact round counts).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Accumulated per-phase timings of a fast-engine run, in whatever
/// unit the injected clock counts (nanoseconds for [`wall_clock`],
/// samples for [`tick_clock`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Rounds the engine actually executed (idle-skipped rounds are
    /// never entered, so they cost — and count — nothing).
    pub rounds: u64,
    /// Ticks spent delivering arrival batches (phase 1).
    pub arrivals_ticks: u64,
    /// Ticks spent retrying stalls and injecting new packets
    /// (phase 2).
    pub injections_ticks: u64,
    /// Ticks spent in worklist arbitration + escape drain (phase 3).
    pub arbitration_ticks: u64,
    /// Ticks spent in wait/stall accounting and deadlock detection
    /// (phase 4).
    pub accounting_ticks: u64,
}

impl PhaseProfile {
    /// Total ticks across all four phases.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.arrivals_ticks + self.injections_ticks + self.arbitration_ticks + self.accounting_ticks
    }

    /// Render as a per-phase table with percentages.
    #[must_use]
    pub fn render(&self) -> String {
        let total = self.total_ticks().max(1);
        let pct = |t: u64| t as f64 * 100.0 / total as f64;
        let mut out = format!(
            "fast-engine phase profile: {} executed rounds, {} ticks\n",
            self.rounds,
            self.total_ticks()
        );
        for (name, t) in [
            ("arrivals", self.arrivals_ticks),
            ("injections", self.injections_ticks),
            ("arbitration", self.arbitration_ticks),
            ("accounting", self.accounting_ticks),
        ] {
            out.push_str(&format!("  {name:>12} {t:>14} ({:>5.1}%)\n", pct(t)));
        }
        out
    }
}

/// Accumulated per-phase timings of one `sg-sched` event-loop run, in
/// whatever unit the injected clock counts (nanoseconds for
/// [`wall_clock`], samples for [`tick_clock`]).
///
/// The scheduler samples the clock around the four phases of each
/// event round: capacity **release** (heap drain), arrival intake +
/// FCFS **placement**, the **drain** co-simulation a
/// `ReleaseMode::Drained` placement runs to size its hold, and the
/// EASY **backfill** probe (shadow-time computation + queue scan).
/// Nested phases share one running mark, so a drained placement's
/// co-simulation is charged to `drain_ticks` and subtracted from the
/// surrounding placement phase automatically. With [`tick_clock`]
/// every charge is exactly 1, so the totals become exact counts:
/// `release_ticks == rounds + 1`, `placement_ticks == rounds +
/// drained placements`, and so on — assertable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedPhaseProfile {
    /// Event rounds the scheduler loop executed (one per distinct
    /// wake-up time: an arrival or a release).
    pub rounds: u64,
    /// Ticks spent admitting arrivals and placing FCFS heads
    /// (allocator queries included, drain co-simulation excluded).
    pub placement_ticks: u64,
    /// Ticks spent co-simulating drain times for
    /// `ReleaseMode::Drained` placements.
    pub drain_ticks: u64,
    /// Ticks spent computing EASY shadow times and scanning the queue
    /// for backfill candidates (their placements/drains self-charge).
    pub backfill_ticks: u64,
    /// Ticks spent draining the release heap (capacity returns).
    pub release_ticks: u64,
}

impl SchedPhaseProfile {
    /// Total ticks across all four phases.
    #[must_use]
    pub fn total_ticks(&self) -> u64 {
        self.placement_ticks + self.drain_ticks + self.backfill_ticks + self.release_ticks
    }

    /// Render as a per-phase table with percentages.
    #[must_use]
    pub fn render(&self) -> String {
        let total = self.total_ticks().max(1);
        let pct = |t: u64| t as f64 * 100.0 / total as f64;
        let mut out = format!(
            "scheduler phase profile: {} event rounds, {} ticks\n",
            self.rounds,
            self.total_ticks()
        );
        for (name, t) in [
            ("placement", self.placement_ticks),
            ("drain", self.drain_ticks),
            ("backfill", self.backfill_ticks),
            ("release", self.release_ticks),
        ] {
            out.push_str(&format!("  {name:>12} {t:>14} ({:>5.1}%)\n", pct(t)));
        }
        out
    }

    /// Render as the flat JSON object embedded in a trace header's
    /// `"sched_profile"` field.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rounds\":{},\"placement\":{},\"drain\":{},\"backfill\":{},\"release\":{}}}",
            self.rounds,
            self.placement_ticks,
            self.drain_ticks,
            self.backfill_ticks,
            self.release_ticks
        )
    }
}

/// Monotonic wall-clock nanoseconds since the first call in this
/// process. Suitable as the profiler clock for real measurements.
#[must_use]
pub fn wall_clock() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    u64::try_from(ANCHOR.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

static TICKS: AtomicU64 = AtomicU64::new(0);

/// A deterministic counting clock: every call advances a process-wide
/// counter by one and returns the previous value. With this clock
/// each phase delta is exactly 1, so a run's `PhaseProfile` has
/// `arrivals_ticks == rounds` etc. — exact and assertable.
#[must_use]
pub fn tick_clock() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed)
}

/// Reset the [`tick_clock`] counter (call at the start of a test).
pub fn reset_tick_clock() {
    TICKS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let a = wall_clock();
        let b = wall_clock();
        assert!(b >= a);
    }

    #[test]
    fn tick_clock_counts() {
        let a = tick_clock();
        let b = tick_clock();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn profile_renders_percentages() {
        let p = PhaseProfile {
            rounds: 10,
            arrivals_ticks: 10,
            injections_ticks: 10,
            arbitration_ticks: 20,
            accounting_ticks: 10,
        };
        assert_eq!(p.total_ticks(), 50);
        let text = p.render();
        assert!(text.contains("arbitration"));
        assert!(text.contains("40.0%"));
    }
}
