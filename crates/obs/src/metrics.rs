//! A small metrics vocabulary: counters, gauges, fixed-bucket
//! histograms, and bounded ring-buffer time series, collected in a
//! named registry.
//!
//! Everything here is plain data — no atomics, no globals — because
//! probes are attached by `&mut` and the engines are single-threaded
//! per run. Memory is bounded by construction: histograms have a fixed
//! bucket layout and series evict their oldest samples, so a registry
//! stays small even at `n = 9` (362 880 PEs, millions of rounds).

/// A monotonically increasing count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Add `delta` to the count.
    #[inline]
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }

    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A value that moves up and down, remembering its peak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    peak: i64,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&mut self, v: i64) {
        self.value = v;
        self.peak = self.peak.max(v);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&mut self, delta: i64) {
        self.set(self.value + delta);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value
    }

    /// Highest value ever set.
    #[must_use]
    pub fn peak(&self) -> i64 {
        self.peak
    }
}

/// A histogram over fixed upper-bound buckets plus an overflow bucket.
///
/// `bounds` are inclusive upper bounds in strictly increasing order;
/// a sample lands in the first bucket whose bound it does not exceed,
/// or in the final `+inf` bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| sample <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(sample);
    }

    /// Per-bucket counts; the last entry is the `+inf` bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured inclusive upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Render as aligned `<=bound count bar` lines.
    #[must_use]
    pub fn render(&self) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let label = match self.bounds.get(i) {
                Some(b) => format!("<={b}"),
                None => "+inf".to_string(),
            };
            let bar = "#".repeat((c * 40 / peak) as usize);
            out.push_str(&format!("{label:>8} {c:>10} {bar}\n"));
        }
        out
    }
}

/// A bounded time series: `(round, value)` samples in a ring buffer.
///
/// Once `capacity` samples are held, each push evicts the oldest and
/// bumps the eviction count — memory stays `O(capacity)` no matter
/// how long the run is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSeries {
    samples: Vec<(u32, u64)>,
    head: usize,
    capacity: usize,
    evicted: u64,
}

impl RingSeries {
    /// A series holding at most `capacity` samples.
    ///
    /// # Panics
    /// If `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring series needs capacity >= 1");
        Self {
            samples: Vec::with_capacity(capacity.min(1024)),
            head: 0,
            capacity,
            evicted: 0,
        }
    }

    /// Append one sample, evicting the oldest when full.
    pub fn push(&mut self, round: u32, value: u64) {
        if self.samples.len() < self.capacity {
            self.samples.push((round, value));
        } else {
            self.samples[self.head] = (round, value);
            self.head = (self.head + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    /// Retained samples, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<(u32, u64)> {
        let (tail, front) = self.samples.split_at(self.head);
        front.iter().chain(tail.iter()).copied().collect()
    }

    /// Samples evicted to stay within capacity.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `(round, value)` sample with the largest value, oldest
    /// first on ties; `None` when empty.
    #[must_use]
    pub fn peak(&self) -> Option<(u32, u64)> {
        let mut best: Option<(u32, u64)> = None;
        for s in self.samples() {
            if best.is_none_or(|b| s.1 > b.1) {
                best = Some(s);
            }
        }
        best
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);
/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);
/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);
/// Handle to a registered ring series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A named, insertion-ordered collection of metrics.
///
/// Registration returns a typed id; the hot path indexes by id and
/// never touches the names. Rendering and export iterate in
/// registration order, so output is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
    series: Vec<(String, RingSeries)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter under `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push((name.to_string(), Counter::default()));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge under `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push((name.to_string(), Gauge::default()));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram under `name`.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        self.histograms
            .push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Register a bounded series under `name`.
    pub fn series(&mut self, name: &str, capacity: usize) -> SeriesId {
        self.series
            .push((name.to_string(), RingSeries::new(capacity)));
        SeriesId(self.series.len() - 1)
    }

    /// The counter behind `id`.
    pub fn counter_mut(&mut self, id: CounterId) -> &mut Counter {
        &mut self.counters[id.0].1
    }

    /// The gauge behind `id`.
    pub fn gauge_mut(&mut self, id: GaugeId) -> &mut Gauge {
        &mut self.gauges[id.0].1
    }

    /// The histogram behind `id`.
    pub fn histogram_mut(&mut self, id: HistogramId) -> &mut Histogram {
        &mut self.histograms[id.0].1
    }

    /// The series behind `id`.
    pub fn series_mut(&mut self, id: SeriesId) -> &mut RingSeries {
        &mut self.series[id.0].1
    }

    /// Read a counter's value by name, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.get())
    }

    /// Read a gauge by name, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<&Gauge> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, g)| g)
    }

    /// Read a histogram by name, if registered.
    #[must_use]
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Read a series by name, if registered.
    #[must_use]
    pub fn series_value(&self, name: &str) -> Option<&RingSeries> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Render every metric as `name value` lines, in registration
    /// order.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, c) in &self.counters {
            out.push_str(&format!("counter   {name} = {}\n", c.get()));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!(
                "gauge     {name} = {} (peak {})\n",
                g.get(),
                g.peak()
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name}: {} samples, max {}\n{}",
                h.total(),
                h.max(),
                h.render()
            ));
        }
        for (name, s) in &self.series {
            out.push_str(&format!(
                "series    {name}: {} samples retained, {} evicted\n",
                s.len(),
                s.evicted()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.add(3);
        g.add(-2);
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 3);
    }

    #[test]
    fn histogram_buckets_inclusive_bounds() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for s in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(s);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.max(), 1000);
        assert!(h.render().contains("+inf"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[4, 4]);
    }

    #[test]
    fn ring_series_evicts_oldest() {
        let mut s = RingSeries::new(3);
        for r in 0..5u32 {
            s.push(r, u64::from(r) * 10);
        }
        assert_eq!(s.samples(), vec![(2, 20), (3, 30), (4, 40)]);
        assert_eq!(s.evicted(), 2);
        assert_eq!(s.peak(), Some((4, 40)));
    }

    #[test]
    fn ring_series_peak_prefers_oldest_on_tie() {
        let mut s = RingSeries::new(8);
        s.push(1, 7);
        s.push(2, 7);
        assert_eq!(s.peak(), Some((1, 7)));
    }

    #[test]
    fn registry_round_trips_by_name_and_id() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("flits");
        let g = reg.gauge("depth");
        let h = reg.histogram("lat", &[1, 2]);
        let s = reg.series("queued", 4);
        reg.counter_mut(c).add(2);
        reg.gauge_mut(g).set(9);
        reg.histogram_mut(h).record(2);
        reg.series_mut(s).push(0, 1);
        assert_eq!(reg.counter_value("flits"), Some(2));
        assert_eq!(reg.gauge_value("depth").unwrap().peak(), 9);
        assert_eq!(reg.histogram_value("lat").unwrap().total(), 1);
        assert_eq!(reg.series_value("queued").unwrap().len(), 1);
        assert!(reg.counter_value("nope").is_none());
        let text = reg.render();
        assert!(text.contains("flits = 2"));
        assert!(text.contains("depth = 9 (peak 9)"));
    }
}
