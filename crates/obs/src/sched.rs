//! `SchedProbe` — assembles scheduler events into per-job spans and
//! renders an ASCII Gantt timeline.

use crate::probe::{Event, Probe};

/// The lifecycle of one job, assembled from scheduler events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpan {
    /// Job id.
    pub job: u32,
    /// When the job entered the pending queue.
    pub arrival: Option<u32>,
    /// When the job was admitted (placement start).
    pub start: Option<u32>,
    /// When the job released its sub-star.
    pub finish: Option<u32>,
    /// Order of the allocated sub-star (0 until placed).
    pub order: u8,
    /// PEs in the allocated sub-star (0 until placed).
    pub pes: u64,
    /// First start round promised by an EASY reservation (`None`
    /// unless the job was ever the blocked queue head under
    /// `SchedPolicy::EasyBackfill`). Sticky: later re-reservations do
    /// not overwrite it, so the optimism gap is measured against the
    /// scheduler's first promise.
    pub reserved: Option<u32>,
    /// True when the job was placed by jumping the queue (EASY
    /// backfill).
    pub backfilled: bool,
}

impl JobSpan {
    fn new(job: u32) -> Self {
        Self {
            job,
            arrival: None,
            start: None,
            finish: None,
            order: 0,
            pes: 0,
            reserved: None,
            backfilled: false,
        }
    }

    /// Rounds spent waiting between arrival and admission.
    #[must_use]
    pub fn queueing_delay(&self) -> Option<u32> {
        Some(self.start?.saturating_sub(self.arrival?))
    }

    /// How late the job started relative to its first EASY
    /// reservation: `start - reserved`. The reservation is computed
    /// from *declared* walltimes, so under drained release this is
    /// exactly the scheduler's optimism about drain times. `None`
    /// until the job was both reserved and started.
    #[must_use]
    pub fn optimism_gap(&self) -> Option<u32> {
        Some(self.start?.saturating_sub(self.reserved?))
    }
}

/// A probe that listens to `JobArrived` / `JobPlaced` / `JobReleased`
/// and builds a tenant timeline. Interconnect events are ignored, so
/// it can ride along any fan-out tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedProbe {
    spans: Vec<JobSpan>,
}

impl SchedProbe {
    /// An empty probe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn span_mut(&mut self, job: u32) -> &mut JobSpan {
        if let Some(i) = self.spans.iter().position(|s| s.job == job) {
            &mut self.spans[i]
        } else {
            self.spans.push(JobSpan::new(job));
            self.spans.last_mut().expect("just pushed")
        }
    }

    /// Job spans, in order of first event (scheduler order).
    #[must_use]
    pub fn spans(&self) -> &[JobSpan] {
        &self.spans
    }

    /// How many jobs were placed by jumping the queue (EASY backfill).
    #[must_use]
    pub fn backfills(&self) -> usize {
        self.spans.iter().filter(|s| s.backfilled).count()
    }

    /// Largest optimism gap across all reserved jobs: how many rounds
    /// the most-delayed head started after its first declared-walltime
    /// reservation. Zero when no job was reserved (or every promise
    /// held).
    #[must_use]
    pub fn max_optimism_gap(&self) -> u32 {
        self.spans
            .iter()
            .filter_map(JobSpan::optimism_gap)
            .max()
            .unwrap_or(0)
    }

    /// Latest finish time across all jobs (the horizon).
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.spans
            .iter()
            .filter_map(|s| s.finish)
            .max()
            .unwrap_or(0)
    }

    /// Render an ASCII Gantt timeline, at most `width` columns wide:
    /// `.` marks queueing (arrival to start), `#` marks execution
    /// (start to finish).
    #[must_use]
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(1);
        let horizon = self.horizon().max(1);
        let col = |t: u32| ((t as usize * width) / horizon as usize).min(width);
        let mut out = String::new();
        out.push_str(&format!(
            "tenant timeline, 0..{horizon} ({width} cols, '.' queued, '#' running):\n"
        ));
        for s in &self.spans {
            let (Some(a), Some(b), Some(f)) = (s.arrival, s.start, s.finish) else {
                out.push_str(&format!("  job {:>4} (incomplete span)\n", s.job));
                continue;
            };
            let (ca, cb, cf) = (col(a), col(b), col(f));
            let mut line = String::with_capacity(width);
            for c in 0..width {
                line.push(if c >= ca && c < cb {
                    '.'
                } else if c >= cb && c < cf.max(cb + 1) {
                    '#'
                } else {
                    ' '
                });
            }
            out.push_str(&format!(
                "  job {:>4} ord {} |{line}| wait {:>4}{}\n",
                s.job,
                s.order,
                b - a,
                if s.backfilled { " (backfilled)" } else { "" }
            ));
        }
        out
    }
}

impl Probe for SchedProbe {
    fn event(&mut self, ev: &Event) {
        match *ev {
            Event::JobArrived { round, job } => self.span_mut(job).arrival = Some(round),
            Event::JobPlaced {
                round,
                job,
                order,
                pes,
            } => {
                let s = self.span_mut(job);
                s.start = Some(round);
                s.order = order;
                s.pes = pes;
            }
            Event::JobReleased { round, job } => self.span_mut(job).finish = Some(round),
            Event::JobReserved { job, start, .. } => {
                let s = self.span_mut(job);
                if s.reserved.is_none() {
                    s.reserved = Some(start);
                }
            }
            Event::JobBackfilled { job, .. } => self.span_mut(job).backfilled = true,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut SchedProbe, evs: &[Event]) {
        for ev in evs {
            p.event(ev);
        }
    }

    #[test]
    fn spans_assemble_from_events() {
        let mut p = SchedProbe::new();
        feed(
            &mut p,
            &[
                Event::JobArrived { round: 0, job: 7 },
                Event::JobPlaced {
                    round: 5,
                    job: 7,
                    order: 3,
                    pes: 6,
                },
                Event::JobReleased { round: 45, job: 7 },
            ],
        );
        let s = p.spans()[0];
        assert_eq!(s.queueing_delay(), Some(5));
        assert_eq!((s.order, s.pes), (3, 6));
        assert_eq!(p.horizon(), 45);
    }

    #[test]
    fn gantt_marks_wait_and_run() {
        let mut p = SchedProbe::new();
        feed(
            &mut p,
            &[
                Event::JobArrived { round: 0, job: 0 },
                Event::JobPlaced {
                    round: 50,
                    job: 0,
                    order: 2,
                    pes: 2,
                },
                Event::JobReleased { round: 100, job: 0 },
            ],
        );
        let g = p.gantt(10);
        assert!(g.contains("....."));
        assert!(g.contains("#####"));
        assert!(g.contains("wait   50"));
    }

    #[test]
    fn interconnect_events_are_ignored() {
        let mut p = SchedProbe::new();
        p.event(&Event::RoundBegin { round: 1 });
        assert!(p.spans().is_empty());
    }
}
