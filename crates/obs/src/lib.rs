//! # sg-obs — deterministic tracing, metrics, and self-profiling
//!
//! Observability for the `S_n` interconnect simulator (`sg-net`) and
//! the multi-tenant scheduler (`sg-sched`), built around one rule:
//! **watching a run never changes it, and not watching costs
//! nothing.**
//!
//! * [`Probe`] is the sink: engines emit typed [`Event`]s (round
//!   begin/end, forwards, enqueues, stalls, diversions, drops,
//!   deliveries, job arrivals/placements/releases) in deterministic
//!   reference-scan order — both `sg-net` engines produce *identical*
//!   event streams, asserted by the differential suite.
//! * [`NullProbe`] is the default: its `ENABLED = false` constant
//!   folds every emission site out of the monomorphized engine, so
//!   the unprobed path compiles to the pre-instrumentation loops.
//! * [`EventLog`] records the raw stream (optionally capacity-bounded)
//!   and exports newline-delimited JSON.
//! * [`NetProbe`] turns the stream into metrics — per-link forward
//!   counts, per-PE occupancy, queue-depth histogram, escape-bank
//!   occupancy, per-tenant in-flight gauges — backed by a
//!   [`MetricsRegistry`] of counters / gauges / fixed-bucket
//!   histograms and bounded [`RingSeries`] recorders, so memory stays
//!   bounded even at `n = 9` scale.
//! * [`SchedProbe`] assembles job events into spans and renders an
//!   ASCII Gantt timeline.
//! * [`PhaseProfile`] + an injected monotonic counter ([`wall_clock`]
//!   or the deterministic [`tick_clock`]) profile the fast engine's
//!   four phases without perturbing its behaviour;
//!   [`SchedPhaseProfile`] does the same for `sg-sched`'s event loop.
//! * **`sg-trace`** ([`trace`] / [`replay`] / [`diff`]): a versioned,
//!   self-describing JSONL schema ([`Trace`]) that round-trips every
//!   event losslessly, a replayer ([`NetReplay`]) reconstructing the
//!   engines' full online accounting from a log alone, and a
//!   structural differ ([`diff_events`]) that localizes the first
//!   divergence between two streams to its round and in-round index.
//!
//! This crate has no dependencies (events carry plain integers); it
//! sits below `sg-net` / `sg-sched`, which emit into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod metrics;
pub mod netprobe;
pub mod probe;
pub mod profile;
pub mod replay;
pub mod sched;
pub mod trace;

pub use diff::{diff_events, DiffSide, Divergence};
pub use metrics::{
    Counter, CounterId, Gauge, GaugeId, Histogram, HistogramId, MetricsRegistry, RingSeries,
    SeriesId,
};
pub use netprobe::{HotLink, NetProbe, DEFAULT_DEPTH_BUCKETS, DEFAULT_SERIES_CAP};
pub use probe::{DropReason, Event, EventLog, NullProbe, Probe, StallKind};
pub use profile::{reset_tick_clock, tick_clock, wall_clock, PhaseProfile, SchedPhaseProfile};
pub use replay::{replay_trace, NetReplay, ReplayCounters, ReplayOutcome, ReplayedRun};
pub use sched::{JobSpan, SchedProbe};
pub use trace::{Trace, TraceError, TraceHeader, TracePacket, SCHEMA_VERSION};
