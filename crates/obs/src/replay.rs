//! Replaying a recorded event stream back into derived run state.
//!
//! [`NetReplay`] is the inverse of the engines' online accounting: it
//! walks an [`Event`] stream (plus the packet preamble of a
//! [`Trace`]) and reconstructs exactly the counters both `sg-net`
//! engines track while running — total and per-job wait, stalls,
//! peaks, forward counts, and every packet's outcome. `sg-net` turns
//! the result into a `TrafficStats` that is **byte-identical** to the
//! live run's (asserted across the full differential matrix), so a
//! log file alone is sufficient to re-derive everything the run ever
//! reported.
//!
//! The replay is strict: the stream's own invariants (a `round_end`
//! total must equal the replayed queue census, per-PE occupancy can
//! never underflow, every packet must resolve) are checked as it
//! goes, so a truncated or hand-damaged log fails loudly instead of
//! producing quietly wrong statistics.
//!
//! Accounting subtleties mirrored from the engines:
//!
//! * Wait and stall charges land at each `round_end`, using the
//!   engine's own published totals for the global counters and the
//!   replayed per-job census for tenant attribution — idle-skipped
//!   rounds emit nothing and charge nothing.
//! * A **deadlock strand** (credit cycle detected mid-run) charges
//!   the final round's wait *before* breaking, and that round has no
//!   `round_end`; a **round-cap strand** breaks at the top of the
//!   round and charges nothing. The two are distinguished by the
//!   stall events a deadlocked round necessarily contains.
//! * Stranded packets never resolve, so they do not advance the
//!   makespan (`last_event`) — only deliveries and real drops do.

use crate::probe::{DropReason, Event, StallKind};
use crate::trace::{Trace, TraceError};

/// The counters one engine accumulates online during a run — as
/// reconstructed from the event stream. Field-for-field mirror of
/// `sg-net`'s `RunCounters` (kept integer-exact so the comparison is
/// `assert_eq!`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayCounters {
    /// Round of the last packet resolution (= makespan).
    pub last_event: u32,
    /// Flit·rounds spent queued.
    pub total_wait_rounds: u64,
    /// Packet·rounds stalled pre-injection (credit mode only).
    pub injection_stall_rounds: u64,
    /// Peak single-queue occupancy.
    pub peak_edge: u64,
    /// Peak per-PE queued total.
    pub peak_node: u64,
    /// Links traversed.
    pub forwarded: u64,
    /// Adaptive→escape diversions (escape mode only).
    pub escape_diversions: u64,
    /// Links traversed on the escape channel.
    pub escape_forwarded: u64,
    /// Peak per-PE escape residents.
    pub peak_escape: u64,
}

/// A packet's fate as reconstructed from the stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// No resolution event seen (only valid mid-stream; a finished
    /// replay with pending packets is an error).
    #[default]
    Pending,
    /// Delivered at `round` after `hops` link traversals.
    Delivered {
        /// Resolution round.
        round: u32,
        /// Links traversed.
        hops: u32,
    },
    /// Dropped on a dead node/link.
    DroppedFault {
        /// Resolution round.
        round: u32,
    },
    /// Dropped with no surviving route.
    DroppedUnreachable {
        /// Resolution round.
        round: u32,
    },
    /// Tail-dropped at a full queue.
    DroppedOverflow {
        /// Resolution round.
        round: u32,
    },
    /// Still unresolved when the run stranded.
    Stranded,
}

/// Everything a finished replay reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedRun {
    /// Whole-run counters.
    pub total: ReplayCounters,
    /// Per-job counters for a partitioned run (empty otherwise).
    pub per_job: Vec<ReplayCounters>,
    /// One outcome per packet, in packet-id order.
    pub outcomes: Vec<ReplayOutcome>,
}

/// Streaming replayer for `sg-net` event streams.
#[derive(Debug, Clone)]
pub struct NetReplay {
    owner: Option<Vec<u32>>,
    total: ReplayCounters,
    per_job: Vec<ReplayCounters>,
    outcomes: Vec<ReplayOutcome>,
    /// Per-PE adaptive-queue occupants (grown on demand).
    node_occ: Vec<u64>,
    /// Per-PE escape-bank occupants (grown on demand).
    esc_node: Vec<u64>,
    /// Flits in queues or escape banks, total and per job.
    queued_total: u64,
    queued_job: Vec<u64>,
    /// Injection stalls observed in the currently open round.
    stall_inj_total: u64,
    stall_inj_job: Vec<u64>,
    /// Any stall event (either kind) seen in the open round — the
    /// deadlock-strand signature.
    stall_any: bool,
    /// Strand drops seen in the open round.
    stranded: bool,
    open: Option<u32>,
    error: Option<String>,
}

fn slot(v: &mut Vec<u64>, i: usize) -> &mut u64 {
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    &mut v[i]
}

impl NetReplay {
    /// A replayer for a run of `packets` packets. `owner` (one job id
    /// per packet) and `jobs` switch on per-job attribution, exactly
    /// like the engines' partitioned entry points.
    ///
    /// # Panics
    /// Panics if `owner` is present with the wrong length or names a
    /// job outside `0..jobs`.
    #[must_use]
    pub fn new(packets: usize, owner: Option<&[u32]>, jobs: usize) -> Self {
        if let Some(o) = owner {
            assert_eq!(o.len(), packets, "one owner per packet");
            assert!(
                o.iter().all(|&j| (j as usize) < jobs),
                "owner map names a job outside 0..{jobs}"
            );
        }
        NetReplay {
            owner: owner.map(<[u32]>::to_vec),
            total: ReplayCounters::default(),
            per_job: vec![ReplayCounters::default(); jobs],
            outcomes: vec![ReplayOutcome::Pending; packets],
            node_occ: Vec::new(),
            esc_node: Vec::new(),
            queued_total: 0,
            queued_job: vec![0; jobs],
            stall_inj_total: 0,
            stall_inj_job: vec![0; jobs],
            stall_any: false,
            stranded: false,
            open: None,
            error: None,
        }
    }

    fn job_of(&self, pid: u32) -> Option<usize> {
        self.owner.as_ref().map(|o| o[pid as usize] as usize)
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(msg);
        }
    }

    /// Feed the next event of the stream.
    pub fn observe(&mut self, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        match *ev {
            Event::RoundBegin { round } => {
                if self.open.is_some() {
                    self.fail(format!("round {round} begins inside an open round"));
                    return;
                }
                self.open = Some(round);
                self.stall_inj_total = 0;
                self.stall_inj_job.iter_mut().for_each(|s| *s = 0);
                self.stall_any = false;
                self.stranded = false;
            }
            Event::RoundEnd {
                round,
                queued,
                stalled,
                ..
            } => {
                if self.open != Some(round) {
                    self.fail(format!(
                        "round_end for round {round} without matching round_begin"
                    ));
                    return;
                }
                if queued != self.queued_total {
                    self.fail(format!(
                        "round {round}: round_end reports {queued} queued, replay counts {}",
                        self.queued_total
                    ));
                    return;
                }
                if stalled != self.stall_inj_total {
                    self.fail(format!(
                        "round {round}: round_end reports {stalled} stalled, replay counted {} \
                         injection stalls",
                        self.stall_inj_total
                    ));
                    return;
                }
                self.total.total_wait_rounds += queued;
                self.total.injection_stall_rounds += stalled;
                for (c, (&q, &s)) in self
                    .per_job
                    .iter_mut()
                    .zip(self.queued_job.iter().zip(&self.stall_inj_job))
                {
                    c.total_wait_rounds += q;
                    c.injection_stall_rounds += s;
                }
                self.open = None;
            }
            Event::Queued {
                pid,
                pe,
                depth,
                escape,
                ..
            } => {
                let pe = pe as usize;
                if escape {
                    *slot(&mut self.esc_node, pe) += 1;
                    self.total.peak_escape = self.total.peak_escape.max(u64::from(depth));
                } else {
                    *slot(&mut self.node_occ, pe) += 1;
                    self.total.peak_edge = self.total.peak_edge.max(u64::from(depth));
                }
                let at_pe = *slot(&mut self.node_occ, pe) + *slot(&mut self.esc_node, pe);
                self.total.peak_node = self.total.peak_node.max(at_pe);
                self.queued_total += 1;
                if let Some(j) = self.job_of(pid) {
                    self.queued_job[j] += 1;
                    let c = &mut self.per_job[j];
                    if escape {
                        c.peak_escape = c.peak_escape.max(u64::from(depth));
                    } else {
                        c.peak_edge = c.peak_edge.max(u64::from(depth));
                    }
                    c.peak_node = c.peak_node.max(at_pe);
                }
            }
            Event::Forwarded {
                pid, from, escape, ..
            } => {
                let from = from as usize;
                let bank = if escape {
                    &mut self.esc_node
                } else {
                    &mut self.node_occ
                };
                let occ = slot(bank, from);
                let (Some(next), Some(left)) =
                    (occ.checked_sub(1), self.queued_total.checked_sub(1))
                else {
                    self.fail(format!("packet {pid} forwarded off an empty PE {from}"));
                    return;
                };
                *occ = next;
                self.queued_total = left;
                self.total.forwarded += 1;
                if escape {
                    self.total.escape_forwarded += 1;
                }
                if let Some(j) = self.job_of(pid) {
                    let Some(left) = self.queued_job[j].checked_sub(1) else {
                        self.fail(format!("job {j} forwarded more flits than it queued"));
                        return;
                    };
                    self.queued_job[j] = left;
                    self.per_job[j].forwarded += 1;
                    if escape {
                        self.per_job[j].escape_forwarded += 1;
                    }
                }
            }
            Event::Diverted { pid, pe, .. } => {
                let pe = pe as usize;
                let occ = slot(&mut self.node_occ, pe);
                let Some(next) = occ.checked_sub(1) else {
                    self.fail(format!("packet {pid} diverted off an empty PE {pe}"));
                    return;
                };
                *occ = next;
                *slot(&mut self.esc_node, pe) += 1;
                let esc = self.esc_node[pe];
                self.total.escape_diversions += 1;
                self.total.peak_escape = self.total.peak_escape.max(esc);
                if let Some(j) = self.job_of(pid) {
                    let c = &mut self.per_job[j];
                    c.escape_diversions += 1;
                    c.peak_escape = c.peak_escape.max(esc);
                }
            }
            Event::Stalled { pid, kind, .. } => {
                self.stall_any = true;
                if kind == StallKind::Injection {
                    self.stall_inj_total += 1;
                    if let Some(j) = self.job_of(pid) {
                        self.stall_inj_job[j] += 1;
                    }
                }
            }
            Event::Delivered {
                round, pid, hops, ..
            } => {
                self.resolve(pid, ReplayOutcome::Delivered { round, hops }, Some(round));
            }
            Event::Dropped {
                round, pid, reason, ..
            } => {
                let (outcome, advances) = match reason {
                    DropReason::Fault => (ReplayOutcome::DroppedFault { round }, Some(round)),
                    DropReason::Unreachable => {
                        (ReplayOutcome::DroppedUnreachable { round }, Some(round))
                    }
                    DropReason::Overflow => (ReplayOutcome::DroppedOverflow { round }, Some(round)),
                    // Stranding bypasses resolution: the engines never
                    // advance `last_event` for a stranded packet.
                    DropReason::Stranded => (ReplayOutcome::Stranded, None),
                };
                if reason == DropReason::Stranded {
                    self.stranded = true;
                }
                self.resolve(pid, outcome, advances);
            }
            // Scheduler events may share a log with net events but
            // carry no network accounting.
            Event::JobArrived { .. }
            | Event::JobPlaced { .. }
            | Event::JobReleased { .. }
            | Event::JobReserved { .. }
            | Event::JobBackfilled { .. } => {}
        }
    }

    fn resolve(&mut self, pid: u32, outcome: ReplayOutcome, advances: Option<u32>) {
        let Some(out) = self.outcomes.get_mut(pid as usize) else {
            self.fail(format!(
                "event names packet {pid}, but the preamble declares only {}",
                self.outcomes.len()
            ));
            return;
        };
        if *out != ReplayOutcome::Pending {
            self.fail(format!("packet {pid} resolved twice"));
            return;
        }
        *out = outcome;
        if let Some(round) = advances {
            self.total.last_event = self.total.last_event.max(round);
            if let Some(j) = self.job_of(pid) {
                self.per_job[j].last_event = self.per_job[j].last_event.max(round);
            }
        }
    }

    /// Close the stream and hand back the reconstructed run.
    ///
    /// # Errors
    /// [`TraceError::Inconsistent`] if any invariant failed along the
    /// way, the stream ended mid-round without stranding, or a packet
    /// never resolved.
    pub fn finish(mut self) -> Result<ReplayedRun, TraceError> {
        if let Some(msg) = self.error {
            return Err(TraceError::Inconsistent { msg });
        }
        if let Some(round) = self.open {
            if !self.stranded {
                return Err(TraceError::Inconsistent {
                    msg: format!("stream ends inside round {round} without stranding"),
                });
            }
            // A deadlock strand runs the accounting phase (charging
            // the final round's wait and stalls) and then breaks
            // before `round_end`; a round-cap strand breaks at the
            // top of the round, before anything could stall.
            if self.stall_any {
                self.total.total_wait_rounds += self.queued_total;
                self.total.injection_stall_rounds += self.stall_inj_total;
                for (c, (&q, &s)) in self
                    .per_job
                    .iter_mut()
                    .zip(self.queued_job.iter().zip(&self.stall_inj_job))
                {
                    c.total_wait_rounds += q;
                    c.injection_stall_rounds += s;
                }
            }
        }
        if let Some(pid) = self
            .outcomes
            .iter()
            .position(|o| *o == ReplayOutcome::Pending)
        {
            return Err(TraceError::Inconsistent {
                msg: format!("packet {pid} never resolved — is the log truncated?"),
            });
        }
        Ok(ReplayedRun {
            total: self.total,
            per_job: self.per_job,
            outcomes: self.outcomes,
        })
    }
}

/// Replay a parsed [`Trace`] end to end.
///
/// # Errors
/// [`TraceError::DroppedEvents`] when the recorder's capacity bound
/// dropped events (the stream is incomplete by its own admission);
/// [`TraceError::Inconsistent`] when the stream fails replay
/// invariants.
pub fn replay_trace(trace: &Trace) -> Result<ReplayedRun, TraceError> {
    if trace.header.dropped > 0 {
        return Err(TraceError::DroppedEvents {
            dropped: trace.header.dropped,
        });
    }
    let jobs = trace.header.jobs as usize;
    let owner: Option<Vec<u32>> = if jobs > 0 {
        let mut owner = Vec::with_capacity(trace.packets.len());
        for p in &trace.packets {
            match p.job {
                Some(j) => owner.push(j),
                None => {
                    return Err(TraceError::Inconsistent {
                        msg: format!(
                            "header declares {jobs} job(s) but packet {} has no owner",
                            p.pid
                        ),
                    })
                }
            }
        }
        Some(owner)
    } else {
        None
    };
    let mut replay = NetReplay::new(trace.packets.len(), owner.as_deref(), jobs);
    for ev in &trace.events {
        replay.observe(ev);
    }
    replay.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(replay: &mut NetReplay, evs: &[Event]) {
        for ev in evs {
            replay.observe(ev);
        }
    }

    /// One packet queued at round 0, forwarded at round 1, delivered
    /// at round 2 — the smallest stream with a wait charge.
    #[test]
    fn tiny_stream_reconstructs_counters() {
        let mut r = NetReplay::new(1, None, 0);
        feed(
            &mut r,
            &[
                Event::RoundBegin { round: 0 },
                Event::Queued {
                    round: 0,
                    pid: 0,
                    pe: 3,
                    gen: 1,
                    depth: 1,
                    escape: false,
                },
                Event::RoundEnd {
                    round: 0,
                    queued: 1,
                    in_flight: 0,
                    stalled: 0,
                },
                Event::RoundBegin { round: 1 },
                Event::Forwarded {
                    round: 1,
                    pid: 0,
                    from: 3,
                    to: 5,
                    gen: 1,
                    escape: false,
                },
                Event::RoundEnd {
                    round: 1,
                    queued: 0,
                    in_flight: 1,
                    stalled: 0,
                },
                Event::RoundBegin { round: 2 },
                Event::Delivered {
                    round: 2,
                    pid: 0,
                    pe: 5,
                    hops: 1,
                },
                Event::RoundEnd {
                    round: 2,
                    queued: 0,
                    in_flight: 0,
                    stalled: 0,
                },
            ],
        );
        let run = r.finish().expect("consistent");
        assert_eq!(run.total.total_wait_rounds, 1);
        assert_eq!(run.total.forwarded, 1);
        assert_eq!(run.total.peak_edge, 1);
        assert_eq!(run.total.peak_node, 1);
        assert_eq!(run.total.last_event, 2);
        assert_eq!(
            run.outcomes,
            vec![ReplayOutcome::Delivered { round: 2, hops: 1 }]
        );
    }

    #[test]
    fn per_job_attribution_follows_owners() {
        let owner = [0u32, 1];
        let mut r = NetReplay::new(2, Some(&owner), 2);
        feed(
            &mut r,
            &[
                Event::RoundBegin { round: 0 },
                Event::Queued {
                    round: 0,
                    pid: 0,
                    pe: 0,
                    gen: 1,
                    depth: 1,
                    escape: false,
                },
                Event::Queued {
                    round: 0,
                    pid: 1,
                    pe: 0,
                    gen: 2,
                    depth: 1,
                    escape: false,
                },
                Event::RoundEnd {
                    round: 0,
                    queued: 2,
                    in_flight: 0,
                    stalled: 0,
                },
                Event::RoundBegin { round: 1 },
                Event::Forwarded {
                    round: 1,
                    pid: 0,
                    from: 0,
                    to: 1,
                    gen: 1,
                    escape: false,
                },
                Event::RoundEnd {
                    round: 1,
                    queued: 1,
                    in_flight: 1,
                    stalled: 0,
                },
                Event::RoundBegin { round: 2 },
                Event::Forwarded {
                    round: 2,
                    pid: 1,
                    from: 0,
                    to: 2,
                    gen: 2,
                    escape: false,
                },
                Event::Delivered {
                    round: 2,
                    pid: 0,
                    pe: 1,
                    hops: 1,
                },
                Event::RoundEnd {
                    round: 2,
                    queued: 0,
                    in_flight: 1,
                    stalled: 0,
                },
                Event::RoundBegin { round: 3 },
                Event::Delivered {
                    round: 3,
                    pid: 1,
                    pe: 2,
                    hops: 1,
                },
                Event::RoundEnd {
                    round: 3,
                    queued: 0,
                    in_flight: 0,
                    stalled: 0,
                },
            ],
        );
        let run = r.finish().expect("consistent");
        // Job 0 waited 1 round (round 0); job 1 waited 2 (rounds 0–1).
        assert_eq!(run.per_job[0].total_wait_rounds, 1);
        assert_eq!(run.per_job[1].total_wait_rounds, 2);
        assert_eq!(run.per_job[0].last_event, 2);
        assert_eq!(run.per_job[1].last_event, 3);
        assert_eq!(run.total.total_wait_rounds, 3);
        // The shared PE peaked at 2 queued flits; both jobs were
        // enqueuing while it did, so both observed the peak.
        assert_eq!(run.total.peak_node, 2);
        assert_eq!(run.per_job[1].peak_node, 2);
    }

    #[test]
    fn census_mismatch_is_inconsistent() {
        let mut r = NetReplay::new(1, None, 0);
        feed(
            &mut r,
            &[
                Event::RoundBegin { round: 0 },
                Event::RoundEnd {
                    round: 0,
                    queued: 5,
                    in_flight: 0,
                    stalled: 0,
                },
            ],
        );
        assert!(matches!(r.finish(), Err(TraceError::Inconsistent { .. })));
    }

    #[test]
    fn mid_round_truncation_is_inconsistent() {
        let mut r = NetReplay::new(0, None, 0);
        feed(&mut r, &[Event::RoundBegin { round: 0 }]);
        assert!(matches!(r.finish(), Err(TraceError::Inconsistent { .. })));
    }

    #[test]
    fn unresolved_packet_is_inconsistent() {
        let r = NetReplay::new(1, None, 0);
        assert!(matches!(r.finish(), Err(TraceError::Inconsistent { .. })));
    }

    /// A deadlock strand (stall events in the final, unclosed round)
    /// charges the round's wait; a round-cap strand (no stalls — the
    /// break happens before any phase runs) does not.
    #[test]
    fn strand_rounds_charge_wait_only_on_deadlock() {
        let deadlock = [
            Event::RoundBegin { round: 0 },
            Event::Queued {
                round: 0,
                pid: 0,
                pe: 0,
                gen: 1,
                depth: 1,
                escape: false,
            },
            Event::RoundEnd {
                round: 0,
                queued: 1,
                in_flight: 0,
                stalled: 0,
            },
            Event::RoundBegin { round: 1 },
            Event::Stalled {
                round: 1,
                pid: 0,
                pe: 0,
                kind: StallKind::CreditHead,
            },
            Event::Dropped {
                round: 1,
                pid: 0,
                pe: 0,
                reason: DropReason::Stranded,
            },
        ];
        let mut r = NetReplay::new(1, None, 0);
        feed(&mut r, &deadlock);
        let run = r.finish().expect("consistent");
        assert_eq!(run.total.total_wait_rounds, 2, "strand round charged");
        assert_eq!(run.total.last_event, 0, "stranding never advances makespan");
        assert_eq!(run.outcomes, vec![ReplayOutcome::Stranded]);

        let capped = [
            Event::RoundBegin { round: 9 },
            Event::Dropped {
                round: 9,
                pid: 0,
                pe: 0,
                reason: DropReason::Stranded,
            },
        ];
        let mut r = NetReplay::new(1, None, 0);
        feed(&mut r, &capped);
        let run = r.finish().expect("consistent");
        assert_eq!(run.total.total_wait_rounds, 0, "cap strand charges nothing");
    }
}
