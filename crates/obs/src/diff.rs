//! Structural diffing of two event streams.
//!
//! The differential harness proves both engines emit byte-identical
//! streams; when that ever fails, "not equal" is useless at 10⁵
//! events. [`diff_events`] walks two streams in lockstep and reports
//! the **first** divergence — global event index, the round it lands
//! in, the event's index within that round, both sides' events, and a
//! configurable window of shared context before and per-side context
//! after — rendered ready to paste into a bug report.

use crate::probe::Event;

/// Where one side of a divergence sits in its stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffSide {
    /// The event at the divergence point, or `None` if this stream
    /// ended first.
    pub event: Option<Event>,
    /// Round (or scheduler time) the divergence point belongs to.
    /// `None` only for an ended stream.
    pub round: Option<u32>,
    /// Index of the event within its round bracket (0 = the
    /// `round_begin` itself; streams without brackets count events of
    /// equal round).
    pub index_in_round: usize,
}

/// A localized first divergence between two streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Global index (0-based) of the first differing event.
    pub index: usize,
    /// The divergence as seen from stream `a`.
    pub a: DiffSide,
    /// The divergence as seen from stream `b`.
    pub b: DiffSide,
    /// Up to `context` events of the shared prefix before the
    /// divergence, with their global indices.
    pub before: Vec<(usize, Event)>,
    /// Up to `context` events of `a` after the divergence point.
    pub after_a: Vec<(usize, Event)>,
    /// Up to `context` events of `b` after the divergence point.
    pub after_b: Vec<(usize, Event)>,
}

/// Tracks (round, index-within-round) while walking a stream.
#[derive(Debug, Clone, Copy)]
struct RoundCursor {
    round: Option<u32>,
    index: usize,
}

impl RoundCursor {
    fn new() -> Self {
        RoundCursor {
            round: None,
            index: 0,
        }
    }

    /// Advance past `ev` (already consumed).
    fn advance(&mut self, ev: &Event) {
        if matches!(ev, Event::RoundBegin { .. }) || self.round != Some(ev.round()) {
            self.round = Some(ev.round());
            self.index = 0;
        } else {
            self.index += 1;
        }
    }

    /// The position `ev` would occupy if consumed next.
    fn locate(&self, ev: &Event) -> (u32, usize) {
        if matches!(ev, Event::RoundBegin { .. }) || self.round != Some(ev.round()) {
            (ev.round(), 0)
        } else {
            (ev.round(), self.index + 1)
        }
    }
}

/// Compare two event streams; `None` means identical. On divergence
/// the report carries up to `context` events of surrounding context
/// from each side.
#[must_use]
pub fn diff_events(a: &[Event], b: &[Event], context: usize) -> Option<Divergence> {
    let shared = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    if shared == a.len() && shared == b.len() {
        return None;
    }
    // Walk the shared prefix to learn the round bracket in force.
    let mut cursor = RoundCursor::new();
    for ev in &a[..shared] {
        cursor.advance(ev);
    }
    let side = |stream: &[Event]| -> DiffSide {
        match stream.get(shared) {
            Some(ev) => {
                let (round, index_in_round) = cursor.locate(ev);
                DiffSide {
                    event: Some(*ev),
                    round: Some(round),
                    index_in_round,
                }
            }
            None => DiffSide {
                event: None,
                round: cursor.round,
                index_in_round: cursor.index,
            },
        }
    };
    let window = |stream: &[Event]| -> Vec<(usize, Event)> {
        stream
            .iter()
            .enumerate()
            .skip(shared + 1)
            .take(context)
            .map(|(i, ev)| (i, *ev))
            .collect()
    };
    let start = shared.saturating_sub(context);
    Some(Divergence {
        index: shared,
        a: side(a),
        b: side(b),
        before: a[start..shared]
            .iter()
            .enumerate()
            .map(|(i, ev)| (start + i, *ev))
            .collect(),
        after_a: window(a),
        after_b: window(b),
    })
}

impl Divergence {
    /// Render the localized report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = match (&self.a.event, &self.b.event) {
            (Some(_), Some(_)) => format!(
                "first divergence at event {} (round {}, event {} within round):\n",
                self.index,
                self.a.round.map_or_else(|| "?".into(), |r| r.to_string()),
                self.a.index_in_round
            ),
            (None, Some(_)) => format!(
                "stream a ends after {} event(s); b continues (round {}, event {} within round):\n",
                self.index,
                self.b.round.map_or_else(|| "?".into(), |r| r.to_string()),
                self.b.index_in_round
            ),
            (Some(_), None) => format!(
                "stream b ends after {} event(s); a continues (round {}, event {} within round):\n",
                self.index,
                self.a.round.map_or_else(|| "?".into(), |r| r.to_string()),
                self.a.index_in_round
            ),
            (None, None) => unreachable!("equal-length identical streams do not diverge"),
        };
        let line = |out: &mut String, tag: &str, side: &DiffSide| {
            match &side.event {
                Some(ev) => out.push_str(&format!("  {tag}: {}\n", ev.to_json())),
                None => out.push_str(&format!("  {tag}: <end of stream>\n")),
            };
        };
        line(&mut out, "a", &self.a);
        line(&mut out, "b", &self.b);
        if !self.before.is_empty() {
            out.push_str("  shared context before divergence:\n");
            for (i, ev) in &self.before {
                out.push_str(&format!("    {i:>6} | {}\n", ev.to_json()));
            }
        }
        for (tag, after) in [("a", &self.after_a), ("b", &self.after_b)] {
            if !after.is_empty() {
                out.push_str(&format!("  {tag} continues:\n"));
                for (i, ev) in after {
                    out.push_str(&format!("    {i:>6} | {}\n", ev.to_json()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<Event> {
        let mut evs = Vec::new();
        for round in 0..4 {
            evs.push(Event::RoundBegin { round });
            evs.push(Event::Queued {
                round,
                pid: round,
                pe: 0,
                gen: 1,
                depth: 1,
                escape: false,
            });
            evs.push(Event::Forwarded {
                round,
                pid: round,
                from: 0,
                to: 1,
                gen: 1,
                escape: false,
            });
            evs.push(Event::RoundEnd {
                round,
                queued: 0,
                in_flight: 1,
                stalled: 0,
            });
        }
        evs
    }

    #[test]
    fn identical_streams_diff_empty() {
        let a = stream();
        assert_eq!(diff_events(&a, &a, 3), None);
        assert_eq!(diff_events(&[], &[], 3), None);
    }

    #[test]
    fn single_mutation_is_localized_to_round_and_index() {
        let a = stream();
        let mut b = a.clone();
        // Event 10 = round 2's Forwarded (bracket index 2).
        b[10] = Event::Queued {
            round: 2,
            pid: 99,
            pe: 7,
            gen: 1,
            depth: 3,
            escape: false,
        };
        let d = diff_events(&a, &b, 2).expect("diverges");
        assert_eq!(d.index, 10);
        assert_eq!(d.a.round, Some(2));
        assert_eq!(d.a.index_in_round, 2);
        assert_eq!(d.b.round, Some(2));
        assert_eq!(d.b.index_in_round, 2);
        assert_eq!(d.a.event, Some(a[10]));
        assert_eq!(d.b.event, Some(b[10]));
        assert_eq!(d.before.len(), 2);
        assert_eq!(d.after_a.len(), 2);
        let text = d.render();
        assert!(text.contains("event 10"));
        assert!(text.contains("round 2, event 2 within round"));
        assert!(text.contains("\"pid\":99"));
    }

    #[test]
    fn length_mismatch_reports_the_tail() {
        let a = stream();
        let b = &a[..a.len() - 2];
        let d = diff_events(&a, b, 3).expect("diverges");
        assert_eq!(d.index, a.len() - 2);
        assert_eq!(d.b.event, None);
        assert_eq!(d.a.event, Some(a[a.len() - 2]));
        let text = d.render();
        assert!(text.contains("stream b ends after 14 event(s)"));
        assert!(text.contains("<end of stream>"));
    }

    #[test]
    fn divergence_on_round_begin_has_index_zero() {
        let a = stream();
        let mut b = a.clone();
        b[4] = Event::RoundBegin { round: 9 };
        let d = diff_events(&a, &b, 1).expect("diverges");
        assert_eq!(d.index, 4);
        assert_eq!(d.a.round, Some(1));
        assert_eq!(d.a.index_in_round, 0);
        assert_eq!(d.b.round, Some(9));
        assert_eq!(d.b.index_in_round, 0);
    }

    /// The pinned cross-engine divergence fixture: two hand-edited
    /// logs whose streams agree up to round 1 and then disagree on
    /// what happened to packet 3 — the report must localize round 1,
    /// bracket index 1, and show both events verbatim.
    #[test]
    fn pinned_hand_edited_fixture_renders_expected_report() {
        let a_log = "\
{\"ev\":\"round_begin\",\"round\":0}\n\
{\"ev\":\"queued\",\"round\":0,\"pid\":3,\"pe\":2,\"gen\":1,\"depth\":1,\"escape\":false}\n\
{\"ev\":\"round_end\",\"round\":0,\"queued\":1,\"in_flight\":0,\"stalled\":0}\n\
{\"ev\":\"round_begin\",\"round\":1}\n\
{\"ev\":\"forwarded\",\"round\":1,\"pid\":3,\"from\":2,\"to\":0,\"gen\":1,\"escape\":false}\n\
{\"ev\":\"round_end\",\"round\":1,\"queued\":0,\"in_flight\":1,\"stalled\":0}\n";
        let b_log = "\
{\"ev\":\"round_begin\",\"round\":0}\n\
{\"ev\":\"queued\",\"round\":0,\"pid\":3,\"pe\":2,\"gen\":1,\"depth\":1,\"escape\":false}\n\
{\"ev\":\"round_end\",\"round\":0,\"queued\":1,\"in_flight\":0,\"stalled\":0}\n\
{\"ev\":\"round_begin\",\"round\":1}\n\
{\"ev\":\"stalled\",\"round\":1,\"pid\":3,\"pe\":2,\"kind\":\"credit_head\"}\n\
{\"ev\":\"round_end\",\"round\":1,\"queued\":1,\"in_flight\":0,\"stalled\":0}\n";
        let parse = |text: &str| -> Vec<Event> {
            text.lines()
                .map(|l| Event::from_json(l).expect("fixture parses"))
                .collect()
        };
        let a = parse(a_log);
        let b = parse(b_log);
        let d = diff_events(&a, &b, 2).expect("fixture diverges");
        assert_eq!(d.index, 4);
        assert_eq!(d.a.round, Some(1));
        assert_eq!(d.a.index_in_round, 1);
        let text = d.render();
        assert!(
            text.contains("first divergence at event 4 (round 1, event 1 within round):"),
            "unexpected report:\n{text}"
        );
        assert!(text.contains("a: {\"ev\":\"forwarded\",\"round\":1,\"pid\":3"));
        assert!(text.contains("b: {\"ev\":\"stalled\",\"round\":1,\"pid\":3"));
        assert!(text.contains("shared context before divergence:"));
    }
}
